// Package main_test holds the benchmark harness: one testing.B per paper
// table/figure (regenerating it at reduced scale and reporting the
// headline numbers as custom metrics), plus ablation benches for the
// design choices DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The metrics reported (b.ReportMetric) are the quantities EXPERIMENTS.md
// tracks: miss-rate reductions in percent, IPC improvements, normalized
// energy, decoder slack in ns, and area overheads.
package main_test

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/altcache"
	"bcache/internal/area"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/energy"
	"bcache/internal/experiment"
	"bcache/internal/rng"
	"bcache/internal/timing"
	"bcache/internal/trace"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

// benchOpts scales experiments so the whole suite finishes in minutes.
func benchOpts() experiment.Opts {
	o := experiment.DefaultOpts()
	o.Instructions = 400_000
	return o
}

// runExperiment executes a registered experiment once per bench iteration
// and reports rows produced.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkFig8 runs the timed (CPU model) comparison on a conflict-bound
// benchmark and reports the B-Cache's IPC improvement.
func BenchmarkFig8(b *testing.B) { benchTimed(b, false) }

// BenchmarkFig9 runs the same simulation and reports normalized energy.
func BenchmarkFig9(b *testing.B) { benchTimed(b, true) }

func benchTimed(b *testing.B, wantEnergy bool) {
	b.Helper()
	e, err := experiment.ByID("fig8")
	if wantEnergy {
		e, err = experiment.ByID("fig9")
	}
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	opts.Instructions = 200_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tables[0].Rows)), "rows")
	}
}

// BenchmarkTable1 regenerates the decoder-timing table and reports the
// minimum slack (must stay positive: the paper's §5.1 conclusion).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := timing.Table1(6)
		minSlack := rows[0].Slack
		for _, r := range rows {
			if r.Slack < minSlack {
				minSlack = r.Slack
			}
		}
		b.ReportMetric(minSlack*1000, "min-slack-ps")
	}
}

// BenchmarkTable2 reports the B-Cache's area overhead in percent
// (paper: 4.3%).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := area.Baseline(16*1024, 32)
		if err != nil {
			b.Fatal(err)
		}
		bc, err := area.BCache(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*bc.OverheadVs(base), "overhead-%")
	}
}

// BenchmarkTable3 reports the B-Cache per-access energy overhead in
// percent (paper: 10.5%).
func BenchmarkTable3(b *testing.B) {
	p := energy.Defaults()
	for i := 0; i < b.N; i++ {
		base, bc, err := p.Table3(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(bc.Total()/base.Total()-1), "overhead-%")
	}
}

// ---- Ablations (DESIGN.md §4) ----

// dataStream materializes one benchmark's data accesses.
func dataStream(b *testing.B, bench string, n int) []trace.Record {
	b.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]trace.Record, 0, n/3)
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if r.Kind.IsMem() {
			recs = append(recs, r)
		}
	}
	return recs
}

func missRateOn(recs []trace.Record, c cache.Cache) float64 {
	for _, r := range recs {
		c.Access(r.Mem, r.Kind == trace.Store)
	}
	return c.Stats().MissRate()
}

// BenchmarkAblationReplacement compares LRU vs random replacement in the
// B-Cache (§3.3: LRU may achieve a better hit rate; random is cheaper).
func BenchmarkAblationReplacement(b *testing.B) {
	recs := dataStream(b, "crafty", 400_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lru, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
		if err != nil {
			b.Fatal(err)
		}
		random, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.Random, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		mLRU := missRateOn(recs, lru)
		mRnd := missRateOn(recs, random)
		b.ReportMetric(100*mLRU, "lru-miss-%")
		b.ReportMetric(100*mRnd, "random-miss-%")
	}
}

// BenchmarkAblationVictimDepth sweeps the victim buffer size (§6.6: more
// than 16 entries "may not bring significant miss rate reduction").
func BenchmarkAblationVictimDepth(b *testing.B) {
	recs := dataStream(b, "perlbmk", 400_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{4, 8, 16, 32} {
			v, err := victim.New(16*1024, 32, entries)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*missRateOn(recs, v), "miss-%-"+itoa(entries))
		}
	}
}

// BenchmarkAblationHAC compares the B-Cache against the fully-
// programmable extreme (§6.7): the HAC matches or beats its miss rate but
// needs a 23-bit CAM per line instead of 6 bits.
func BenchmarkAblationHAC(b *testing.B) {
	recs := dataStream(b, "gcc", 400_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
		if err != nil {
			b.Fatal(err)
		}
		h, err := altcache.NewHAC(16*1024, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*missRateOn(recs, bc), "bcache-miss-%")
		b.ReportMetric(100*missRateOn(recs, h), "hac-miss-%")
		b.ReportMetric(float64(h.CAMBits()), "hac-cam-bits")
	}
}

// BenchmarkAblationRelatedWork lines the B-Cache up against the §7
// alternatives: column-associative and skewed-associative caches.
func BenchmarkAblationRelatedWork(b *testing.B) {
	recs := dataStream(b, "twolf", 400_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc, _ := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
		col, err := altcache.NewColumn(16*1024, 32)
		if err != nil {
			b.Fatal(err)
		}
		sk, err := altcache.NewSkewed(16*1024, 32, rng.New(3))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*missRateOn(recs, bc), "bcache-miss-%")
		b.ReportMetric(100*missRateOn(recs, col), "column-miss-%")
		b.ReportMetric(100*missRateOn(recs, sk), "skewed-miss-%")
	}
}

// BenchmarkSuiteEndToEnd runs every registered experiment back to back —
// what `cmd/experiments` does — at reduced scale. The trace cache is
// reset each iteration so the number includes one honest generation of
// every stream plus all cross-experiment reuse.
func BenchmarkSuiteEndToEnd(b *testing.B) {
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.ResetTraceCache()
		experiment.ResetTimedCache()
		rows := 0
		for _, e := range experiment.All() {
			tables, err := e.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range tables {
				rows += len(t.Rows)
			}
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

// BenchmarkAccessPath measures the simulator's raw access throughput for
// the three main models (engineering metric, not a paper artifact).
func BenchmarkAccessPath(b *testing.B) {
	src := rng.New(5)
	addrs := make([]addr.Addr, 8192)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 22))
	}
	b.Run("direct-mapped", func(b *testing.B) {
		c, _ := cache.NewDirectMapped(16*1024, 32)
		for i := 0; i < b.N; i++ {
			c.Access(addrs[i&8191], false)
		}
	})
	b.Run("bcache", func(b *testing.B) {
		c, _ := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
		for i := 0; i < b.N; i++ {
			c.Access(addrs[i&8191], false)
		}
	})
	b.Run("8way", func(b *testing.B) {
		c, _ := cache.NewSetAssoc(16*1024, 32, 8, cache.LRU, nil)
		for i := 0; i < b.N; i++ {
			c.Access(addrs[i&8191], false)
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
