// Command bcachesim runs one benchmark against one level-one cache
// configuration and reports miss rates, PD statistics, and (with -ipc)
// whole-processor IPC and hierarchy traffic.
//
// Examples:
//
//	bcachesim -bench equake -cache bcache -mf 8 -bas 8
//	bcachesim -bench gcc -cache 4way -side i
//	bcachesim -bench mcf -cache victim -entries 16 -ipc
//	bcachesim -trace run.bct -cache bcache
//	bcachesim -bench equake -cache bcache -report run.json
//	bcachesim -bench gcc -cache bcache -cpuprofile cpu.pprof
//
// With -report the run also emits a schema-versioned JSON document
// (internal/obs.Report) holding totals, the set-balance classification,
// simulator throughput, and interval time-series (miss rate, PD miss
// rate, reprograms per kilo-access, per-set occupancy heat) sampled
// every -interval accesses. -cpuprofile/-memprofile write pprof data for
// the simulator's own hot loop.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bcache/internal/altcache"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/cpu"
	"bcache/internal/fault"
	"bcache/internal/hier"
	"bcache/internal/obs"
	"bcache/internal/obs/metrics"
	"bcache/internal/rng"
	"bcache/internal/trace"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "equake", "benchmark profile name (see -list)")
		tracePath  = flag.String("trace", "", "replay a trace file (.bct v1/v2 or Dinero .din) instead of a benchmark")
		profile    = flag.String("profile", "", "load a custom workload profile from a JSON file")
		list       = flag.Bool("list", false, "list benchmark names and exit")
		kind       = flag.String("cache", "bcache", "cache type: dm | Nway | bcache | victim | column | skewed | hac | agac | psa | pam | wayhalt")
		size       = flag.Int("size", 16*1024, "L1 cache size in bytes")
		line       = flag.Int("line", 32, "line size in bytes")
		mf         = flag.Int("mf", 8, "B-Cache mapping factor")
		bas        = flag.Int("bas", 8, "B-Cache associativity")
		policy     = flag.String("policy", "lru", "B-Cache replacement policy: lru | random")
		entries    = flag.Int("entries", 16, "victim buffer entries")
		n          = flag.Uint64("n", 2_000_000, "instructions to simulate")
		side       = flag.String("side", "d", "cache side for miss-rate mode: d | i")
		ipc        = flag.Bool("ipc", false, "run the full CPU model (both L1s of the chosen type)")
		reportPath = flag.String("report", "", "write a JSON run report (schema v"+strconv.Itoa(obs.SchemaVersion)+") to this file")
		interval   = flag.Uint64("interval", 8192, "report time-series sampling interval in accesses")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")

		faultRate    = flag.Float64("fault-rate", 0, "per-access soft-error injection probability (miss-rate mode only)")
		faultProtect = flag.String("fault-protect", "none", "fault protection model: none | parity | secded")
		faultSeed    = flag.Uint64("fault-seed", 1, "fault injector RNG seed")
		scrubEvery   = flag.Uint64("scrub-every", 4096, "PD scrub interval in accesses (0 = never)")

		telemetry = flag.String("telemetry", "", "serve live telemetry (/metrics, /progress, /debug/pprof) on this host:port (:0 picks a port)")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-14s %s\n", p.Name, p.Suite)
		}
		for _, m := range workload.Micros() {
			fmt.Printf("%-14s micro-benchmark\n", "micro-"+m)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// First SIGINT/SIGTERM ends the input stream early: the summary and
	// (if requested) the report still cover everything simulated so far,
	// and the process exits 130. A second signal aborts immediately.
	var stop atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nbcachesim: %v — stopping after the current access, writing partial results (signal again to abort)\n", s)
		stop.Store(true)
		<-sigc
		fmt.Fprintln(os.Stderr, "bcachesim: second signal, aborting")
		os.Exit(130)
	}()

	cfg := runCfg{
		bench: *benchName, tracePath: *tracePath, profile: *profile,
		kind: *kind, size: *size, line: *line, mf: *mf, bas: *bas,
		policy: *policy, entries: *entries, n: *n, side: *side, ipc: *ipc,
		reportPath: *reportPath, interval: *interval,
		faultRate: *faultRate, faultProtect: *faultProtect,
		faultSeed: *faultSeed, scrubEvery: *scrubEvery,
		stop: &stop,
	}
	if *telemetry != "" {
		simTel := newSimTelemetry(*n, &stop)
		telSrv, err := metrics.NewServer(*telemetry, simTel.reg, simTel.progress)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s (/metrics /progress /debug/pprof)\n", telSrv.Addr())
		cfg.tel = simTel
		// Drain and stop the server as soon as the simulation loop ends —
		// before the summary and report write, so the exit-130 partial
		// report never races a live scrape. Idempotent: the hook fires on
		// the normal path and the interrupt path alike.
		cfg.onDrained = func() {
			if telSrv == nil {
				return
			}
			simTel.done.Store(true)
			if err := telSrv.Close(2 * time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: shutdown: %v\n", err)
			}
			telSrv = nil
		}
		defer cfg.onDrained()
	}

	if err := run(cfg); err != nil {
		fail(err)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
	if stop.Load() {
		pprof.StopCPUProfile() // the deferred stop never runs past os.Exit
		os.Exit(130)
	}
}

// runCfg carries the parsed flags into the testable simulation driver.
type runCfg struct {
	bench, tracePath, profile string
	kind                      string
	size, line, mf, bas       int
	policy                    string
	entries                   int
	n                         uint64
	side                      string
	ipc                       bool
	reportPath                string
	interval                  uint64
	faultRate                 float64
	faultProtect              string
	faultSeed                 uint64
	scrubEvery                uint64
	// stop, when set and flipped true (by the signal handler), ends the
	// input stream at the next record.
	stop *atomic.Bool
	// tel, when set, receives live record counts from the simulation loop.
	tel *simTelemetry
	// onDrained, when set, runs after the simulation loop finishes —
	// before the summary and report write — so a telemetry server can
	// drain and close ahead of any artifact.
	onDrained func()
}

// interrupted reports whether the signal handler requested a stop.
func (cfg runCfg) interrupted() bool { return cfg.stop != nil && cfg.stop.Load() }

// drained flushes pending telemetry counts and fires the onDrained hook.
func (cfg runCfg) drained(cs *countStream) {
	if cs != nil {
		cs.flush()
	}
	if cfg.onDrained != nil {
		cfg.onDrained()
	}
}

// simTelemetry is bcachesim's live-telemetry state: a registry with one
// batched record counter, plus the /progress snapshot. bcachesim has no
// scheduler, so this is deliberately smaller than experiment.Telemetry.
type simTelemetry struct {
	reg     *metrics.Registry
	records *metrics.Counter
	target  uint64
	stop    *atomic.Bool
	done    atomic.Bool
}

func newSimTelemetry(target uint64, stop *atomic.Bool) *simTelemetry {
	reg := metrics.NewRegistry()
	return &simTelemetry{
		reg:     reg,
		records: reg.Counter("bcachesim_trace_records", "trace records consumed by the simulation loop"),
		target:  target,
		stop:    stop,
	}
}

// progress is the /progress endpoint payload.
func (t *simTelemetry) progress() any {
	return struct {
		SchemaVersion      int    `json:"schemaVersion"`
		TargetInstructions uint64 `json:"targetInstructions"`
		Records            uint64 `json:"records"`
		Done               bool   `json:"done"`
		Interrupted        bool   `json:"interrupted"`
	}{1, t.target, t.records.Value(), t.done.Load(), t.stop != nil && t.stop.Load()}
}

// countBatch is how many trace records accumulate locally before one
// atomic add publishes them: the hot loop stays free of per-record
// shared-counter traffic.
const countBatch = 8192

// countStream wraps the input stream and publishes consumption to the
// telemetry counter in batches (remainder on end-of-stream or flush).
type countStream struct {
	inner trace.Stream
	ctr   *metrics.Counter
	batch uint64
}

func (s *countStream) Next() (trace.Record, bool) {
	rec, ok := s.inner.Next()
	if ok {
		if s.batch++; s.batch == countBatch {
			s.ctr.Add(countBatch)
			s.batch = 0
		}
	} else {
		s.flush()
	}
	return rec, ok
}

func (s *countStream) flush() {
	if s.batch > 0 {
		s.ctr.Add(s.batch)
		s.batch = 0
	}
}

// stopStream wraps a trace so a stop request ends it cleanly: the
// simulation loop drains as if the trace ran out, and every summary or
// report path downstream covers exactly the accesses already simulated.
type stopStream struct {
	inner trace.Stream
	stop  *atomic.Bool
}

func (s stopStream) Next() (trace.Record, bool) {
	if s.stop.Load() {
		return trace.Record{}, false
	}
	return s.inner.Next()
}

// run executes one simulation, prints the human-readable summary, and
// writes the JSON report if requested.
func run(cfg runCfg) error {
	build := func() (cache.Cache, error) {
		return buildCache(cfg.kind, cfg.size, cfg.line, cfg.mf, cfg.bas, cfg.policy, cfg.entries)
	}

	stream, err := openStream(cfg.bench, cfg.tracePath, cfg.profile)
	if err != nil {
		return err
	}
	if cfg.stop != nil {
		stream = stopStream{inner: stream, stop: cfg.stop}
	}
	var cs *countStream
	if cfg.tel != nil {
		cs = &countStream{inner: stream, ctr: cfg.tel.records}
		stream = cs
	}

	if cfg.ipc {
		if cfg.faultRate > 0 {
			return fmt.Errorf("-fault-rate is supported in miss-rate mode only, not with -ipc")
		}
		return runIPC(cfg, build, stream, cs)
	}

	c, err := build()
	if err != nil {
		return err
	}
	var inj *fault.Injector
	if cfg.faultRate > 0 {
		prot, err := fault.ParseProtection(cfg.faultProtect)
		if err != nil {
			return err
		}
		inj, err = fault.Wrap(c, fault.Config{
			Rate:       cfg.faultRate,
			Protection: prot,
			Seed:       cfg.faultSeed,
			ScrubEvery: cfg.scrubEvery,
		})
		if err != nil {
			return err
		}
		c = inj // replay through the injector; summaries use inj.Unwrap()
	}
	var sampler *obs.IntervalSampler
	if cfg.reportPath != "" {
		sampler = obs.NewIntervalSampler(cfg.interval, c.Geometry().Frames)
		if !cache.AttachProbe(c, sampler) {
			return fmt.Errorf("cache type %q does not support -report time-series (no probe attach point)", cfg.kind)
		}
	}

	lineMask := ^uint64(uint64(cfg.line) - 1)
	var curLine uint64 = ^uint64(0)
	var count uint64
	start := time.Now()
	for count < cfg.n {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		count++
		switch cfg.side {
		case "d":
			if rec.Kind.IsMem() {
				c.Access(rec.Mem, rec.Kind == trace.Store)
			}
		case "i":
			if l := uint64(rec.PC) & lineMask; l != curLine {
				curLine = l
				c.Access(rec.PC, false)
			}
		default:
			return fmt.Errorf("bad -side %q (want d or i)", cfg.side)
		}
	}
	wall := time.Since(start)
	cfg.drained(cs)

	// Summaries and the report describe the underlying cache; the
	// injector is only the access path.
	base := c
	var ft *obs.FaultTotals
	if inj != nil {
		base = inj.Unwrap()
		invErr := inj.FinalScrub()
		counts := inj.Counts()
		scrub, passes := inj.ScrubTotals()
		prot, _ := fault.ParseProtection(cfg.faultProtect)
		ft = &obs.FaultTotals{
			Rate:         cfg.faultRate,
			Protection:   prot.String(),
			Seed:         cfg.faultSeed,
			Injected:     counts.Injected,
			Silent:       counts.Silent,
			Detected:     counts.Detected,
			Corrected:    counts.Corrected,
			ScrubPasses:  passes,
			ScrubRepairs: uint64(scrub.Repaired),
			Degraded:     inj.Degraded(),
		}
		inv := "ok"
		if invErr != nil {
			ft.Invariant = invErr.Error()
			if inj.Degraded() {
				inv = "degraded to direct-mapped"
			} else {
				inv = "VIOLATED: " + invErr.Error()
			}
		} else if inj.Degraded() {
			inv = "degraded to direct-mapped"
		}
		fmt.Printf("faults      : %d injected (%d silent, %d detected, %d corrected) at rate %g, protect=%s\n",
			counts.Injected, counts.Silent, counts.Detected, counts.Corrected, cfg.faultRate, ft.Protection)
		fmt.Printf("scrub       : %d passes, %d repairs, %d lines invalidated\n",
			passes, scrub.Repaired, scrub.LinesInvalidated)
		fmt.Printf("invariant   : %s\n", inv)
	}

	fmt.Printf("config      : %s (%s-side)\n", c.Name(), cfg.side)
	fmt.Printf("instructions: %d\n", count)
	fmt.Printf("stats       : %v\n", c.Stats())
	printPD(base, "PD")
	printThroughput(wall, c.Stats().Accesses, count)
	if cfg.interrupted() {
		fmt.Printf("interrupted : yes (partial results, %d of %d instructions)\n", count, cfg.n)
	}

	if cfg.reportPath != "" {
		r := obs.NewReport(base)
		r.Config.Benchmark = benchLabel(cfg)
		r.Config.Side = cfg.side
		r.Config.Interrupted = cfg.interrupted()
		r.Fault = ft
		r.AttachSampler(sampler)
		r.SetThroughput(wall, count)
		if err := r.WriteFile(cfg.reportPath); err != nil {
			return err
		}
		fmt.Printf("report      : %s (%d samples, %d series)\n",
			cfg.reportPath, len(r.Samples), len(r.Series))
	}
	return nil
}

// runIPC drives the full CPU model over the two-level hierarchy.
func runIPC(cfg runCfg, build func() (cache.Cache, error), stream trace.Stream, cs *countStream) error {
	ic, err := build()
	if err != nil {
		return err
	}
	dc, err := build()
	if err != nil {
		return err
	}
	h, err := hier.New(ic, dc, hier.Defaults())
	if err != nil {
		return err
	}
	var sampler *obs.IntervalSampler
	if cfg.reportPath != "" {
		// The report follows the data side: attach the sampler to the D$
		// and let the hierarchy add its writeback events.
		sampler = obs.NewIntervalSampler(cfg.interval, dc.Geometry().Frames)
		if !cache.AttachProbe(dc, sampler) {
			return fmt.Errorf("cache type %q does not support -report time-series (no probe attach point)", cfg.kind)
		}
		h.SetProbe(sampler)
	}
	start := time.Now()
	res, err := cpu.Run(stream, h, cpu.Defaults(), cfg.n)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	cfg.drained(cs)
	fmt.Printf("config      : %s (both L1s)\n", ic.Name())
	fmt.Printf("instructions: %d\n", res.Instructions)
	fmt.Printf("cycles      : %d\n", res.Cycles)
	fmt.Printf("IPC         : %.4f\n", res.IPC())
	fmt.Printf("I$          : %v\n", ic.Stats())
	fmt.Printf("D$          : %v\n", dc.Stats())
	fmt.Printf("L2          : %v\n", h.L2.Stats())
	fmt.Printf("memory      : %d reads, %d writes\n", h.MemAccesses, h.MemWrites)
	printPD(ic, "I$")
	printPD(dc, "D$")
	printThroughput(wall, ic.Stats().Accesses+dc.Stats().Accesses, res.Instructions)
	if cfg.interrupted() {
		fmt.Printf("interrupted : yes (partial results, %d of %d instructions)\n", res.Instructions, cfg.n)
	}

	if cfg.reportPath != "" {
		r := obs.NewReport(dc)
		r.Config.Benchmark = benchLabel(cfg)
		r.Config.Side = "d"
		r.Config.Interrupted = cfg.interrupted()
		r.AttachSampler(sampler)
		r.SetThroughput(wall, res.Instructions)
		if err := r.WriteFile(cfg.reportPath); err != nil {
			return err
		}
		fmt.Printf("report      : %s (%d samples, %d series)\n",
			cfg.reportPath, len(r.Samples), len(r.Series))
	}
	return nil
}

// benchLabel names the input stream for the report.
func benchLabel(cfg runCfg) string {
	switch {
	case cfg.tracePath != "":
		return "trace:" + cfg.tracePath
	case cfg.profile != "":
		return "profile:" + cfg.profile
	}
	return cfg.bench
}

// printThroughput reports simulator speed (wall clock, not modelled
// hardware time).
func printThroughput(wall time.Duration, accesses, instructions uint64) {
	sec := wall.Seconds()
	if sec <= 0 {
		return
	}
	fmt.Printf("wall        : %v (%.2fM accesses/s, %.2fM instr/s)\n",
		wall.Round(time.Millisecond),
		float64(accesses)/sec/1e6, float64(instructions)/sec/1e6)
}

func printPD(c cache.Cache, label string) {
	if bc, ok := c.(*core.BCache); ok {
		fmt.Printf("%-12s: decode %s\n", label, bc.Describe())
		pd := bc.PDStats()
		fmt.Printf("%-12s: PD hits on miss %d, PD misses %d (hit rate during miss %.1f%%), reprogrammed %d\n",
			label, pd.MissPDHit, pd.MissPDMiss, 100*pd.HitRateDuringMiss(), pd.Programmed)
	}
	if vc, ok := c.(*victim.Cache); ok {
		fmt.Printf("%-12s: victim buffer hits %d\n", label, vc.BufferHits)
	}
}

func openStream(bench, path, profilePath string) (trace.Stream, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(path, ".din") {
			return trace.NewDineroReader(f), nil
		}
		return trace.OpenAny(f)
	}
	if profilePath != "" {
		f, err := os.Open(profilePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err := workload.ParseJSON(f)
		if err != nil {
			return nil, err
		}
		return workload.New(p)
	}
	if rest, ok := strings.CutPrefix(bench, "micro-"); ok {
		p, err := workload.Micro(rest)
		if err != nil {
			return nil, err
		}
		return workload.New(p)
	}
	p, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	return workload.New(p)
}

func buildCache(kind string, size, line, mf, bas int, policy string, entries int) (cache.Cache, error) {
	pol := cache.LRU
	switch strings.ToLower(policy) {
	case "lru":
	case "random":
		pol = cache.Random
	default:
		return nil, fmt.Errorf("bad -policy %q", policy)
	}
	switch strings.ToLower(kind) {
	case "dm":
		return cache.NewDirectMapped(size, line)
	case "bcache":
		return core.New(core.Config{SizeBytes: size, LineBytes: line, MF: mf, BAS: bas, Policy: pol})
	case "victim":
		return victim.New(size, line, entries)
	case "column":
		return altcache.NewColumn(size, line)
	case "skewed":
		return altcache.NewSkewed(size, line, rng.New(1))
	case "hac":
		return altcache.NewHAC(size, line)
	case "agac":
		return altcache.NewAGAC(size, line, 32, 4096)
	case "psa":
		return altcache.NewPSA(size, line, 10)
	case "pam":
		return altcache.NewPAM(size, line, 4, 5)
	case "wayhalt":
		return altcache.NewWayHalt(size, line, 4, 4)
	}
	if ways, ok := strings.CutSuffix(strings.ToLower(kind), "way"); ok {
		w, err := strconv.Atoi(ways)
		if err == nil {
			return cache.NewSetAssoc(size, line, w, cache.LRU, rng.New(1))
		}
	}
	return nil, fmt.Errorf("unknown cache type %q", kind)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bcachesim:", err)
	os.Exit(1)
}
