// Command bcachesim runs one benchmark against one level-one cache
// configuration and reports miss rates, PD statistics, and (with -ipc)
// whole-processor IPC and hierarchy traffic.
//
// Examples:
//
//	bcachesim -bench equake -cache bcache -mf 8 -bas 8
//	bcachesim -bench gcc -cache 4way -side i
//	bcachesim -bench mcf -cache victim -entries 16 -ipc
//	bcachesim -trace run.bct -cache bcache
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bcache/internal/altcache"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/cpu"
	"bcache/internal/hier"
	"bcache/internal/rng"
	"bcache/internal/trace"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "equake", "benchmark profile name (see -list)")
		tracePath = flag.String("trace", "", "replay a trace file (.bct v1/v2 or Dinero .din) instead of a benchmark")
		profile   = flag.String("profile", "", "load a custom workload profile from a JSON file")
		list      = flag.Bool("list", false, "list benchmark names and exit")
		kind      = flag.String("cache", "bcache", "cache type: dm | Nway | bcache | victim | column | skewed | hac | agac | psa | pam | wayhalt")
		size      = flag.Int("size", 16*1024, "L1 cache size in bytes")
		line      = flag.Int("line", 32, "line size in bytes")
		mf        = flag.Int("mf", 8, "B-Cache mapping factor")
		bas       = flag.Int("bas", 8, "B-Cache associativity")
		policy    = flag.String("policy", "lru", "B-Cache replacement policy: lru | random")
		entries   = flag.Int("entries", 16, "victim buffer entries")
		n         = flag.Uint64("n", 2_000_000, "instructions to simulate")
		side      = flag.String("side", "d", "cache side for miss-rate mode: d | i")
		ipc       = flag.Bool("ipc", false, "run the full CPU model (both L1s of the chosen type)")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-14s %s\n", p.Name, p.Suite)
		}
		for _, m := range workload.Micros() {
			fmt.Printf("%-14s micro-benchmark\n", "micro-"+m)
		}
		return
	}

	build := func() (cache.Cache, error) {
		return buildCache(*kind, *size, *line, *mf, *bas, *policy, *entries)
	}

	stream, err := openStream(*benchName, *tracePath, *profile)
	if err != nil {
		fail(err)
	}

	if *ipc {
		ic, err := build()
		if err != nil {
			fail(err)
		}
		dc, err := build()
		if err != nil {
			fail(err)
		}
		h, err := hier.New(ic, dc, hier.Defaults())
		if err != nil {
			fail(err)
		}
		res, err := cpu.Run(stream, h, cpu.Defaults(), *n)
		if err != nil {
			fail(err)
		}
		fmt.Printf("config      : %s (both L1s)\n", ic.Name())
		fmt.Printf("instructions: %d\n", res.Instructions)
		fmt.Printf("cycles      : %d\n", res.Cycles)
		fmt.Printf("IPC         : %.4f\n", res.IPC())
		fmt.Printf("I$          : %v\n", ic.Stats())
		fmt.Printf("D$          : %v\n", dc.Stats())
		fmt.Printf("L2          : %v\n", h.L2.Stats())
		fmt.Printf("memory      : %d reads, %d writes\n", h.MemAccesses, h.MemWrites)
		printPD(ic, "I$")
		printPD(dc, "D$")
		return
	}

	c, err := build()
	if err != nil {
		fail(err)
	}
	lineMask := ^uint64(uint64(*line) - 1)
	var curLine uint64 = ^uint64(0)
	var count uint64
	for count < *n {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		count++
		switch *side {
		case "d":
			if rec.Kind.IsMem() {
				c.Access(rec.Mem, rec.Kind == trace.Store)
			}
		case "i":
			if l := uint64(rec.PC) & lineMask; l != curLine {
				curLine = l
				c.Access(rec.PC, false)
			}
		default:
			fail(fmt.Errorf("bad -side %q (want d or i)", *side))
		}
	}
	fmt.Printf("config      : %s (%s-side)\n", c.Name(), *side)
	fmt.Printf("instructions: %d\n", count)
	fmt.Printf("stats       : %v\n", c.Stats())
	printPD(c, "PD")
}

func printPD(c cache.Cache, label string) {
	if bc, ok := c.(*core.BCache); ok {
		fmt.Printf("%-12s: decode %s\n", label, bc.Describe())
		pd := bc.PDStats()
		fmt.Printf("%-12s: PD hits on miss %d, PD misses %d (hit rate during miss %.1f%%), reprogrammed %d\n",
			label, pd.MissPDHit, pd.MissPDMiss, 100*pd.HitRateDuringMiss(), pd.Programmed)
	}
	if vc, ok := c.(*victim.Cache); ok {
		fmt.Printf("%-12s: victim buffer hits %d\n", label, vc.BufferHits)
	}
}

func openStream(bench, path, profilePath string) (trace.Stream, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(path, ".din") {
			return trace.NewDineroReader(f), nil
		}
		return trace.OpenAny(f)
	}
	if profilePath != "" {
		f, err := os.Open(profilePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err := workload.ParseJSON(f)
		if err != nil {
			return nil, err
		}
		return workload.New(p)
	}
	if rest, ok := strings.CutPrefix(bench, "micro-"); ok {
		p, err := workload.Micro(rest)
		if err != nil {
			return nil, err
		}
		return workload.New(p)
	}
	p, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	return workload.New(p)
}

func buildCache(kind string, size, line, mf, bas int, policy string, entries int) (cache.Cache, error) {
	pol := cache.LRU
	switch strings.ToLower(policy) {
	case "lru":
	case "random":
		pol = cache.Random
	default:
		return nil, fmt.Errorf("bad -policy %q", policy)
	}
	switch strings.ToLower(kind) {
	case "dm":
		return cache.NewDirectMapped(size, line)
	case "bcache":
		return core.New(core.Config{SizeBytes: size, LineBytes: line, MF: mf, BAS: bas, Policy: pol})
	case "victim":
		return victim.New(size, line, entries)
	case "column":
		return altcache.NewColumn(size, line)
	case "skewed":
		return altcache.NewSkewed(size, line, rng.New(1))
	case "hac":
		return altcache.NewHAC(size, line)
	case "agac":
		return altcache.NewAGAC(size, line, 32, 4096)
	case "psa":
		return altcache.NewPSA(size, line, 10)
	case "pam":
		return altcache.NewPAM(size, line, 4, 5)
	case "wayhalt":
		return altcache.NewWayHalt(size, line, 4, 4)
	}
	if ways, ok := strings.CutSuffix(strings.ToLower(kind), "way"); ok {
		w, err := strconv.Atoi(ways)
		if err == nil {
			return cache.NewSetAssoc(size, line, w, cache.LRU, rng.New(1))
		}
	}
	return nil, fmt.Errorf("unknown cache type %q", kind)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bcachesim:", err)
	os.Exit(1)
}
