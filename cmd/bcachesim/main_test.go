package main

import (
	"os"
	"path/filepath"
	"testing"

	"bcache/internal/obs"
	"bcache/internal/trace"
)

func TestBuildCacheKinds(t *testing.T) {
	kinds := []string{
		"dm", "2way", "4way", "8way", "32way", "bcache", "victim",
		"column", "skewed", "hac", "agac", "psa", "pam", "wayhalt",
	}
	for _, k := range kinds {
		c, err := buildCache(k, 16*1024, 32, 8, 8, "lru", 16)
		if err != nil {
			t.Errorf("buildCache(%q): %v", k, err)
			continue
		}
		if c.Name() == "" {
			t.Errorf("buildCache(%q): empty name", k)
		}
		// Every built cache must be usable immediately.
		c.Access(0x1234, false)
		if !c.Access(0x1234, false).Hit {
			t.Errorf("buildCache(%q): refill did not stick", k)
		}
	}
}

func TestBuildCacheErrors(t *testing.T) {
	if _, err := buildCache("nosuch", 16*1024, 32, 8, 8, "lru", 16); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := buildCache("bcache", 16*1024, 32, 8, 8, "mru", 16); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := buildCache("3way", 16*1024, 32, 8, 8, "lru", 16); err == nil {
		t.Error("non-power-of-two ways accepted")
	}
}

func TestBuildCacheRandomPolicy(t *testing.T) {
	if _, err := buildCache("bcache", 16*1024, 32, 8, 8, "random", 16); err != nil {
		t.Fatal(err)
	}
}

func TestOpenStreamBenchmark(t *testing.T) {
	st, err := openStream("gcc", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("benchmark stream empty")
	}
	if _, err := openStream("nosuch", "", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestOpenStreamTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(trace.Record{PC: 4, Kind: trace.Int, Lat: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := openStream("ignored", path, "")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := st.Next()
	if !ok || rec.PC != 4 {
		t.Fatalf("trace replay = %+v, %v", rec, ok)
	}
	if _, err := openStream("ignored", filepath.Join(t.TempDir(), "missing.bct"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestOpenStreamJSONProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	def := `{"name":"custom",
	  "code":{"footprint":8192,"segments":8,"segLen":6,"hotFrac":0.9,"hotSegs":4},
	  "mix":{"mem":0.3},
	  "regions":[{"kind":"hotspot","hot":64,"weight":1}]}`
	if err := os.WriteFile(path, []byte(def), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := openStream("", "", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("custom profile stream empty")
	}
	if _, err := openStream("", "", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestRunWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	cfg := runCfg{
		bench: "equake", kind: "bcache", size: 16 * 1024, line: 32,
		mf: 8, bas: 8, policy: "lru", entries: 16,
		n: 400_000, side: "d", reportPath: path, interval: 4096,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	r, err := obs.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.Benchmark != "equake" || r.Config.Side != "d" {
		t.Fatalf("report config = %+v", r.Config)
	}
	if len(r.Series) < 2 {
		t.Fatalf("report has %d series, want >= 2", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) < 10 {
			t.Fatalf("series %q has %d points, want >= 10", s.Name, len(s.Points))
		}
	}
	if len(r.Samples) < 10 {
		t.Fatalf("report has %d samples, want >= 10", len(r.Samples))
	}
	if r.PD == nil {
		t.Fatal("B-Cache report missing PD totals")
	}
	if r.Throughput == nil || r.Throughput.AccessesPerSecond <= 0 {
		t.Fatalf("report throughput = %+v", r.Throughput)
	}
}

func TestRunReportUnsupportedCache(t *testing.T) {
	cfg := runCfg{
		bench: "gcc", kind: "column", size: 16 * 1024, line: 32,
		mf: 8, bas: 8, policy: "lru", entries: 16,
		n: 1000, side: "d", reportPath: filepath.Join(t.TempDir(), "r.json"),
		interval: 4096,
	}
	if err := run(cfg); err == nil {
		t.Fatal("cache without a probe attach point accepted -report")
	}
}

func TestOpenStreamMicro(t *testing.T) {
	st, err := openStream("micro-thrash4", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("micro stream empty")
	}
	if _, err := openStream("micro-nosuch", "", ""); err == nil {
		t.Fatal("unknown micro accepted")
	}
}
