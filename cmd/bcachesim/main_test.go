package main

import (
	"os"
	"path/filepath"
	"testing"

	"bcache/internal/trace"
)

func TestBuildCacheKinds(t *testing.T) {
	kinds := []string{
		"dm", "2way", "4way", "8way", "32way", "bcache", "victim",
		"column", "skewed", "hac", "agac", "psa", "pam", "wayhalt",
	}
	for _, k := range kinds {
		c, err := buildCache(k, 16*1024, 32, 8, 8, "lru", 16)
		if err != nil {
			t.Errorf("buildCache(%q): %v", k, err)
			continue
		}
		if c.Name() == "" {
			t.Errorf("buildCache(%q): empty name", k)
		}
		// Every built cache must be usable immediately.
		c.Access(0x1234, false)
		if !c.Access(0x1234, false).Hit {
			t.Errorf("buildCache(%q): refill did not stick", k)
		}
	}
}

func TestBuildCacheErrors(t *testing.T) {
	if _, err := buildCache("nosuch", 16*1024, 32, 8, 8, "lru", 16); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := buildCache("bcache", 16*1024, 32, 8, 8, "mru", 16); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := buildCache("3way", 16*1024, 32, 8, 8, "lru", 16); err == nil {
		t.Error("non-power-of-two ways accepted")
	}
}

func TestBuildCacheRandomPolicy(t *testing.T) {
	if _, err := buildCache("bcache", 16*1024, 32, 8, 8, "random", 16); err != nil {
		t.Fatal(err)
	}
}

func TestOpenStreamBenchmark(t *testing.T) {
	st, err := openStream("gcc", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("benchmark stream empty")
	}
	if _, err := openStream("nosuch", "", ""); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestOpenStreamTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(trace.Record{PC: 4, Kind: trace.Int, Lat: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := openStream("ignored", path, "")
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := st.Next()
	if !ok || rec.PC != 4 {
		t.Fatalf("trace replay = %+v, %v", rec, ok)
	}
	if _, err := openStream("ignored", filepath.Join(t.TempDir(), "missing.bct"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestOpenStreamJSONProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	def := `{"name":"custom",
	  "code":{"footprint":8192,"segments":8,"segLen":6,"hotFrac":0.9,"hotSegs":4},
	  "mix":{"mem":0.3},
	  "regions":[{"kind":"hotspot","hot":64,"weight":1}]}`
	if err := os.WriteFile(path, []byte(def), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := openStream("", "", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("custom profile stream empty")
	}
	if _, err := openStream("", "", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestOpenStreamMicro(t *testing.T) {
	st, err := openStream("micro-thrash4", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("micro stream empty")
	}
	if _, err := openStream("micro-nosuch", "", ""); err == nil {
		t.Fatal("unknown micro accepted")
	}
}
