// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id[,id...]] [-n instructions] [-size bytes] [-workers n]
//
// Without -run, every registered experiment executes in order. Use
// -list to see the available IDs. -format json emits one
// schema-versioned document holding every table plus per-experiment
// wall-clock times (see experiment.Document); -cpuprofile and
// -memprofile write pprof profiles of the run.
//
// Long campaigns are crash-safe: -checkpoint records every completed
// work unit atomically, -resume restores them bit-identically, and the
// first SIGINT/SIGTERM drains in-flight units, renders partial tables,
// saves the checkpoint, and exits 130 (a second signal aborts).
// -unit-timeout and -unit-retries bound individual work units.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"bcache/internal/dist/distrun"
	"bcache/internal/experiment"
	"bcache/internal/obs/metrics"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		n       = flag.Uint64("n", 0, "instructions per run (default: experiment default)")
		size    = flag.Int("size", 0, "L1 size in bytes (default 16384; fig12 manages its own sizes)")
		workers = flag.Int("workers", 0, "parallel benchmark runs (default GOMAXPROCS)")
		format  = flag.String("format", "text", "output format: text | csv | json")
		outPath = flag.String("o", "", "write output to this file instead of stdout")
		verify  = flag.Bool("verify", false, "run the reproduction checklist instead of experiments")
		seeds   = flag.Int("seeds", 0, "replicate miss-rate runs over N workload seeds and average")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")

		traceCacheBytes = flag.Int64("trace-cache-bytes", 0, "resident byte budget for the shared trace cache; colder streams spill to disk (0 = default, negative = no caching)")
		setWorkers      = flag.Int("set-workers", 0, "shard each cache replay by set index across this many goroutines (0 = sequential)")

		ckptPath    = flag.String("checkpoint", "", "record completed work units to this JSON file (atomic rewrite)")
		resume      = flag.Bool("resume", false, "load -checkpoint first and skip units already recorded (bit-identical)")
		unitTimeout = flag.Duration("unit-timeout", 0, "abandon a single work unit running longer than this (0 = no deadline)")
		unitRetries = flag.Int("unit-retries", 0, "retries for timed-out or transient work units")

		workersProcs   = flag.Int("workers-procs", 0, "distribute plannable work units across this many worker subprocesses")
		workerMode     = flag.Bool("worker", false, "run as a distribution worker speaking the lease protocol on stdin/stdout (spawned by -workers-procs)")
		distDir        = flag.String("dist-dir", "", "directory for worker checkpoint shards (default: a temp dir)")
		leaseTTL       = flag.Duration("lease-ttl", 0, "re-lease a worker's units after this long without a heartbeat (default 30s)")
		workerRestarts = flag.Int("worker-restarts", 1, "times a dead worker subprocess is respawned (0 disables restarts)")
		resumeShards   = flag.Bool("resume-shards", false, "merge shards already in -dist-dir into the checkpoint first (recovers a crashed coordinator)")

		telemetry   = flag.String("telemetry", "", "serve live telemetry (/metrics, /progress, /debug/pprof) on this host:port (:0 picks a port)")
		linger      = flag.Duration("telemetry-linger", 0, "keep the telemetry server up this long after the run (scrapers; SIGINT ends it early)")
		traceOut    = flag.String("trace-out", "", "write the scheduler span journal as JSONL to this file")
		traceChrome = flag.String("trace-chrome", "", "write the span journal as a Chrome trace-event file (chrome://tracing, Perfetto)")
	)
	flag.Parse()

	// Worker mode: the whole process is one protocol session on
	// stdin/stdout, spawned and supervised by a -workers-procs
	// coordinator. SIGINT (forwarded to the worker's process group by
	// the coordinator, or sent directly) drains the current unit and
	// exits 130 — the same convention as an interrupted normal run.
	if *workerMode {
		stop := make(chan struct{})
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			close(stop)
			<-sigc
			os.Exit(130)
		}()
		code := distrun.WorkerMain(os.Stdin, os.Stdout, stop, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		experiment.CleanupTraceSpill()
		os.Exit(code)
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	opts := experiment.DefaultOpts()
	if *n > 0 {
		opts.Instructions = *n
	}
	if *size > 0 {
		opts.L1Size = *size
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}
	opts.UnitTimeout = *unitTimeout
	opts.UnitRetries = *unitRetries
	opts.TraceBytes = *traceCacheBytes
	opts.SetWorkers = *setWorkers
	defer experiment.CleanupTraceSpill()

	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		os.Exit(2)
	}
	var ckpt *experiment.Checkpoint
	if *ckptPath != "" {
		var err error
		if *resume {
			ckpt, err = experiment.LoadCheckpoint(*ckptPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if w := ckpt.LoadWarning(); w != "" {
				fmt.Fprintf(os.Stderr, "warning: %s\n", w)
			}
			if n := ckpt.Len(); n > 0 {
				fmt.Fprintf(os.Stderr, "resuming: %d completed units restored from %s\n", n, *ckptPath)
			}
		} else {
			ckpt = experiment.NewCheckpoint(*ckptPath)
		}
		ckpt.SetAutosave(64)
		opts.Checkpoint = ckpt
	}

	// First SIGINT/SIGTERM stops claiming new work units; in-flight units
	// finish, partial tables render, the telemetry server drains, and the
	// checkpoint is saved. A second signal aborts immediately.
	stopc := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "\nexperiments: %v — finishing in-flight units and writing partial output (signal again to abort)\n", s)
		experiment.RequestStop()
		close(stopc)
		<-sigc
		fmt.Fprintln(os.Stderr, "experiments: second signal, aborting")
		os.Exit(130)
	}()

	// The telemetry hub is always installed: it is what times units for
	// the per-experiment digest. The HTTP server and journal exports are
	// opt-in; with them off nothing is served or written.
	tel := experiment.NewTelemetry(0, nil)
	experiment.SetTelemetry(tel)
	var telSrv *metrics.Server
	if *telemetry != "" {
		var err error
		telSrv, err = metrics.NewServer(*telemetry, tel.Registry(), func() any {
			return tel.ProgressSnapshot()
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s (/metrics /progress /debug/pprof)\n", telSrv.Addr())
	}
	// closeTelemetry drains and stops the server (idempotent) — before
	// the partial-JSON write on the interrupt path, so the exit-130
	// artifact never races a live scrape of half-written state.
	closeTelemetry := func() {
		if telSrv == nil {
			return
		}
		if err := telSrv.Close(2 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: shutdown: %v\n", err)
		}
		telSrv = nil
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *verify {
		_, failedChecks, err := experiment.Verify(opts, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failedChecks > 0 {
			os.Exit(1)
		}
		return
	}

	var exps []experiment.Experiment
	if *runIDs == "" {
		exps = experiment.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	// Distribution phase: farm every plannable work unit out to worker
	// subprocesses first, merging their results into the checkpoint.
	// The normal in-process loop below then finds each distributed unit
	// already checkpointed, so the rendered tables are bit-identical to
	// a single-process run; experiments without a Plan simply run
	// in-process as always.
	if *workersProcs > 0 {
		if ckpt == nil {
			ckpt = experiment.NewCheckpoint("")
			opts.Checkpoint = ckpt
		}
		shardDir := *distDir
		tempShards := false
		if shardDir == "" {
			if *resumeShards {
				fmt.Fprintln(os.Stderr, "-resume-shards requires -dist-dir")
				os.Exit(2)
			}
			var err error
			shardDir, err = os.MkdirTemp("", "bcache-shards-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tempShards = true
		}
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var ids []string
		if *runIDs != "" {
			for _, e := range exps {
				ids = append(ids, e.ID)
			}
		}
		stats, err := distrun.RunCampaign(opts, ids, distrun.Options{
			Workers: *workersProcs,
			Command: func(slot, attempt int) *exec.Cmd {
				cmd := exec.Command(self, "-worker")
				cmd.Stderr = os.Stderr
				return cmd
			},
			ShardDir:      shardDir,
			LeaseTTL:      *leaseTTL,
			RestartBudget: *workerRestarts,
			ResumeShards:  *resumeShards,
			Stop:          stopc,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if saveErr := ckpt.Save(); saveErr == nil && ckpt.Len() > 0 && *ckptPath != "" {
				fmt.Fprintf(os.Stderr, "checkpoint saved: %d units in %s (continue with -resume)\n", ckpt.Len(), *ckptPath)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dist: %d units — %d committed (%d shard-recovered, %d local), %d duplicates dropped; %d leases, %d expiries, %d restarts\n",
			stats.Units, stats.Committed, stats.ShardRecovered, stats.LocalUnits,
			stats.Duplicates, stats.Leases, stats.Expiries, stats.Restarts)
		if n := len(stats.FailedUnits); n > 0 {
			fmt.Fprintf(os.Stderr, "dist: %d units failed terminally; the in-process pass below re-attempts them\n", n)
		}
		if !stats.Interrupted {
			if tempShards {
				os.RemoveAll(shardDir)
			}
		} else if tempShards {
			fmt.Fprintf(os.Stderr, "dist: shards kept in %s (resume with -dist-dir %s -resume-shards)\n", shardDir, shardDir)
		} else {
			fmt.Fprintf(os.Stderr, "dist: shards kept in %s (continue with -resume-shards)\n", shardDir)
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	var results []experiment.Result
	var runErr error
	for _, e := range exps {
		tel.BeginExperiment(e.ID)
		start := time.Now()
		tables, err := e.Run(opts)
		elapsed := time.Since(start)
		timing := tel.EndExperiment(e.ID, start, elapsed)
		if err != nil {
			// A failed or interrupted experiment may still return partial
			// tables; render them before stopping.
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			runErr = err
		}
		switch *format {
		case "text":
			for _, t := range tables {
				fmt.Fprintln(out, t.Render())
			}
			if f := timing.Footer(); f != "" {
				fmt.Fprintf(out, "[%s %s]\n", e.ID, f)
			}
			if err == nil {
				fmt.Fprintf(out, "[%s completed in %v]\n\n", e.ID, elapsed.Round(time.Millisecond))
			} else {
				fmt.Fprintf(out, "[%s INCOMPLETE after %v]\n\n", e.ID, elapsed.Round(time.Millisecond))
			}
		case "csv":
			for _, t := range tables {
				if err := t.WriteCSV(out); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		case "json":
			r := experiment.Result{ID: e.ID, Title: e.Title, ElapsedSeconds: elapsed.Seconds(), UnitTiming: timing}
			for _, t := range tables {
				r.Tables = append(r.Tables, t.JSON())
			}
			results = append(results, r)
		}
		if err != nil {
			break
		}
	}

	// Hold the server up for scrapers on fast runs, then drain it before
	// any artifact is written; SIGINT cuts the linger short.
	if telSrv != nil && *linger > 0 && !experiment.Stopped() {
		select {
		case <-time.After(*linger):
		case <-stopc:
		}
	}
	closeTelemetry()

	if *traceOut != "" {
		if err := tel.Journal().WriteJSONLFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Fprintf(os.Stderr, "trace-out: %d spans to %s\n", tel.Journal().Len(), *traceOut)
		}
	}
	if *traceChrome != "" {
		if err := tel.Journal().WriteChromeTraceFile(*traceChrome); err != nil {
			fmt.Fprintf(os.Stderr, "trace-chrome: %v\n", err)
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Fprintf(os.Stderr, "trace-chrome: %d spans to %s\n", tel.Journal().Len(), *traceChrome)
		}
	}

	if *format == "json" {
		if err := experiment.NewDocument(results).Write(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if ckpt != nil {
		if err := ckpt.Save(); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint save: %v\n", err)
			if runErr == nil {
				runErr = err
			}
		} else if runErr != nil {
			fmt.Fprintf(os.Stderr, "checkpoint saved: %d units in %s (continue with -resume)\n",
				ckpt.Len(), *ckptPath)
		}
	}
	if runErr != nil {
		if errors.Is(runErr, experiment.ErrInterrupted) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}
