// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id[,id...]] [-n instructions] [-size bytes] [-workers n]
//
// Without -run, every registered experiment executes in order. Use
// -list to see the available IDs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bcache/internal/experiment"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		n       = flag.Uint64("n", 0, "instructions per run (default: experiment default)")
		size    = flag.Int("size", 0, "L1 size in bytes (default 16384; fig12 manages its own sizes)")
		workers = flag.Int("workers", 0, "parallel benchmark runs (default GOMAXPROCS)")
		format  = flag.String("format", "text", "output format: text | csv")
		outPath = flag.String("o", "", "write output to this file instead of stdout")
		verify  = flag.Bool("verify", false, "run the reproduction checklist instead of experiments")
		seeds   = flag.Int("seeds", 0, "replicate miss-rate runs over N workload seeds and average")
	)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiment.DefaultOpts()
	if *n > 0 {
		opts.Instructions = *n
	}
	if *size > 0 {
		opts.L1Size = *size
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}

	if *verify {
		_, failedChecks, err := experiment.Verify(opts, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failedChecks > 0 {
			os.Exit(1)
		}
		return
	}

	var exps []experiment.Experiment
	if *runIDs == "" {
		exps = experiment.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			switch *format {
			case "text":
				fmt.Fprintln(out, t.Render())
			case "csv":
				if err := t.WriteCSV(out); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			default:
				fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
				os.Exit(2)
			}
		}
		if *format == "text" {
			fmt.Fprintf(out, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
