// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run id[,id...]] [-n instructions] [-size bytes] [-workers n]
//
// Without -run, every registered experiment executes in order. Use
// -list to see the available IDs. -format json emits one
// schema-versioned document holding every table plus per-experiment
// wall-clock times (see experiment.Document); -cpuprofile and
// -memprofile write pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bcache/internal/experiment"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		n       = flag.Uint64("n", 0, "instructions per run (default: experiment default)")
		size    = flag.Int("size", 0, "L1 size in bytes (default 16384; fig12 manages its own sizes)")
		workers = flag.Int("workers", 0, "parallel benchmark runs (default GOMAXPROCS)")
		format  = flag.String("format", "text", "output format: text | csv | json")
		outPath = flag.String("o", "", "write output to this file instead of stdout")
		verify  = flag.Bool("verify", false, "run the reproduction checklist instead of experiments")
		seeds   = flag.Int("seeds", 0, "replicate miss-rate runs over N workload seeds and average")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	opts := experiment.DefaultOpts()
	if *n > 0 {
		opts.Instructions = *n
	}
	if *size > 0 {
		opts.L1Size = *size
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	if *seeds > 0 {
		opts.Seeds = *seeds
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *verify {
		_, failedChecks, err := experiment.Verify(opts, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if failedChecks > 0 {
			os.Exit(1)
		}
		return
	}

	var exps []experiment.Experiment
	if *runIDs == "" {
		exps = experiment.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	var results []experiment.Result
	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		switch *format {
		case "text":
			for _, t := range tables {
				fmt.Fprintln(out, t.Render())
			}
			fmt.Fprintf(out, "[%s completed in %v]\n\n", e.ID, elapsed.Round(time.Millisecond))
		case "csv":
			for _, t := range tables {
				if err := t.WriteCSV(out); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		case "json":
			r := experiment.Result{ID: e.ID, Title: e.Title, ElapsedSeconds: elapsed.Seconds()}
			for _, t := range tables {
				r.Tables = append(r.Tables, t.JSON())
			}
			results = append(results, r)
		}
	}

	if *format == "json" {
		if err := experiment.NewDocument(results).Write(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
