// Command perfbench regenerates BENCH_perf.json: the simulation-engine
// performance baseline tracked across PRs. It measures two things:
//
//  1. Kernel throughput (accesses/sec) for the main simulation kernels —
//     the direct-mapped baseline, 8-way set-associative, the 512-way
//     fully-associative cache on its O(1) hash-indexed lookup
//     (`fa-hash`), the hash-indexed wide-set FIFO and Random replays
//     (`512way-full-fast`, `random-batch`), the one-pass multi-geometry
//     stack-distance profiler (`stackdist`, five LRU shapes per access)
//     and its FIFO queue-distance twin (`fifo-queue`), the B-Cache at
//     MF=8/BAS=8 on its SWAR path, and the scalar reference
//     implementation the SWAR kernel is differentially tested against.
//     The retired linear-scan engines survive as differential oracles
//     (see the bcachelint oraclepair manifest), not as tracked rows.
//  2. Wall-clock for the full registered experiment suite — what
//     `cmd/experiments` runs — plus the shared trace cache's hit/miss
//     counters, resident peak, and spill-tier size for that pass.
//
// With -compare it instead replays only the kernels and checks them
// against a committed baseline, exiting non-zero if any kernel's
// accesses/sec regressed more than 15% — the `make bench-compare` gate.
//
// Usage:
//
//	perfbench [-n instructions] [-kernel-accesses n] [-o BENCH_perf.json]
//	perfbench -compare BENCH_perf.json [-kernel-accesses n]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/experiment"
	"bcache/internal/rng"
	"bcache/internal/stackdist"
)

const (
	sizeBytes = 16 * 1024
	lineBytes = 32
	// schemaVersion identifies the BENCH_perf.json document layout.
	schemaVersion = 1
	// regressLimit is the tolerated fractional accesses/sec loss per
	// kernel in -compare mode.
	regressLimit = 0.15
	// memBudgetBytes is the resident trace-cache budget the full suite
	// must stay under — the `make mem-ceiling` gate. It matches the
	// default cache budget plus headroom for one in-flight record trace
	// (see internal/experiment defaultTraceBytes).
	memBudgetBytes = 256 << 20
)

// KernelResult is one kernel's raw replay throughput.
type KernelResult struct {
	Config      string  `json:"config"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accessesPerSec"`
}

// SuiteResult is one full-suite pass.
type SuiteResult struct {
	Instructions uint64  `json:"instructions"`
	Experiments  int     `json:"experiments"`
	Rows         int     `json:"rows"`
	Seconds      float64 `json:"wallClockSeconds"`
	TraceHits    uint64  `json:"traceCacheHits"`
	TraceMisses  uint64  `json:"traceCacheMisses"`
	// TraceBytes is the resident high-water mark of the in-memory trace
	// cache across the pass — the number the 256 MB memory ceiling
	// (`make mem-ceiling`) gates on.
	TraceBytes int64 `json:"traceCacheBytes"`
	// TraceSpillBytes is what the spill tier held on disk when the pass
	// finished.
	TraceSpillBytes int64 `json:"traceCacheSpillBytes"`
}

// Baseline is the BENCH_perf.json document.
type Baseline struct {
	SchemaVersion int            `json:"schemaVersion"`
	Kernels       []KernelResult `json:"kernels"`
	Suite         SuiteResult    `json:"suite"`
}

// cacheKernel adapts a cache model to the access-closure interface.
func cacheKernel(build func() (cache.Cache, error)) func() (func(addr.Addr), error) {
	return func() (func(addr.Addr), error) {
		c, err := build()
		if err != nil {
			return nil, err
		}
		return func(a addr.Addr) { c.Access(a, false) }, nil
	}
}

// stackdistKernel profiles the five 16kB LRU geometries a figure-spec
// scheduling unit answers in one pass (ways 1/2/4/8/32).
func stackdistKernel() (func(addr.Addr), error) {
	frames := sizeBytes / lineBytes
	var geoms []stackdist.Geom
	for _, w := range []int{1, 2, 4, 8, 32} {
		geoms = append(geoms, stackdist.Geom{Sets: frames / w, Ways: w})
	}
	p, err := stackdist.NewProfile(lineBytes, geoms)
	if err != nil {
		return nil, err
	}
	return p.Access, nil
}

// fifoQueueKernel profiles the same five geometries under FIFO
// replacement in one queue-distance pass.
func fifoQueueKernel() (func(addr.Addr), error) {
	frames := sizeBytes / lineBytes
	var geoms []stackdist.Geom
	for _, w := range []int{1, 2, 4, 8, 32} {
		geoms = append(geoms, stackdist.Geom{Sets: frames / w, Ways: w})
	}
	p, err := stackdist.NewFIFOProfile(lineBytes, geoms)
	if err != nil {
		return nil, err
	}
	return p.Access, nil
}

var configs = []struct {
	label string
	build func() (func(addr.Addr), error)
}{
	{"dm", cacheKernel(func() (cache.Cache, error) { return cache.NewDirectMapped(sizeBytes, lineBytes) })},
	{"8way", cacheKernel(func() (cache.Cache, error) {
		return cache.NewSetAssoc(sizeBytes, lineBytes, 8, cache.LRU, rng.New(1))
	})},
	// The fully-associative cache on the O(1) hash-indexed lookup (the
	// default build). The historical `512way-full` linear-scan row is
	// retired from the baseline — at ~574 k accesses/s it sits far below
	// the 5 M/s floor by design; the scan engine survives as the
	// differential oracle behind `NewSetAssocScan` (oraclepair
	// fa-hash-vs-scan), not as a tracked kernel.
	{"fa-hash", cacheKernel(func() (cache.Cache, error) {
		return cache.NewFullyAssoc(sizeBytes, lineBytes, cache.LRU, rng.New(1))
	})},
	// 512-way FIFO on the hash-indexed wide-set fast path — the engine
	// that replaced the scan for non-LRU high-associativity replays.
	{"512way-full-fast", cacheKernel(func() (cache.Cache, error) {
		return cache.NewSetAssoc(sizeBytes, lineBytes, sizeBytes/lineBytes, cache.FIFO, rng.New(1))
	})},
	// 512-way Random on the same indexed path: victim choice is a single
	// draw, hit lookup is the hash index.
	{"random-batch", cacheKernel(func() (cache.Cache, error) {
		return cache.NewSetAssoc(sizeBytes, lineBytes, sizeBytes/lineBytes, cache.Random, rng.New(1))
	})},
	{"stackdist", stackdistKernel},
	{"fifo-queue", fifoQueueKernel},
	{"bcache-mf8-bas8", cacheKernel(func() (cache.Cache, error) {
		return core.New(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	})},
	{"bcache-mf8-bas8-ref", cacheKernel(func() (cache.Cache, error) {
		return core.NewReference(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	})},
}

func main() {
	var (
		n       = flag.Uint64("n", 2_000_000, "instructions per experiment in the suite pass")
		kn      = flag.Uint64("kernel-accesses", 50_000_000, "accesses per kernel throughput run")
		outPath = flag.String("o", "BENCH_perf.json", "output file")
		cmpPath = flag.String("compare", "", "compare kernel throughput against this baseline instead of writing one")
		memPath = flag.String("mem-ceiling", "", "check the suite's resident trace-cache peak recorded in this baseline against the memory budget; runs nothing")
	)
	flag.Parse()

	if *memPath != "" {
		if err := checkMemCeiling(*memPath); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		return
	}

	doc := Baseline{SchemaVersion: schemaVersion}
	for _, cfg := range configs {
		r, err := kernelRun(cfg.label, cfg.build, *kn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %s: %v\n", cfg.label, err)
			os.Exit(1)
		}
		doc.Kernels = append(doc.Kernels, r)
		fmt.Printf("%-20s %12.0f accesses/s\n", cfg.label, r.AccessesSec)
	}

	if *cmpPath != "" {
		if err := compareKernels(*cmpPath, doc.Kernels); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		return
	}

	suite, err := suiteRun(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	doc.Suite = suite
	fmt.Printf("suite: %d experiments, %d rows in %.2fs (trace cache: %d hits / %d misses, peak %d MB resident, %d MB spilled)\n",
		suite.Experiments, suite.Rows, suite.Seconds, suite.TraceHits, suite.TraceMisses,
		suite.TraceBytes>>20, suite.TraceSpillBytes>>20)

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outPath)
}

// checkMemCeiling verifies that the committed baseline's suite pass kept
// the trace cache's resident high-water mark under memBudgetBytes. It
// reads the document only — the expensive suite pass already ran when
// the baseline was regenerated, and the recorded peak is deterministic
// for a given tree, so re-running it in CI would buy nothing.
func checkMemCeiling(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Suite.TraceBytes == 0 {
		return fmt.Errorf("%s: no suite pass recorded (suite.traceCacheBytes is 0); regenerate with `make bench-perf-json`", path)
	}
	if base.Suite.TraceBytes > memBudgetBytes {
		return fmt.Errorf("suite resident trace-cache peak %d MB exceeds the %d MB budget (%s); retune the eviction tiers or -trace-cache-bytes",
			base.Suite.TraceBytes>>20, int64(memBudgetBytes)>>20, path)
	}
	fmt.Printf("suite resident trace-cache peak %d MB within the %d MB budget (%s)\n",
		base.Suite.TraceBytes>>20, int64(memBudgetBytes)>>20, path)
	return nil
}

// compareKernels checks fresh kernel results against the committed
// baseline document: any kernel more than regressLimit slower fails.
// Kernels present on only one side (renamed, newly added) are reported
// but never fail the gate.
func compareKernels(path string, fresh []KernelResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byLabel := make(map[string]KernelResult, len(base.Kernels))
	for _, k := range base.Kernels {
		byLabel[k.Config] = k
	}
	regressed := 0
	for _, k := range fresh {
		b, ok := byLabel[k.Config]
		if !ok {
			fmt.Printf("%-20s %12.0f accesses/s  (no baseline)\n", k.Config, k.AccessesSec)
			continue
		}
		delta := k.AccessesSec/b.AccessesSec - 1
		verdict := "ok"
		if delta < -regressLimit {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-20s %12.0f vs %12.0f accesses/s  %+6.1f%%  %s\n",
			k.Config, k.AccessesSec, b.AccessesSec, 100*delta, verdict)
	}
	if regressed > 0 {
		return fmt.Errorf("%d kernel(s) regressed more than %.0f%% vs %s", regressed, 100*regressLimit, path)
	}
	fmt.Printf("no kernel regressed more than %.0f%% vs %s\n", 100*regressLimit, path)
	return nil
}

// kernelRun replays a synthetic conflict-heavy stream and times it.
func kernelRun(label string, build func() (func(addr.Addr), error), n uint64) (KernelResult, error) {
	access, err := build()
	if err != nil {
		return KernelResult{}, err
	}
	src := rng.New(5)
	addrs := make([]addr.Addr, 8192)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 22))
	}
	start := time.Now()
	for i := uint64(0); i < n; i++ {
		access(addrs[i&8191])
	}
	secs := time.Since(start).Seconds()
	return KernelResult{
		Config:      label,
		Accesses:    n,
		Seconds:     secs,
		AccessesSec: float64(n) / secs,
	}, nil
}

// suiteRun executes every registered experiment once, like
// `cmd/experiments` with no arguments, from a cold trace cache.
func suiteRun(n uint64) (SuiteResult, error) {
	opts := experiment.DefaultOpts()
	opts.Instructions = n
	experiment.ResetTraceCache()
	experiment.ResetTimedCache()
	experiment.ResetUnitMemo()
	defer experiment.CleanupTraceSpill()
	rows := 0
	exps := experiment.All()
	start := time.Now()
	for _, e := range exps {
		tables, err := e.Run(opts)
		if err != nil {
			return SuiteResult{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			rows += len(t.Rows)
		}
	}
	secs := time.Since(start).Seconds()
	tc := experiment.TraceCacheStats()
	return SuiteResult{
		Instructions:    n,
		Experiments:     len(exps),
		Rows:            rows,
		Seconds:         secs,
		TraceHits:       tc.Hits,
		TraceMisses:     tc.Misses,
		TraceBytes:      tc.PeakBytes,
		TraceSpillBytes: tc.SpillBytes,
	}, nil
}
