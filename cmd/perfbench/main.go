// Command perfbench regenerates BENCH_perf.json: the simulation-engine
// performance baseline tracked across PRs. It measures two things:
//
//  1. Kernel throughput (accesses/sec) for the main simulation kernels —
//     the direct-mapped baseline, 8-way set-associative, the 512-way
//     fully-associative cache on both its lookups (`512way-full` is the
//     historical linear-scan row, `fa-hash` the O(1) hash-indexed path
//     that replaced it), the one-pass multi-geometry stack-distance
//     profiler (`stackdist`, which answers five LRU shapes per access),
//     the B-Cache at MF=8/BAS=8 on its SWAR path, and the scalar
//     reference implementation the SWAR kernel is differentially tested
//     against.
//  2. Wall-clock for the full registered experiment suite — what
//     `cmd/experiments` runs — plus the shared trace cache's hit/miss
//     counters for that pass.
//
// With -compare it instead replays only the kernels and checks them
// against a committed baseline, exiting non-zero if any kernel's
// accesses/sec regressed more than 15% — the `make bench-compare` gate.
//
// Usage:
//
//	perfbench [-n instructions] [-kernel-accesses n] [-o BENCH_perf.json]
//	perfbench -compare BENCH_perf.json [-kernel-accesses n]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/experiment"
	"bcache/internal/rng"
	"bcache/internal/stackdist"
)

const (
	sizeBytes = 16 * 1024
	lineBytes = 32
	// schemaVersion identifies the BENCH_perf.json document layout.
	schemaVersion = 1
	// regressLimit is the tolerated fractional accesses/sec loss per
	// kernel in -compare mode.
	regressLimit = 0.15
)

// KernelResult is one kernel's raw replay throughput.
type KernelResult struct {
	Config      string  `json:"config"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accessesPerSec"`
}

// SuiteResult is one full-suite pass.
type SuiteResult struct {
	Instructions uint64  `json:"instructions"`
	Experiments  int     `json:"experiments"`
	Rows         int     `json:"rows"`
	Seconds      float64 `json:"wallClockSeconds"`
	TraceHits    uint64  `json:"traceCacheHits"`
	TraceMisses  uint64  `json:"traceCacheMisses"`
	TraceBytes   int64   `json:"traceCacheBytes"`
}

// Baseline is the BENCH_perf.json document.
type Baseline struct {
	SchemaVersion int            `json:"schemaVersion"`
	Kernels       []KernelResult `json:"kernels"`
	Suite         SuiteResult    `json:"suite"`
}

// cacheKernel adapts a cache model to the access-closure interface.
func cacheKernel(build func() (cache.Cache, error)) func() (func(addr.Addr), error) {
	return func() (func(addr.Addr), error) {
		c, err := build()
		if err != nil {
			return nil, err
		}
		return func(a addr.Addr) { c.Access(a, false) }, nil
	}
}

// stackdistKernel profiles the five 16kB LRU geometries a figure-spec
// scheduling unit answers in one pass (ways 1/2/4/8/32).
func stackdistKernel() (func(addr.Addr), error) {
	frames := sizeBytes / lineBytes
	var geoms []stackdist.Geom
	for _, w := range []int{1, 2, 4, 8, 32} {
		geoms = append(geoms, stackdist.Geom{Sets: frames / w, Ways: w})
	}
	p, err := stackdist.NewProfile(lineBytes, geoms)
	if err != nil {
		return nil, err
	}
	return p.Access, nil
}

var configs = []struct {
	label string
	build func() (func(addr.Addr), error)
}{
	{"dm", cacheKernel(func() (cache.Cache, error) { return cache.NewDirectMapped(sizeBytes, lineBytes) })},
	{"8way", cacheKernel(func() (cache.Cache, error) {
		return cache.NewSetAssoc(sizeBytes, lineBytes, 8, cache.LRU, rng.New(1))
	})},
	// The historical linear-scan fully-associative row, kept for
	// trajectory comparison against earlier baselines.
	{"512way-full", cacheKernel(func() (cache.Cache, error) {
		return cache.NewSetAssocScan(sizeBytes, lineBytes, sizeBytes/lineBytes, cache.LRU, rng.New(1))
	})},
	// The same cache on the O(1) hash-indexed lookup (the default build).
	{"fa-hash", cacheKernel(func() (cache.Cache, error) {
		return cache.NewFullyAssoc(sizeBytes, lineBytes, cache.LRU, rng.New(1))
	})},
	{"stackdist", stackdistKernel},
	{"bcache-mf8-bas8", cacheKernel(func() (cache.Cache, error) {
		return core.New(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	})},
	{"bcache-mf8-bas8-ref", cacheKernel(func() (cache.Cache, error) {
		return core.NewReference(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	})},
}

func main() {
	var (
		n       = flag.Uint64("n", 2_000_000, "instructions per experiment in the suite pass")
		kn      = flag.Uint64("kernel-accesses", 50_000_000, "accesses per kernel throughput run")
		outPath = flag.String("o", "BENCH_perf.json", "output file")
		cmpPath = flag.String("compare", "", "compare kernel throughput against this baseline instead of writing one")
	)
	flag.Parse()

	doc := Baseline{SchemaVersion: schemaVersion}
	for _, cfg := range configs {
		r, err := kernelRun(cfg.label, cfg.build, *kn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %s: %v\n", cfg.label, err)
			os.Exit(1)
		}
		doc.Kernels = append(doc.Kernels, r)
		fmt.Printf("%-20s %12.0f accesses/s\n", cfg.label, r.AccessesSec)
	}

	if *cmpPath != "" {
		if err := compareKernels(*cmpPath, doc.Kernels); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		return
	}

	suite, err := suiteRun(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	doc.Suite = suite
	fmt.Printf("suite: %d experiments, %d rows in %.2fs (trace cache: %d hits / %d misses)\n",
		suite.Experiments, suite.Rows, suite.Seconds, suite.TraceHits, suite.TraceMisses)

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outPath)
}

// compareKernels checks fresh kernel results against the committed
// baseline document: any kernel more than regressLimit slower fails.
// Kernels present on only one side (renamed, newly added) are reported
// but never fail the gate.
func compareKernels(path string, fresh []KernelResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	byLabel := make(map[string]KernelResult, len(base.Kernels))
	for _, k := range base.Kernels {
		byLabel[k.Config] = k
	}
	regressed := 0
	for _, k := range fresh {
		b, ok := byLabel[k.Config]
		if !ok {
			fmt.Printf("%-20s %12.0f accesses/s  (no baseline)\n", k.Config, k.AccessesSec)
			continue
		}
		delta := k.AccessesSec/b.AccessesSec - 1
		verdict := "ok"
		if delta < -regressLimit {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-20s %12.0f vs %12.0f accesses/s  %+6.1f%%  %s\n",
			k.Config, k.AccessesSec, b.AccessesSec, 100*delta, verdict)
	}
	if regressed > 0 {
		return fmt.Errorf("%d kernel(s) regressed more than %.0f%% vs %s", regressed, 100*regressLimit, path)
	}
	fmt.Printf("no kernel regressed more than %.0f%% vs %s\n", 100*regressLimit, path)
	return nil
}

// kernelRun replays a synthetic conflict-heavy stream and times it.
func kernelRun(label string, build func() (func(addr.Addr), error), n uint64) (KernelResult, error) {
	access, err := build()
	if err != nil {
		return KernelResult{}, err
	}
	src := rng.New(5)
	addrs := make([]addr.Addr, 8192)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 22))
	}
	start := time.Now()
	for i := uint64(0); i < n; i++ {
		access(addrs[i&8191])
	}
	secs := time.Since(start).Seconds()
	return KernelResult{
		Config:      label,
		Accesses:    n,
		Seconds:     secs,
		AccessesSec: float64(n) / secs,
	}, nil
}

// suiteRun executes every registered experiment once, like
// `cmd/experiments` with no arguments, from a cold trace cache.
func suiteRun(n uint64) (SuiteResult, error) {
	opts := experiment.DefaultOpts()
	opts.Instructions = n
	experiment.ResetTraceCache()
	experiment.ResetTimedCache()
	rows := 0
	exps := experiment.All()
	start := time.Now()
	for _, e := range exps {
		tables, err := e.Run(opts)
		if err != nil {
			return SuiteResult{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			rows += len(t.Rows)
		}
	}
	secs := time.Since(start).Seconds()
	tc := experiment.TraceCacheStats()
	return SuiteResult{
		Instructions: n,
		Experiments:  len(exps),
		Rows:         rows,
		Seconds:      secs,
		TraceHits:    tc.Hits,
		TraceMisses:  tc.Misses,
		TraceBytes:   tc.Bytes,
	}, nil
}
