// Command perfbench regenerates BENCH_perf.json: the simulation-engine
// performance baseline tracked across PRs. It measures two things:
//
//  1. Kernel throughput (accesses/sec) for the main cache models — the
//     direct-mapped baseline, 8-way and 512-way set-associative, the
//     B-Cache at MF=8/BAS=8 on its SWAR path, and the scalar reference
//     implementation the SWAR kernel is differentially tested against.
//  2. Wall-clock for the full registered experiment suite — what
//     `cmd/experiments` runs — plus the shared trace cache's hit/miss
//     counters for that pass.
//
// Usage:
//
//	perfbench [-n instructions] [-kernel-accesses n] [-o BENCH_perf.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/experiment"
	"bcache/internal/rng"
)

const (
	sizeBytes = 16 * 1024
	lineBytes = 32
	// schemaVersion identifies the BENCH_perf.json document layout.
	schemaVersion = 1
)

// KernelResult is one cache model's raw replay throughput.
type KernelResult struct {
	Config      string  `json:"config"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accessesPerSec"`
}

// SuiteResult is one full-suite pass.
type SuiteResult struct {
	Instructions uint64  `json:"instructions"`
	Experiments  int     `json:"experiments"`
	Rows         int     `json:"rows"`
	Seconds      float64 `json:"wallClockSeconds"`
	TraceHits    uint64  `json:"traceCacheHits"`
	TraceMisses  uint64  `json:"traceCacheMisses"`
	TraceBytes   int64   `json:"traceCacheBytes"`
}

// Baseline is the BENCH_perf.json document.
type Baseline struct {
	SchemaVersion int            `json:"schemaVersion"`
	Kernels       []KernelResult `json:"kernels"`
	Suite         SuiteResult    `json:"suite"`
}

var configs = []struct {
	label string
	build func() (cache.Cache, error)
}{
	{"dm", func() (cache.Cache, error) { return cache.NewDirectMapped(sizeBytes, lineBytes) }},
	{"8way", func() (cache.Cache, error) {
		return cache.NewSetAssoc(sizeBytes, lineBytes, 8, cache.LRU, rng.New(1))
	}},
	{"512way-full", func() (cache.Cache, error) {
		return cache.NewFullyAssoc(sizeBytes, lineBytes, cache.LRU, rng.New(1))
	}},
	{"bcache-mf8-bas8", func() (cache.Cache, error) {
		return core.New(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	}},
	{"bcache-mf8-bas8-ref", func() (cache.Cache, error) {
		return core.NewReference(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	}},
}

func main() {
	var (
		n       = flag.Uint64("n", 2_000_000, "instructions per experiment in the suite pass")
		kn      = flag.Uint64("kernel-accesses", 50_000_000, "accesses per kernel throughput run")
		outPath = flag.String("o", "BENCH_perf.json", "output file")
	)
	flag.Parse()

	doc := Baseline{SchemaVersion: schemaVersion}
	for _, cfg := range configs {
		r, err := kernelRun(cfg.label, cfg.build, *kn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfbench: %s: %v\n", cfg.label, err)
			os.Exit(1)
		}
		doc.Kernels = append(doc.Kernels, r)
		fmt.Printf("%-20s %12.0f accesses/s\n", cfg.label, r.AccessesSec)
	}

	suite, err := suiteRun(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	doc.Suite = suite
	fmt.Printf("suite: %d experiments, %d rows in %.2fs (trace cache: %d hits / %d misses)\n",
		suite.Experiments, suite.Rows, suite.Seconds, suite.TraceHits, suite.TraceMisses)

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *outPath)
}

// kernelRun replays a synthetic conflict-heavy stream and times it.
func kernelRun(label string, build func() (cache.Cache, error), n uint64) (KernelResult, error) {
	c, err := build()
	if err != nil {
		return KernelResult{}, err
	}
	src := rng.New(5)
	addrs := make([]addr.Addr, 8192)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 22))
	}
	start := time.Now()
	for i := uint64(0); i < n; i++ {
		c.Access(addrs[i&8191], false)
	}
	secs := time.Since(start).Seconds()
	return KernelResult{
		Config:      label,
		Accesses:    n,
		Seconds:     secs,
		AccessesSec: float64(n) / secs,
	}, nil
}

// suiteRun executes every registered experiment once, like
// `cmd/experiments` with no arguments, from a cold trace cache.
func suiteRun(n uint64) (SuiteResult, error) {
	opts := experiment.DefaultOpts()
	opts.Instructions = n
	experiment.ResetTraceCache()
	experiment.ResetTimedCache()
	rows := 0
	exps := experiment.All()
	start := time.Now()
	for _, e := range exps {
		tables, err := e.Run(opts)
		if err != nil {
			return SuiteResult{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			rows += len(t.Rows)
		}
	}
	secs := time.Since(start).Seconds()
	tc := experiment.TraceCacheStats()
	return SuiteResult{
		Instructions: n,
		Experiments:  len(exps),
		Rows:         rows,
		Seconds:      secs,
		TraceHits:    tc.Hits,
		TraceMisses:  tc.Misses,
		TraceBytes:   tc.Bytes,
	}, nil
}
