// Command bcachelint is the repo's static-analysis multichecker: eight
// project-specific analyzers (determinism, probesafe, oraclepair,
// statjson, lockdiscipline, atomicdiscipline, splitstream,
// goroutinelife — see internal/lint) that machine-check the invariants
// the paper reproduction's credibility rests on.
//
// Standalone mode type-checks and analyzes package patterns:
//
//	bcachelint ./...
//	bcachelint -group ./...      # findings grouped by analyzer
//
// It also speaks the `go vet -vettool=` protocol, so the same binary
// runs under the go command's vet driver:
//
//	go vet -vettool=$(pwd)/bin/bcachelint ./...
//
// Exit status: 0 clean, 1 findings or usage error, 2 internal failure
// (vet mode follows the unitchecker convention instead: 2 = findings).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bcache/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet-driver invocations are recognizable before flag parsing: the
	// -V=full/-flags handshakes, or a single *.cfg argument.
	if isVetInvocation(args) {
		return lint.UnitcheckerMain("bcachelint", args, lint.All())
	}

	fs := flag.NewFlagSet("bcachelint", flag.ContinueOnError)
	group := fs.Bool("group", false, "group findings by analyzer instead of position order")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	writeFacts := fs.String("write-facts", "", "write per-package .vetx fact files into this `dir` after analysis")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bcachelint [-group] [-analyzers] [-write-facts dir] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the project analyzers over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var diags []lint.Diagnostic
	for _, p := range pkgs {
		d, err := p.RunAnalyzers(lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		diags = append(diags, d...)
	}
	if *writeFacts != "" {
		if err := lint.WriteFacts(pkgs, *writeFacts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	lint.SortDiagnostics(diags)
	diags = lint.DedupDiagnostics(diags)
	if len(diags) == 0 {
		return 0
	}
	if *group {
		printGrouped(diags)
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	fmt.Fprintf(os.Stderr, "bcachelint: %d finding(s)\n", len(diags))
	return 1
}

// printGrouped renders findings grouped by analyzer with file:line
// links, the `make lint-fix` triage view.
func printGrouped(diags []lint.Diagnostic) {
	order := []string{}
	byAnalyzer := map[string][]lint.Diagnostic{}
	for _, d := range diags {
		if _, ok := byAnalyzer[d.Analyzer]; !ok {
			order = append(order, d.Analyzer)
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
	}
	for _, name := range order {
		ds := byAnalyzer[name]
		fmt.Printf("== %s (%d) ==\n", name, len(ds))
		for _, d := range ds {
			fmt.Printf("  %s:%d:%d  %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
		}
		fmt.Println()
	}
}

// isVetInvocation detects the go command's vettool calling convention.
func isVetInvocation(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags" {
			return true
		}
	}
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}
