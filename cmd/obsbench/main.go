// Command obsbench regenerates BENCH_obs.json: the observability
// baseline used to spot simulator behavior drift across PRs. It runs a
// fixed 3×3 matrix — equake/gcc/mcf against a 16 kB direct-mapped
// cache, an 8-way set-associative cache, and the paper's B-Cache
// (MF=8, BAS=8) — with an interval sampler attached, and writes every
// run's obs.Report into one schema-versioned document.
//
// Usage:
//
//	obsbench [-n instructions] [-o BENCH_obs.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/obs"
	"bcache/internal/rng"
	"bcache/internal/trace"
	"bcache/internal/workload"
)

const (
	sizeBytes = 16 * 1024
	lineBytes = 32
)

// Baseline is the BENCH_obs.json document: one report per matrix cell.
type Baseline struct {
	SchemaVersion int           `json:"schemaVersion"`
	Instructions  uint64        `json:"instructions"`
	Runs          []*obs.Report `json:"runs"`
}

var benches = []string{"equake", "gcc", "mcf"}

var configs = []struct {
	label string
	build func() (cache.Cache, error)
}{
	{"dm", func() (cache.Cache, error) { return cache.NewDirectMapped(sizeBytes, lineBytes) }},
	{"8way", func() (cache.Cache, error) {
		return cache.NewSetAssoc(sizeBytes, lineBytes, 8, cache.LRU, rng.New(1))
	}},
	{"bcache-mf8-bas8", func() (cache.Cache, error) {
		return core.New(core.Config{SizeBytes: sizeBytes, LineBytes: lineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
	}},
}

func main() {
	var (
		n       = flag.Uint64("n", 2_000_000, "instructions per run")
		outPath = flag.String("o", "BENCH_obs.json", "output file")
	)
	flag.Parse()

	doc := Baseline{SchemaVersion: obs.SchemaVersion, Instructions: *n}
	for _, bench := range benches {
		for _, cfg := range configs {
			r, err := run(bench, cfg.label, cfg.build, *n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "obsbench: %s/%s: %v\n", bench, cfg.label, err)
				os.Exit(1)
			}
			doc.Runs = append(doc.Runs, r)
			fmt.Printf("%-8s %-16s missRate=%7.4f%% accesses=%d samples=%d\n",
				bench, cfg.label, 100*r.Totals.MissRate, r.Totals.Accesses, len(r.Samples))
		}
	}

	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs)\n", *outPath, len(doc.Runs))
}

// run simulates one matrix cell: a fresh workload generator driving a
// fresh cache with an interval sampler attached for the full run.
func run(bench, label string, build func() (cache.Cache, error), n uint64) (*obs.Report, error) {
	p, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	g, err := workload.New(p)
	if err != nil {
		return nil, err
	}
	c, err := build()
	if err != nil {
		return nil, err
	}
	sampler := obs.NewIntervalSampler(0, c.Geometry().Frames)
	if !cache.AttachProbe(c, sampler) {
		return nil, fmt.Errorf("cache %q does not accept probes", label)
	}

	start := time.Now()
	for i := uint64(0); i < n; i++ {
		rec, _ := g.Next()
		if rec.Kind.IsMem() {
			c.Access(rec.Mem, rec.Kind == trace.Store)
		}
	}
	wall := time.Since(start)

	r := obs.NewReport(c)
	r.Config.Benchmark = bench
	r.Config.Cache = label
	r.AttachSampler(sampler)
	r.SetThroughput(wall, n)
	return r, nil
}
