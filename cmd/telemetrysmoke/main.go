// Command telemetrysmoke exercises the live telemetry stack end to end:
// it launches the experiments CLI with -telemetry on an ephemeral port,
// scrapes /metrics and /progress while the server lingers, validates the
// OpenMetrics exposition and the progress document, interrupts the
// process the way an operator would (SIGINT), and checks that the span
// journal and Chrome trace artifacts written on the way out are
// well-formed. It exits 0 on success and 1 with a reason on any failure,
// so `make telemetry-smoke` can gate on it.
//
// Usage:
//
//	telemetrysmoke [-bin path/to/experiments] [-timeout 90s]
//
// Without -bin it runs `go run ./cmd/experiments`, so it works from a
// clean checkout.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"bcache/internal/experiment"
	"bcache/internal/obs/metrics"
	"bcache/internal/obs/tracespan"
)

func main() {
	bin := flag.String("bin", "", "experiments binary to drive (default: go run ./cmd/experiments)")
	timeout := flag.Duration("timeout", 90*time.Second, "overall deadline for the smoke run")
	flag.Parse()

	if err := smoke(*bin, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "telemetrysmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("telemetrysmoke: OK")
}

func smoke(bin string, timeout time.Duration) error {
	dir, err := os.MkdirTemp("", "telemetrysmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	jsonlPath := filepath.Join(dir, "spans.jsonl")
	chromePath := filepath.Join(dir, "spans.trace.json")

	args := []string{
		"-run", "fig3", "-n", "100000",
		"-telemetry", "127.0.0.1:0",
		"-telemetry-linger", "30s",
		"-trace-out", jsonlPath,
		"-trace-chrome", chromePath,
	}
	if bin == "" {
		// Build a real binary rather than `go run`: the go tool sits
		// between us and the CLI and garbles SIGINT/exit-code handling.
		bin = filepath.Join(dir, "experiments")
		build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("go build ./cmd/experiments: %w\n%s", err, out)
		}
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	// Past this point the subprocess must not outlive us.
	defer cmd.Process.Kill()

	// The CLI announces its listener on stderr; everything else is kept
	// for the failure report.
	addrc := make(chan string, 1)
	var tail strings.Builder
	//bcachelint:allow goroutinelife(scanner drains the child's stderr pipe; it exits when cmd.Wait closes the pipe, which this function always reaches)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(&tail, line)
			if rest, ok := strings.CutPrefix(line, "telemetry: serving http://"); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrc <- rest[:i]:
					default:
					}
				}
			}
		}
	}()

	deadline := time.After(timeout)
	var addr string
	select {
	case addr = <-addrc:
	case <-deadline:
		return fmt.Errorf("no telemetry listener announced within %v\nstderr:\n%s", timeout, tail.String())
	}

	if err := checkEndpoints(addr); err != nil {
		return fmt.Errorf("%w\nstderr:\n%s", err, tail.String())
	}

	// Interrupt like an operator: the linger ends early, the server
	// drains, the journal exports still happen.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		return fmt.Errorf("interrupt: %w", err)
	}
	waitc := make(chan error, 1)
	//bcachelint:allow goroutinelife(single buffered send of cmd.Wait; abandoned only on the deadline path, where the smoke run fails and the process exits)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err = <-waitc:
	case <-deadline:
		return fmt.Errorf("experiments did not exit within %v of SIGINT\nstderr:\n%s", timeout, tail.String())
	}
	if err != nil {
		var xe *exec.ExitError
		// 130 is the documented interrupted-run exit status; anything
		// else is a real failure.
		if !errors.As(err, &xe) || xe.ExitCode() != 130 {
			return fmt.Errorf("experiments exited: %w\nstderr:\n%s", err, tail.String())
		}
	}

	if err := checkArtifacts(jsonlPath, chromePath); err != nil {
		return fmt.Errorf("%w\nstderr:\n%s", err, tail.String())
	}
	return nil
}

// checkEndpoints scrapes and validates /metrics and /progress.
func checkEndpoints(addr string) error {
	body, ctype, err := get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		return fmt.Errorf("/metrics content type %q, want application/openmetrics-text", ctype)
	}
	if err := metrics.ValidateExposition(string(body)); err != nil {
		return fmt.Errorf("/metrics exposition invalid: %w", err)
	}
	if !strings.Contains(string(body), "bcache_units_queued_total") {
		return fmt.Errorf("/metrics is missing bcache_units_queued_total:\n%s", body)
	}

	body, _, err = get("http://" + addr + "/progress")
	if err != nil {
		return err
	}
	var p experiment.Progress
	if err := json.Unmarshal(body, &p); err != nil {
		return fmt.Errorf("/progress parse: %w", err)
	}
	if err := experiment.ValidateProgress(p); err != nil {
		return fmt.Errorf("/progress invalid: %w", err)
	}
	return nil
}

// checkArtifacts validates the exported span journal and Chrome trace.
func checkArtifacts(jsonlPath, chromePath string) error {
	f, err := os.Open(jsonlPath)
	if err != nil {
		return fmt.Errorf("trace-out missing: %w", err)
	}
	defer f.Close()
	meta, spans, err := tracespan.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("trace-out invalid: %w", err)
	}
	if meta.Recorded == 0 || len(spans) == 0 {
		return fmt.Errorf("trace-out recorded no spans")
	}

	raw, err := os.ReadFile(chromePath)
	if err != nil {
		return fmt.Errorf("trace-chrome missing: %w", err)
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		return fmt.Errorf("trace-chrome parse: %w", err)
	}
	if len(ct.TraceEvents) == 0 {
		return fmt.Errorf("trace-chrome has no events")
	}
	return nil
}

// get fetches a URL with a short timeout and returns body + content type.
func get(url string) ([]byte, string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s: %s\n%s", url, resp.Status, body)
	}
	return body, resp.Header.Get("Content-Type"), nil
}
