package main

import (
	"os"
	"path/filepath"
	"testing"

	"bcache/internal/trace"
)

func writeTrace(t *testing.T, compress bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.bct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var w interface {
		Write(trace.Record) error
		Close() error
	}
	if compress {
		w, err = trace.NewCompressedWriter(f)
	} else {
		w, err = trace.NewWriter(f)
	}
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{PC: 4, Kind: trace.Int, Lat: 1},
		{PC: 8, Kind: trace.Load, Mem: 0x1000, Lat: 1},
		{PC: 12, Kind: trace.Store, Mem: 0x1008, Lat: 1},
		{PC: 16, Kind: trace.Branch, Lat: 1},
		{PC: 20, Kind: trace.FP, Lat: 4},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarizeBothVersions(t *testing.T) {
	for _, compress := range []bool{false, true} {
		path := writeTrace(t, compress)
		if err := summarize(path); err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
	}
}

func TestSummarizeErrors(t *testing.T) {
	if err := summarize(filepath.Join(t.TempDir(), "missing.bct")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.bct")
	if err := os.WriteFile(bad, []byte("NOPE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarize(bad); err == nil {
		t.Fatal("junk file accepted")
	}
}
