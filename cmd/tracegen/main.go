// Command tracegen writes a synthetic benchmark's instruction trace to a
// binary file (format documented in internal/trace) or inspects one.
//
// Examples:
//
//	tracegen -bench gcc -n 1000000 -o gcc.bct
//	tracegen -info gcc.bct
//
// Written traces replay with bcachesim -trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"bcache/internal/trace"
	"bcache/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "gcc", "benchmark profile name")
		n        = flag.Uint64("n", 1_000_000, "instructions to generate")
		out      = flag.String("o", "", "output trace file (required unless -info)")
		info     = flag.String("info", "", "print a summary of an existing trace file and exit")
		compress = flag.Bool("compress", false, "write the delta-compressed v2 format")
		din      = flag.String("din", "", "convert a Dinero .din trace instead of generating")
	)
	flag.Parse()

	if *info != "" {
		if err := summarize(*info); err != nil {
			fail(err)
		}
		return
	}
	if *out == "" {
		fail(fmt.Errorf("missing -o output path"))
	}
	var src trace.Stream
	what := *bench
	if *din != "" {
		f, err := os.Open(*din)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = trace.NewDineroReader(f)
		what = *din
	} else {
		p, err := workload.ByName(*bench)
		if err != nil {
			fail(err)
		}
		g, err := workload.New(p)
		if err != nil {
			fail(err)
		}
		src = g
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	var w interface {
		Write(trace.Record) error
		Close() error
		Count() uint64
	}
	if *compress {
		w, err = trace.NewCompressedWriter(f)
	} else {
		w, err = trace.NewWriter(f)
	}
	if err != nil {
		fail(err)
	}
	for i := uint64(0); i < *n; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			fail(err)
		}
	}
	if dr, ok := src.(*trace.DineroReader); ok && dr.Err() != nil {
		fail(dr.Err())
	}
	if err := w.Close(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d records of %s to %s\n", w.Count(), what, *out)
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.OpenAny(f)
	if err != nil {
		return err
	}
	var total, mem, stores, branches, fp uint64
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		total++
		switch rec.Kind {
		case trace.Load:
			mem++
		case trace.Store:
			mem++
			stores++
		case trace.Branch:
			branches++
		case trace.FP:
			fp++
		}
	}
	if e, ok := r.(interface{ Err() error }); ok && e.Err() != nil {
		return e.Err()
	}
	fmt.Printf("%s: %d records\n", path, total)
	if total > 0 {
		fmt.Printf("  memory ops: %d (%.1f%%), stores %d\n", mem, 100*float64(mem)/float64(total), stores)
		fmt.Printf("  branches  : %d (%.1f%%)\n", branches, 100*float64(branches)/float64(total))
		fmt.Printf("  fp ops    : %d (%.1f%%)\n", fp, 100*float64(fp)/float64(total))
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
