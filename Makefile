GO ?= go

.PHONY: all build test race race-robust vet lint lint-build lint-fix lint-facts-clean fmt-check ci bench bench-obs bench-perf bench-perf-json bench-compare mem-ceiling telemetry-smoke chaos clean

# benchstat-friendly repetition count for bench-perf.
BENCH_COUNT ?= 6

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# LINTBIN is the built project linter; `go vet -vettool=` needs a real
# executable (and an absolute path), not `go run`.
LINTBIN := bin/bcachelint

lint-build:
	$(GO) build -o $(LINTBIN) ./cmd/bcachelint

# lint runs the eight project analyzers (determinism, probesafe,
# oraclepair, statjson, lockdiscipline, atomicdiscipline, splitstream,
# goroutinelife; see DESIGN.md §12 and §16) twice over the tree:
# standalone — whole-module load, widest compilations, which catches a
# package whose test files were deleted wholesale — and through
# `go vet -vettool=`, exercising the unitchecker protocol the go command
# drives (including cross-package fact flow via PackageVetx).
# Suppressions use //bcachelint:allow analyzer(reason).
lint: lint-build
	$(LINTBIN) ./...
	$(GO) vet -vettool=$(abspath $(LINTBIN)) ./...

# lint-fix prints the findings to work through, grouped by analyzer with
# file:line links; it never fails the build.
lint-fix: lint-build
	-$(LINTBIN) -group ./...

# lint-facts-clean proves the cross-package fact encoding deterministic:
# two consecutive standalone runs must write byte-identical .vetx files.
# A diff here means an analyzer is emitting facts from unsorted state,
# which would defeat the go command's vet caching and poison
# reproducibility of lint results themselves.
lint-facts-clean: lint-build
	rm -rf bin/facts-a bin/facts-b
	$(LINTBIN) -write-facts bin/facts-a ./...
	$(LINTBIN) -write-facts bin/facts-b ./...
	diff -r bin/facts-a bin/facts-b
	@echo "fact files byte-stable across runs"

# race-robust is the focused race gate for the crash-safety layer: the
# unit scheduler, checkpoint, and fault injector do real concurrent
# mutation, so they get their own fast gate ahead of the full race run.
race-robust:
	$(GO) test -race ./internal/experiment/... ./internal/fault/...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# ci is the full local gate: formatting, vet (stdlib copylocks/atomic
# back up the custom analyzers), the project linters, the fact-encoding
# determinism check, build, the focused robustness race gate, the
# race-enabled test suite (probes attached under -race is an explicit
# acceptance criterion of the observability layer), and the
# distributed-execution chaos suite — promoted to fatal per its
# documented path after a clean week since PR 7 (see CHANGES.md, PR 10).
# lint is fatal: a finding without a justified //bcachelint:allow fails
# CI.
#
# telemetry-smoke and bench-compare run last as non-fatal reports, each
# surfacing a labeled warning on failure so a scan of the CI log finds
# them: the smoke binds a TCP listener (sandboxes may forbid that) and
# kernel throughput on a shared box is too noisy to hard-gate. Promotion
# path to fatal: once each has a clean week in CI logs, drop its `||
# echo` fallback so the recipe's exit status gates the build.
ci: fmt-check vet lint lint-facts-clean build race-robust race chaos
	@$(MAKE) telemetry-smoke || echo "[telemetry-smoke] WARNING: live telemetry smoke failed (non-fatal; see above)"
	@$(MAKE) bench-compare || echo "[bench-regression] WARNING: kernel throughput regressed >15% vs BENCH_perf.json (non-fatal; rerun 'make bench-compare' on a quiet box)"
	@$(MAKE) mem-ceiling || echo "[mem-ceiling] WARNING: suite resident trace-cache peak in BENCH_perf.json exceeds the 256 MiB budget (non-fatal; see above)"

# chaos runs the distributed-execution kill/interrupt suite under -race:
# worker subprocesses SIGKILLed mid-campaign, SIGINT drain, and
# coordinator-crash shard recovery, each asserting bit-identical merges
# against the sequential oracle (see internal/dist/distrun/chaos_test.go).
# Fatal in ci since PR 10: the suite had been green since PR 7, so per
# its documented promotion path it now gates the build as a hard
# prerequisite of the ci target.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestSIGINT|TestMergeShardDir' ./internal/dist/distrun
	$(GO) test -race -count=1 ./internal/dist

# bench-compare replays the perfbench kernels and fails if any kernel's
# accesses/sec regressed more than 15% against the committed baseline.
# Uses a reduced access count: enough to get past warm-up on the slow
# (scan/profiler) kernels without taking the full baseline-regeneration
# time.
bench-compare:
	$(GO) run ./cmd/perfbench -compare BENCH_perf.json -kernel-accesses 10000000

# mem-ceiling checks the resident trace-cache peak recorded by the last
# `make bench-perf-json` suite pass against the 256 MiB budget (see
# DESIGN.md §15). It reads the committed BENCH_perf.json only — the
# recorded peak is deterministic per tree — so the check is instant.
# Non-fatal in ci for now because a baseline regenerated on a branch
# mid-rework may legitimately lag the code; promotion path to fatal:
# once BENCH_perf.json is regenerated in the same PR as any allocation
# change for a clean week, drop the `|| echo` fallback above so its
# exit status gates the build.
mem-ceiling:
	$(GO) run ./cmd/perfbench -mem-ceiling BENCH_perf.json

# telemetry-smoke drives the whole live-telemetry stack once: experiments
# under -telemetry on an ephemeral port, /metrics + /progress scraped and
# validated, SIGINT mid-linger, exported span journal and Chrome trace
# checked. See cmd/telemetrysmoke.
telemetry-smoke:
	$(GO) run ./cmd/telemetrysmoke

# bench runs the probe-overhead benchmarks (see internal/obs/alloc_test.go
# for how to read the two levels).
bench:
	$(GO) test -bench 'Overhead' -benchmem -run '^$$' ./internal/obs

# bench-obs regenerates the BENCH_obs.json observability baseline
# (equake/gcc/mcf x dm/8way/bcache).
bench-obs:
	$(GO) run ./cmd/obsbench -o BENCH_obs.json

# bench-perf runs the simulation-engine performance benchmarks with
# -count so the output feeds straight into benchstat (old.txt vs
# new.txt). Covers the SWAR B-Cache kernel, the scalar reference, the
# set-associative access path, and the end-to-end experiment suite.
bench-perf:
	$(GO) test -run '^$$' -bench 'BenchmarkBCacheAccess|BenchmarkReferenceAccess' -count $(BENCH_COUNT) ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkSetAssocAccess' -count $(BENCH_COUNT) ./internal/cache
	$(GO) test -run '^$$' -bench 'BenchmarkSuiteEndToEnd' -count 3 .

# bench-perf-json regenerates the committed BENCH_perf.json baseline
# (kernel accesses/sec per config + full-suite wall-clock).
bench-perf-json:
	$(GO) run ./cmd/perfbench -o BENCH_perf.json

clean:
	$(GO) clean ./...
