module bcache

go 1.22
