// Cross-module integration tests: workload → CPU → hierarchy → caches,
// exercised the way cmd/experiments drives them.
package main_test

import (
	"testing"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/cpu"
	"bcache/internal/hier"
	"bcache/internal/trace"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

// buildHier assembles the Table 4 platform around a pair of L1 caches.
func buildHier(t *testing.T, mk func() (cache.Cache, error)) *hier.Hierarchy {
	t.Helper()
	ic, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	dc, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.New(ic, dc, hier.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func runBench(t *testing.T, bench string, h *hier.Hierarchy, n uint64) cpu.Result {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run(g, h, cpu.Defaults(), n)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEndToEndDeterminism: the whole stack must be bit-reproducible.
func TestEndToEndDeterminism(t *testing.T) {
	mk := func() (cache.Cache, error) {
		return core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	}
	h1 := buildHier(t, mk)
	h2 := buildHier(t, mk)
	r1 := runBench(t, "gcc", h1, 300_000)
	r2 := runBench(t, "gcc", h2, 300_000)
	if r1 != r2 {
		t.Fatalf("nondeterministic end-to-end run: %+v vs %+v", r1, r2)
	}
	if h1.D.Stats().Misses != h2.D.Stats().Misses || h1.MemAccesses != h2.MemAccesses {
		t.Fatal("hierarchy counters diverged between identical runs")
	}
}

// TestBCacheImprovesIPC: on the paper's headline benchmark the B-Cache
// must beat the direct-mapped baseline and land between it and 8-way.
func TestBCacheImprovesIPC(t *testing.T) {
	const n = 400_000
	dm := buildHier(t, func() (cache.Cache, error) {
		return cache.NewDirectMapped(16*1024, 32)
	})
	bc := buildHier(t, func() (cache.Cache, error) {
		return core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	})
	w8 := buildHier(t, func() (cache.Cache, error) {
		return cache.NewSetAssoc(16*1024, 32, 8, cache.LRU, nil)
	})
	ipcDM := runBench(t, "equake", dm, n).IPC()
	ipcBC := runBench(t, "equake", bc, n).IPC()
	ipc8 := runBench(t, "equake", w8, n).IPC()
	if ipcBC <= ipcDM {
		t.Fatalf("B-Cache IPC %.3f not above baseline %.3f", ipcBC, ipcDM)
	}
	if ipcBC > ipc8*1.02 {
		t.Fatalf("B-Cache IPC %.3f implausibly above 8-way %.3f", ipcBC, ipc8)
	}
	// The paper's headline: a double-digit improvement on equake.
	if imp := ipcBC/ipcDM - 1; imp < 0.10 {
		t.Errorf("equake B-Cache IPC improvement %.1f%% below 10%%", 100*imp)
	}
}

// TestStreamingBenchmarkInsensitive: mcf's uniform pointer-chase misses
// should barely respond to the L1 organization (paper Table 7).
func TestStreamingBenchmarkInsensitive(t *testing.T) {
	const n = 300_000
	dm := buildHier(t, func() (cache.Cache, error) {
		return cache.NewDirectMapped(16*1024, 32)
	})
	w8 := buildHier(t, func() (cache.Cache, error) {
		return cache.NewSetAssoc(16*1024, 32, 8, cache.LRU, nil)
	})
	ipcDM := runBench(t, "mcf", dm, n).IPC()
	ipc8 := runBench(t, "mcf", w8, n).IPC()
	if gain := ipc8/ipcDM - 1; gain > 0.05 {
		t.Errorf("mcf gained %.1f%% from 8-way associativity; should be memory-bound", 100*gain)
	}
}

// TestTinyICacheFootprints: the benchmarks the paper excludes from
// Figure 5 must keep their steady-state I$ miss rates below 0.01%.
// (The paper's 500 M-instruction runs amortize the cold fill; here the
// cold misses are excluded by snapshotting after a warm-up window.)
func TestTinyICacheFootprints(t *testing.T) {
	for _, name := range []string{"applu", "art", "bzip2", "gzip", "lucas", "mcf", "swim", "vpr"} {
		h := buildHier(t, func() (cache.Cache, error) {
			return cache.NewDirectMapped(16*1024, 32)
		})
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := workload.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cpu.Run(g, h, cpu.Defaults(), 500_000); err != nil {
			t.Fatal(err)
		}
		warmMisses := h.I.Stats().Misses
		warmAccesses := h.I.Stats().Accesses
		if _, err := cpu.Run(g, h, cpu.Defaults(), 1_000_000); err != nil {
			t.Fatal(err)
		}
		misses := h.I.Stats().Misses - warmMisses
		accesses := h.I.Stats().Accesses - warmAccesses
		if mr := float64(misses) / float64(accesses); mr >= 0.0001 {
			t.Errorf("%s: steady-state I$ miss rate %.4f%% ≥ 0.01%% threshold", name, 100*mr)
		}
	}
}

// TestReportedICacheAboveThreshold: the 15 reported benchmarks must be
// above the threshold, or Figure 5 would be empty.
func TestReportedICacheAboveThreshold(t *testing.T) {
	for _, name := range workload.ReportedICache {
		h := buildHier(t, func() (cache.Cache, error) {
			return cache.NewDirectMapped(16*1024, 32)
		})
		runBench(t, name, h, 500_000)
		if mr := h.I.Stats().MissRate(); mr < 0.0001 {
			t.Errorf("%s: I$ miss rate %.4f%% below reporting threshold", name, 100*mr)
		}
	}
}

// TestVictimBufferWinsOnWupwise: the paper's one benchmark where the
// 16-entry victim buffer beats the B-Cache on the data side.
func TestVictimBufferWinsOnWupwise(t *testing.T) {
	p, err := workload.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	vc, err := victim.New(16*1024, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000_000; i++ {
		rec, _ := g.Next()
		if !rec.Kind.IsMem() {
			continue
		}
		w := rec.Kind == trace.Store
		bc.Access(rec.Mem, w)
		vc.Access(rec.Mem, w)
	}
	if vc.Stats().Misses >= bc.Stats().Misses {
		t.Fatalf("victim buffer (%d misses) did not beat B-Cache (%d) on wupwise",
			vc.Stats().Misses, bc.Stats().Misses)
	}
	// The defeat mechanism: wupwise's misses keep hitting the PD.
	if hr := bc.PDStats().HitRateDuringMiss(); hr < 0.5 {
		t.Errorf("wupwise PD hit rate during misses %.2f; expected the low-tag-bit collision", hr)
	}
}
