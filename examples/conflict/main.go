// Conflict walks through the paper's §2.2/§2.3 worked example, scaled to
// 32-byte lines: the address sequence 0,1,8,9 (words) thrashes a
// direct-mapped cache, hits like a 2-way cache in the B-Cache, and then
// addresses 25 and 13 demonstrate the two programmable-decoder miss
// situations (PD hit forcing the victim; PD miss exploiting replacement).
//
//	go run ./examples/conflict
package main

import (
	"fmt"
	"log"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
)

// word maps the paper's word addresses (8 one-byte sets) onto the scaled
// toy cache (8 frames of 32-byte lines).
func word(w int) addr.Addr { return addr.Addr(w * 32) }

func run(name string, c cache.Cache, seq []int, rounds int) {
	hits := 0
	for r := 0; r < rounds; r++ {
		for _, w := range seq {
			if c.Access(word(w), false).Hit {
				hits++
			}
		}
	}
	total := rounds * len(seq)
	fmt.Printf("  %-28s %2d/%2d hits\n", name, hits, total)
}

func main() {
	seq := []int{0, 1, 8, 9}
	const rounds = 4

	fmt.Printf("Access sequence %v repeated %d times on an 8-set toy cache:\n\n", seq, rounds)

	dm, err := cache.NewDirectMapped(256, 32)
	if err != nil {
		log.Fatal(err)
	}
	run("direct-mapped (Figure 1a)", dm, seq, rounds)

	w2, err := cache.NewSetAssoc(256, 32, 2, cache.LRU, nil)
	if err != nil {
		log.Fatal(err)
	}
	run("2-way (Figure 1b)", w2, seq, rounds)

	bc, err := core.New(core.Config{SizeBytes: 256, LineBytes: 32, MF: 2, BAS: 2, Policy: cache.LRU})
	if err != nil {
		log.Fatal(err)
	}
	run("B-Cache MF=2 BAS=2 (Fig 1c)", bc, seq, rounds)

	fmt.Println("\nThe direct-mapped cache never hits: 0/8 and 1/9 fight over two")
	fmt.Println("sets. The B-Cache reprograms two decoder entries and then behaves")
	fmt.Println("like the 2-way cache — while still activating one word line per access.")

	// §2.3, second situation: address 25's programmable index matches the
	// entry programmed for 9, so 25 MUST replace 9 (unique decoding).
	r := bc.Access(word(25), false)
	fmt.Printf("\nAccess 25: miss with a PD hit — evicted address %d (must be 9)\n",
		int(r.EvictedAddr/32))

	// §2.3, third situation: address 13 misses in the PD too; the miss is
	// predetermined and LRU picks the victim among both clusters.
	before := bc.PDStats()
	r = bc.Access(word(13), false)
	after := bc.PDStats()
	fmt.Printf("Access 13: miss with a PD miss (predetermined, %d decoder entry "+
		"reprogrammed) — LRU evicted address %d\n",
		after.Programmed-before.Programmed, int(r.EvictedAddr/32))

	if err := bc.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDecoding-uniqueness invariant verified: at most one word line")
	fmt.Println("can activate per access in every row.")
}
