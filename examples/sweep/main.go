// Sweep explores the B-Cache design space for one workload: miss rate
// and PD hit rate during misses across MF × BAS combinations, the §6.3
// trade-off behind the paper's choice of MF = 8, BAS = 8.
//
//	go run ./examples/sweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/trace"
	"bcache/internal/workload"
)

type access struct {
	a     addr.Addr
	write bool
}

func main() {
	bench := "gcc"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	profile, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize the data stream once and replay it per configuration.
	gen, err := workload.New(profile)
	if err != nil {
		log.Fatal(err)
	}
	var accs []access
	for i := 0; i < 2_000_000; i++ {
		rec, _ := gen.Next()
		if rec.Kind.IsMem() {
			accs = append(accs, access{rec.Mem, rec.Kind == trace.Store})
		}
	}

	dm, err := cache.NewDirectMapped(16*1024, 32)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range accs {
		dm.Access(a.a, a.write)
	}
	baseMisses := dm.Stats().Misses
	fmt.Printf("%s data cache, 16kB: direct-mapped miss rate %.2f%%\n\n",
		bench, 100*dm.Stats().MissRate())
	fmt.Printf("%-6s  %-6s  %-8s  %-12s  %-14s\n", "MF", "BAS", "PD-bits", "reduction", "pd-hit-on-miss")

	for _, bas := range []int{2, 4, 8} {
		for _, mf := range []int{1, 2, 4, 8, 16, 32} {
			bc, err := core.New(core.Config{
				SizeBytes: 16 * 1024, LineBytes: 32,
				MF: mf, BAS: bas, Policy: cache.LRU,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, a := range accs {
				bc.Access(a.a, a.write)
			}
			red := 1 - float64(bc.Stats().Misses)/float64(baseMisses)
			fmt.Printf("%-6d  %-6d  %-8d  %10.1f%%  %12.1f%%\n",
				mf, bas, bc.PDBits(), 100*red, 100*bc.PDStats().HitRateDuringMiss())
		}
		fmt.Println()
	}
	fmt.Println("The paper picks MF=8, BAS=8 (6 PD bits): the largest reduction")
	fmt.Println("whose decoder still fits the conventional decoder's time slack (§5.1).")
}
