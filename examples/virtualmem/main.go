// Virtualmem demonstrates the paper's two virtual-memory angles on one
// workload:
//
//  1. §6.8 — the B-Cache's programmable decoder needs three tag bits no
//     later than the index. With OS page coloring that preserves those
//     bits, a virtually-indexed, physically-tagged B-Cache behaves
//     exactly like a physically-indexed one.
//
//  2. §7.1 — the software alternative: a Cache Miss Lookaside buffer
//     detects conflicting pages and the OS recolors them, making a plain
//     direct-mapped cache behave "nearly as well as a two-way" — while
//     the B-Cache does better entirely in hardware.
//
//     go run ./examples/virtualmem [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/trace"
	"bcache/internal/vm"
	"bcache/internal/workload"
)

const (
	l1Size    = 16 * 1024
	l1Line    = 32
	pageBytes = 4096
	instrs    = 1_500_000
)

type access struct {
	va    addr.Addr
	write bool
}

func main() {
	bench := "equake"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	p, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}
	g, err := workload.New(p)
	if err != nil {
		log.Fatal(err)
	}
	var accs []access
	for i := 0; i < instrs; i++ {
		rec, _ := g.Next()
		if rec.Kind.IsMem() {
			accs = append(accs, access{rec.Mem, rec.Kind == trace.Store})
		}
	}
	fmt.Printf("%s: %d data accesses, %d-byte pages\n\n", bench, len(accs), pageBytes)

	// --- Part 1: VIPT B-Cache with page coloring (§6.8) ---
	// The decoders consume address bits [0, indexBits): offset + index +
	// log2(MF) = 5+9+3 = 17 bits. Coloring must preserve every one of
	// them that lies above the page offset: 17−12 = 5 frame bits.
	const indexBits = 17
	const colorBits = indexBits - 12 // log2(pageBytes) = 12
	colored, err := vm.NewAddressSpace(vm.Config{
		PageBytes: pageBytes, ColorBits: colorBits, Policy: vm.Colored, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	mkBC := func() *core.BCache {
		bc, err := core.New(core.Config{
			SizeBytes: l1Size, LineBytes: l1Line, MF: 8, BAS: 8, Policy: cache.LRU,
		})
		if err != nil {
			log.Fatal(err)
		}
		return bc
	}
	pipt := mkBC()
	for _, a := range accs {
		pipt.Access(colored.Translate(a.va), a.write)
	}
	tlb, err := vm.NewTLB(64)
	if err != nil {
		log.Fatal(err)
	}
	viptBC := mkBC()
	vipt, err := vm.NewVIPT(viptBC, colored, tlb, indexBits)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range accs {
		vipt.Access(a.va, a.write)
	}
	fmt.Println("§6.8 — virtually-indexed, physically-tagged B-Cache:")
	fmt.Printf("  physically indexed : %6.2f%% miss\n", 100*pipt.Stats().MissRate())
	fmt.Printf("  VIPT + coloring    : %6.2f%% miss  (TLB miss %.2f%%)\n",
		100*viptBC.Stats().MissRate(),
		100*float64(tlb.Misses)/float64(tlb.Hits+tlb.Misses))
	if pipt.Stats().Misses == viptBC.Stats().Misses {
		fmt.Println("  → identical, as §6.8 predicts: coloring preserves the PD's bits")
	}

	// --- Part 2: OS page recoloring vs the B-Cache (§7.1) ---
	run := func(recolor bool) (float64, uint64) {
		as, err := vm.NewAddressSpace(vm.Config{PageBytes: pageBytes, Policy: vm.Arbitrary, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		dm, err := cache.NewDirectMapped(l1Size, l1Line)
		if err != nil {
			log.Fatal(err)
		}
		var rc *vm.Recolorer
		if recolor {
			rc, err = vm.NewRecolorer(as, l1Size, 24)
			if err != nil {
				log.Fatal(err)
			}
		}
		for _, a := range accs {
			pa := as.Translate(a.va)
			if rc != nil {
				rc.Note(a.va, pa)
			}
			if !dm.Access(pa, a.write).Hit && rc != nil {
				rc.OnMiss(pa)
			}
		}
		var remaps uint64
		if rc != nil {
			remaps = rc.Remaps
		}
		return dm.Stats().MissRate(), remaps
	}
	plain, _ := run(false)
	recolored, remaps := run(true)

	w2, _ := cache.NewSetAssoc(l1Size, l1Line, 2, cache.LRU, nil)
	bc := mkBC()
	as, _ := vm.NewAddressSpace(vm.Config{PageBytes: pageBytes, Policy: vm.Arbitrary, Seed: 2})
	for _, a := range accs {
		pa := as.Translate(a.va)
		w2.Access(pa, a.write)
		bc.Access(pa, a.write)
	}

	fmt.Println("\n§7.1 — software recoloring vs hardware balancing:")
	fmt.Printf("  direct-mapped          : %6.2f%% miss\n", 100*plain)
	fmt.Printf("  DM + CML recoloring    : %6.2f%% miss  (%d pages moved)\n", 100*recolored, remaps)
	fmt.Printf("  2-way (the paper's bar): %6.2f%% miss\n", 100*w2.Stats().MissRate())
	fmt.Printf("  B-Cache MF=8 BAS=8     : %6.2f%% miss\n", 100*bc.Stats().MissRate())
}
