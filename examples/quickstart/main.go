// Quickstart: build a B-Cache, run a synthetic SPEC2K-style benchmark
// through it, and compare its miss rate against the direct-mapped
// baseline and an 8-way set-associative cache of the same size.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/trace"
	"bcache/internal/workload"
)

func main() {
	// The paper's 16 kB design point: MF = 8, BAS = 8, LRU replacement.
	bc, err := core.New(core.Config{
		SizeBytes: 16 * 1024,
		LineBytes: 32,
		MF:        8,
		BAS:       8,
		Policy:    cache.LRU,
	})
	if err != nil {
		log.Fatal(err)
	}
	dm, err := cache.NewDirectMapped(16*1024, 32)
	if err != nil {
		log.Fatal(err)
	}
	w8, err := cache.NewSetAssoc(16*1024, 32, 8, cache.LRU, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the data-access stream of the "equake" surrogate — the
	// paper's headline conflict-bound benchmark — through all three.
	profile, err := workload.ByName("equake")
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.New(profile)
	if err != nil {
		log.Fatal(err)
	}
	const instructions = 2_000_000
	for i := 0; i < instructions; i++ {
		rec, _ := gen.Next()
		if !rec.Kind.IsMem() {
			continue
		}
		write := rec.Kind == trace.Store
		dm.Access(rec.Mem, write)
		w8.Access(rec.Mem, write)
		bc.Access(rec.Mem, write)
	}

	fmt.Println("equake data-cache miss rates (16 kB, 32 B lines):")
	for _, c := range []cache.Cache{dm, w8, bc} {
		fmt.Printf("  %-24s %6.2f%%\n", c.Name(), 100*c.Stats().MissRate())
	}
	base := float64(dm.Stats().Misses)
	fmt.Printf("\nB-Cache removes %.1f%% of the direct-mapped misses "+
		"(8-way removes %.1f%%),\nwhile keeping direct-mapped single-probe access.\n",
		100*(1-float64(bc.Stats().Misses)/base),
		100*(1-float64(w8.Stats().Misses)/base))

	pd := bc.PDStats()
	fmt.Printf("\nProgrammable decoder: %.1f%% of misses were PD hits "+
		"(forced victims);\nthe rest chose their victim among %d frames and "+
		"reprogrammed a decoder entry.\n",
		100*pd.HitRateDuringMiss(), bc.Config().BAS)
}
