// Energy runs one benchmark end-to-end — out-of-order core, split L1s,
// unified L2, main memory — under several L1 organizations and reports
// IPC, per-access and total memory energy, area, and decoder slack: the
// whole paper's trade-off on one screen.
//
//	go run ./examples/energy [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"bcache/internal/area"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/cpu"
	"bcache/internal/energy"
	"bcache/internal/hier"
	"bcache/internal/timing"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

const (
	l1Size = 16 * 1024
	l1Line = 32
	instrs = 2_000_000
)

type config struct {
	name string
	kind energy.Kind
	new  func() (cache.Cache, error)
}

func main() {
	bench := "crafty"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	profile, err := workload.ByName(bench)
	if err != nil {
		log.Fatal(err)
	}

	configs := []config{
		{"direct-mapped", energy.DirectMapped, func() (cache.Cache, error) {
			return cache.NewDirectMapped(l1Size, l1Line)
		}},
		{"8-way", energy.Way8, func() (cache.Cache, error) {
			return cache.NewSetAssoc(l1Size, l1Line, 8, cache.LRU, nil)
		}},
		{"victim16", energy.VictimDM, func() (cache.Cache, error) {
			return victim.New(l1Size, l1Line, 16)
		}},
		{"B-Cache", energy.BCache, func() (cache.Cache, error) {
			return core.New(core.Config{SizeBytes: l1Size, LineBytes: l1Line, MF: 8, BAS: 8, Policy: cache.LRU})
		}},
	}

	params := energy.Defaults()
	var baseDyn float64
	var baseCycles uint64
	var staticPC float64

	fmt.Printf("%s, %d instructions, Table 4 platform:\n\n", bench, instrs)
	fmt.Printf("%-14s %8s %10s %12s %12s\n", "L1 config", "IPC", "D$ miss", "energy (µJ)", "vs baseline")

	for i, cfg := range configs {
		ic, err := cfg.new()
		if err != nil {
			log.Fatal(err)
		}
		dc, err := cfg.new()
		if err != nil {
			log.Fatal(err)
		}
		h, err := hier.New(ic, dc, hier.Defaults())
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.New(profile)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cpu.Run(gen, h, cpu.Defaults(), instrs)
		if err != nil {
			log.Fatal(err)
		}
		counts := energy.Counts{
			L1Accesses: ic.Stats().Accesses + dc.Stats().Accesses,
			L1Misses:   ic.Stats().Misses + dc.Stats().Misses,
			L2Accesses: h.L2.Stats().Accesses,
			L2Misses:   h.L2.Stats().Misses,
			Cycles:     res.Cycles,
		}
		if bc, ok := dc.(*core.BCache); ok {
			counts.PDPredictedMisses = bc.PDStats().MissPDMiss
		}
		dyn := params.Dynamic(cfg.kind, counts)
		if i == 0 {
			baseDyn, baseCycles = dyn, res.Cycles
			staticPC = params.StaticPerCycle(baseDyn, baseCycles)
		}
		tot := params.Total(cfg.kind, counts, staticPC).Total()
		baseTot := params.Total(energy.DirectMapped, energy.Counts{Cycles: baseCycles}, staticPC).Static + baseDyn
		fmt.Printf("%-14s %8.3f %9.2f%% %12.1f %11.3fx\n",
			cfg.name, res.IPC(), 100*dc.Stats().MissRate(), tot/1e6, tot/baseTot)
	}

	// Static analyses: area and decoder timing.
	base, _ := area.Baseline(l1Size, l1Line)
	bcArea, _ := area.BCache(core.Config{SizeBytes: l1Size, LineBytes: l1Line, MF: 8, BAS: 8})
	fmt.Printf("\nB-Cache area overhead: %.1f%% (paper: 4.3%%)\n", 100*bcArea.OverheadVs(base))

	worst := 1.0
	for _, r := range timing.Table1(6) {
		if r.Slack < worst {
			worst = r.Slack
		}
	}
	fmt.Printf("Worst-case decoder slack at 6 PD bits: %.3f ns (non-negative → "+
		"no access-time penalty, §5.1)\n", worst)
}
