package lint_test

import (
	"testing"

	"bcache/internal/lint"
	"bcache/internal/lint/analysistest"
)

// The fixture packages live under testdata/src so the repo-wide lint
// run (`go list ./...` skips testdata) never sees their seeded
// violations; each test loads them explicitly.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, lint.Determinism, "./testdata/src/determinism/...")
}

func TestProbeSafe(t *testing.T) {
	analysistest.Run(t, lint.ProbeSafe, "./testdata/src/probesafe/...")
}

func TestStatJSON(t *testing.T) {
	analysistest.Run(t, lint.StatJSON, "./testdata/src/statjson/...")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lint.LockDiscipline, "./testdata/src/lockdiscipline/...")
}

func TestAtomicDiscipline(t *testing.T) {
	analysistest.Run(t, lint.AtomicDiscipline, "./testdata/src/atomicdiscipline/...")
}

func TestSplitStream(t *testing.T) {
	analysistest.Run(t, lint.SplitStream, "./testdata/src/splitstream/...")
}

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, lint.GoroutineLife, "./testdata/src/goroutinelife/...")
}

// TestDirectives runs two analyzers over one fixture tree: a line that
// needs suppressions from both can carry the clauses in either order,
// and the hygiene findings fire per clause.
func TestDirectives(t *testing.T) {
	analysistest.RunAnalyzers(t,
		[]*lint.Analyzer{lint.SplitStream, lint.GoroutineLife},
		"./testdata/src/directive/...")
}

// TestOraclePair swaps in a fixture manifest: the good package keeps
// both twins and its differential test, the bad package has lost its
// oracle, one declared test, and the surviving test's oracle reference.
func TestOraclePair(t *testing.T) {
	defer func(old []lint.Pair) { lint.Manifest = old }(lint.Manifest)
	lint.Manifest = []lint.Pair{
		{
			Name:        "good-pair",
			Why:         "fixture",
			Pkg:         "testdata/src/oraclepair/good",
			Fast:        "Fast",
			Oracle:      "Oracle",
			TestPackage: "testdata/src/oraclepair/good",
			Tests:       []string{"TestFastMatchesOracle"},
		},
		{
			Name:        "bad-pair",
			Why:         "fixture",
			Pkg:         "testdata/src/oraclepair/bad",
			Fast:        "Fast",
			Oracle:      "Oracle",
			TestPackage: "testdata/src/oraclepair/bad",
			Tests:       []string{"TestGone", "TestIgnoresOracle"},
		},
	}
	analysistest.Run(t, lint.OraclePair, "./testdata/src/oraclepair/...")
}

// TestRepoTreeClean asserts the zero-findings invariant the ci target
// depends on: every pre-existing finding in the tree is fixed or
// carries a justified //bcachelint:allow. New violations fail here as
// well as in `make lint`.
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("re-type-checks the whole module; skipped in -short")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := pkg.RunAnalyzers(lint.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath(), err)
		}
		all = append(all, diags...)
	}
	lint.SortDiagnostics(all)
	for _, d := range lint.DedupDiagnostics(all) {
		t.Errorf("finding: %s", d.String())
	}
}
