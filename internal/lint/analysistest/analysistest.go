// Package analysistest runs a single analyzer over fixture packages
// under testdata/src and checks its diagnostics against // want
// comments, the same contract as x/tools/go/analysis/analysistest
// (reimplemented on the standard library because the build environment
// is offline).
//
// A want comment holds one or more quoted regular expressions and binds
// to its own source line:
//
//	time.Now() // want `wall-clock`
//	x, y = f() // want "first finding" "second finding"
//
// Every diagnostic on a line must be matched by exactly one want
// pattern on that line and vice versa; unmatched diagnostics and
// unmatched patterns both fail the test. Directive-hygiene findings
// (analyzer "directive") participate like any other diagnostic, so
// fixtures can also pin the stale/missing-reason behaviour.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bcache/internal/lint"
)

// Run loads the packages matching patterns (typically
// "./testdata/src/<analyzer>/...") and checks a's diagnostics against
// the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	RunAnalyzers(t, []*lint.Analyzer{a}, patterns...)
}

// RunAnalyzers is Run for a set of analyzers sharing one fixture tree.
// Directive fixtures need it: a line suppressing two analyzers at once
// can only be exercised when both run, otherwise the unused half is
// reported as stale.
func RunAnalyzers(t *testing.T, analyzers []*lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages match %v", patterns)
	}
	for _, pkg := range pkgs {
		diags, err := pkg.RunAnalyzers(analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath(), err)
		}
		checkWants(t, pkg.FileNames(), diags)
	}
}

// wantRe matches the trailing want clause of a line; patterns are
// double-quoted or backquoted Go strings.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRe extracts the individual quoted patterns of a want clause.
var patRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkWants compares diagnostics against the want comments of files.
func checkWants(t *testing.T, files []string, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats := patRe.FindAllString(m[1], -1)
			if len(pats) == 0 {
				t.Errorf("%s:%d: want comment with no quoted pattern", name, i+1)
				continue
			}
			for _, p := range pats {
				unq, err := strconv.Unquote(p)
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %s: %v", name, i+1, p, err)
					continue
				}
				re, err := regexp.Compile(unq)
				if err != nil {
					t.Errorf("%s:%d: bad want regexp %q: %v", name, i+1, unq, err)
					continue
				}
				wants = append(wants, &want{file: name, line: i + 1, re: re})
			}
		}
	}

	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
