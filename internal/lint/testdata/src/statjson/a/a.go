// Package a seeds statjson violations: untagged exported fields on
// structs that reach encoding/json (directly and through nesting) and a
// case-insensitive JSON name collision.
package a

import (
	"encoding/json"
	"io"
)

// Report reaches json.Marshal and json.Decoder.Decode below.
type Report struct {
	Tagged   int   `json:"tagged"`
	Untagged int   // want `statjson: exported field Report.Untagged reaches encoding/json without an explicit json tag`
	Skipped  int   `json:"-"`
	Nested   Inner `json:"nested"`
	hidden   int
}

// Inner is reached only through Report.Nested.
type Inner struct {
	Also int // want `statjson: exported field Inner.Also reaches encoding/json without an explicit json tag`
}

// Collide is fully tagged but its names differ only by case.
type Collide struct {
	HitPD int `json:"hitPD"`
	HitPd int `json:"hitpd"`
}

func emit(w io.Writer) error {
	if _, err := json.Marshal(&Report{hidden: 1}); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(Collide{}) // want `statjson: fields HitPD and HitPd of Collide collide case-insensitively`
}

// load re-reaches Report through a Decoder; findings are deduplicated
// per package, so the Report fields are reported once, above.
func load(r io.Reader) (Report, error) {
	var rep Report
	err := json.NewDecoder(r).Decode(&rep)
	return rep, err
}
