// Package b seeds statjson violations shaped like the telemetry wire
// types: a span record that reaches a JSONL encoder with one untagged
// field, and a progress document whose tags collide case-insensitively.
package b

import (
	"encoding/json"
	"io"
)

// Span mirrors the journal wire type; the JSONL schema is versioned, so
// every exported field must carry an explicit tag.
type Span struct {
	Kind          string `json:"kind"`
	Worker        int    `json:"worker"`
	StartUnixNano int64  `json:"startUnixNano"`
	DurNanos      int64  // want `statjson: exported field Span.DurNanos reaches encoding/json without an explicit json tag`
}

// Progress is fully tagged, but two names differ only by case — which
// Go's case-insensitive decoder conflates on the way back in.
type Progress struct {
	DoneUnits int `json:"doneUnits"`
	Doneunits int `json:"doneunits"`
}

// writeJSONL encodes spans one per line, reaching Span via pointer.
func writeJSONL(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeProgress(w io.Writer) error {
	return json.NewEncoder(w).Encode(Progress{}) // want `statjson: fields DoneUnits and Doneunits of Progress collide case-insensitively`
}
