// Package good is a healthy fast/oracle twin: both symbols exist and
// the differential test drives both.
package good

// Fast is the optimized engine.
type Fast struct{ state int }

// Oracle is the obviously-correct reference twin.
type Oracle struct{ state int }

// Step advances the fast engine.
func (f *Fast) Step() int { f.state += 2; return f.state / 2 }

// Step advances the oracle.
func (o *Oracle) Step() int { o.state++; return o.state }
