package good

import "testing"

// TestFastMatchesOracle is the differential test the manifest declares.
func TestFastMatchesOracle(t *testing.T) {
	f, o := &Fast{}, &Oracle{}
	for i := 0; i < 100; i++ {
		if got, want := f.Step(), o.Step(); got != want {
			t.Fatalf("step %d: fast %d, oracle %d", i, got, want)
		}
	}
}
