package bad // want `oraclepair: oracle pair "bad-pair": oracle symbol .*Oracle is gone` `oraclepair: oracle pair "bad-pair": differential test .*TestGone is gone`

// Fast has lost its Oracle twin and one of its manifest tests; the
// analyzer must report both against the manifest.
type Fast struct{ state int }

// Step advances the fast engine.
func (f *Fast) Step() int { f.state++; return f.state }
