package bad

import "testing"

// TestIgnoresOracle survives in name but no longer drives the oracle
// half of the pair.
func TestIgnoresOracle(t *testing.T) { // want `oraclepair: oracle pair "bad-pair": test TestIgnoresOracle no longer references Oracle`
	f := &Fast{}
	if f.Step() != 1 {
		t.Fatal("bad step")
	}
}
