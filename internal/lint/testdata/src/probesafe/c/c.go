// Package c exercises the probe contract in the shape the distribution
// layer uses it: a coordinator-like type carrying an optional Probe of
// lifecycle observations (lease grants, worker exits), emitted from an
// event loop. The rules are the same as the cache hot path — nil-guard
// every emission, never allocate an argument — because a campaign with
// telemetry detached must not pay for observation.
package c

// Probe is the fixture stand-in for an events sink.
type Probe interface {
	ObserveLease(worker, start, end int)
	ObserveExit(slot int, detail any)
}

type coord struct {
	probe Probe
}

type exitDetail struct{ code int }

// grant is the compliant emission from the event loop.
func (c *coord) grant(worker, start, end int) {
	if c.probe != nil {
		c.probe.ObserveLease(worker, start, end)
	}
}

// exitUnguarded emits without the nil check.
func (c *coord) exitUnguarded(slot int) {
	c.probe.ObserveExit(slot, nil) // want "not enclosed in an .if c.probe != nil. guard"
}

// exitAllocates guards correctly but builds a composite literal per
// emission.
func (c *coord) exitAllocates(slot, code int) {
	if c.probe != nil {
		c.probe.ObserveExit(slot, &exitDetail{code: code}) // want `probesafe: probe emission argument is a pointer to composite literal`
	}
}

// exitReused passes a pre-built detail; nothing allocates per call.
func (c *coord) exitReused(slot int, d *exitDetail) {
	if c.probe != nil {
		c.probe.ObserveExit(slot, d)
	}
}
