// Package b exercises the probe hot-path contract at telemetry-shaped
// emission sites: a scheduler-like hub forwarding span and counter
// events to an optional Probe sink.
package b

// Probe is the fixture stand-in for a telemetry sink.
type Probe interface {
	ObserveSpan(kind string, worker, unit int)
	ObserveCount(n uint64)
	ObserveAny(v any)
}

type span struct {
	kind         string
	worker, unit int
}

type hub struct {
	probe Probe
}

// unitDone is the compliant emission: guarded, scalar arguments.
func (h *hub) unitDone(worker, unit int) {
	if h.probe != nil {
		h.probe.ObserveSpan("unit", worker, unit)
	}
}

// retry forgets the guard on the retry path — the classic miss, since
// retries are rare enough that a nil probe panic hides for weeks.
func (h *hub) retry(worker, unit int) {
	h.probe.ObserveSpan("retry", worker, unit) // want "not enclosed in an .if h.probe != nil. guard"
}

// record builds a composite span per emission, allocating on the hot
// path even when the sink drops it.
func (h *hub) record(worker, unit int) {
	if h.probe != nil {
		h.probe.ObserveAny(span{"unit", worker, unit}) // want `probesafe: probe emission argument is a composite literal`
	}
}

// batched is the hoisted remedy: counts accumulate locally and flush as
// one scalar.
func (h *hub) batched(n uint64) {
	if h.probe != nil {
		h.probe.ObserveCount(n)
	}
}
