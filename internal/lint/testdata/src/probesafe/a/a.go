// Package a exercises the probe hot-path contract on a fixture Probe
// interface (the analyzer matches any interface named Probe declared in
// a testdata package or a package ending in internal/cache).
package a

// Probe is the fixture stand-in for cache.Probe.
type Probe interface {
	ObserveAccess(frame int, hit, write bool)
	ObserveFunc(f func())
	ObserveAny(v any)
}

type payload struct{ a, b int }

type model struct {
	probe Probe
}

// guarded is the contract-compliant emission.
func (m *model) guarded(frame int) {
	if m.probe != nil {
		m.probe.ObserveAccess(frame, true, false)
	}
}

// guardedChain accepts the guard inside a && chain.
func (m *model) guardedChain(frame int, on bool) {
	if on && m.probe != nil {
		m.probe.ObserveAccess(frame, false, false)
	}
}

// unguarded misses the nil check entirely.
func (m *model) unguarded(frame int) {
	m.probe.ObserveAccess(frame, true, false) // want "not enclosed in an .if m.probe != nil. guard"
}

// wrongGuard checks a different receiver's probe.
func (m *model) wrongGuard(other *model, frame int) {
	if other.probe != nil {
		m.probe.ObserveAccess(frame, true, false) // want "not enclosed in an .if m.probe != nil. guard"
	}
}

// elseBranch emits on the un-guarded arm of the if.
func (m *model) elseBranch(frame int) {
	if m.probe != nil {
		_ = frame
	} else {
		m.probe.ObserveAccess(frame, false, false) // want "not enclosed in an .if m.probe != nil. guard"
	}
}

// closureArg allocates a function literal per emission.
func (m *model) closureArg() {
	if m.probe != nil {
		m.probe.ObserveFunc(func() {}) // want `probesafe: probe emission argument is a function literal`
	}
}

// compositeArg allocates a composite literal per emission.
func (m *model) compositeArg() {
	if m.probe != nil {
		m.probe.ObserveAny(payload{1, 2}) // want `probesafe: probe emission argument is a composite literal`
	}
}

// pointerArg allocates a pointed-to composite literal per emission.
func (m *model) pointerArg() {
	if m.probe != nil {
		m.probe.ObserveAny(&payload{1, 2}) // want `probesafe: probe emission argument is a pointer to composite literal`
	}
}

// methodValue binds a probe method, which allocates a closure.
func (m *model) methodValue() func(int, bool, bool) {
	return m.probe.ObserveAccess // want `probesafe: method value m.probe.ObserveAccess allocates a closure`
}

// hoisted passes pre-built values: no per-emission allocation.
func (m *model) hoisted(p *payload) {
	if m.probe != nil {
		m.probe.ObserveAny(p)
	}
}
