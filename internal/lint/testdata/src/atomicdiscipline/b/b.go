// Package b is the cross-package half of the atomicdiscipline fixture:
// it never calls sync/atomic itself, so the plain read below is only
// detectable through the atomicField fact package a exported.
package b

import "bcache/internal/lint/testdata/src/atomicdiscipline/a"

func drain(c *a.Counter) uint64 {
	return c.Ops // want `plain access to Counter\.Ops, which is accessed with sync/atomic elsewhere`
}

// auditedDrain reads plainly under a reviewed suppression.
func auditedDrain(c *a.Counter) uint64 {
	//bcachelint:allow atomicdiscipline(fixture: all writer goroutines are joined before this read)
	return c.Ops
}
