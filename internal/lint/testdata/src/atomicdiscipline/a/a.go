// Package a exercises atomicdiscipline: a field accessed through
// sync/atomic anywhere must be accessed atomically everywhere, and
// 64-bit atomics must land on 8-byte offsets under 32-bit layout.
package a

import "sync/atomic"

// C keeps its 64-bit atomic first, so 386 layout aligns it.
type C struct {
	ops uint64
	pad int32
}

// Inc is the sanctioned access.
func (c *C) Inc() { atomic.AddUint64(&c.ops, 1) }

// Read races Inc: a plain load of an atomically-written word.
func (c *C) Read() uint64 {
	return c.ops // want `plain access to C\.ops, which is accessed with sync/atomic elsewhere`
}

// NewC touches ops before the value escapes; constructor-local writes
// are exempt.
func NewC() *C {
	c := &C{}
	c.ops = 1
	return c
}

// reset carries an audited suppression for a deliberate plain write.
func (c *C) reset() {
	//bcachelint:allow atomicdiscipline(fixture: reset runs single-threaded between benchmark rounds)
	c.ops = 0
}

// M misplaces its 64-bit atomic after an int32: offset 4 under 386
// rules, where AddInt64 would fault or tear.
type M struct {
	flag int32
	n    int64 // want `64-bit atomic field M\.n is at offset 4 under 32-bit layout`
}

func (m *M) bump() { atomic.AddInt64(&m.n, 1) }

// Counter is the cross-package fixture: Ops is exported and its
// atomicField fact follows it into importing packages.
type Counter struct {
	Ops uint64
}

// Inc is Counter's only in-package access — atomic, so package b's
// plain read is caught purely by the imported fact.
func (c *Counter) Inc() { atomic.AddUint64(&c.Ops, 1) }
