// Package b is the cross-package half of the splitstream fixture: the
// closure below never appears near a `go` statement here — only the
// concurrentRunner fact exported by package a marks it as a goroutine
// body.
package b

import (
	"bcache/internal/lint/testdata/src/splitstream/a"
	"bcache/internal/lint/testdata/src/splitstream/rng"
)

func crossRunner(shared *rng.Source) {
	a.Run(4, func(i int) {
		_ = shared.Uint64() // want `captures shared rng source shared`
	})
}

func crossRunnerSplit(shared *rng.Source) {
	a.Run(4, func(i int) {
		child := shared.Split(uint64(i))
		_ = child.Uint64()
	})
}
