// Package rng is the splitstream fixture's stand-in for
// bcache/internal/rng: the analyzer matches any Source/Rand type from a
// package whose import path ends in "rng".
package rng

// Source is a trivially deterministic stream.
type Source struct{ s uint64 }

// New seeds a source.
func New(seed uint64) *Source { return &Source{s: seed} }

// Split derives an independent child stream without consuming values.
func (r *Source) Split(stream uint64) *Source { return &Source{s: r.s ^ (stream + 1)} }

// Uint64 draws the next value.
func (r *Source) Uint64() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}
