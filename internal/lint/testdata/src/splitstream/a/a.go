// Package a exercises splitstream: goroutine bodies — literal `go`
// statements and closures handed to concurrent runners — must not
// capture shared rng sources or loop variables, nor range over maps.
package a

import (
	"sync"

	"bcache/internal/lint/testdata/src/splitstream/rng"
)

// Run launches fn on n goroutines. The fn parameter is referenced
// under a go statement, so Run is a concurrent runner and exports a
// concurrentRunner fact for parameter 1.
func Run(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// sharedStream is the classic nondeterminism bug: every worker draws
// from one stream, so values depend on scheduling, and the body closes
// over the range variable instead of binding it.
func sharedStream(src *rng.Source, shards []int) {
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = src.Uint64() // want `captures shared rng source src`
			_ = s            // want `captures loop variable s`
		}()
	}
	wg.Wait()
}

// splitStream is the sanctioned shape: each worker gets its own child
// stream, derived outside the body, and the index arrives as a
// parameter.
func splitStream(src *rng.Source, shards []int) {
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(child *rng.Source) {
			defer wg.Done()
			_ = child.Uint64()
		}(src.Split(uint64(i)))
	}
	wg.Wait()
}

// splitInBody is also fine: the captured source is only ever a Split
// receiver, which consumes no values from the parent stream.
func splitInBody(src *rng.Source) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		child := src.Split(7)
		_ = child.Uint64()
	}()
	<-done
}

// mapRange iterates a map inside a spawned body; iteration order is
// per-goroutine nondeterministic.
func mapRange(m map[int]int) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := range m { // want `ranges over a map`
			_ = k
		}
	}()
	<-done
}

// runnerClosure reaches the same bug through the runner: the closure
// handed to Run is a goroutine body by the concurrentRunner fact.
func runnerClosure(src *rng.Source) {
	Run(2, func(i int) {
		_ = src.Uint64() // want `captures shared rng source src`
	})
}

// runnerSplit is the compliant runner use.
func runnerSplit(src *rng.Source) {
	Run(2, func(i int) {
		child := src.Split(uint64(i))
		_ = child.Uint64()
	})
}

// audited keeps a shared stream on purpose, with the review recorded.
func audited(src *rng.Source) {
	Run(1, func(i int) {
		//bcachelint:allow splitstream(fixture: single worker, draws are sequential by construction)
		_ = src.Uint64()
	})
}
