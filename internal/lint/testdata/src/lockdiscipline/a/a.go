// Package a exercises the lockdiscipline contract on fixture types:
// *Locked call sites, `guarded by` fields, lock copies, and unlock
// coverage on multi-return paths.
package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// NewS initializes the guarded field before the value is shared;
// function-local construction is exempt.
func NewS() *S {
	s := &S{}
	s.n = 1
	return s
}

// bumpLocked relies on its caller holding s.mu; the Locked suffix is
// the contract, and its own guarded access is covered by it.
func (s *S) bumpLocked() { s.n++ }

// Bump is the compliant caller.
func (s *S) Bump() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}

// BumpDeferred holds the lock through a defer.
func (s *S) BumpDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

// Bad calls the Locked helper with no lock in sight.
func (s *S) Bad() {
	s.bumpLocked() // want `call to bumpLocked without holding s\.mu`
}

// BadField touches the guarded field directly without the mutex.
func (s *S) BadField() {
	s.n++ // want `access to s\.n \(guarded by mu\) without holding s\.mu`
}

// BadAfterUnlock re-touches guarded state after releasing.
func (s *S) BadAfterUnlock() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
	s.n = 0 // want `access to s\.n \(guarded by mu\) without holding s\.mu`
}

// Get shows the early-exit idiom the positional heuristic must accept:
// the Unlock inside the if-block does not release the straight-line
// path to the later guarded access.
func (s *S) Get(fast bool) int {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return -1
	}
	v := s.n
	s.mu.Unlock()
	return v
}

// Leak exits while holding the mutex on one path and defers nothing.
func (s *S) Leak(x bool) int {
	s.mu.Lock() // want `s\.mu is locked but 1 return path\(s\) never release it`
	if x {
		return 1
	}
	s.mu.Unlock()
	return 0
}

// copyBad duplicates lock state by dereference.
func copyBad(s *S) S {
	t := *s // want `copies S, which contains a mutex`
	return t
}

// passBad smuggles the mutex in by value.
func passBad(s S) int { // want `parameter passes S by value`
	return 0
}

// audited carries a reviewed suppression; the call is not reported and
// the directive is not stale.
func audited(s *S) {
	//bcachelint:allow lockdiscipline(fixture: caller holds s.mu by construction in the harness)
	s.bumpLocked()
}

// R is the cross-package fixture: the mutex is exported so callers in
// package b can hold it, and FlushLocked exports a requiresHeld fact.
type R struct {
	Mu  sync.Mutex
	buf []int // guarded by Mu
}

// FlushLocked must be entered with r.Mu held.
func (r *R) FlushLocked() { r.buf = nil }
