// Package b is the cross-package half of the lockdiscipline fixture:
// package a's exported FlushLocked carries a requiresHeld fact naming
// its mutex field Mu, and callers here are checked against it.
package b

import "bcache/internal/lint/testdata/src/lockdiscipline/a"

// good holds the exported mutex across the Locked call.
func good(r *a.R) {
	r.Mu.Lock()
	r.FlushLocked()
	r.Mu.Unlock()
}

// bad calls across the package boundary with nothing held.
func bad(r *a.R) {
	r.FlushLocked() // want `call to FlushLocked without holding r\.Mu`
}

// auditedCross suppresses the cross-package finding with a reviewed
// reason.
func auditedCross(r *a.R) {
	//bcachelint:allow lockdiscipline(fixture: r is still confined to the calling test at this point)
	r.FlushLocked()
}
