// Package a pins //bcachelint:allow directive handling when one line
// needs suppressions from several analyzers: the clauses may appear in
// any order, and the hygiene findings (stale, missing reason,
// malformed) still fire per clause. The fixture runs under both
// splitstream and goroutinelife so each clause has a finding to
// consume.
package a

import "bcache/internal/lint/testdata/src/splitstream/rng"

// both suppresses two analyzers from one comment, goroutinelife first.
func both(src *rng.Source) {
	//bcachelint:allow goroutinelife(order fixture: lifecycle audited) splitstream(order fixture: stream audited)
	go func() { _ = src.Uint64() }()
}

// bothReversed is the same line with the clauses swapped; order must
// not matter.
func bothReversed(src *rng.Source) {
	//bcachelint:allow splitstream(order fixture: stream audited) goroutinelife(order fixture: lifecycle audited)
	go func() { _ = src.Uint64() }()
}

// half suppresses only one of the two findings; the other still
// reports.
func half(src *rng.Source) {
	//bcachelint:allow goroutinelife(order fixture: lifecycle audited)
	go func() { _ = src.Uint64() }() // want `captures shared rng source src`
}

// stale carries a directive with nothing to suppress.
func stale() {
	//bcachelint:allow goroutinelife(nothing here suppresses this) // want `stale bcachelint:allow goroutinelife directive`
}

// emptyReason uses a suppression that forgot its why.
func emptyReason(src *rng.Source, done chan struct{}) {
	go func() {
		<-done
		//bcachelint:allow splitstream() // want `has no reason`
		_ = src.Uint64()
	}()
}

// malformed is missing its parentheses entirely.
func malformed(done chan struct{}) {
	//bcachelint:allow splitstream // want `malformed bcachelint directive`
	go func() { <-done }()
}
