// Package b is the cross-package half of the goroutinelife fixture:
// `go a.Pump(...)` is only provably bounded because package a exported
// a stopEdge fact for Pump; NoEdge has no fact and stays a finding.
package b

import "bcache/internal/lint/testdata/src/goroutinelife/a"

func crossSpawn(ch chan int, stop chan struct{}) {
	go a.Pump(ch, stop)
	go a.NoEdge() // want `no provable join/stop edge`
}
