// Package a exercises goroutinelife: every go statement needs a
// provable join/stop edge — WaitGroup pairing, a done/stop channel
// receive, or a context check.
package a

import (
	"context"
	"sync"
)

// leak is fire-and-forget with no edge at all.
func leak() {
	go func() { // want `no provable join/stop edge`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// joined pairs wg.Add in the spawner with wg.Done in the body.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// stopped blocks on a stop channel.
func stopped(done chan struct{}) {
	go func() {
		<-done
	}()
}

// ctxBound polls context liveness.
func ctxBound(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
		}
	}()
}

// Pump drains ch until stop closes. Its body carries its own stop
// edge, so the analyzer exports a stopEdge fact and a bare
// `go a.Pump(...)` is fine even from another package.
func Pump(ch chan int, stop chan struct{}) {
	for {
		select {
		case <-ch:
		case <-stop:
			return
		}
	}
}

// NoEdge spins forever; spawning it bare anywhere is a leak.
func NoEdge() {
	for {
	}
}

// spawnNamed covers named-function spawns in both directions.
func spawnNamed(ch chan int, stop chan struct{}) {
	go Pump(ch, stop)
	go NoEdge() // want `no provable join/stop edge`
}

// audited records why a process-lifetime goroutine is allowed to
// outlive its spawner.
func audited() {
	//bcachelint:allow goroutinelife(fixture: process-lifetime background loop, reaped at exit)
	go NoEdge()
}
