// Package d pins the distribution-layer idioms (internal/dist): lease
// tables key leases by ID in maps, and every emission — expiry sweeps,
// worker reclaims, stats rows — must leave in sorted order; all lease
// timing flows through explicit `now` parameters fed by the clock seam,
// never a wall read inside the table.
package d

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

type lease struct {
	id     int
	worker int
	expiry time.Time
}

type table struct {
	leases map[int]*lease
}

// expiredSorted is the canonical sweep: collect IDs, sort, then emit.
// The deadline arrives as a parameter — the table never reads a clock.
func (t *table) expiredSorted(now time.Time) []int {
	var ids []int
	for id, l := range t.leases {
		if l.expiry.Before(now) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// expiredLeases emits lease structs in map order and never sorts — the
// re-lease schedule would depend on Go's map seed, not the campaign's.
func (t *table) expiredLeases(now time.Time) []*lease {
	var out []*lease
	for _, l := range t.leases { // want `determinism: range over map emits per-iteration output`
		if l.expiry.Before(now) {
			out = append(out, l)
		}
	}
	return out
}

// expiredWall reads the wall clock inside the table instead of taking
// `now` from the caller's clock seam.
func (t *table) expiredWall() []int {
	now := time.Now() // want `determinism: call to time.Now`
	var ids []int
	for id, l := range t.leases {
		if l.expiry.Before(now) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// reclaim renders a worker's lease report row-by-row straight off the
// map — the log line order would differ run to run.
func (t *table) reclaim(worker int) string {
	var b strings.Builder
	for id, l := range t.leases { // want `determinism: range over map emits per-iteration output`
		if l.worker == worker {
			fmt.Fprintf(&b, "lease %d returned\n", id)
		}
	}
	return b.String()
}

// reclaimSorted is the remedy: the sorted ID pass drives the emission.
func (t *table) reclaimSorted(worker int) string {
	var ids []int
	for id, l := range t.leases {
		if l.worker == worker {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "lease %d returned\n", id)
	}
	return b.String()
}

// countLive aggregates commutatively; map order cannot leak.
func (t *table) countLive(now time.Time) int {
	n := 0
	for _, l := range t.leases {
		if !l.expiry.Before(now) {
			n++
		}
	}
	return n
}
