// Package b pins the //bcachelint:allow directive semantics: a
// directive suppresses exactly one line, must carry a reason, and must
// suppress something.
package b

import "time"

// allowed carries a justified suppression; only this line is exempt.
func allowed() int64 {
	return time.Now().Unix() //bcachelint:allow determinism(fixture: harness wall time, never reaches results)
}

// unallowed is the identical violation a few lines later and must still
// be flagged — suppression is line-scoped, not file-scoped.
func unallowed() int64 {
	return time.Now().Unix() // want `determinism: call to time.Now`
}

// reasonless suppresses its violation but gives no reason, which is
// itself a finding (the time.Now diagnostic stays suppressed).
func reasonless() int64 {
	//bcachelint:allow determinism() // want `directive: bcachelint:allow determinism\(\) has no reason`
	return time.Now().Unix()
}

//bcachelint:allow determinism(suppresses nothing) // want `directive: stale bcachelint:allow determinism directive`
func unrelated() {}
