// Package e pins the set-parallel replay and trace-spill idioms: every
// shard of a sharded replay draws from its own deterministically split
// seeded stream (never the global math/rand stream, whose draw order
// would depend on worker interleaving), and the spill index — a map
// keyed by trace key — always emits its listing through a sorted slice,
// never in map iteration order.
package e

import (
	"fmt"
	"math/rand" // want `determinism: import of "math/rand"`
	"sort"
	"strings"
)

// splitSource models the sanctioned per-set randomness: a seeded
// SplitMix-style stream forked per shard from the parent seed, so shard
// i's draws are a pure function of (seed, i) no matter which worker
// runs it or in what order shards finish.
type splitSource struct{ state uint64 }

func newSplit(seed uint64) *splitSource { return &splitSource{state: seed} }

// split forks the stream for one set shard — the determinism seam the
// set-parallel replay depends on.
func (s *splitSource) split(shard uint64) *splitSource {
	return &splitSource{state: s.state ^ (shard+1)*0x9e3779b97f4a7c15}
}

func (s *splitSource) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	return z ^ z>>27
}

// shardedVictims is the canonical pattern: each shard's victim picks
// come from its own split stream, independent of scheduling.
func shardedVictims(seed uint64, shards, picks int) [][]uint64 {
	parent := newSplit(seed)
	out := make([][]uint64, shards)
	for i := range out {
		src := parent.split(uint64(i))
		for j := 0; j < picks; j++ {
			out[i] = append(out[i], src.next())
		}
	}
	return out
}

// globalVictims draws shard victims from the global stream (the import
// is the finding): the picks depend on how workers interleave.
func globalVictims(shards int) []int {
	out := make([]int, shards)
	for i := range out {
		out[i] = rand.Int()
	}
	return out
}

// spillSlot models one on-disk entry of a trace-spill index.
type spillSlot struct {
	path string
	size int64
}

// listSpilledSorted is the canonical listing: collect the keys, sort,
// then emit — the order is a function of the content, not the map seed.
func listSpilledSorted(spilled map[string]*spillSlot) []string {
	keys := make([]string, 0, len(spilled))
	for k := range spilled {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// renderSpillTable emits the index rows in map iteration order: two
// runs of the same campaign would render differently.
func renderSpillTable(spilled map[string]*spillSlot) string {
	var b strings.Builder
	for k, s := range spilled { // want `determinism: range over map emits per-iteration output`
		fmt.Fprintf(&b, "%s %d\n", k, s.size)
	}
	return b.String()
}

// sumSpillBytes never emits per-entry output; order-independent
// reduction over a map is fine without annotation.
func sumSpillBytes(spilled map[string]*spillSlot) int64 {
	var total int64
	for _, s := range spilled {
		total += s.size
	}
	return total
}
