// Package a seeds one violation of each determinism rule alongside the
// canonical remedies, which must pass without annotation.
package a

import (
	"fmt"
	"math/rand" // want `determinism: import of "math/rand"`
	"sort"
	"strings"
	"time"
)

// clock reads the wall clock, leaking run time into results.
func clock() int64 {
	return time.Now().Unix() // want `determinism: call to time.Now`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `determinism: call to time.Since`
}

func tick(d time.Duration) *time.Ticker {
	return time.NewTicker(d) // want `determinism: call to time.NewTicker`
}

// globalRand draws from the global stream (the import is the finding).
func globalRand() int { return rand.Int() }

// render emits rows in map iteration order through a writer.
func render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want `determinism: range over map emits per-iteration output`
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// build emits through a Builder method rather than fmt.
func build(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `determinism: range over map emits per-iteration output`
		b.WriteString(k)
	}
	return b.String()
}

// collect appends in iteration order and never sorts the result.
func collect(m map[string]int) []string {
	var out []string
	for k := range m { // want `determinism: range over map emits per-iteration output`
		out = append(out, k)
	}
	return out
}

// sortedCollect is the canonical remedy: collect, then sort.
func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedRender ranges the sorted key slice, never the map itself.
func sortedRender(m map[string]int) string {
	var b strings.Builder
	for _, k := range sortedCollect(m) {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// orderFree aggregates commutatively; iteration order cannot leak.
func orderFree(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
