// Package c pins the clock-seam pattern the telemetry layer relies on:
// every wall-clock read flows through a Clock interface whose single
// concrete implementation carries the audited allow, tests substitute a
// fake, and any time.Now call outside the seam is still a finding.
package c

import "time"

// Clock is the seam. Code that needs the time asks a Clock; only the
// wall implementation below touches the real clock.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type wall struct{}

// Now is the one sanctioned wall read behind the seam.
func (wall) Now() time.Time {
	return time.Now() //bcachelint:allow determinism(fixture clock seam: the single audited wall read; consumers receive time via Clock)
}

// Sleep delegates to the runtime; time.Sleep is not a banned call — it
// reads no clock value into results.
func (wall) Sleep(d time.Duration) { time.Sleep(d) }

// fake is the test half of the seam: manual advance, no wall reads.
type fake struct{ now time.Time }

func (f *fake) Now() time.Time        { return f.now }
func (f *fake) Sleep(d time.Duration) { f.now = f.now.Add(d) }

// stamp consumes the seam; nothing to flag.
func stamp(c Clock) int64 { return c.Now().UnixNano() }

// sidestep bypasses the seam, which is exactly what the analyzer exists
// to catch — an allow on the wall implementation does not bless the
// package.
func sidestep() int64 {
	return time.Now().UnixNano() // want `determinism: call to time.Now`
}
