package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Cross-package facts.
//
// The concurrency analyzers need to see across package boundaries: a
// caller of dist's exported ...Locked helper must hold the right mutex
// even though the helper's body lives in another compilation, and a
// closure handed to an exported goroutine-spawning runner must obey the
// split-stream rules even though the `go` statement is elsewhere. The
// x/tools framework solves this with typed facts serialized into .vetx
// files; this file is the stdlib reimplementation: a Fact is one
// (object, kind, detail) triple exported by a package's analyzers and
// visible to every package that imports it.
//
// Facts flow two ways, mirroring the two drive modes:
//
//   - standalone (Load): `go list -deps` emits dependencies before
//     dependents, Load preserves that order, and every checkedPackage
//     of one Load shares a factStore — by the time a package's
//     analyzers run, its in-module dependencies' facts are already in
//     the store.
//   - vet (`go vet -vettool=`): the go command hands each unit the
//     .vetx paths of its dependencies (PackageVetx) and requires one
//     back (VetxOutput). Units decode the former into their store and
//     encode their own facts into the latter.
//
// The encoding is deliberately boring — a version line plus one JSON
// object per fact, sorted and deduplicated — so that the same tree
// always produces byte-identical .vetx files (`make lint-facts-clean`
// gates on exactly this; nondeterministic fact encoding would defeat
// the go command's vet caching and mask real diffs).

// Fact kinds exported by the concurrency analyzers.
const (
	// FactRequiresHeld marks a ...Locked function or method; Detail is
	// the mutex field of the receiver the caller must hold ("" when the
	// receiver declares none).
	FactRequiresHeld = "requiresHeld"
	// FactAtomicField marks a struct field accessed through sync/atomic
	// in its defining package; Detail is the operand width ("32"/"64").
	FactAtomicField = "atomicField"
	// FactConcurrentRunner marks a function that launches one of its
	// func-typed parameters on a goroutine (directly or through a
	// same-package invoker); Detail is the decimal parameter index.
	FactConcurrentRunner = "concurrentRunner"
	// FactStopEdge marks a function whose body carries its own join or
	// stop edge (channel receive, context check, WaitGroup.Done), so a
	// bare `go pkg.F(...)` of it is not a leak.
	FactStopEdge = "stopEdge"
)

// A Fact is one exported statement about a package-level object.
// Object is "Func" for functions and "Type.Member" for methods and
// fields; Kind is one of the Fact* constants; Detail is kind-specific.
type Fact struct {
	Object string `json:"object"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// factStore accumulates facts per base (undecorated) package path for
// one analysis run. It is confined to the analysis goroutine; no lock.
type factStore struct {
	byPkg map[string]map[Fact]bool
}

func newFactStore() *factStore {
	return &factStore{byPkg: map[string]map[Fact]bool{}}
}

// add records one fact for pkg (base path). Duplicate adds — the plain
// and test-variant compilations analyze the same files — collapse.
func (s *factStore) add(pkg string, f Fact) {
	m := s.byPkg[pkg]
	if m == nil {
		m = map[Fact]bool{}
		s.byPkg[pkg] = m
	}
	m[f] = true
}

// facts returns pkg's facts sorted by (Object, Kind, Detail).
func (s *factStore) facts(pkg string) []Fact {
	m := s.byPkg[pkg]
	if len(m) == 0 {
		return nil
	}
	out := make([]Fact, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Detail < b.Detail
	})
	return out
}

// vetxHeader is the first line of a bcachelint fact file. Files without
// it (including the pre-facts "bcachelint-no-facts" stubs) decode as
// empty — a tool version skew degrades to suffix-only checking, never
// to an error.
const vetxHeader = "bcachelint-facts v1"

// encode renders pkg's facts in the stable .vetx form: the header line
// followed by one canonical JSON object per fact, sorted. The output is
// a pure function of the fact set, so two runs over an unchanged tree
// produce byte-identical files.
func (s *factStore) encode(pkg string) []byte {
	var buf bytes.Buffer
	buf.WriteString(vetxHeader)
	buf.WriteByte('\n')
	for _, f := range s.facts(pkg) {
		b, err := json.Marshal(f)
		if err != nil {
			continue // a Fact of plain strings cannot fail to marshal
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// decodeInto parses one fact file into pkg's slot. Unknown headers and
// malformed lines are skipped, not fatal: a stale or foreign .vetx must
// never break the build it is meant to check.
func (s *factStore) decodeInto(pkg string, data []byte) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || sc.Text() != vetxHeader {
		return
	}
	for sc.Scan() {
		var f Fact
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			continue
		}
		if f.Object == "" || f.Kind == "" {
			continue
		}
		s.add(pkg, f)
	}
}

// ExportFact records a fact about a package-level object of the current
// package, visible to every later-analyzed package that imports it.
func (p *Pass) ExportFact(object, kind, detail string) {
	if p.facts == nil {
		return
	}
	p.facts.add(p.BasePkgPath(), Fact{Object: object, Kind: kind, Detail: detail})
}

// ImportedFacts returns the facts of kind exported by pkgPath (a base
// import path), in sorted order. It answers from the shared store, so
// it sees the current package's own facts too — callers that want only
// foreign facts filter by package themselves.
func (p *Pass) ImportedFacts(pkgPath, kind string) []Fact {
	if p.facts == nil {
		return nil
	}
	var out []Fact
	for _, f := range p.facts.facts(pkgPath) {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// FindImportedFact looks up the single fact (kind, object) in pkgPath.
func (p *Pass) FindImportedFact(pkgPath, kind, object string) (Fact, bool) {
	for _, f := range p.ImportedFacts(pkgPath, kind) {
		if f.Object == object {
			return f, true
		}
	}
	return Fact{}, false
}

// vetxFileName maps an import path to the file name used by the
// -write-facts directory ("bcache/internal/dist" → bcache_internal_dist.vetx).
func vetxFileName(pkgPath string) string {
	return strings.ReplaceAll(pkgPath, "/", "_") + ".vetx"
}

// WriteFacts writes one .vetx fact file per analyzed base package into
// dir (created if absent). RunAnalyzers must have run on each package
// first — facts are a product of analysis. The files use the same
// stable encoding as vet-mode VetxOutput, which is what `make
// lint-facts-clean` diffs across two runs to prove the encoding (and
// the analyzers feeding it) deterministic.
func WriteFacts(pkgs []*checkedPackage, dir string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, cp := range pkgs {
		if cp.facts == nil {
			continue
		}
		base := basePkgPath(cp.pkgPath)
		if seen[base] {
			continue
		}
		seen[base] = true
		name := filepath.Join(dir, vetxFileName(base))
		if err := os.WriteFile(name, cp.facts.encode(base), 0o666); err != nil {
			return err
		}
	}
	return nil
}

// objectName renders the fact-object form of a package-level function,
// method, or field: "Func", "Type.Method", or "Type.Field".
func objectName(recvOrType, member string) string {
	if recvOrType == "" {
		return member
	}
	return fmt.Sprintf("%s.%s", recvOrType, member)
}
