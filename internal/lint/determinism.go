package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces bit-reproducible simulation inside internal/
// packages: the paper's miss-rate tables are only checkable if two runs
// of the same configuration produce identical numbers, so nothing under
// internal/ may consume wall-clock time or the global math/rand stream
// (internal/rng's seeded SplitMix64/xoshiro256** is the sanctioned
// randomness), and no map iteration may leak Go's randomized order into
// rendered rows, builders, writers, or JSON.
//
// Flagged:
//   - importing math/rand or math/rand/v2
//   - calling time.Now, time.Since, time.Tick, time.After, or
//     time.NewTicker
//   - a `range` over a map whose body emits in iteration order: calls
//     append, assigns through an index expression into a slice, writes
//     to a Builder/Buffer/Writer/Encoder (Write*, Encode, Fprint*,
//     Print*), or calls Table.AddRow
//
// The canonical remedies pass without annotation: collecting into a
// slice that is sorted later in the same function (`for k := range m {
// keys = append(keys, k) }; sort.Strings(keys)`) is recognized, and a
// loop that ranges over the sorted slice indexing the map never ranges
// the map at all. Genuinely order-independent emission (and wall-clock
// use that never reaches results, e.g. retry backoff) is suppressed
// line-by-line with //bcachelint:allow determinism(reason).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global math/rand, and map-iteration-order leaks inside internal/ packages",
	Run:  runDeterminism,
}

// determinismAllowedPkgs are internal packages exempt from the pass:
// the linter itself reports to humans, not to simulation results.
var determinismAllowedPkgs = []string{
	"bcache/internal/lint",
}

// determinismInScope reports whether the pass's package is subject to
// the determinism invariant. Fixture packages under testdata/src are
// always in scope — that is what they exist to exercise.
func determinismInScope(path string) bool {
	if strings.Contains(path, "/testdata/src/") {
		return true
	}
	if !strings.Contains(path, "internal/") {
		return false
	}
	for _, allowed := range determinismAllowedPkgs {
		if path == allowed || strings.HasPrefix(path, allowed+"/") {
			return false
		}
	}
	return true
}

// bannedTimeFuncs are the wall-clock entry points that make a
// simulation's output depend on when it ran.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Tick":      true,
	"After":     true,
	"NewTicker": true,
}

// emitMethods are method names through which a loop body emits results
// in iteration order (strings.Builder, bytes.Buffer, io.Writer,
// json.Encoder, csv.Writer, experiment.Table).
var emitMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"AddRow":      true,
}

func runDeterminism(pass *Pass) error {
	if !determinismInScope(pass.BasePkgPath()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s: internal packages must draw randomness from the seeded internal/rng stream", imp.Path.Value)
			}
		}
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name := pkgFuncCall(pass, n); pkg == "time" && bannedTimeFuncs[name] {
					pass.Reportf(n.Pos(), "call to time.%s: wall-clock input makes simulation output non-reproducible", name)
				}
			case *ast.RangeStmt:
				checkMapRangeEmit(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

// pkgFuncCall resolves call to a package-level function reference,
// returning the package name ("time") and function name, or "", "".
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if pkgName, ok := pass.Info.Uses[ident].(*types.PkgName); ok {
		return pkgName.Imported().Path(), sel.Sel.Name
	}
	return "", ""
}

// checkMapRangeEmit flags a range over a map whose body emits output in
// iteration order, unless every emission is an append into a slice that
// the same function sorts after the loop (the canonical collect-keys
// pattern).
func checkMapRangeEmit(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	fnBody := enclosingFuncBody(stack)
	for _, e := range findOrderedEmits(pass, rs.Body) {
		if e.appendTarget != "" && fnBody != nil && sortedAfter(pass, fnBody, rs.End(), e.appendTarget) {
			continue
		}
		line := pass.Fset.Position(e.at.Pos()).Line
		pass.Reportf(rs.For, "range over map emits per-iteration output (%s at line %d): iteration order leaks into results; sort the keys (or the collected slice) before emitting", e.desc, line)
		return
	}
}

// orderedEmit is one order-sensitive emission inside a map-range body.
type orderedEmit struct {
	desc string
	at   ast.Node
	// appendTarget is the printed form of the slice an append writes to
	// ("out" in out = append(out, e)), "" for non-append emissions.
	appendTarget string
}

// findOrderedEmits collects the order-sensitive emissions inside body.
func findOrderedEmits(pass *Pass, body *ast.BlockStmt) []orderedEmit {
	var emits []orderedEmit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true // reported via the enclosing AssignStmt
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && emitMethods[sel.Sel.Name] {
				// Only count it as an emission when the receiver is a
				// value (writer/builder/encoder), not a package: a
				// package-level function named Write would be odd but
				// is not the pattern this targets.
				if recv, ok := sel.X.(*ast.Ident); !ok || pass.Info.Uses[recv] == nil || !isPkgName(pass, recv) {
					emits = append(emits, orderedEmit{desc: sel.Sel.Name + " call", at: n})
				}
			}
			if pkg, name := pkgFuncCall(pass, n); pkg == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
				emits = append(emits, orderedEmit{desc: "fmt." + name, at: n})
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				target := ""
				if i < len(n.Lhs) {
					target = exprString(n.Lhs[i])
				}
				emits = append(emits, orderedEmit{desc: "append", at: n, appendTarget: target})
			}
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if xt := pass.Info.TypeOf(ix.X); xt != nil {
					if _, isSlice := xt.Underlying().(*types.Slice); isSlice {
						emits = append(emits, orderedEmit{desc: "slice element write", at: n})
					}
				}
			}
		}
		return true
	})
	return emits
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration in stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether fnBody contains, after pos, a call into
// package sort or slices that mentions target — the collect-then-sort
// idiom that makes an in-loop append order-independent.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if pkg, _ := pkgFuncCall(pass, call); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(exprString(arg), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isPkgName(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok
}
