package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// exprString renders an expression in source form for receiver-identity
// comparisons and messages.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// hasSuffixPath reports whether path ends with the given slash-separated
// suffix on an element boundary ("a/b/c" has suffix "b/c" but not "/c"
// spliced mid-element).
func hasSuffixPath(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// containsTestdata reports whether path is a fixture package under a
// testdata/src tree (analysistest packages; never part of a real build).
func containsTestdata(path string) bool {
	return strings.Contains(path, "/testdata/src/")
}
