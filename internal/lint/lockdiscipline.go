package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockDiscipline enforces the repo's mutex conventions, which the race
// detector can only probe dynamically:
//
//   - a call to a ...Locked function or method must sit in a caller
//     that provably holds the corresponding mutex: an un-released
//     <recv>.<mu>.Lock() earlier in the same body, or the caller is
//     itself a ...Locked method on the same receiver. Exported
//     ...Locked helpers export a requiresHeld fact so callers in other
//     packages are held to the same rule.
//   - a struct field documented `// guarded by <mu>` may only be
//     touched while <mu> is held (same heuristic), except while the
//     value is still function-local (constructors).
//   - values whose type contains a sync.Mutex/RWMutex must not be
//     copied by assignment, dereference, or by-value parameter
//     (copylocks-light; `go vet` backs this up with the full check).
//   - a function that Locks a mutex and then has several return
//     statements must either defer the Unlock or unlock on every path;
//     fewer plain Unlocks than returns with no defer is flagged.
//
// The held heuristic is positional and intentionally modest: an
// intervening Unlock only counts as releasing when its innermost block
// also contains the use site, so the common `if hit { mu.Unlock();
// return }` early-exit between Lock and use does not defeat it, and
// deferred Unlocks never count as intervening.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "check *Locked call sites, `guarded by` fields, lock copies, and unlock coverage on multi-return paths",
	Run:  runLockDiscipline,
}

// guardedByRe extracts the mutex name from a `guarded by mu` field
// comment.
var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runLockDiscipline(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	exportLockedFacts(pass)

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockedCalls(pass, fn)
			checkGuardedAccesses(pass, fn, guarded)
			checkUnlockCoverage(pass, fn)
			checkLockParams(pass, fn)
		}
		checkLockCopies(pass, file)
	}
	return nil
}

// collectGuardedFields maps each struct field carrying a `// guarded by
// <mu>` doc or line comment to the named mutex.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardedMutex(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardedMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// exportLockedFacts publishes a requiresHeld fact for every ...Locked
// function and method declared here, so callers in packages analyzed
// later (standalone) or in dependent vet units see the contract.
func exportLockedFacts(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			obj, _ := pass.Info.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			recv, mu := "", ""
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = receiverTypeName(sig.Recv().Type())
				mu = mutexFieldName(sig.Recv().Type())
			}
			pass.ExportFact(objectName(recv, fn.Name.Name), FactRequiresHeld, mu)
		}
	}
}

// checkLockedCalls flags calls to ...Locked callees (by name suffix or
// by imported requiresHeld fact) at positions where the corresponding
// mutex is not provably held.
func checkLockedCalls(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeFunc(pass, call)
		if obj == nil {
			return true
		}
		name := obj.Name()
		recv, mu := "", ""
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = receiverTypeName(sig.Recv().Type())
			mu = mutexFieldName(sig.Recv().Type())
		}
		requires := strings.HasSuffix(name, "Locked")
		if !requires && obj.Pkg() != nil && obj.Pkg().Path() != pass.Pkg.Path() {
			if f, ok := pass.FindImportedFact(obj.Pkg().Path(), FactRequiresHeld, objectName(recv, name)); ok {
				requires, mu = true, f.Detail
			}
		}
		if !requires {
			return true
		}
		base := ""
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && recv != "" {
			base = exprString(sel.X)
		}
		if !holdsLock(pass, fn, call.Pos(), base, mu) {
			target := mu
			if target == "" {
				target = "its mutex"
			} else if base != "" {
				target = base + "." + mu
			}
			pass.Reportf(call.Pos(), "call to %s without holding %s (no prior Lock in this body and caller is not ...Locked)", name, target)
		}
		return true
	})
}

// checkGuardedAccesses flags reads and writes of `guarded by` fields at
// positions where the named mutex is not held. Accesses through a value
// declared inside the same function body are exempt: a struct under
// construction is not yet shared.
func checkGuardedAccesses(pass *Pass, fn *ast.FuncDecl, guarded map[types.Object]string) {
	if len(guarded) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		mu, ok := guarded[obj]
		if !ok {
			return true
		}
		base := exprString(sel.X)
		if root := rootIdent(sel.X); root != nil {
			if ro := pass.Info.Uses[root.(*ast.Ident)]; ro != nil &&
				ro.Pos() >= fn.Body.Pos() && ro.Pos() <= fn.Body.End() {
				return true // function-local value, not shared yet
			}
		}
		if !holdsLock(pass, fn, sel.Pos(), base, mu) {
			pass.Reportf(sel.Pos(), "access to %s.%s (guarded by %s) without holding %s.%s", base, sel.Sel.Name, mu, base, mu)
		}
		return true
	})
}

// holdsLock reports whether base's mutex mu is provably held at pos
// inside fn. mu == "" accepts any Lock on base; base == "" accepts any
// Lock at all (package-level ...Locked helpers whose mutex we cannot
// name).
func holdsLock(pass *Pass, fn *ast.FuncDecl, pos token.Pos, base, mu string) bool {
	// A ...Locked caller inherits the obligation instead of
	// re-acquiring: its own receiver stands in for the lock.
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		if base == "" || base == receiverName(fn) {
			return true
		}
	}
	type unlockSite struct {
		pos      token.Pos
		deferred bool
		block    *ast.BlockStmt
	}
	var lastLock token.Pos
	var unlocks []unlockSite
	inspectWithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		op, cb, cm := lockCallParts(call)
		if op == "" {
			return true
		}
		if base != "" && cb != base {
			return true
		}
		if mu != "" && cm != mu {
			return true
		}
		deferred := len(stack) > 0
		if deferred {
			_, deferred = stack[len(stack)-1].(*ast.DeferStmt)
		}
		switch op {
		case "Lock", "RLock":
			if !deferred && call.Pos() > lastLock {
				lastLock = call.Pos()
			}
		case "Unlock", "RUnlock":
			unlocks = append(unlocks, unlockSite{call.Pos(), deferred, innermostBlock(stack)})
		}
		return true
	})
	if lastLock == token.NoPos {
		return false
	}
	for _, u := range unlocks {
		if u.deferred || u.pos < lastLock {
			continue
		}
		// Only an unlock on the straight-line path to pos releases: one
		// inside a nested early-exit block does not reach the use site.
		if u.block == nil || (u.block.Pos() <= pos && pos <= u.block.End()) {
			return false
		}
	}
	return true
}

// checkUnlockCoverage applies the multi-return rule: a body that Locks
// a mutex, never defers the Unlock, and then returns from more places
// than it Unlocks has at least one path that leaks the lock.
func checkUnlockCoverage(pass *Pass, fn *ast.FuncDecl) {
	type tally struct {
		firstLock   token.Pos
		base, mu    string
		deferUnlock bool
	}
	tallies := map[string]*tally{} // keyed by "base.mu"
	inspectWithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures manage their own locks
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, cb, cm := lockCallParts(call)
		if op == "" || !isMutexValue(pass, call) {
			return true
		}
		key := cb + "." + cm
		t := tallies[key]
		if t == nil {
			t = &tally{base: cb, mu: cm}
			tallies[key] = t
		}
		deferred := len(stack) > 0
		if deferred {
			_, deferred = stack[len(stack)-1].(*ast.DeferStmt)
		}
		switch op {
		case "Lock", "RLock":
			if !deferred && t.firstLock == token.NoPos {
				t.firstLock = call.Pos()
			}
		case "Unlock", "RUnlock":
			if deferred {
				t.deferUnlock = true
			}
		}
		return true
	})
	for key, t := range tallies {
		if t.firstLock == token.NoPos || t.deferUnlock {
			continue
		}
		// Count the return statements at which the positional heuristic
		// still considers the lock held: a return preceded by a
		// straight-line Unlock (same block, e.g. the early-exit
		// `mu.Unlock(); return` idiom) does not leak.
		leaking := 0
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			r, ok := n.(*ast.ReturnStmt)
			if !ok || r.Pos() < t.firstLock {
				return true
			}
			if holdsLock(pass, fn, r.Pos(), t.base, t.mu) {
				leaking++
			}
			return true
		})
		if leaking > 0 {
			pass.Reportf(t.firstLock, "%s is locked but %d return path(s) never release it and no Unlock is deferred; unlock before returning or defer %s.Unlock()", key, leaking, key)
		}
	}
}

// checkLockParams flags by-value parameters whose type contains a
// mutex.
func checkLockParams(pass *Pass, fn *ast.FuncDecl) {
	if fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if containsMutex(t, nil) {
			pass.Reportf(field.Pos(), "parameter passes %s by value, copying its mutex; use a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkLockCopies flags assignments and declarations that copy a value
// whose type contains a mutex. Composite literals and calls construct
// fresh values, so only dereferences and variable-to-variable copies
// are flagged.
func checkLockCopies(pass *Pass, file *ast.File) {
	checkRHS := func(rhs ast.Expr) {
		switch rhs.(type) {
		case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr:
		default:
			return
		}
		t := pass.Info.Types[rhs].Type
		if t == nil || !containsMutex(t, nil) {
			return
		}
		pass.Reportf(rhs.Pos(), "copies %s, which contains a mutex; lock state must not be duplicated", types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				checkRHS(r)
			}
		case *ast.ValueSpec:
			for _, r := range n.Values {
				checkRHS(r)
			}
		}
		return true
	})
}

// lockCallParts decomposes a call of the shape <base>.<mu>.<op>() or
// <mu>.<op>() where op is Lock/RLock/Unlock/RUnlock, returning the op,
// base expression string, and mutex field name ("" base for a bare
// mutex variable).
func lockCallParts(call *ast.CallExpr) (op, base, mu string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", ""
	}
	op = sel.Sel.Name
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return op, exprString(x.X), x.Sel.Name
	case *ast.Ident:
		return op, "", x.Name
	default:
		return op, exprString(sel.X), ""
	}
}

// isMutexValue reports whether call's receiver really is a sync mutex
// (guards lockCallParts against unrelated Lock methods, e.g. flock).
func isMutexValue(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.Info.Types[sel.X].Type
	if t == nil {
		return false
	}
	return isMutexType(t)
}

// isMutexType reports whether t (or what it points to) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsMutex reports whether t embeds a mutex by value anywhere in
// its struct/array composition.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if isMutexType(t) {
		if _, isPtr := t.(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

// mutexFieldName returns the name of the first by-value mutex field of
// the struct underlying t (dereferencing one pointer), or "".
func mutexFieldName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			if _, isPtr := st.Field(i).Type().(*types.Pointer); !isPtr {
				return st.Field(i).Name()
			}
		}
	}
	return ""
}

// receiverTypeName returns the bare type name of a method receiver
// type (dereferencing one pointer), or "".
func receiverTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// receiverName returns fn's receiver identifier ("" for functions and
// anonymous receivers).
func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// calleeFunc resolves call to the *types.Func it invokes, nil for
// indirect calls and conversions.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// rootIdent returns the leftmost identifier of a selector chain, or nil.
func rootIdent(e ast.Expr) ast.Node {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// innermostBlock returns the deepest *ast.BlockStmt in stack, nil if
// none.
func innermostBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// isTestFile reports whether file is a _test.go compilation input. The
// concurrency analyzers skip test files: tests touch guarded state
// single-threaded after joins, and their goroutines are bounded by the
// test binary's lifetime.
func isTestFile(pass *Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}
