package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The standalone loader shells out to `go list -test -deps -export
// -json`, which compiles every dependency's export data into the build
// cache, then re-type-checks each target package from source against
// that export data with the standard library's gc importer. This is the
// offline substitute for x/tools/go/packages: no network, no third-party
// code, and positions/types identical to what the compiler saw.

// listPackage is the subset of `go list -json` output the loader needs.
// The tags restate the go command's field names — this struct mirrors an
// external schema rather than defining one.
type listPackage struct {
	ImportPath string   `json:"ImportPath"`
	Dir        string   `json:"Dir"`
	GoFiles    []string `json:"GoFiles"`
	CgoFiles   []string `json:"CgoFiles"`
	Export     string   `json:"Export"`
	// ForTest is set on test variants ("p [p.test]" has ForTest "p").
	ForTest    string            `json:"ForTest"`
	Standard   bool              `json:"Standard"`
	Module     *listModule       `json:"Module"`
	ImportMap  map[string]string `json:"ImportMap"`
	Incomplete bool              `json:"Incomplete"`
	Error      *listError        `json:"Error"`
}

type listModule struct {
	Path      string `json:"Path"`
	GoVersion string `json:"GoVersion"`
}

type listError struct {
	Err string `json:"Err"`
}

// Load lists, parses, and type-checks the packages matching patterns
// (e.g. "./..."), returning one checkedPackage per widest compilation:
// the test variant where test files exist, the plain package otherwise,
// plus external-test packages. dir is the working directory for go list
// ("" = current).
//
// The result preserves `go list -deps`'s depth-first post-order —
// dependencies before dependents — and every returned package shares
// one fact store, so running the analyzers over the slice in order
// gives each package the facts its in-module imports exported.
func Load(dir string, patterns ...string) ([]*checkedPackage, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Index export data for the importer and pick the analysis set.
	exports := map[string]string{}
	hasVariant := map[string]bool{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	facts := newFactStore()
	var out []*checkedPackage
	for _, p := range pkgs {
		if p.Standard || p.Module == nil {
			continue // dependency, not analysis target
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test main
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue // the test variant supersedes the plain compilation
		}
		if undecorated, _, ok := strings.Cut(p.ImportPath, " ["); ok &&
			undecorated != p.ForTest && undecorated != p.ForTest+"_test" {
			// A foreign recompilation — package p rebuilt for another
			// package's test binary (test files closing an import cycle
			// back to p). Same sources as the plain or own-test variant,
			// but without p's test files, so analyzing it would duplicate
			// findings and false-positive the test-presence checks.
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		cp, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		cp.facts = facts
		out = append(out, cp)
	}
	return out, nil
}

// goList runs `go list -test -deps -export -json patterns...` and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-test", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(stdout))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// typecheck parses p's files and type-checks them against the export
// data of its dependencies.
func typecheck(fset *token.FileSet, p *listPackage, exports map[string]string) (*checkedPackage, error) {
	var names []string
	for _, f := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		if !filepath.IsAbs(f) {
			f = filepath.Join(p.Dir, f)
		}
		names = append(names, f)
	}
	files, err := parseFiles(fset, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := checkFiles(fset, p.ImportPath, files, gcImporter(fset, p.ImportMap, exports))
	if err != nil {
		return nil, err
	}
	return &checkedPackage{
		fset:     fset,
		files:    files,
		pkg:      pkg,
		info:     info,
		pkgPath:  p.ImportPath,
		complete: true,
	}, nil
}

// parseFiles parses each file with comments (directives live there).
func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// checkFiles type-checks files as package path using imp for imports.
func checkFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	// The import path seen by the type checker must be the plain path:
	// variant decoration is build-system metadata, not a package name.
	base := path
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	pkg, err := conf.Check(base, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// gcImporter returns a types.Importer that resolves import paths through
// importMap (test-variant rewrites) and reads gc export data files.
func gcImporter(fset *token.FileSet, importMap, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
