package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file speaks the `go vet -vettool=` protocol, the same contract
// x/tools/go/analysis/unitchecker implements: the go command invokes
// the tool once per compilation unit with a JSON config file argument,
// after two handshakes (`-V=full` for the tool's build ID, `-flags` for
// its flag set). Diagnostics go to stderr as file:line:col text and a
// non-zero exit marks findings. The fact file named by VetxOutput must
// always be created; for in-module units it carries the real bcachelint
// facts (see facts.go), which the go command hands back to dependent
// units through PackageVetx — that is how a vet run checks cross-package
// callers of exported ...Locked helpers, atomic fields, and runners.
// Dependency units arrive with VetxOnly set: facts are computed and
// written, diagnostics are suppressed (the unit gets its own full run
// when it is itself a target).

// vetConfig mirrors the fields of the go command's vet.cfg this tool
// consumes; unknown fields are ignored by encoding/json. The tags
// restate the go command's field names — this struct mirrors an
// external schema rather than defining one.
type vetConfig struct {
	ID          string            `json:"ID"`
	Compiler    string            `json:"Compiler"`
	Dir         string            `json:"Dir"`
	ImportPath  string            `json:"ImportPath"`
	GoFiles     []string          `json:"GoFiles"`
	NonGoFiles  []string          `json:"NonGoFiles"`
	ImportMap   map[string]string `json:"ImportMap"`
	PackageFile map[string]string `json:"PackageFile"`
	PackageVetx map[string]string `json:"PackageVetx"`
	VetxOnly    bool              `json:"VetxOnly"`
	VetxOutput  string            `json:"VetxOutput"`
	// SucceedOnTypecheckFailure is set by `go vet` so packages that do
	// not compile are reported by the compiler, not the linter.
	SucceedOnTypecheckFailure bool `json:"SucceedOnTypecheckFailure"`
}

// UnitcheckerMain implements the vettool side of the protocol for args
// (os.Args[1:]). It returns the process exit code; diagnostics and
// errors are printed to stderr.
func UnitcheckerMain(progname string, args []string, analyzers []*Analyzer) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion(progname)
			return 0
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: an empty JSON flag set tells the
			// go command to reject any it was given.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: unitchecker mode expects a single *.cfg argument, got %q\n", progname, args)
		return 2
	}
	code, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	return code
}

// printVersion replicates the output format the go command's toolID
// handshake parses (same shape x/tools/analysisflags prints).
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// runUnit analyzes one vet compilation unit.
func runUnit(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	base := basePkgPath(cfg.ImportPath)
	store := newFactStore()
	// The go command requires the fact file to exist afterwards, even
	// for units we have nothing to say about; write the empty encoding
	// now so every early return leaves a valid (fact-free) file, and
	// overwrite it with the real facts once analysis has produced them.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, store.encode(base), 0o666); err != nil {
			return 1, err
		}
	}
	// Only in-module units are analyzed; running the suite over the
	// whole stdlib dependency closure would be slow and pointless — no
	// bcachelint invariant mentions foreign code.
	if !factsInScope(base) {
		return 0, nil
	}
	// Facts exported by this unit's in-module dependencies, already
	// computed by their own vet invocations.
	for dep, vetx := range cfg.PackageVetx {
		depBase := basePkgPath(dep)
		if !factsInScope(depBase) {
			continue
		}
		if depData, err := os.ReadFile(vetx); err == nil {
			store.decodeInto(depBase, depData)
		}
	}

	fset := token.NewFileSet()
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		goFiles = append(goFiles, f)
	}
	files, err := parseFiles(fset, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, err
	}
	pkg, info, err := checkFiles(fset, cfg.ImportPath, files, gcImporter(fset, cfg.ImportMap, cfg.PackageFile))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, err
	}
	cp := &checkedPackage{
		fset:    fset,
		files:   files,
		pkg:     pkg,
		info:    info,
		pkgPath: cfg.ImportPath,
		facts:   store,
		// Only the test variant sees every file of a package that has
		// tests; the plain unit defers whole-package checks to it (see
		// Pass.Complete). A unit whose files include no _test.go and
		// whose ImportPath is undecorated may still have a variant
		// coming, so completeness in vet mode is "this unit is a test
		// variant" — `make lint` runs the standalone checker first,
		// which closes the no-tests-at-all gap.
		complete: strings.Contains(cfg.ImportPath, " ["),
	}
	diags, err := cp.RunAnalyzers(analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, err
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, store.encode(base), 0o666); err != nil {
			return 1, err
		}
	}
	if cfg.VetxOnly {
		// A dependency unit: facts are the product, diagnostics belong
		// to the unit's own run when it is itself a vet target.
		return 0, nil
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// factsInScope reports whether base (an undecorated import path) is an
// in-module package the analyzers should run on and export facts for.
func factsInScope(base string) bool {
	return base == "bcache" || strings.HasPrefix(base, "bcache/")
}
