package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// StatJSON guards the consumer contract of the schema-versioned report
// artifacts (obs.Report, experiment.Document, the checkpoint and bench
// baselines): every exported field of a struct that reaches
// encoding/json must carry an explicit json tag — field names are API,
// not an accident of Go identifier casing — and no two fields of a
// struct may collide case-insensitively, because encoding/json matches
// decoder keys case-insensitively and would silently fill the wrong
// field.
//
// At every call of json.Marshal/MarshalIndent/Unmarshal and
// (*json.Encoder).Encode / (*json.Decoder).Decode, the analyzer
// resolves the payload's static type and checks every reachable named
// struct defined in this module (following pointers, slices, arrays,
// maps, and nested/embedded structs). Findings anchor to the field when
// the struct is declared in the analyzed package, else to the call
// site.
var StatJSON = &Analyzer{
	Name: "statjson",
	Doc:  "structs reaching encoding/json carry explicit tags and no case-insensitive field collisions",
	Run:  runStatJSON,
}

func runStatJSON(pass *Pass) error {
	seen := map[*types.Named]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg := jsonPayloadArg(pass, call)
			if arg == nil {
				return true
			}
			t := pass.Info.TypeOf(arg)
			if t == nil {
				return true
			}
			checkJSONType(pass, call, t, seen)
			return true
		})
	}
	return nil
}

// jsonPayloadArg returns the payload argument of an encoding/json call,
// or nil if call is not one.
func jsonPayloadArg(pass *Pass, call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	if pkg, name := pkgFuncCall(pass, call); pkg == "encoding/json" {
		switch name {
		case "Marshal", "MarshalIndent", "Unmarshal":
			// Unmarshal's payload is its second argument.
			if name == "Unmarshal" {
				if len(call.Args) < 2 {
					return nil
				}
				return call.Args[1]
			}
			return call.Args[0]
		}
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode" {
		return nil
	}
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil {
		return nil
	}
	s := recv.String()
	if s == "*encoding/json.Encoder" || s == "*encoding/json.Decoder" {
		return call.Args[0]
	}
	return nil
}

// checkJSONType walks t for module-defined struct types and validates
// their fields. seen dedupes across call sites in the package.
func checkJSONType(pass *Pass, call *ast.CallExpr, t types.Type, seen map[*types.Named]bool) {
	switch t := t.(type) {
	case *types.Pointer:
		checkJSONType(pass, call, t.Elem(), seen)
	case *types.Slice:
		checkJSONType(pass, call, t.Elem(), seen)
	case *types.Array:
		checkJSONType(pass, call, t.Elem(), seen)
	case *types.Map:
		checkJSONType(pass, call, t.Elem(), seen)
	case *types.Named:
		if seen[t] {
			return
		}
		seen[t] = true
		if obj := t.Obj(); obj.Pkg() == nil || !moduleLocal(obj.Pkg().Path()) {
			return // stdlib/external types are not this repo's contract
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			// Named slices/maps of structs are still payload carriers.
			checkJSONType(pass, call, t.Underlying(), seen)
			return
		}
		checkStructFields(pass, call, t.Obj().Name(), st, seen)
	case *types.Struct:
		checkStructFields(pass, call, "anonymous struct", t, seen)
	}
}

// moduleLocal reports whether path belongs to this module (or a fixture
// package in analyzer tests).
func moduleLocal(path string) bool {
	return path == "bcache" || strings.HasPrefix(path, "bcache/") || containsTestdata(path)
}

// checkStructFields validates one struct: explicit tags on exported
// non-embedded fields, no case-insensitive effective-name collisions,
// and recursion into field types.
func checkStructFields(pass *Pass, call *ast.CallExpr, name string, st *types.Struct, seen map[*types.Named]bool) {
	byLower := map[string][]string{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i))
		jsonTag, hasTag := tag.Lookup("json")
		tagName, _, _ := strings.Cut(jsonTag, ",")

		if f.Exported() && !f.Embedded() {
			if !hasTag || tagName == "" {
				pass.report(fieldPos(pass, call, f),
					"exported field %s.%s reaches encoding/json without an explicit json tag; field names are a schema contract, tag it (or use `json:\"-\"`)",
					name, f.Name())
			}
		}
		if tagName == "-" && !strings.Contains(jsonTag, ",") {
			continue // explicitly excluded from JSON
		}
		if f.Exported() {
			effective := f.Name()
			if tagName != "" {
				effective = tagName
			}
			byLower[strings.ToLower(effective)] = append(byLower[strings.ToLower(effective)], f.Name())
		}
		// Nested payload types are part of the same artifact
		// (unexported fields never marshal, so they are not followed).
		if f.Exported() {
			checkJSONType(pass, call, f.Type(), seen)
		}
	}
	for _, fields := range byLower {
		if len(fields) > 1 {
			pass.report(pass.Fset.Position(call.Pos()),
				"fields %s of %s collide case-insensitively in JSON; encoding/json matches decoder keys case-insensitively and would fill the wrong field",
				strings.Join(fields, " and "), name)
		}
	}
}

// fieldPos anchors a field finding to the field declaration when it is
// in the analyzed package's files, else to the call site (where a
// //bcachelint:allow directive can see it).
func fieldPos(pass *Pass, call *ast.CallExpr, f *types.Var) token.Position {
	p := pass.Fset.Position(f.Pos())
	for _, file := range pass.Files {
		if pass.Fset.Position(file.Pos()).Filename == p.Filename {
			return p
		}
	}
	return pass.Fset.Position(call.Pos())
}
