package lint

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// OraclePair enforces fast-kernel/oracle twinning: every optimized
// engine in the repo (SWAR core.BCache, the hash-indexed wide-set path,
// the deep Mattson engine, the hash victim buffer) is only trusted
// because a slow reference implementation and a differential test pin
// its behaviour. The twins are declared in oraclepairs.json; for each
// declared pair the analyzer requires that
//
//   - the fast and oracle symbols still exist in their declaring
//     package (a deleted oracle fails lint, not review),
//   - every declared differential/fuzz test function still exists, and
//   - each test still references both halves of the pair (or the
//     manifest's explicit testRefs seam symbols).
//
// Symbols are "Name" for package-level objects or "Type.member" for
// methods and fields; oracleInTest marks oracles that live in _test.go
// files. Existence and test-presence checks run only on Complete
// passes, so the plain compilation of a package never false-positives
// on test-file symbols; `make lint`'s standalone run always analyzes
// the widest compilation and so also catches a package whose test files
// were deleted wholesale.
var OraclePair = &Analyzer{
	Name: "oraclepair",
	Doc:  "every fast/oracle twin in the manifest keeps both symbols and a live differential test referencing them",
	Run:  runOraclePair,
}

//go:embed oraclepairs.json
var oraclePairsJSON []byte

// A Pair is one fast/oracle twin declaration from the manifest.
type Pair struct {
	Name string `json:"name"`
	Why  string `json:"why"`
	// Pkg declares where Fast and Oracle live.
	Pkg    string `json:"pkg"`
	Fast   string `json:"fast"`
	Oracle string `json:"oracle"`
	// OracleInTest marks an oracle declared in a _test.go file of Pkg.
	OracleInTest bool `json:"oracleInTest"`
	// TestPackage and Tests name the differential/fuzz tests that pin
	// the pair ("p" for in-package tests, "p_test" for external).
	TestPackage string   `json:"testPackage"`
	Tests       []string `json:"tests"`
	// TestRefs overrides the symbols each test must reference (default:
	// Fast and Oracle). Used when the twinning seam is a constructor
	// flag or field rather than the engine symbols themselves.
	TestRefs []string `json:"testRefs"`
}

// Manifest is the active pair set. Tests substitute fixture manifests;
// the default is the embedded oraclepairs.json.
var Manifest = mustParseManifest(oraclePairsJSON)

func mustParseManifest(data []byte) []Pair {
	var pairs []Pair
	if err := json.Unmarshal(data, &pairs); err != nil {
		panic(fmt.Sprintf("lint: parsing embedded oraclepairs.json: %v", err))
	}
	return pairs
}

func runOraclePair(pass *Pass) error {
	if !pass.Complete {
		return nil
	}
	base := pass.BasePkgPath()
	// In a test-variant or plain pass the "test home" is the base path;
	// in an external-test pass it is base+"_test".
	undecorated := pass.PkgPath
	if i := strings.Index(undecorated, " ["); i >= 0 {
		undecorated = undecorated[:i]
	}
	isXTest := strings.HasSuffix(undecorated, "_test")
	testHome := base
	if isXTest {
		testHome = base + "_test"
	}
	for i := range Manifest {
		p := &Manifest[i]
		declaring := !isXTest && pathMatches(base, p.Pkg)
		inTestPkg := pathMatches(testHome, p.TestPackage)
		if declaring || inTestPkg {
			checkPair(pass, p, declaring, inTestPkg)
		}
	}
	return nil
}

// pathMatches compares a pass package path against a manifest path.
// Fixture packages under testdata/src may declare manifest paths by
// suffix so the fixtures do not hard-code the module root.
func pathMatches(path, manifest string) bool {
	return path == manifest || (containsTestdata(path) && hasSuffixPath(path, manifest))
}

// checkPair runs the symbol-existence check (when pass is the declaring
// package) and the test-presence/reference checks (when pass is the
// test package).
func checkPair(pass *Pass, p *Pair, declaring, inTestPkg bool) {
	pos := pass.Files[0].Package
	if declaring {
		for _, sym := range []struct {
			name   string
			inTest bool
			role   string
		}{{p.Fast, false, "fast"}, {p.Oracle, p.OracleInTest, "oracle"}} {
			if lookupSymbol(pass.Pkg, sym.name) == nil {
				pass.Reportf(pos, "oracle pair %q: %s symbol %s.%s is gone; the pair's twin and its manifest entry must move together (%s)",
					p.Name, sym.role, p.Pkg, sym.name, p.Why)
			}
		}
	}
	if !inTestPkg {
		return
	}
	refs := p.TestRefs
	if len(refs) == 0 {
		refs = []string{symbolBaseName(p.Fast), symbolBaseName(p.Oracle)}
	}
	for _, testName := range p.Tests {
		fn := findFuncDecl(pass, testName)
		if fn == nil {
			pass.Reportf(pos, "oracle pair %q: differential test %s.%s is gone; deleting the oracle's test fails lint, not review (%s)",
				p.Name, p.TestPackage, testName, p.Why)
			continue
		}
		for _, ref := range refs {
			if !funcReferences(pass, fn, p.Pkg, ref) {
				pass.Reportf(fn.Pos(), "oracle pair %q: test %s no longer references %s; it must drive both twins (%s)",
					p.Name, testName, ref, p.Why)
			}
		}
	}
}

// lookupSymbol resolves "Name" in pkg's scope, or "Type.member" to a
// method or field of a package-level named type. Unexported names are
// visible — the manifest speaks about this repo's own packages.
func lookupSymbol(pkg *types.Package, sym string) types.Object {
	typeName, member, isMember := strings.Cut(sym, ".")
	obj := pkg.Scope().Lookup(typeName)
	if obj == nil || !isMember {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == member {
			return m
		}
	}
	if st, ok := named.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); f.Name() == member {
				return f
			}
		}
	}
	return nil
}

func symbolBaseName(sym string) string {
	if _, member, ok := strings.Cut(sym, "."); ok {
		return member
	}
	return sym
}

// findFuncDecl finds a top-level function named name in the pass files.
func findFuncDecl(pass *Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}

// funcReferences reports whether fn's body mentions the named symbol
// from pkgPath: either an identifier resolving to an object with that
// name in that package, or a value whose type mentions the qualified
// name (covering twins reached through constructors: `c, _ := New(...)`
// references Cache via c's type *victim.Cache).
func funcReferences(pass *Pass, fn *ast.FuncDecl, pkgPath, name string) bool {
	if fn.Body == nil {
		return false
	}
	found := false
	qualified := pkgPath + "." + name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if obj.Name() == name && obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), pkgPath) {
			found = true
			return false
		}
		if t := obj.Type(); t != nil && typeMentions(t, qualified, pkgPath, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// typeMentions reports whether t's printed form contains the qualified
// symbol name (fixture packages match by path suffix).
func typeMentions(t types.Type, qualified, pkgPath, name string) bool {
	s := t.String()
	if strings.Contains(s, qualified) {
		return true
	}
	// Suffix-matched fixture packages: accept any "<path>.<name>" where
	// the path ends with the manifest's pkg path.
	i := strings.Index(s, "."+name)
	for i >= 0 {
		head := s[:i]
		j := len(head)
		for j > 0 && (isPathChar(head[j-1])) {
			j--
		}
		if hasSuffixPath(head[j:], pkgPath) {
			return true
		}
		next := strings.Index(s[i+1:], "."+name)
		if next < 0 {
			break
		}
		i += 1 + next
	}
	return false
}

func isPathChar(c byte) bool {
	return c == '/' || c == '.' || c == '-' || c == '_' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
