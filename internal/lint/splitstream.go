package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// SplitStream guards the bit-identical-at-any-worker-count invariant:
// sharded replay only reproduces when every shard's randomness comes
// from its own rng.Split-derived stream and no shard's work depends on
// scheduling order. In any goroutine body — a literal `go func(){...}`
// or a closure handed to a concurrent runner (a function that launches
// one of its func-typed parameters, like runUnitsCtl; detected locally
// and across packages via concurrentRunner facts) — the analyzer flags:
//
//   - use of a captured *rng.Source: two goroutines drawing from one
//     stream make the value sequence depend on interleaving. The one
//     sanctioned use of a captured source is deriving a child with
//     .Split(...), which reads no values.
//   - capture of an enclosing loop variable: even with per-iteration
//     loop variables the repo convention is to pass shard indices as
//     parameters, keeping the data flow visible (and the code safe
//     under older toolchains).
//   - ranging over a map: iteration order differs per goroutine per
//     run, so any order-sensitive work inside the body diverges.
var SplitStream = &Analyzer{
	Name: "splitstream",
	Doc:  "goroutine bodies must not capture shared rng streams or loop variables, nor range over maps; per-shard streams come from rng.Split",
	Run:  runSplitStream,
}

func runSplitStream(pass *Pass) error {
	runners := collectRunners(pass)
	exportRunnerFacts(pass, runners)

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpawnSites(pass, fn, runners)
		}
	}
	return nil
}

// collectRunners finds this package's concurrent runners: functions
// with a func-typed parameter that is referenced inside a `go`
// statement in the body, closed over the set of functions that forward
// such a parameter to an already-known runner (the fixpoint catches
// chains like runUnitsCtl → runOneUnit → invokeUnit).
func collectRunners(pass *Pass) map[*types.Func][]int {
	runners := map[*types.Func][]int{}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}
	// Seed: parameters referenced under a GoStmt.
	for obj, fn := range decls {
		for idx, param := range funcParams(pass, fn) {
			if param == nil || !isFuncType(param.Type()) {
				continue
			}
			if paramUsedUnderGo(pass, fn, param) {
				runners[obj] = append(runners[obj], idx)
			}
		}
	}
	// Fixpoint: parameters forwarded into a runner's runner position.
	for changed := true; changed; {
		changed = false
		for obj, fn := range decls {
			for idx, param := range funcParams(pass, fn) {
				if param == nil || !isFuncType(param.Type()) || hasIndex(runners[obj], idx) {
					continue
				}
				if paramForwardedToRunner(pass, fn, param, runners) {
					runners[obj] = append(runners[obj], idx)
					changed = true
				}
			}
		}
	}
	return runners
}

// funcParams returns fn's parameter objects in declaration order (nil
// for unnamed parameters).
func funcParams(pass *Pass, fn *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			v, _ := pass.Info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func hasIndex(idxs []int, i int) bool {
	for _, x := range idxs {
		if x == i {
			return true
		}
	}
	return false
}

// paramUsedUnderGo reports whether param is referenced anywhere inside
// a go statement in fn's body.
func paramUsedUnderGo(pass *Pass, fn *ast.FuncDecl, param *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return !found
		}
		ast.Inspect(g, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == param {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// paramForwardedToRunner reports whether fn passes param as an argument
// occupying a runner parameter position of a known runner.
func paramForwardedToRunner(pass *Pass, fn *ast.FuncDecl, param *types.Var, runners map[*types.Func][]int) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return !found
		}
		idxs := runners[callee]
		if len(idxs) == 0 {
			return !found
		}
		for i, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == param && hasIndex(idxs, i) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exportRunnerFacts publishes each runner's func-parameter positions so
// closures built in other packages are checked at their call sites.
func exportRunnerFacts(pass *Pass, runners map[*types.Func][]int) {
	for obj, idxs := range runners {
		recv := ""
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv = receiverTypeName(sig.Recv().Type())
		}
		for _, i := range idxs {
			pass.ExportFact(objectName(recv, obj.Name()), FactConcurrentRunner, strconv.Itoa(i))
		}
	}
}

// checkSpawnSites applies the spawned-body rules to every go statement
// and every function literal passed to a runner inside fn.
func checkSpawnSites(pass *Pass, fn *ast.FuncDecl, runners map[*types.Func][]int) {
	inspectWithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkSpawnedBody(pass, lit, loopVarsInScope(pass, stack))
			}
		case *ast.CallExpr:
			idxs := runnerIndexes(pass, n, runners)
			for _, i := range idxs {
				if i < len(n.Args) {
					if lit, ok := n.Args[i].(*ast.FuncLit); ok {
						checkSpawnedBody(pass, lit, loopVarsInScope(pass, stack))
					}
				}
			}
		}
		return true
	})
}

// runnerIndexes resolves call's callee to its runner parameter
// positions, consulting local analysis first and concurrentRunner facts
// for imported callees.
func runnerIndexes(pass *Pass, call *ast.CallExpr, runners map[*types.Func][]int) []int {
	callee := calleeFunc(pass, call)
	if callee == nil {
		return nil
	}
	if idxs := runners[callee]; len(idxs) > 0 {
		return idxs
	}
	if callee.Pkg() == nil || callee.Pkg().Path() == pass.Pkg.Path() {
		return nil
	}
	recv := ""
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = receiverTypeName(sig.Recv().Type())
	}
	var idxs []int
	for _, f := range pass.ImportedFacts(callee.Pkg().Path(), FactConcurrentRunner) {
		if f.Object != objectName(recv, callee.Name()) {
			continue
		}
		if i, err := strconv.Atoi(f.Detail); err == nil {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// loopVarsInScope collects the loop variables of every for/range
// statement on the ancestor stack of a spawn site.
func loopVarsInScope(pass *Pass, stack []ast.Node) map[types.Object]bool {
	vars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	for _, n := range stack {
		switch s := n.(type) {
		case *ast.RangeStmt:
			addIdent(s.Key)
			addIdent(s.Value)
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					addIdent(lhs)
				}
			}
		}
	}
	return vars
}

// checkSpawnedBody flags shared-source use, loop-variable capture, and
// map iteration inside one spawned function literal.
func checkSpawnedBody(pass *Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	inspectWithStack(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj == nil {
				return true
			}
			if loopVars[obj] && declaredOutside(obj, lit) {
				pass.Reportf(n.Pos(), "goroutine body captures loop variable %s; pass it as a parameter so the shard binding is explicit", n.Name)
				return true
			}
			if isRNGSource(obj.Type()) && declaredOutside(obj, lit) && !isSplitReceiver(n, stack) {
				pass.Reportf(n.Pos(), "goroutine body captures shared rng source %s; derive a per-shard stream with %s.Split(shard)", n.Name, n.Name)
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "goroutine body ranges over a map; iteration order is nondeterministic — sort the keys first")
				}
			}
		}
		return true
	})
}

// declaredOutside reports whether obj's declaration lies outside lit,
// i.e. the literal closes over it.
func declaredOutside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// isRNGSource matches *Source (or Source) from an rng package — the
// real bcache/internal/rng or a fixture stand-in whose path ends in
// "rng".
func isRNGSource(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if obj.Name() != "Source" && obj.Name() != "Rand" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "rng" || strings.HasSuffix(path, "/rng")
}

// isSplitReceiver reports whether ident is the receiver of an immediate
// .Split(...) call — the sanctioned way to consume a captured source.
func isSplitReceiver(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	sel, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || sel.X != ast.Expr(id) || sel.Sel.Name != "Split" {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == ast.Expr(sel)
}
