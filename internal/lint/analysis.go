// Package lint is the project's static-analysis suite: eight analyzers
// that machine-check invariants the paper's results depend on but that
// the compiler cannot see — bit-reproducible simulation (determinism),
// zero-alloc nil-guarded probe emission (probesafe), fast-kernel/oracle
// twinning (oraclepair), stable report schemas (statjson), and the
// concurrency disciplines the differential-oracle methodology rests on:
// mutex contracts (lockdiscipline), all-or-nothing atomics
// (atomicdiscipline), per-shard rng streams and capture hygiene in
// goroutine bodies (splitstream), and provable goroutine lifecycles
// (goroutinelife). The concurrency analyzers share cross-package facts
// (facts.go) in both drive modes, so exported ...Locked helpers,
// atomic fields, concurrent runners, and self-stopping functions are
// checked at call sites in other packages too.
//
// The types here deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers port mechanically to
// the upstream framework; the build environment is offline, so the
// scaffolding — package loading (load.go), the `go vet -vettool`
// protocol (unitchecker.go), and the testdata harness
// (analysistest/) — is reimplemented on the standard library alone.
//
// Findings are suppressed line-by-line with a directive comment:
//
//	//bcachelint:allow <analyzer>(<reason>)
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — an empty one is itself a finding — and a directive
// that suppresses nothing is reported as stale, so the set of
// suppressions can never silently rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors
// x/tools/go/analysis.Analyzer: Run inspects a single type-checked
// package via the Pass and reports findings through pass.Reportf.
type Analyzer struct {
	// Name is the analyzer identifier used in output and in
	// //bcachelint:allow directives.
	Name string
	// Doc is the one-paragraph description shown by `bcachelint -help`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// All is the suite, in output order: the four PR 5 analyzers followed
// by the four concurrency-invariant analyzers (PR 10).
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, ProbeSafe, OraclePair, StatJSON,
		LockDiscipline, AtomicDiscipline, SplitStream, GoroutineLife,
	}
}

// A Pass is one (analyzer, package) unit of work: the parsed files,
// the type information, and the sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path as the build system reported it; for a
	// test variant it carries the " [pkg.test]" suffix.
	PkgPath string
	// Complete marks the widest compilation of this package available
	// to the run: the test variant when test files exist, the plain
	// package otherwise. Whole-package requirements (oraclepair's
	// symbol-existence and test-presence checks) run only on complete
	// passes so the plain half of a (plain, variant) pair does not
	// false-positive on symbols declared in _test.go files.
	Complete bool

	diags *[]Diagnostic
	// facts is the run-wide cross-package fact store (see facts.go);
	// nil only in tests that construct a bare Pass.
	facts *factStore
}

// BasePkgPath is PkgPath without any test-variant decoration:
// "p [p.test]" and the external-test "p_test" both normalize to "p".
func (p *Pass) BasePkgPath() string { return basePkgPath(p.PkgPath) }

// basePkgPath strips build-system decoration from an import path:
// "p [p.test]" and "p_test" both normalize to "p".
func basePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.Fset.Position(pos), format, args...)
}

func (p *Pass) report(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// DirectiveAnalyzer names the pseudo-analyzer that owns directive
// hygiene findings (missing reasons, stale suppressions). It is not
// suppressible — an //bcachelint:allow directive cannot excuse itself.
const DirectiveAnalyzer = "directive"

// directiveRe matches the `//bcachelint:allow` verb; the clauses that
// follow are parsed by directiveClauseRe. Splitting the two lets one
// comment carry several suppressions.
var directiveRe = regexp.MustCompile(`^//bcachelint:allow\s+`)

// directiveClauseRe captures one `name(reason)` clause at the front of
// the remaining directive text. The reason is one parenthesis-free
// string and may be empty at parse time; emptiness is reported as a
// finding. Clauses repeat, whitespace-separated and in any order —
// `//bcachelint:allow splitstream(r1) goroutinelife(r2)` suppresses
// both analyzers on the line — and text after the last clause is
// ignored, so a directive can still share a comment with other
// annotations.
var directiveClauseRe = regexp.MustCompile(`^\s*([a-zA-Z]+)\(([^()]*)\)`)

// directive is one parsed //bcachelint:allow comment.
type directive struct {
	pos      token.Position // of the comment itself
	analyzer string
	reason   string
	used     bool
}

// parseDirectives extracts every //bcachelint:allow directive from the
// files' comments. Malformed bcachelint comments (wrong verb, missing
// parentheses) are reported immediately so typos fail loudly instead of
// silently not suppressing.
func parseDirectives(fset *token.FileSet, files []*ast.File, sink *[]Diagnostic) []*directive {
	var ds []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//bcachelint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				verb := directiveRe.FindString(c.Text)
				if verb == "" {
					*sink = append(*sink, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
						Message: fmt.Sprintf("malformed bcachelint directive %q; want //bcachelint:allow analyzer(reason)", c.Text)})
					continue
				}
				rest, parsed := c.Text[len(verb):], 0
				for {
					m := directiveClauseRe.FindStringSubmatch(rest)
					if m == nil {
						break
					}
					ds = append(ds, &directive{pos: pos, analyzer: m[1], reason: strings.TrimSpace(m[2])})
					rest = rest[len(m[0]):]
					parsed++
				}
				if parsed == 0 {
					*sink = append(*sink, Diagnostic{Pos: pos, Analyzer: DirectiveAnalyzer,
						Message: fmt.Sprintf("malformed bcachelint directive %q; want //bcachelint:allow analyzer(reason)", c.Text)})
				}
			}
		}
	}
	return ds
}

// applyDirectives filters diags through the allow directives: a
// diagnostic is dropped when a directive for its analyzer sits on the
// same line or the line directly above (same file). Suppression is
// line-scoped by construction — a directive can never blanket a file.
// It then appends directive-hygiene findings: every suppression must
// carry a reason, and every directive must suppress something.
func applyDirectives(diags []Diagnostic, dirs []*directive) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		suppressed := false
		if d.Analyzer != DirectiveAnalyzer {
			for _, dir := range dirs {
				if dir.analyzer == d.Analyzer && dir.pos.Filename == d.Pos.Filename &&
					(dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1) {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if dir.used && dir.reason == "" {
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("bcachelint:allow %s() has no reason; every suppression must say why", dir.analyzer)})
		}
		if !dir.used {
			out = append(out, Diagnostic{Pos: dir.pos, Analyzer: DirectiveAnalyzer,
				Message: fmt.Sprintf("stale bcachelint:allow %s directive suppresses nothing on this or the next line", dir.analyzer)})
		}
	}
	return out
}

// checkedPackage is one type-checked compilation ready for analysis.
type checkedPackage struct {
	fset     *token.FileSet
	files    []*ast.File
	pkg      *types.Package
	info     *types.Info
	pkgPath  string
	complete bool
	// facts is shared by every checkedPackage of one Load (or one vet
	// unit): dependency-order analysis fills it before dependents read.
	facts *factStore
}

// PkgPath returns the package's import path as the build system
// reported it (test variants carry the " [pkg.test]" decoration).
func (cp *checkedPackage) PkgPath() string { return cp.pkgPath }

// FileNames returns the source file paths of the compilation, in
// compile order (the analysistest harness scans them for // want
// comments).
func (cp *checkedPackage) FileNames() []string {
	names := make([]string, 0, len(cp.files))
	for _, f := range cp.files {
		names = append(names, cp.fset.Position(f.Pos()).Filename)
	}
	return names
}

// RunAnalyzers runs every analyzer over the package and returns the
// findings after directive filtering, sorted by position.
func (cp *checkedPackage) RunAnalyzers(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     cp.fset,
			Files:    cp.files,
			Pkg:      cp.pkg,
			Info:     cp.info,
			PkgPath:  cp.pkgPath,
			Complete: cp.complete,
			diags:    &diags,
			facts:    cp.facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, cp.pkgPath, err)
		}
	}
	dirs := parseDirectives(cp.fset, cp.files, &diags)
	diags = applyDirectives(diags, dirs)
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// DedupDiagnostics drops exact repeats (same position, analyzer,
// message), which arise when a file is analyzed in both the plain and
// the test-variant compilation of its package. diags must be sorted.
func DedupDiagnostics(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// newTypesInfo allocates the full types.Info map set the analyzers use.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// inspectWithStack walks n in source order invoking fn with the node and
// the stack of its ancestors (outermost first, not including n). fn
// returning false prunes the subtree.
func inspectWithStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(node, stack)
		if keep {
			stack = append(stack, node)
		}
		return keep
	})
}
