package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLife requires every goroutine in non-test code to carry a
// provable join or stop edge — the static counterpart of the leak
// hunting the telemetry drain tests do dynamically. A `go` statement
// passes when the spawned body (the function literal, or the body of
// the named function it starts) contains one of:
//
//   - a channel receive or a range over a channel (done/stop channel
//     and work-queue patterns, including every select with a receive
//     case);
//   - a context liveness check (ctx.Err(); <-ctx.Done() is a receive);
//   - a WaitGroup Done whose Add is visible in the spawning function
//     (the classic fork/join pairing).
//
// Cross-package spawns (`go pkg.F()`) are resolved through stopEdge
// facts exported for every function whose body carries its own edge.
// Anything else — fire-and-forget senders, unbounded background loops —
// must either gain an edge or carry an audited //bcachelint:allow
// directive explaining who owns the goroutine's lifetime.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement in non-test code needs a provable join/stop edge (WaitGroup pairing, done/stop channel, or context check)",
	Run:  runGoroutineLife,
}

func runGoroutineLife(pass *Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}
	// Export stop-edge facts for every declared function whose own body
	// carries an edge, so `go pkg.F()` resolves across packages.
	for obj, fn := range decls {
		if bodyHasStopEdge(pass, fn.Body) {
			recv := ""
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = receiverTypeName(sig.Recv().Type())
			}
			pass.ExportFact(objectName(recv, obj.Name()), FactStopEdge, "")
		}
	}

	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goHasLifecycle(pass, fn, g, decls) {
					pass.Reportf(g.Pos(), "goroutine has no provable join/stop edge (WaitGroup Add/Done pairing, done/stop channel receive, or context check)")
				}
				return true
			})
		}
	}
	return nil
}

// goHasLifecycle checks one go statement against the accepted edges.
func goHasLifecycle(pass *Pass, fn *ast.FuncDecl, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	switch spawned := g.Call.Fun.(type) {
	case *ast.FuncLit:
		if bodyHasStopEdge(pass, spawned.Body) {
			return true
		}
		return waitGroupPaired(pass, fn, spawned.Body)
	default:
		callee := calleeFunc(pass, g.Call)
		if callee == nil {
			return false
		}
		if decl, ok := decls[callee]; ok {
			if bodyHasStopEdge(pass, decl.Body) {
				return true
			}
			return waitGroupPaired(pass, fn, decl.Body)
		}
		if callee.Pkg() != nil && callee.Pkg().Path() != pass.Pkg.Path() {
			recv := ""
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = receiverTypeName(sig.Recv().Type())
			}
			_, ok := pass.FindImportedFact(callee.Pkg().Path(), FactStopEdge, objectName(recv, callee.Name()))
			return ok
		}
		return false
	}
}

// bodyHasStopEdge reports whether body contains a channel receive, a
// range over a channel, or a context liveness check.
func bodyHasStopEdge(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
				if isContextType(pass.Info.Types[sel.X].Type) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// waitGroupPaired reports the fork/join pattern: spawnedBody calls
// Done on a WaitGroup and the spawning function's body shows the
// matching Add.
func waitGroupPaired(pass *Pass, fn *ast.FuncDecl, spawnedBody *ast.BlockStmt) bool {
	doneOn := map[string]bool{}
	ast.Inspect(spawnedBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if isWaitGroupType(pass.Info.Types[sel.X].Type) {
			doneOn[exprString(sel.X)] = true
		}
		return true
	})
	if len(doneOn) == 0 {
		return false
	}
	paired := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !paired
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return !paired
		}
		if isWaitGroupType(pass.Info.Types[sel.X].Type) && doneOn[exprString(sel.X)] {
			paired = true
		}
		return !paired
	})
	return paired
}

// isWaitGroupType matches sync.WaitGroup and *sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isContextType matches context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
