package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ProbeSafe enforces the observability layer's hot-path contract
// (internal/cache/probe.go, internal/obs/alloc_test.go): probes are nil
// by default and every emission must be guarded, and an emission must
// never allocate — the alloc benchmarks pin probe overhead at zero
// allocations per access, which any closure or composite-literal
// argument would break.
//
// At every call of a cache.Probe interface method:
//   - the call must be enclosed in an if whose condition checks the
//     same receiver expression against nil (`if c.probe != nil { ... }`,
//     possibly inside a larger && chain)
//   - no argument may be a function literal or (address of a) composite
//     literal, which allocate per emission
//
// Taking a Probe method as a method value (`f := p.ObserveAccess`) is
// also flagged: a method value is a closure allocation.
//
// Probe implementations that fan out to other probes known non-nil by
// construction (obs.Multi filters nils) suppress per line with
// //bcachelint:allow probesafe(reason).
var ProbeSafe = &Analyzer{
	Name: "probesafe",
	Doc:  "flag unguarded or allocating cache.Probe emissions on the hot path",
	Run:  runProbeSafe,
}

// probeInterfacePkg/Name identify the interface whose call sites are
// checked. Fixture packages substitute their own (see probeIfaceFor).
const (
	probeInterfacePkgSuffix = "internal/cache"
	probeInterfaceName      = "Probe"
)

// isProbeInterface reports whether t (after pointer stripping) is the
// cache.Probe interface type, or a fixture stand-in: any interface
// named Probe declared in a package whose path ends in internal/cache
// or in a testdata fixture package.
func isProbeInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	obj := named.Obj()
	if obj.Name() != probeInterfaceName || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return hasSuffixPath(path, probeInterfacePkgSuffix) || containsTestdata(path)
}

func runProbeSafe(pass *Pass) error {
	for _, file := range pass.Files {
		// The hot-path contract binds production code; tests and
		// benchmarks drive probes directly on values they know are
		// non-nil, and a test-side allocation is benign.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only method selections on a Probe-typed receiver matter.
			selInfo, ok := pass.Info.Selections[sel]
			if !ok || selInfo.Kind() != types.MethodVal {
				return true
			}
			if !isProbeInterface(pass.Info.TypeOf(sel.X)) {
				return true
			}
			call, isCall := enclosingCall(stack, sel)
			if !isCall {
				pass.Reportf(sel.Pos(), "method value %s.%s allocates a closure; call the probe directly under a nil guard", exprString(sel.X), sel.Sel.Name)
				return true
			}
			if !nilGuarded(pass, stack, sel.X) {
				pass.Reportf(call.Pos(), "probe emission %s.%s is not enclosed in an `if %s != nil` guard; probes are nil by default", exprString(sel.X), sel.Sel.Name, exprString(sel.X))
			}
			for _, arg := range call.Args {
				if bad := allocatingArg(arg); bad != "" {
					pass.Reportf(arg.Pos(), "probe emission argument is a %s, which allocates per event; hoist it out of the hot path", bad)
				}
			}
			return true
		})
	}
	return nil
}

// enclosingCall reports whether sel is the Fun of a call expression in
// stack (i.e. this is a method call, not a method value).
func enclosingCall(stack []ast.Node, sel *ast.SelectorExpr) (*ast.CallExpr, bool) {
	if len(stack) == 0 {
		return nil, false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || call.Fun != sel {
		return nil, false
	}
	return call, true
}

// nilGuarded reports whether some enclosing if-statement's condition
// contains `recv != nil` (or `nil != recv`) for the same receiver
// expression, comparing by printed source form.
func nilGuarded(pass *Pass, stack []ast.Node, recv ast.Expr) bool {
	want := exprString(recv)
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// The call must be in the body for the guard to cover it (a
		// call in the else branch is the un-guarded path).
		if !nodeWithin(ifStmt.Body, recv) {
			continue
		}
		if condChecksNotNil(ifStmt.Cond, want) {
			return true
		}
	}
	return false
}

// nodeWithin reports whether n's position falls inside outer.
func nodeWithin(outer ast.Node, n ast.Node) bool {
	return outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// condChecksNotNil walks cond's && chain for a `want != nil` check.
func condChecksNotNil(cond ast.Expr, want string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNotNil(c.X, want)
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			return condChecksNotNil(c.X, want) || condChecksNotNil(c.Y, want)
		case "!=":
			return (exprString(c.X) == want && isNilIdent(c.Y)) ||
				(exprString(c.Y) == want && isNilIdent(c.X))
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// allocatingArg classifies argument expressions that allocate per call.
func allocatingArg(arg ast.Expr) string {
	switch a := arg.(type) {
	case *ast.FuncLit:
		return "function literal"
	case *ast.CompositeLit:
		return "composite literal"
	case *ast.UnaryExpr:
		if a.Op.String() == "&" {
			if _, ok := a.X.(*ast.CompositeLit); ok {
				return "pointer to composite literal"
			}
		}
	}
	return ""
}
