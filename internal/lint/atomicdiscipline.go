package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AtomicDiscipline enforces all-or-nothing atomicity: once any code
// accesses a struct field through sync/atomic, every other access to
// that field must be atomic too — one plain read racing an atomic
// writer is still a data race, and one the race detector only catches
// when the interleaving happens to occur under -race. The analyzer
//
//   - collects every field reached through an `atomic.XxxNN(&s.f, ...)`
//     call, exports an atomicField fact for it, and flags plain
//     reads/writes of the same field anywhere else in the package (and,
//     via facts, in dependent packages);
//   - checks that fields used with 64-bit atomic ops sit at an
//     8-byte-aligned offset under 32-bit (GOARCH=386) layout, the
//     portability trap sync/atomic documents; atomic.Int64/Uint64
//     typed fields are exempt — the runtime aligns them.
//
// Values still confined to their constructor (the receiver chain roots
// at a variable declared in the same body) are exempt from the
// plain-access rule: initialization before sharing is not a race.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly; 64-bit atomics must be alignment-safe",
	Run:  runAtomicDiscipline,
}

func runAtomicDiscipline(pass *Pass) error {
	fields, operands := collectAtomicFields(pass)
	exportAtomicFacts(pass, fields, operands)
	checkPlainAccesses(pass, fields, operands)
	checkAtomicAlignment(pass, fields)
	return nil
}

// atomicField records how one field is accessed atomically.
type atomicField struct {
	width int    // 32 or 64; 0 = width-free op (Pointer, Uintptr)
	owner string // bare name of the struct type, for fact naming
}

// collectAtomicFields walks every sync/atomic call and records the
// struct fields its pointer operands name. operands is the set of
// selector nodes that appear inside those calls, so the plain-access
// walk can skip them.
func collectAtomicFields(pass *Pass) (map[types.Object]atomicField, map[*ast.SelectorExpr]bool) {
	fields := map[types.Object]atomicField{}
	operands := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			width := 0
			switch {
			case strings.Contains(fn.Name(), "64"):
				width = 64
			case strings.Contains(fn.Name(), "32"):
				width = 32
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil {
					continue
				}
				if v, ok := obj.(*types.Var); !ok || !v.IsField() {
					continue
				}
				operands[sel] = true
				owner := receiverTypeName(pass.Info.Types[sel.X].Type)
				if prev, ok := fields[obj]; !ok || prev.width < width {
					fields[obj] = atomicField{width: width, owner: owner}
				}
			}
			return true
		})
	}
	return fields, operands
}

// exportAtomicFacts publishes each atomically-accessed field of a type
// declared in this package, so importing packages flag plain accesses
// too.
func exportAtomicFacts(pass *Pass, fields map[types.Object]atomicField, _ map[*ast.SelectorExpr]bool) {
	for obj, af := range fields {
		if obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.Path() {
			continue
		}
		detail := ""
		if af.width != 0 {
			detail = strconv.Itoa(af.width)
		}
		pass.ExportFact(objectName(af.owner, obj.Name()), FactAtomicField, detail)
	}
}

// checkPlainAccesses flags every selector that names an atomic field
// outside a sync/atomic call. Cross-package fields are recognized
// through imported atomicField facts.
func checkPlainAccesses(pass *Pass, fields map[types.Object]atomicField, operands map[*ast.SelectorExpr]bool) {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || operands[sel] {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil {
					return true
				}
				v, ok := obj.(*types.Var)
				if !ok || !v.IsField() {
					return true
				}
				atomicUse, known := fields[obj]
				if !known && obj.Pkg() != nil && obj.Pkg().Path() != pass.Pkg.Path() {
					owner := receiverTypeName(pass.Info.Types[sel.X].Type)
					if _, ok := pass.FindImportedFact(obj.Pkg().Path(), FactAtomicField, objectName(owner, obj.Name())); ok {
						known = true
						atomicUse.owner = owner
					}
				}
				if !known {
					return true
				}
				if root := rootIdent(sel.X); root != nil {
					if ro := pass.Info.Uses[root.(*ast.Ident)]; ro != nil &&
						ro.Pos() >= fn.Body.Pos() && ro.Pos() <= fn.Body.End() {
						return true // still constructor-local
					}
				}
				pass.Reportf(sel.Pos(), "plain access to %s.%s, which is accessed with sync/atomic elsewhere; use atomic ops for every access", atomicUse.owner, obj.Name())
				return true
			})
		}
	}
}

// checkAtomicAlignment verifies 64-bit atomic fields sit at 8-byte
// offsets under 386 struct layout, where the compiler only guarantees
// 4-byte alignment for int64.
func checkAtomicAlignment(pass *Pass, fields map[types.Object]atomicField) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			var vars []*types.Var
			for i := 0; i < st.NumFields(); i++ {
				vars = append(vars, st.Field(i))
			}
			offsets := sizes.Offsetsof(vars)
			for i, v := range vars {
				af, ok := fields[v]
				if !ok || af.width != 64 {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(fieldDeclPos(pass, ts, v), "64-bit atomic field %s.%s is at offset %d under 32-bit layout; place it first in the struct or use atomic.Int64/Uint64", ts.Name.Name, v.Name(), offsets[i])
				}
			}
			return true
		})
	}
}

// fieldDeclPos locates the declaration position of field v inside the
// struct type spec, falling back to the spec itself.
func fieldDeclPos(pass *Pass, ts *ast.TypeSpec, v *types.Var) token.Pos {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return ts.Pos()
	}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if pass.Info.Defs[name] == v {
				return name.Pos()
			}
		}
	}
	return ts.Pos()
}
