package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"bcache/internal/addr"
)

// File format: a 16-byte header followed by fixed-width records.
//
//	offset  size  field
//	0       4     magic "BCT1"
//	4       4     version (little-endian uint32) = 1
//	8       8     record count (little-endian uint64)
//
// Each record is 14 bytes: PC (uint32), Mem (uint32), Kind, Src1, Src2,
// Dst, Lat, and one reserved byte (zero). Addresses are 32-bit by
// construction (see addr.Bits).
const (
	magic      = "BCT1"
	version    = 1
	headerSize = 16
	recordSize = 14
)

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// Writer encodes records to an io.Writer. Call Close to flush the header
// count; Writer buffers records internally, so the underlying writer must
// support nothing beyond Write.
type Writer struct {
	w     *bufio.Writer
	seek  io.WriteSeeker // non-nil when the count can be back-patched
	count uint64
	buf   [recordSize]byte
}

// NewWriter begins a trace file on w. If w also implements
// io.WriteSeeker (e.g. *os.File), the record count in the header is
// back-patched on Close; otherwise the count field is written as zero and
// readers rely on EOF.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	if ws, ok := w.(io.WriteSeeker); ok {
		tw.seek = ws
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return tw, nil
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if r.PC > addr.Max || r.Mem > addr.Max {
		return fmt.Errorf("trace: address exceeds %d bits: %+v", addr.Bits, r)
	}
	b := tw.buf[:]
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.PC))
	binary.LittleEndian.PutUint32(b[4:8], uint32(r.Mem))
	b[8] = byte(r.Kind)
	b[9] = r.Src1
	b[10] = r.Src2
	b[11] = r.Dst
	b[12] = r.Lat
	b[13] = 0
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Close flushes buffered records and back-patches the header count when
// the underlying writer is seekable.
func (tw *Writer) Close() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	if tw.seek == nil {
		return nil
	}
	if _, err := tw.seek.Seek(8, io.SeekStart); err != nil {
		return fmt.Errorf("trace: seeking header: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], tw.count)
	if _, err := tw.seek.Write(cnt[:]); err != nil {
		return fmt.Errorf("trace: patching count: %w", err)
	}
	_, err := tw.seek.Seek(0, io.SeekEnd)
	return err
}

// Reader decodes a trace file. It implements Stream.
type Reader struct {
	r     *bufio.Reader
	count uint64 // records remaining per header; ^0 when unknown
	err   error
	buf   [recordSize]byte
}

var _ Stream = (*Reader)(nil)

// NewReader validates the header and returns a Reader positioned at the
// first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count == 0 {
		count = ^uint64(0) // unknown; read until EOF
	}
	return &Reader{r: br, count: count}, nil
}

// Next implements Stream.
func (tr *Reader) Next() (Record, bool) {
	if tr.err != nil || tr.count == 0 {
		return Record{}, false
	}
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if err != io.EOF {
			tr.err = fmt.Errorf("%w: truncated record: %v", ErrBadFormat, err)
		}
		tr.count = 0
		return Record{}, false
	}
	b := tr.buf[:]
	r := Record{
		PC:   addr.Addr(binary.LittleEndian.Uint32(b[0:4])),
		Mem:  addr.Addr(binary.LittleEndian.Uint32(b[4:8])),
		Kind: Kind(b[8]),
		Src1: b[9],
		Src2: b[10],
		Dst:  b[11],
		Lat:  b[12],
	}
	if tr.count != ^uint64(0) {
		tr.count--
	}
	if err := r.Validate(); err != nil {
		tr.err = err
		return Record{}, false
	}
	return r, true
}

// Err returns the first decode error encountered, if any.
func (tr *Reader) Err() error { return tr.err }
