package trace

import (
	"bytes"
	"testing"

	"bcache/internal/rng"
)

func TestCompressedRoundTrip(t *testing.T) {
	src := rng.New(31)
	recs := make([]Record, 5000)
	for i := range recs {
		recs[i] = randRecord(src)
	}
	var buf bytes.Buffer
	w, err := NewCompressedWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewCompressedReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("v2 stream ended at %d (err=%v)", i, r.Err())
		}
		if got != want {
			t.Fatalf("v2 record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok || r.Err() != nil {
		t.Fatalf("v2 trailing state: err=%v", r.Err())
	}
}

func TestCompressedRejectsV1(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{PC: 4, Kind: Int, Lat: 1})
	_ = w.Close()
	if _, err := NewCompressedReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("v2 reader accepted a v1 file")
	}
}

func TestOpenAny(t *testing.T) {
	rec := Record{PC: 4, Kind: Int, Lat: 1}
	var v1, v2 bytes.Buffer
	w1, _ := NewWriter(&v1)
	_ = w1.Write(rec)
	_ = w1.Close()
	w2, _ := NewCompressedWriter(&v2)
	_ = w2.Write(rec)
	_ = w2.Close()

	for i, data := range [][]byte{v1.Bytes(), v2.Bytes()} {
		st, err := OpenAny(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("version %d: %v", i+1, err)
		}
		got, ok := st.Next()
		if !ok || got != rec {
			t.Fatalf("version %d: replay = %+v, %v", i+1, got, ok)
		}
	}
	if _, err := OpenAny(bytes.NewReader([]byte("BCT1\x09\x00\x00\x00........"))); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestCompressedTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewCompressedWriter(&buf)
	_ = w.Write(Record{PC: 0x1000, Kind: Load, Mem: 0x2000, Lat: 1})
	_ = w.Close()
	trunc := buf.Bytes()[:buf.Len()-2]
	r, err := NewCompressedReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated v2 record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

// FuzzCompressedReader: arbitrary bytes must never panic the v2 decoder.
func FuzzCompressedReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewCompressedWriter(&buf)
	_ = w.Write(Record{PC: 4, Kind: Int, Lat: 1})
	_ = w.Write(Record{PC: 8, Kind: Load, Mem: 0x100, Lat: 3})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:headerSize+1])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewCompressedReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("v2 decoder emitted invalid record: %v", err)
			}
		}
	})
}
