package trace_test

import (
	"bytes"
	"testing"

	"bcache/internal/trace"
	"bcache/internal/workload"
)

// TestCompressionRatio: on a real benchmark stream the delta format must
// be much smaller than the fixed-width v1 format (locality is the point).
func TestCompressionRatio(t *testing.T) {
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	w1, _ := trace.NewWriter(&v1)
	w2, err := trace.NewCompressedWriter(&v2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		rec, _ := g.Next()
		if err := w1.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w2.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	_ = w1.Close()
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(v2.Len()) / float64(v1.Len())
	if ratio > 0.55 {
		t.Fatalf("v2/v1 size ratio %.2f, want < 0.55 (v1 %d, v2 %d bytes)", ratio, v1.Len(), v2.Len())
	}

	// And the compressed stream must replay identically.
	g2, _ := workload.New(p)
	r, err := trace.NewCompressedReader(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		want, _ := g2.Next()
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("v2 replay diverged at %d", i)
		}
	}
}
