package trace

import (
	"strings"
	"testing"
)

func TestDineroBasics(t *testing.T) {
	in := `# a comment
2 400
0 1000
1 1008

2 404
0 0x1010
`
	d := NewDineroReader(strings.NewReader(in))
	want := []Record{
		{PC: 0x400, Kind: Int, Lat: 1},
		{PC: 0x400, Kind: Load, Mem: 0x1000, Lat: 1},
		{PC: 0x400, Kind: Store, Mem: 0x1008, Lat: 1},
		{PC: 0x404, Kind: Int, Lat: 1},
		{PC: 0x404, Kind: Load, Mem: 0x1010, Lat: 1},
	}
	for i, w := range want {
		got, ok := d.Next()
		if !ok {
			t.Fatalf("stream ended at %d: %v", i, d.Err())
		}
		if got != w {
			t.Fatalf("record %d: got %+v want %+v", i, got, w)
		}
	}
	if _, ok := d.Next(); ok || d.Err() != nil {
		t.Fatalf("trailing state: %v", d.Err())
	}
}

func TestDineroDataOnlyTrace(t *testing.T) {
	// Traces without ifetches still produce valid records.
	d := NewDineroReader(strings.NewReader("0 2000\n1 2008\n"))
	r1, ok := d.Next()
	if !ok || r1.Kind != Load || r1.PC == 0 {
		t.Fatalf("r1 = %+v, %v", r1, ok)
	}
	if err := r1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDineroErrors(t *testing.T) {
	cases := []string{
		"9 1000\n",      // unknown label
		"x 1000\n",      // bad label
		"0 zz\n",        // bad address
		"0\n",           // short line
		"0 fffffffff\n", // > 32-bit address
	}
	for i, in := range cases {
		d := NewDineroReader(strings.NewReader(in))
		if _, ok := d.Next(); ok {
			t.Errorf("case %d: bad line accepted", i)
			continue
		}
		if d.Err() == nil {
			t.Errorf("case %d: no error reported", i)
		}
	}
}

func TestDineroRecordsValidate(t *testing.T) {
	d := NewDineroReader(strings.NewReader("2 400\n0 1000\n1 1004\n"))
	for {
		rec, ok := d.Next()
		if !ok {
			break
		}
		if err := rec.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}
