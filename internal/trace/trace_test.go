package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

func randRecord(src *rng.Source) Record {
	k := Kind(src.Intn(int(kindCount)))
	r := Record{
		PC:   addr.Addr(src.Uint32()),
		Kind: k,
		Src1: uint8(src.Intn(NumRegs)),
		Src2: uint8(src.Intn(NumRegs)),
		Dst:  uint8(src.Intn(NumRegs)),
		Lat:  uint8(1 + src.Intn(8)),
	}
	if k.IsMem() {
		r.Mem = addr.Addr(src.Uint32())
	}
	return r
}

func TestValidate(t *testing.T) {
	good := Record{PC: 4, Kind: Int, Lat: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []Record{
		{PC: 4, Kind: kindCount, Lat: 1},          // bad kind
		{PC: 4, Kind: Int, Lat: 0},                // zero latency
		{PC: 4, Kind: Int, Lat: 1, Src1: NumRegs}, // reg out of range
		{PC: 4, Kind: Int, Lat: 1, Mem: 8},        // non-mem with address
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted: %+v", i, r)
		}
	}
}

func TestRoundTripBuffer(t *testing.T) {
	src := rng.New(21)
	recs := make([]Record, 1000)
	for i := range recs {
		recs[i] = randRecord(src)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 1000 {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended early at %d (err=%v)", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Fatal("stream produced extra records")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestRoundTripFile(t *testing.T) {
	// Through a real file the header count is back-patched.
	path := filepath.Join(t.TempDir(), "t.bct")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	const n = 257
	for i := 0; i < n; i++ {
		if err := w.Write(randRecord(src)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	r, err := NewReader(g)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		count++
	}
	if count != n || r.Err() != nil {
		t.Fatalf("read %d records (err=%v), want %d", count, r.Err(), n)
	}
}

func TestBadHeaders(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("BC"),
		[]byte("NOPE000000000000"),
		append([]byte("BCT1"), 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0), // bad version
	}
	for i, b := range cases {
		if _, err := NewReader(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: bad header accepted", i)
		}
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{PC: 4, Kind: Int, Lat: 1})
	_ = w.Close()
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Kind: Int, Lat: 0}); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestSliceStreamAndLimit(t *testing.T) {
	recs := []Record{
		{PC: 0, Kind: Int, Lat: 1},
		{PC: 4, Kind: Int, Lat: 1},
		{PC: 8, Kind: Int, Lat: 1},
	}
	got := Take(Limit(NewSliceStream(recs), 2), 10)
	if len(got) != 2 || got[1].PC != 4 {
		t.Fatalf("Limit/Take = %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		recs := make([]Record, int(n)+1)
		for i := range recs {
			recs[i] = randRecord(src)
			if err := w.Write(recs[i]); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, ok := r.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriter(b *testing.B) {
	src := rng.New(1)
	rec := randRecord(src)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
		_ = w.Write(rec)
	}
}
