// Package trace defines the instruction-trace record that connects
// workload generation, cache models, and the processor timing model, plus
// a compact binary on-disk format for saving and replaying traces.
//
// The paper drives its evaluation with SimpleScalar executing Alpha
// binaries; this repository substitutes deterministic synthetic traces
// (package workload). The record deliberately carries the same
// information sim-outorder's core consumed: PC, operation class, memory
// address, register dependences, and execution latency.
package trace

import (
	"fmt"

	"bcache/internal/addr"
)

// Kind classifies an instruction for the timing model.
type Kind uint8

// Instruction classes.
const (
	Int    Kind = iota // simple ALU op, 1-cycle
	FP                 // floating-point op, multi-cycle
	Branch             // control transfer (modelled with ideal prediction)
	Load               // memory read; latency from the data cache
	Store              // memory write; retires without waiting for the cache
	kindCount
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case FP:
		return "fp"
	case Branch:
		return "branch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsMem reports whether the instruction accesses the data cache.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// NumRegs is the size of the architectural register file visible in
// traces. Register 0 reads as "no operand" (like Alpha's R31/F31 zero
// registers, which SimpleScalar also treats as always-ready).
const NumRegs = 32

// Record is one executed instruction.
type Record struct {
	PC   addr.Addr // byte address of the instruction
	Mem  addr.Addr // effective address; meaningful only when Kind.IsMem()
	Kind Kind
	Src1 uint8 // source registers; 0 = none
	Src2 uint8
	Dst  uint8 // destination register; 0 = none
	Lat  uint8 // execution latency in cycles (excluding cache time)
}

// Validate reports whether the record is internally consistent.
func (r Record) Validate() error {
	if r.Kind >= kindCount {
		return fmt.Errorf("trace: invalid kind %d", uint8(r.Kind))
	}
	if r.Src1 >= NumRegs || r.Src2 >= NumRegs || r.Dst >= NumRegs {
		return fmt.Errorf("trace: register out of range in %+v", r)
	}
	if r.Lat == 0 {
		return fmt.Errorf("trace: zero latency in %+v", r)
	}
	if !r.Kind.IsMem() && r.Mem != 0 {
		return fmt.Errorf("trace: non-memory record carries address %#x", r.Mem)
	}
	return nil
}

// Stream produces records one at a time. Generators (package workload)
// and file readers both implement it.
type Stream interface {
	// Next returns the next record and true, or a zero Record and false
	// when the stream is exhausted.
	Next() (Record, bool)
}

// SliceStream adapts a []Record to a Stream.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a Stream over recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Rest returns the records not yet consumed, without advancing the
// stream. Hot consumers (the cpu timing model) index this slice
// directly instead of paying an interface call per record.
func (s *SliceStream) Rest() []Record { return s.recs[s.pos:] }

// Skip advances the stream past n records (clamped to the remainder),
// keeping Next consistent after a consumer drained Rest directly.
func (s *SliceStream) Skip(n int) {
	if rest := len(s.recs) - s.pos; n > rest {
		n = rest
	}
	s.pos += n
}

// Take drains up to n records from st into a slice.
func Take(st Stream, n int) []Record {
	out := make([]Record, 0, n)
	for len(out) < n {
		r, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Limit wraps st so that at most n records are produced.
func Limit(st Stream, n uint64) Stream { return &limitStream{st: st, left: n} }

type limitStream struct {
	st   Stream
	left uint64
}

func (l *limitStream) Next() (Record, bool) {
	if l.left == 0 {
		return Record{}, false
	}
	l.left--
	return l.st.Next()
}
