package trace

import (
	"bytes"
	"testing"

	"bcache/internal/addr"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must never
// panic, and every record it does produce must validate.
func FuzzReader(f *testing.F) {
	// Seed with a real file, a truncated one, and junk.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Write(Record{PC: 4, Kind: Int, Lat: 1})
	_ = w.Write(Record{PC: 8, Kind: Load, Mem: 0x1000, Lat: 1, Dst: 3})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-5])
	f.Add([]byte("BCT1"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected: fine
		}
		for i := 0; i < 10000; i++ {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("decoder emitted invalid record: %v", err)
			}
		}
	})
}

// FuzzRoundTrip: any validating record must survive encode/decode.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(4), uint32(0), uint8(0), uint8(1), uint8(2), uint8(3), uint8(1))
	f.Add(uint32(100), uint32(0x2000), uint8(3), uint8(0), uint8(0), uint8(0), uint8(7))
	f.Fuzz(func(t *testing.T, pc, mem uint32, kind, s1, s2, dst, lat uint8) {
		rec := Record{
			PC: addrOf(pc), Mem: addrOf(mem), Kind: Kind(kind),
			Src1: s1, Src2: s2, Dst: dst, Lat: lat,
		}
		if rec.Validate() != nil {
			return // not encodable; Writer must reject it
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(rec); err != nil {
			t.Fatalf("valid record rejected: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got, ok := r.Next()
		if !ok || got != rec {
			t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, rec)
		}
	})
}

// addrOf converts fuzz-provided uint32 values to addresses.
func addrOf(v uint32) addr.Addr { return addr.Addr(v) }
