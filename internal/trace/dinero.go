package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bcache/internal/addr"
)

// DineroReader parses the classic Dinero III/IV "din" trace format, the
// lingua franca of cache-simulation traces: one access per line,
//
//	<label> <hex address> [ignored fields...]
//
// with label 0 = data read, 1 = data write, 2 = instruction fetch.
// Comment lines starting with '#' and blank lines are skipped. It lets
// users replay real traces they already have through this simulator
// (bcachesim -trace accepts .din files).
//
// Instruction fetches become Int records at the fetched PC; data accesses
// become Load/Store records attributed to the most recent fetch PC (or a
// synthetic sequential PC when the trace has no fetches at all).
type DineroReader struct {
	sc     *bufio.Scanner
	err    error
	lineNo int
	lastPC addr.Addr
}

var _ Stream = (*DineroReader)(nil)

// NewDineroReader wraps r.
func NewDineroReader(r io.Reader) *DineroReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	return &DineroReader{sc: sc, lastPC: 0x1000}
}

// Next implements Stream.
func (d *DineroReader) Next() (Record, bool) {
	if d.err != nil {
		return Record{}, false
	}
	for d.sc.Scan() {
		d.lineNo++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			d.err = fmt.Errorf("%w: din line %d: %q", ErrBadFormat, d.lineNo, line)
			return Record{}, false
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			d.err = fmt.Errorf("%w: din line %d: bad label %q", ErrBadFormat, d.lineNo, fields[0])
			return Record{}, false
		}
		a, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			d.err = fmt.Errorf("%w: din line %d: bad address %q", ErrBadFormat, d.lineNo, fields[1])
			return Record{}, false
		}
		if addr.Addr(a) > addr.Max {
			d.err = fmt.Errorf("%w: din line %d: address %#x exceeds %d bits", ErrBadFormat, d.lineNo, a, addr.Bits)
			return Record{}, false
		}
		switch label {
		case 0:
			return Record{PC: d.lastPC, Kind: Load, Mem: addr.Addr(a), Lat: 1}, true
		case 1:
			return Record{PC: d.lastPC, Kind: Store, Mem: addr.Addr(a), Lat: 1}, true
		case 2:
			d.lastPC = addr.Addr(a)
			return Record{PC: d.lastPC, Kind: Int, Lat: 1}, true
		default:
			d.err = fmt.Errorf("%w: din line %d: unknown label %d", ErrBadFormat, d.lineNo, label)
			return Record{}, false
		}
	}
	if err := d.sc.Err(); err != nil {
		d.err = err
	}
	return Record{}, false
}

// Err returns the first parse error, if any.
func (d *DineroReader) Err() error { return d.err }
