package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"bcache/internal/addr"
)

// Compressed trace format (version 2): identical header layout to v1 but
// records are delta-encoded with varints, exploiting the streams'
// locality — sequential PCs encode in one byte instead of four, and data
// addresses delta against the previous data address.
//
// Record encoding, in order:
//
//	flags   1 byte: bits 0-2 kind, bit 3 hasMem, bit 4 pcSeq (PC advanced
//	        by exactly 4), bit 5 latIs1
//	pcDelta zigzag varint (omitted when pcSeq)
//	mem     zigzag varint delta vs previous Mem (only when hasMem)
//	regs    3 bytes Src1, Src2, Dst
//	lat     1 byte (omitted when latIs1)
const (
	versionV2 = 2

	flagKindMask = 0x07
	flagHasMem   = 1 << 3
	flagPCSeq    = 1 << 4
	flagLatIs1   = 1 << 5
)

// CompressedWriter encodes records in the v2 format.
type CompressedWriter struct {
	w      *bufio.Writer
	seek   io.WriteSeeker
	count  uint64
	prevPC addr.Addr
	prevM  addr.Addr
	buf    []byte
}

// NewCompressedWriter begins a v2 trace on w (same header contract as
// NewWriter).
func NewCompressedWriter(w io.Writer) (*CompressedWriter, error) {
	cw := &CompressedWriter{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 32)}
	if ws, ok := w.(io.WriteSeeker); ok {
		cw.seek = ws
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], versionV2)
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing v2 header: %w", err)
	}
	return cw, nil
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one record.
func (cw *CompressedWriter) Write(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if r.PC > addr.Max || r.Mem > addr.Max {
		return fmt.Errorf("trace: address exceeds %d bits: %+v", addr.Bits, r)
	}
	b := cw.buf[:0]
	flags := byte(r.Kind) & flagKindMask
	pcDelta := int64(r.PC) - int64(cw.prevPC)
	if pcDelta == instrStride {
		flags |= flagPCSeq
	}
	if r.Kind.IsMem() {
		flags |= flagHasMem
	}
	if r.Lat == 1 {
		flags |= flagLatIs1
	}
	b = append(b, flags)
	if flags&flagPCSeq == 0 {
		b = binary.AppendUvarint(b, zigzag(pcDelta))
	}
	if flags&flagHasMem != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(r.Mem)-int64(cw.prevM)))
		cw.prevM = r.Mem
	}
	b = append(b, r.Src1, r.Src2, r.Dst)
	if flags&flagLatIs1 == 0 {
		b = append(b, r.Lat)
	}
	cw.prevPC = r.PC
	if _, err := cw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing v2 record: %w", err)
	}
	cw.count++
	return nil
}

// instrStride is the sequential-PC delta the format special-cases.
const instrStride = 4

// Count returns the records written so far.
func (cw *CompressedWriter) Count() uint64 { return cw.count }

// Close flushes and back-patches the record count when possible.
func (cw *CompressedWriter) Close() error {
	if err := cw.w.Flush(); err != nil {
		return fmt.Errorf("trace: flushing v2: %w", err)
	}
	if cw.seek == nil {
		return nil
	}
	if _, err := cw.seek.Seek(8, io.SeekStart); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], cw.count)
	if _, err := cw.seek.Write(cnt[:]); err != nil {
		return err
	}
	_, err := cw.seek.Seek(0, io.SeekEnd)
	return err
}

// CompressedReader decodes v2 traces. It implements Stream.
type CompressedReader struct {
	r      *bufio.Reader
	count  uint64
	err    error
	prevPC addr.Addr
	prevM  addr.Addr
}

var _ Stream = (*CompressedReader)(nil)

// NewCompressedReader validates the v2 header.
func NewCompressedReader(r io.Reader) (*CompressedReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short v2 header: %v", ErrBadFormat, err)
	}
	if string(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != versionV2 {
		return nil, fmt.Errorf("%w: not a v2 trace (version %d)", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	if count == 0 {
		count = ^uint64(0)
	}
	return &CompressedReader{r: br, count: count}, nil
}

// Remaining reports how many records are left to decode, or 0 when the
// header carried no count (an unclosed writer). Loaders use it to size
// their slices exactly instead of growing through append.
func (cr *CompressedReader) Remaining() uint64 {
	if cr.err != nil || cr.count == ^uint64(0) {
		return 0
	}
	return cr.count
}

// fail records a decode error and terminates the stream. A method
// rather than a closure inside Next: the closure would be allocated on
// every call of the hot decode loop.
func (cr *CompressedReader) fail(what string, err error) {
	cr.err = fmt.Errorf("%w: v2 %s: %v", ErrBadFormat, what, err)
	cr.count = 0
}

// Next implements Stream.
func (cr *CompressedReader) Next() (Record, bool) {
	if cr.err != nil || cr.count == 0 {
		return Record{}, false
	}
	flags, err := cr.r.ReadByte()
	if err != nil {
		if err != io.EOF {
			cr.err = fmt.Errorf("%w: truncated v2 record: %v", ErrBadFormat, err)
		}
		cr.count = 0
		return Record{}, false
	}
	var rec Record
	rec.Kind = Kind(flags & flagKindMask)
	if flags&flagPCSeq != 0 {
		rec.PC = cr.prevPC + instrStride
	} else {
		u, err := binary.ReadUvarint(cr.r)
		if err != nil {
			cr.fail("pc delta", err)
			return Record{}, false
		}
		rec.PC = addr.Addr(int64(cr.prevPC) + unzigzag(u))
	}
	if flags&flagHasMem != 0 {
		u, err := binary.ReadUvarint(cr.r)
		if err != nil {
			cr.fail("mem delta", err)
			return Record{}, false
		}
		rec.Mem = addr.Addr(int64(cr.prevM) + unzigzag(u))
		cr.prevM = rec.Mem
	}
	// Three ReadByte calls instead of io.ReadFull: the bufio fast path
	// inlines, and this loop decodes millions of records per reload.
	b1, err := cr.r.ReadByte()
	if err != nil {
		cr.fail("registers", err)
		return Record{}, false
	}
	b2, err := cr.r.ReadByte()
	if err != nil {
		cr.fail("registers", err)
		return Record{}, false
	}
	b3, err := cr.r.ReadByte()
	if err != nil {
		cr.fail("registers", err)
		return Record{}, false
	}
	rec.Src1, rec.Src2, rec.Dst = b1, b2, b3
	if flags&flagLatIs1 != 0 {
		rec.Lat = 1
	} else {
		lat, err := cr.r.ReadByte()
		if err != nil {
			cr.fail("latency", err)
			return Record{}, false
		}
		rec.Lat = lat
	}
	cr.prevPC = rec.PC
	if cr.count != ^uint64(0) {
		cr.count--
	}
	if err := rec.Validate(); err != nil {
		cr.err = err
		return Record{}, false
	}
	return rec, true
}

// Err returns the first decode error, if any.
func (cr *CompressedReader) Err() error { return cr.err }

// OpenAny sniffs the version field and returns the matching reader for a
// v1 or v2 trace.
func OpenAny(r io.ReadSeeker) (Stream, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch binary.LittleEndian.Uint32(hdr[4:8]) {
	case version:
		return NewReader(r)
	case versionV2:
		return NewCompressedReader(r)
	default:
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadFormat, binary.LittleEndian.Uint32(hdr[4:8]))
	}
}
