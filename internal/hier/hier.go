// Package hier composes level-one instruction and data caches with the
// unified L2 and main memory of the paper's evaluation platform
// (Table 4): split 16 kB L1s, a 256 kB 4-way unified L2 with 128-byte
// lines and a 6-cycle hit latency, and 100-cycle main memory.
//
// The hierarchy is the single point the CPU model and the energy model
// query: it returns access latencies and maintains the per-level traffic
// counters (L2 accesses and misses, memory accesses, writebacks).
package hier

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/cache"
)

// Config carries the hierarchy latencies. Defaults() matches Table 4.
type Config struct {
	L1Latency  int // L1 hit time in cycles
	L2Latency  int // L2 hit time in cycles
	MemLatency int // main-memory access time in cycles

	// L2Size/L2Line/L2Ways shape the unified L2.
	L2Size int
	L2Line int
	L2Ways int

	// StreamBuffer enables a FIFO stream buffer of the given depth on
	// the data side (Jouppi): every L1 miss prefetches the next line
	// into the buffer, and an L1 miss that hits the buffer is serviced
	// in L1Latency+1 cycles instead of going to the L2. Zero disables.
	StreamBuffer int
}

// Defaults returns the paper's Table 4 configuration.
func Defaults() Config {
	return Config{
		L1Latency:  1,
		L2Latency:  6,
		MemLatency: 100,
		L2Size:     256 * 1024,
		L2Line:     128,
		L2Ways:     4,
	}
}

// Hierarchy is a two-level memory system with split L1s.
type Hierarchy struct {
	cfg Config
	I   cache.Cache
	D   cache.Cache
	L2  cache.Cache

	// MemAccesses counts main-memory reads (L2 miss refills).
	MemAccesses uint64
	// MemWrites counts main-memory writes (L2 dirty writebacks).
	MemWrites uint64
	// L1Writebacks counts dirty L1 evictions written into the L2.
	L1Writebacks uint64
	// L1Refills counts L1 miss refills (block fills from L2/memory).
	L1Refills uint64

	// StreamHits counts data-side L1 misses served by the stream buffer.
	StreamHits uint64
	// Prefetches counts stream-buffer prefetch fills issued to the L2.
	Prefetches uint64

	// stream is the FIFO stream buffer (line addresses), nil if disabled.
	stream []addr.Addr

	// probe observes hierarchy-level events (L1 writebacks reaching the
	// L2); nil unless observability is attached.
	probe cache.Probe
}

// SetProbe attaches a probe to the hierarchy itself. The hierarchy emits
// ObserveWriteback once per dirty L1 victim written into the L2 — the
// event the L1's own ObserveEvict(dirty=true) only promises. Attach the
// same probe to an L1 (cache.AttachProbe) to correlate the two streams.
// Passing nil detaches.
func (h *Hierarchy) SetProbe(p cache.Probe) { h.probe = p }

// New builds a hierarchy around the given L1 instruction and data caches,
// with the Config's conventional set-associative L2.
func New(icache, dcache cache.Cache, cfg Config) (*Hierarchy, error) {
	l2, err := cache.NewSetAssoc(cfg.L2Size, cfg.L2Line, cfg.L2Ways, cache.LRU, nil)
	if err != nil {
		return nil, fmt.Errorf("hier: building L2: %w", err)
	}
	return NewWithL2(icache, dcache, l2, cfg)
}

// NewWithL2 builds a hierarchy around an arbitrary unified L2 (e.g. a
// B-Cache: the mechanism is not L1-specific).
func NewWithL2(icache, dcache, l2 cache.Cache, cfg Config) (*Hierarchy, error) {
	if icache == nil || dcache == nil || l2 == nil {
		return nil, fmt.Errorf("hier: nil cache")
	}
	if cfg.L1Latency <= 0 || cfg.L2Latency <= 0 || cfg.MemLatency <= 0 {
		return nil, fmt.Errorf("hier: non-positive latency in %+v", cfg)
	}
	return &Hierarchy{cfg: cfg, I: icache, D: dcache, L2: l2}, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Fetch performs an instruction fetch of the line holding pc and returns
// its latency in cycles.
func (h *Hierarchy) Fetch(pc addr.Addr) int {
	return h.access(h.I, pc, false, false)
}

// Data performs a data access and returns its latency in cycles.
func (h *Hierarchy) Data(a addr.Addr, write bool) int {
	return h.access(h.D, a, write, h.cfg.StreamBuffer > 0)
}

// access runs one L1 access and services misses and writebacks through
// the L2 and memory, returning the total latency.
func (h *Hierarchy) access(l1 cache.Cache, a addr.Addr, write, streamOK bool) int {
	r := l1.Access(a, write)
	lat := h.cfg.L1Latency + r.ExtraLatency
	if r.Evicted && r.EvictedDirty {
		// Write the dirty victim back into the L2 (off the critical path;
		// latency not charged to this access).
		h.L1Writebacks++
		if h.probe != nil {
			h.probe.ObserveWriteback()
		}
		h.l2Access(r.EvictedAddr, true)
	}
	if r.Hit {
		return lat
	}
	h.L1Refills++
	if streamOK {
		line := addr.Align(a, uint64(l1.Geometry().LineBytes))
		next := line + addr.Addr(l1.Geometry().LineBytes)
		if h.streamHit(line) {
			// Buffer hit: the line was prefetched; one extra cycle to
			// move it in, and keep the stream running.
			h.StreamHits++
			h.streamFill(next)
			return lat + 1
		}
		// Demand miss: service it first, then start the stream — the
		// prefetch rides behind the demand fill.
		lat += h.l2Access(a, false)
		h.streamFill(next)
		return lat
	}
	return lat + h.l2Access(a, false)
}

// streamHit consumes a buffered line if present.
func (h *Hierarchy) streamHit(line addr.Addr) bool {
	for i, b := range h.stream {
		if b == line {
			h.stream = append(h.stream[:i], h.stream[i+1:]...)
			return true
		}
	}
	return false
}

// streamFill prefetches line into the buffer through the L2 (off the
// demand critical path), evicting FIFO when full.
func (h *Hierarchy) streamFill(line addr.Addr) {
	for _, b := range h.stream {
		if b == line {
			return
		}
	}
	h.Prefetches++
	h.l2Access(line, false)
	if len(h.stream) >= h.cfg.StreamBuffer {
		h.stream = h.stream[1:]
	}
	h.stream = append(h.stream, line)
}

// l2Access touches the unified L2 and returns the latency beyond L1.
func (h *Hierarchy) l2Access(a addr.Addr, write bool) int {
	r := h.L2.Access(a, write)
	lat := h.cfg.L2Latency
	if r.Evicted && r.EvictedDirty {
		h.MemWrites++
	}
	if !r.Hit {
		h.MemAccesses++
		lat += h.cfg.MemLatency
	}
	return lat
}

// Reset clears all caches and counters.
func (h *Hierarchy) Reset() {
	h.I.Reset()
	h.D.Reset()
	h.L2.Reset()
	h.MemAccesses = 0
	h.MemWrites = 0
	h.L1Writebacks = 0
	h.L1Refills = 0
	h.StreamHits = 0
	h.Prefetches = 0
	h.stream = h.stream[:0]
}
