package hier

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/victim"
)

func build(t testing.TB) *Hierarchy {
	t.Helper()
	ic, err := cache.NewDirectMapped(16*1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := cache.NewDirectMapped(16*1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(ic, dc, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLatencies(t *testing.T) {
	h := build(t)
	// Cold access: L1 miss + L2 miss + memory = 1 + 6 + 100.
	if lat := h.Data(0, false); lat != 107 {
		t.Fatalf("cold access latency = %d, want 107", lat)
	}
	// Warm L1 hit.
	if lat := h.Data(0, false); lat != 1 {
		t.Fatalf("L1 hit latency = %d, want 1", lat)
	}
	// Conflicting line, but within the same 128B L2 line (L2 warm):
	// 16kB apart → different L2 set. Use an address in the same L2 line:
	// 0 and 32 share the L2 line; evict 0 from L1 by touching 0+16kB
	// first... simpler: re-access a line that missed before and is L2
	// resident: 0+16384 (cold: 107), then 0 again — 0 is still in L2.
	if lat := h.Data(16384, false); lat != 107 {
		t.Fatalf("second cold access = %d, want 107", lat)
	}
	if lat := h.Data(0, false); lat != 7 {
		t.Fatalf("L1 miss + L2 hit latency = %d, want 7", lat)
	}
}

func TestSplitCaches(t *testing.T) {
	h := build(t)
	h.Fetch(0x400000)
	if h.I.Stats().Accesses != 1 || h.D.Stats().Accesses != 0 {
		t.Fatal("fetch touched the data cache")
	}
	h.Data(0x10000000, true)
	if h.D.Stats().Accesses != 1 {
		t.Fatal("data access not recorded")
	}
	// Both miss paths go through the unified L2.
	if h.L2.Stats().Accesses != 2 {
		t.Fatalf("L2 accesses = %d, want 2", h.L2.Stats().Accesses)
	}
}

func TestWritebackFlow(t *testing.T) {
	h := build(t)
	h.Data(0, true)     // dirty L1 line
	h.Data(16384, true) // evicts it → L1 writeback into L2
	if h.L1Writebacks != 1 {
		t.Fatalf("L1 writebacks = %d, want 1", h.L1Writebacks)
	}
	// The writeback is an L2 access beyond the two refills.
	if h.L2.Stats().Accesses != 3 {
		t.Fatalf("L2 accesses = %d, want 3 (2 refills + 1 writeback)", h.L2.Stats().Accesses)
	}
}

func TestMemoryCounters(t *testing.T) {
	h := build(t)
	const line = 128
	for i := 0; i < 100; i++ {
		h.Data(addr.Addr(i*line*4096), false) // force L2 misses
	}
	if h.MemAccesses == 0 {
		t.Fatal("no memory accesses counted")
	}
	if h.L1Refills != h.I.Stats().Misses+h.D.Stats().Misses {
		t.Fatalf("refills %d != L1 misses %d", h.L1Refills, h.D.Stats().Misses)
	}
}

func TestExtraLatencySurfaces(t *testing.T) {
	ic, _ := cache.NewDirectMapped(1024, 32)
	vc, err := victim.New(1024, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(ic, vc, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	h.Data(0, false)
	h.Data(1024, false) // 0 → victim buffer
	// Buffer hit: 1 (L1) + 1 (probe) = 2 cycles.
	if lat := h.Data(0, false); lat != 2 {
		t.Fatalf("victim-buffer hit latency = %d, want 2", lat)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	ic, _ := cache.NewDirectMapped(1024, 32)
	dc, _ := cache.NewDirectMapped(1024, 32)
	cfg := Defaults()
	cfg.L2Latency = 0
	if _, err := New(ic, dc, cfg); err == nil {
		t.Fatal("accepted zero L2 latency")
	}
	if _, err := New(nil, dc, Defaults()); err == nil {
		t.Fatal("accepted nil icache")
	}
}

func TestReset(t *testing.T) {
	h := build(t)
	h.Data(0, true)
	h.Fetch(4096)
	h.Reset()
	if h.D.Stats().Accesses != 0 || h.L2.Stats().Accesses != 0 || h.MemAccesses != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestStreamBuffer(t *testing.T) {
	ic, _ := cache.NewDirectMapped(1024, 32)
	dc, _ := cache.NewDirectMapped(1024, 32)
	cfg := Defaults()
	cfg.StreamBuffer = 8
	h, err := New(ic, dc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential line-by-line walk through a region far larger than the
	// L1: after the first miss, each new line was prefetched.
	lat0 := h.Data(0x10000000, false) // cold: full L2 miss path
	if lat0 < 100 {
		t.Fatalf("cold latency = %d", lat0)
	}
	var streamLat int
	for i := 1; i < 64; i++ {
		streamLat = h.Data(0x10000000+addr.Addr(i*32), false)
	}
	if streamLat != cfg.L1Latency+1 {
		t.Fatalf("streamed-line latency = %d, want %d", streamLat, cfg.L1Latency+1)
	}
	if h.StreamHits < 60 {
		t.Fatalf("stream hits = %d, want ≈63", h.StreamHits)
	}
	if h.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestStreamBufferDisabledByDefault(t *testing.T) {
	h := build(t)
	h.Data(0, false)
	h.Data(32, false) // same L1 line? 32 < line 32... line is 32B so this is the next line
	if h.Prefetches != 0 || h.StreamHits != 0 {
		t.Fatal("stream buffer active without being configured")
	}
}

func TestStreamBufferInstructionSideUnaffected(t *testing.T) {
	ic, _ := cache.NewDirectMapped(1024, 32)
	dc, _ := cache.NewDirectMapped(1024, 32)
	cfg := Defaults()
	cfg.StreamBuffer = 8
	h, _ := New(ic, dc, cfg)
	h.Fetch(0x400000)
	h.Fetch(0x400020)
	if h.Prefetches != 0 {
		t.Fatal("instruction fetches triggered data prefetches")
	}
}

func TestCustomL2(t *testing.T) {
	ic, _ := cache.NewDirectMapped(1024, 32)
	dc, _ := cache.NewDirectMapped(1024, 32)
	l2, err := cache.NewDirectMapped(64*1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewWithL2(ic, dc, l2, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	h.Data(0, false)
	if l2.Stats().Accesses != 1 {
		t.Fatalf("custom L2 accesses = %d, want 1", l2.Stats().Accesses)
	}
	if _, err := NewWithL2(ic, dc, nil, Defaults()); err == nil {
		t.Fatal("nil L2 accepted")
	}
}
