package fault

import (
	"bytes"
	"encoding/json"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/obs"
	"bcache/internal/rng"
)

func newBCache(t *testing.T) *core.BCache {
	t.Helper()
	c, err := core.New(core.Config{SizeBytes: 16 << 10, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drive runs n deterministic accesses and returns final stats.
func drive(c cache.Cache, seed uint64, n int) *cache.Stats {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		c.Access(addr.Addr(r.Uint64())&0xFFFFF, r.Uint64()&1 == 0)
	}
	return c.Stats()
}

// TestDeterminism: two runs with the same seed and rate must produce
// byte-identical fault logs and identical classification counts — the
// property every campaign result rests on.
func TestDeterminism(t *testing.T) {
	cfg := Config{Rate: 1e-3, Protection: None, Seed: 42, ScrubEvery: 4096}
	logs := make([][]byte, 2)
	counts := make([]Counts, 2)
	for i := range logs {
		in, err := Wrap(newBCache(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		drive(in, 9, 100000)
		b, err := json.Marshal(in.Events())
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = b
		counts[i] = in.Counts()
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Error("fault logs differ between identical runs")
	}
	if counts[0] != counts[1] {
		t.Errorf("counts differ: %+v vs %+v", counts[0], counts[1])
	}
	if counts[0].Injected == 0 {
		t.Error("rate 1e-3 over 100k accesses injected nothing")
	}
}

// TestResetReplaysFaults: Reset must rewind the injection stream so the
// identical fault sequence replays.
func TestResetReplaysFaults(t *testing.T) {
	in, err := Wrap(newBCache(t), Config{Rate: 1e-3, Protection: None, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	drive(in, 3, 50000)
	first := append([]Event(nil), in.Events()...)
	in.Reset()
	drive(in, 3, 50000)
	if len(first) != len(in.Events()) {
		t.Fatalf("replay injected %d faults, first run %d", len(in.Events()), len(first))
	}
	for i, e := range in.Events() {
		if e != first[i] {
			t.Fatalf("event %d differs after Reset: %+v vs %+v", i, e, first[i])
		}
	}
}

// TestParityDetectsAll: under parity every fault is detected, none are
// silent, and state stays coherent (the recovery drops sites instead of
// corrupting them).
func TestParityDetectsAll(t *testing.T) {
	in, err := Wrap(newBCache(t), Config{Rate: 1e-2, Protection: Parity, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	drive(in, 5, 100000)
	c := in.Counts()
	if c.Injected == 0 || c.Detected != c.Injected || c.Silent != 0 || c.Corrected != 0 {
		t.Errorf("parity counts %+v: want all injected detected", c)
	}
	if err := in.FinalScrub(); err != nil {
		t.Errorf("parity run ended with broken invariant: %v", err)
	}
	if in.Degraded() {
		t.Error("parity recovery should never need degradation")
	}
}

// TestSECDEDIsTransparent: corrected faults change nothing, so a SEC-DED
// run must be bit-identical in cache behavior to a fault-free run.
func TestSECDEDIsTransparent(t *testing.T) {
	clean := newBCache(t)
	drive(clean, 5, 100000)

	in, err := Wrap(newBCache(t), Config{Rate: 1e-2, Protection: SECDED, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := drive(in, 5, 100000)
	if c := in.Counts(); c.Corrected != c.Injected || c.Injected == 0 {
		t.Errorf("secded counts %+v: want all injected corrected", c)
	}
	if st.Misses != clean.Stats().Misses || st.Hits != clean.Stats().Hits {
		t.Errorf("secded run diverged from fault-free: %d/%d misses vs %d/%d",
			st.Misses, st.Accesses, clean.Stats().Misses, clean.Stats().Accesses)
	}
}

// TestUnprotectedScrubRestores: silent faults corrupt real state; the
// periodic scrubber must keep the run free of silent invariant
// violations (repair or explicit degradation, never limbo).
func TestUnprotectedScrubRestores(t *testing.T) {
	bc := newBCache(t)
	in, err := Wrap(bc, Config{
		Rate: 1e-2, Protection: None, Seed: 3, ScrubEvery: 2048,
		Domains: []cache.FaultDomain{cache.FaultPD},
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(in, 11, 200000)
	if err := in.FinalScrub(); err != nil && !bc.Degraded() {
		t.Errorf("silent invariant violation survived scrubbing: %v", err)
	}
	rep, passes := in.ScrubTotals()
	if passes == 0 || rep.Repaired == 0 {
		t.Errorf("PD faults at 1e-2 should force repairs, got %+v over %d passes", rep, passes)
	}
}

// TestProbeSeesFaults: injector events must reach an attached probe and
// line up with the injector's own counts.
func TestProbeSeesFaults(t *testing.T) {
	in, err := Wrap(newBCache(t), Config{Rate: 1e-3, Protection: Parity, Seed: 2, ScrubEvery: 8192})
	if err != nil {
		t.Fatal(err)
	}
	var ctr obs.Counters
	cache.AttachProbe(in, &ctr)
	drive(in, 13, 100000)
	c := in.Counts()
	if ctr.Faults != c.Injected || ctr.FaultsDetected != c.Detected {
		t.Errorf("probe saw %d/%d faults, injector counted %d/%d",
			ctr.Faults, ctr.FaultsDetected, c.Injected, c.Detected)
	}
	if ctr.Accesses != 100000 {
		t.Errorf("probe saw %d accesses through the injector, want 100000", ctr.Accesses)
	}
	_, passes := in.ScrubTotals()
	if ctr.ScrubPasses != passes {
		t.Errorf("probe saw %d scrub passes, injector ran %d", ctr.ScrubPasses, passes)
	}
}

// TestSetAssocTarget: the injector also wraps conventional caches (the
// baseline side of a campaign).
func TestSetAssocTarget(t *testing.T) {
	sa, err := cache.NewSetAssoc(16<<10, 32, 4, cache.LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Wrap(sa, Config{Rate: 1e-3, Protection: None, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	drive(in, 17, 100000)
	c := in.Counts()
	if c.Injected == 0 {
		t.Error("no faults injected into set-associative target")
	}
	if c.ByDomain[cache.FaultPD] != 0 {
		t.Error("set-associative cache has no PD domain to inject into")
	}
	if err := in.FinalScrub(); err != nil {
		t.Errorf("FinalScrub on non-B-Cache target: %v", err)
	}
}

// TestWrapRejects: bad rates and targets without injectable state fail
// loudly at construction.
func TestWrapRejects(t *testing.T) {
	if _, err := Wrap(newBCache(t), Config{Rate: 1.5}); err == nil {
		t.Error("rate 1.5 accepted")
	}
	if _, err := Wrap(newBCache(t), Config{Rate: -0.1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Wrap(noState{}, Config{Rate: 1e-3}); err == nil {
		t.Error("cache without fault state accepted")
	}
	if _, err := Wrap(newBCache(t), Config{
		Rate:    1e-3,
		Domains: []cache.FaultDomain{cache.FaultDomain(250)},
	}); err == nil {
		t.Error("unknown-domain-only config accepted")
	}
}

// noState implements cache.Cache but not Target.
type noState struct{}

func (noState) Access(addr.Addr, bool) cache.Result { return cache.Result{} }
func (noState) Contains(addr.Addr) bool             { return false }
func (noState) Stats() *cache.Stats                 { return nil }
func (noState) Geometry() cache.Geometry            { return cache.Geometry{} }
func (noState) Name() string                        { return "nostate" }
func (noState) Reset()                              {}
