// Package fault is the simulator's soft-error layer: a deterministic
// bit-flip injector over the metadata arrays of any cache model that
// exposes them, plus the protection models that decide what each flip
// costs.
//
// The B-Cache's whole mechanism lives in mutable decoder state — CAM
// entries reprogrammed on the fly (paper §3.3) — so unlike a
// conventional cache, where a metadata upset costs at worst one stale
// line, a single PD upset can break the decoding-uniqueness invariant
// and corrupt every later lookup of its row. This package makes that
// exposure measurable: inject upsets at a configurable per-access rate,
// classify each one under a protection model (none / parity / SEC-DED),
// and let core.BCache's scrubber repair or degrade. Everything is driven
// by internal/rng, so a campaign with the same seed and rate produces a
// byte-identical fault log on every run.
package fault

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/rng"
)

// Target is a cache model that exposes its raw metadata state as flat,
// stably-numbered per-domain bit spaces. core.BCache, cache.SetAssoc,
// and victim.Cache implement it.
type Target interface {
	// StateBits returns the number of injectable bits in domain d
	// (0 when the model has no such state).
	StateBits(d cache.FaultDomain) uint64
	// FlipStateBit flips one state bit: a silent upset.
	FlipStateBit(d cache.FaultDomain, bit uint64)
	// InvalidateSite conservatively drops the line (and, for PD sites,
	// the decoder entry) owning a bit: the recovery action of a
	// detected error.
	InvalidateSite(d cache.FaultDomain, bit uint64)
}

// Protection selects the error-protection model applied to the arrays.
type Protection uint8

const (
	// None leaves every upset in place: all faults are silent.
	None Protection = iota
	// Parity detects single-bit upsets at the next read; the model
	// invalidates the affected site (a refetch repairs it). Detected
	// faults never corrupt state but do cost extra misses.
	Parity
	// SECDED corrects single-bit upsets in place: state is unchanged.
	// (Multi-bit upsets within one protection word are not modelled;
	// events are independent single-bit flips.)
	SECDED
)

// ParseProtection maps a CLI string to a Protection.
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "none":
		return None, nil
	case "parity":
		return Parity, nil
	case "secded", "sec-ded", "ecc":
		return SECDED, nil
	}
	return None, fmt.Errorf("fault: unknown protection %q (want none|parity|secded)", s)
}

// String names the protection model.
func (p Protection) String() string {
	switch p {
	case None:
		return "none"
	case Parity:
		return "parity"
	case SECDED:
		return "secded"
	}
	return "unknown"
}

// classify returns the model's verdict on a single-bit upset.
func (p Protection) classify() cache.FaultClass {
	switch p {
	case Parity:
		return cache.FaultDetected
	case SECDED:
		return cache.FaultCorrected
	}
	return cache.FaultSilent
}

// Config parameterizes an Injector.
type Config struct {
	// Rate is the per-access probability of injecting one upset.
	Rate float64
	// Protection selects the error-protection model.
	Protection Protection
	// Seed drives the deterministic injection stream.
	Seed uint64
	// ScrubEvery runs a PD scrub every N accesses on B-Cache targets
	// (0 disables periodic scrubbing; detected PD faults still scrub).
	ScrubEvery uint64
	// Domains restricts injection to the listed state arrays (empty =
	// every domain the target exposes). Campaigns use this to isolate
	// the decoder's exposure.
	Domains []cache.FaultDomain
	// LogLimit bounds the retained event log (0 = DefaultLogLimit).
	// Counts stay exact past the limit; only per-event records stop.
	LogLimit int
}

// DefaultLogLimit bounds the event log unless Config overrides it.
const DefaultLogLimit = 1 << 16

// Event is one injected upset, as recorded in the fault log.
type Event struct {
	// Access is the access ordinal (1-based) the upset preceded.
	Access uint64            `json:"access"`
	Domain cache.FaultDomain `json:"domain"`
	Bit    uint64            `json:"bit"`
	Class  cache.FaultClass  `json:"class"`
}

// Counts are the exact classification totals of a run.
type Counts struct {
	Injected  uint64                        `json:"injected"`
	Silent    uint64                        `json:"silent"`
	Detected  uint64                        `json:"detected"`
	Corrected uint64                        `json:"corrected"`
	ByDomain  [cache.NumFaultDomains]uint64 `json:"byDomain"`
}

// Injector wraps a cache and flips deterministic bits in its metadata as
// accesses flow through. It implements cache.Cache (delegating to the
// wrapped model) and cache.Probed (fault and scrub events are emitted to
// the attached probe alongside the inner cache's access events).
//
// Like the models it wraps, an Injector is goroutine-confined.
type Injector struct {
	inner  cache.Cache
	target Target
	bc     *core.BCache // non-nil when the target has a PD to scrub
	cfg    Config
	rng    *rng.Source

	// domains and weights are the injectable domains and their bit
	// counts; totalBits is the sum (sites are chosen uniformly over
	// bits, so larger arrays absorb proportionally more upsets).
	domains   []cache.FaultDomain
	weights   []uint64
	totalBits uint64

	accesses  uint64
	nextScrub uint64
	counts    Counts
	scrub     core.ScrubReport
	scrubs    uint64
	log       []Event
	logLimit  int
	probe     cache.Probe
}

var (
	_ cache.Cache  = (*Injector)(nil)
	_ cache.Probed = (*Injector)(nil)
)

// Wrap builds an injector around c. It fails if c does not expose fault
// state or if cfg is out of range.
func Wrap(c cache.Cache, cfg Config) (*Injector, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("fault: rate %g outside [0,1]", cfg.Rate)
	}
	t, ok := c.(Target)
	if !ok {
		return nil, fmt.Errorf("fault: cache %s exposes no injectable state", c.Name())
	}
	in := &Injector{
		inner:    c,
		target:   t,
		cfg:      cfg,
		rng:      rng.New(cfg.Seed),
		logLimit: cfg.LogLimit,
	}
	if in.logLimit <= 0 {
		in.logLimit = DefaultLogLimit
	}
	if bc, ok := c.(*core.BCache); ok {
		in.bc = bc
	}
	domains := cfg.Domains
	if len(domains) == 0 {
		domains = []cache.FaultDomain{cache.FaultTag, cache.FaultValid, cache.FaultDirty, cache.FaultPD}
	}
	for _, d := range domains {
		if n := t.StateBits(d); n > 0 {
			in.domains = append(in.domains, d)
			in.weights = append(in.weights, n)
			in.totalBits += n
		}
	}
	if cfg.Rate > 0 && in.totalBits == 0 {
		return nil, fmt.Errorf("fault: cache %s has no injectable bits in the requested domains", c.Name())
	}
	if cfg.ScrubEvery > 0 {
		in.nextScrub = cfg.ScrubEvery
	}
	return in, nil
}

// Unwrap returns the wrapped cache (for PD-stat printing and reports).
func (in *Injector) Unwrap() cache.Cache { return in.inner }

// Counts returns the exact classification totals so far.
func (in *Injector) Counts() Counts { return in.counts }

// Events returns the retained fault log (bounded by Config.LogLimit).
func (in *Injector) Events() []Event { return in.log }

// ScrubTotals returns the accumulated scrub report and pass count.
func (in *Injector) ScrubTotals() (core.ScrubReport, uint64) { return in.scrub, in.scrubs }

// Degraded reports whether a wrapped B-Cache fell back to direct-mapped
// indexing (always false for other models).
func (in *Injector) Degraded() bool { return in.bc != nil && in.bc.Degraded() }

// Access implements cache.Cache: possibly inject one upset, then run the
// access on the wrapped model, then run any scheduled scrub.
func (in *Injector) Access(a addr.Addr, write bool) cache.Result {
	in.accesses++
	if in.cfg.Rate > 0 && in.rng.Float64() < in.cfg.Rate {
		in.inject()
	}
	res := in.inner.Access(a, write)
	if in.nextScrub > 0 && in.accesses >= in.nextScrub {
		in.nextScrub = in.accesses + in.cfg.ScrubEvery
		in.runScrub()
	}
	return res
}

// inject flips (or repairs, per protection) one uniformly-chosen state
// bit and records the event.
func (in *Injector) inject() {
	// Pick a bit uniformly over all injectable bits, then locate its
	// domain. totalBits is far below 2^32 for every simulated geometry,
	// so the modulo bias of a 64-bit draw is negligible and the draw
	// order stays stable.
	bit := in.rng.Uint64() % in.totalBits
	var d cache.FaultDomain
	for i, w := range in.weights {
		if bit < w {
			d = in.domains[i]
			break
		}
		bit -= w
	}

	class := in.cfg.Protection.classify()
	switch class {
	case cache.FaultSilent:
		in.target.FlipStateBit(d, bit)
	case cache.FaultDetected:
		// Parity catches the flip at the next read; model the recovery
		// directly: drop the affected site, and scrub the PD when the
		// decoder itself was hit so a detected upset never lingers.
		in.target.InvalidateSite(d, bit)
		if d == cache.FaultPD {
			in.runScrub()
		}
	case cache.FaultCorrected:
		// SEC-DED repairs in place: no state change.
	}

	in.counts.Injected++
	in.counts.ByDomain[d]++
	switch class {
	case cache.FaultSilent:
		in.counts.Silent++
	case cache.FaultDetected:
		in.counts.Detected++
	case cache.FaultCorrected:
		in.counts.Corrected++
	}
	if len(in.log) < in.logLimit {
		in.log = append(in.log, Event{Access: in.accesses, Domain: d, Bit: bit, Class: class})
	}
	if in.probe != nil {
		in.probe.ObserveFault(d, class)
	}
}

// runScrub runs one PD scrub pass on a B-Cache target.
func (in *Injector) runScrub() {
	if in.bc == nil {
		return
	}
	rep := in.bc.ScrubPD()
	in.scrub.Add(rep)
	in.scrubs++
	if in.probe != nil {
		in.probe.ObserveScrub(rep.Repaired, rep.Degraded)
	}
}

// FinalScrub runs a last scrub pass (B-Cache targets) and returns the
// wrapped cache's invariant status; campaigns call it at end of run so
// no silent corruption survives unreported.
func (in *Injector) FinalScrub() error {
	in.runScrub()
	if in.bc != nil {
		return in.bc.CheckInvariants()
	}
	return nil
}

// SetProbe implements cache.Probed: the probe receives the inner cache's
// access events plus the injector's fault and scrub events.
func (in *Injector) SetProbe(p cache.Probe) {
	in.probe = p
	cache.AttachProbe(in.inner, p)
}

// Contains implements cache.Cache.
func (in *Injector) Contains(a addr.Addr) bool { return in.inner.Contains(a) }

// Stats implements cache.Cache.
func (in *Injector) Stats() *cache.Stats { return in.inner.Stats() }

// Geometry implements cache.Cache.
func (in *Injector) Geometry() cache.Geometry { return in.inner.Geometry() }

// Name implements cache.Cache.
func (in *Injector) Name() string {
	return fmt.Sprintf("%s+fault(rate=%g,%s)", in.inner.Name(), in.cfg.Rate, in.cfg.Protection)
}

// Reset implements cache.Cache: the wrapped model and the injection
// stream both return to their initial state, so a Reset run replays the
// identical fault sequence.
func (in *Injector) Reset() {
	in.inner.Reset()
	in.rng = rng.New(in.cfg.Seed)
	in.accesses = 0
	in.counts = Counts{}
	in.scrub = core.ScrubReport{}
	in.scrubs = 0
	in.log = in.log[:0]
	if in.cfg.ScrubEvery > 0 {
		in.nextScrub = in.cfg.ScrubEvery
	} else {
		in.nextScrub = 0
	}
}
