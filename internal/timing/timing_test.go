package timing

import "testing"

func TestTable1Slack(t *testing.T) {
	// §5.1's conclusion: every decoder size leaves slack — the B-Cache
	// decoder is never slower than the original.
	for _, r := range Table1(6) {
		if r.Slack < 0 {
			t.Errorf("%s: negative slack %.3f (orig %.3f, bcache %.3f)",
				r.Name, r.Slack, r.OrigDelay, r.BCacheDelay())
		}
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(6)
	if len(rows) != 5 {
		t.Fatalf("Table1 has %d rows, want 5", len(rows))
	}
	wantNames := []string{"8x256", "7x128", "6x64", "5x32", "4x16"}
	wantSub := []int{8192, 4096, 2048, 1024, 512}
	for i, r := range rows {
		if r.Name != wantNames[i] || r.SubarrayBytes != wantSub[i] {
			t.Errorf("row %d = %s/%d, want %s/%d", i, r.Name, r.SubarrayBytes, wantNames[i], wantSub[i])
		}
		if r.PDBits != 6 {
			t.Errorf("row %d PD bits = %d", i, r.PDBits)
		}
	}
}

func TestOriginalDelaysDecrease(t *testing.T) {
	// Smaller decoders (fewer inputs, simpler gates) are faster.
	rows := Table1(6)
	for i := 1; i < len(rows); i++ {
		if rows[i].OrigDelay > rows[i-1].OrigDelay+1e-9 {
			t.Errorf("original delay not non-increasing: %s %.3f > %s %.3f",
				rows[i].Name, rows[i].OrigDelay, rows[i-1].Name, rows[i-1].OrigDelay)
		}
	}
}

func TestBCacheNPDSlowerThanStandalone(t *testing.T) {
	// §5.1: "the B-Cache's 4×16 NPD is much slower than the 4×16 decoder
	// in the original direct-mapped cache" because its fan-out is 32
	// gates instead of 4.
	standalone := PathDelay([]Gate{NAND2, NOR2}, 4)
	npd := Table1(6)[4].NPDDelay // the 4×16 row's INV NPD at fan-out 32
	_ = npd
	// Compare like-for-like: the same composition at the two fan-outs.
	loaded := PathDelay([]Gate{NAND2, NOR2}, 32)
	if loaded <= standalone {
		t.Fatalf("fan-out 32 (%.3f) not slower than fan-out 4 (%.3f)", loaded, standalone)
	}
}

func TestCAMDelayGrowsWithWidth(t *testing.T) {
	if CAMDelay(6, 16) >= CAMDelay(12, 16) {
		t.Fatal("wider CAM not slower")
	}
	if CAMDelay(6, 16) > CAMDelay(6, 256) {
		t.Fatal("deeper CAM faster than shallow one")
	}
	// Segmentation: depth matters only weakly (×16 depth < +20% delay).
	if CAMDelay(6, 256) > CAMDelay(6, 16)*1.2 {
		t.Fatal("CAM depth dependence too strong for segmented search lines")
	}
}

func TestCAMDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CAMDelay(0, 4) did not panic")
		}
	}()
	CAMDelay(0, 4)
}

func TestWiderPDEventuallyExceedsSlack(t *testing.T) {
	// The §5.1/§6.3 trade-off: the 6-bit PD fits, but a much wider PD
	// (toward the HAC's 26 bits) must eventually exceed the slack —
	// otherwise MF could grow without bound for free.
	fits := Table1(6)
	wide := Table1(26)
	for i := range fits {
		if fits[i].Slack < 0 {
			t.Errorf("6-bit PD does not fit %s", fits[i].Name)
		}
	}
	anyNegative := false
	for _, r := range wide {
		if r.Slack < 0 {
			anyNegative = true
		}
	}
	if !anyNegative {
		t.Fatal("a 26-bit PD fits every decoder; delay model lost the width trade-off")
	}
}

func TestGateStrings(t *testing.T) {
	for _, g := range []Gate{Inv, NAND2, NAND3, NOR2, NOR3} {
		if g.String() == "" {
			t.Fatalf("gate %d has empty name", int(g))
		}
	}
}

func TestPathDelayFanoutFloor(t *testing.T) {
	// Fan-outs below 4 cost the same as 4 (minimum load).
	if PathDelay([]Gate{NAND2}, 1) != PathDelay([]Gate{NAND2}, 4) {
		t.Fatal("sub-minimum fanout changed delay")
	}
}
