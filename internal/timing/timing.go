// Package timing models cache-decoder delay at the gate level,
// regenerating the paper's Table 1 analysis: for every local-decoder size
// a level-one cache uses (8×256 down to 4×16, i.e. subarrays of 8 kB down
// to 512 B with 32 B lines), the B-Cache's programmable decoder (a small
// CAM) plus simplified non-programmable decoder fits inside the time
// slack of the original decoder — so the B-Cache does not lengthen the
// cache access path (§5.1).
//
// The model is a logical-effort-style delay estimate at 0.18 µm. The
// paper's Table 1 numeric cells did not survive text extraction; the
// quantities this model is calibrated to are structural — the gate
// compositions the paper lists per decoder, the CAM implementation
// (10-transistor cells, segmented search lines), and the conclusion that
// every B-Cache decoder has non-negative slack. Absolute nanoseconds are
// model outputs, not the paper's lost values (see EXPERIMENTS.md).
package timing

import (
	"fmt"
	"math"
)

// Gate identifies a logic stage in a decoder path.
type Gate int

// Gate types appearing in Table 1's compositions.
const (
	Inv Gate = iota
	NAND2
	NAND3
	NOR2
	NOR3
)

func (g Gate) String() string {
	switch g {
	case Inv:
		return "INV"
	case NAND2:
		return "NAND2"
	case NAND3:
		return "NAND3"
	case NOR2:
		return "NOR2"
	case NOR3:
		return "NOR3"
	default:
		return fmt.Sprintf("gate(%d)", int(g))
	}
}

// Delay model constants (ns) at 0.18 µm: a parasitic delay and a
// logical-effort slope per fan-out-4 unit per gate type, plus the
// word-line driver. FO4 ≈ 0.09 ns at this node.
const (
	fo4 = 0.090

	driverDelay = 0.085 // word-line driver (the NAND-converted inverter)
)

// gateParams returns (parasitic, effort) in ns and ns/FO4 for g.
func gateParams(g Gate) (p, e float64) {
	switch g {
	case Inv:
		return 0.030, fo4 * 1.0
	case NAND2:
		return 0.045, fo4 * 4.0 / 3.0
	case NAND3:
		return 0.065, fo4 * 5.0 / 3.0
	case NOR2:
		return 0.050, fo4 * 5.0 / 3.0
	case NOR3:
		return 0.080, fo4 * 7.0 / 3.0
	default:
		panic(fmt.Sprintf("timing: unknown gate %d", int(g)))
	}
}

// PathDelay returns the delay of a gate chain whose final stage drives
// fanout equivalent inverter loads, followed by the word-line driver.
// The output stage is assumed buffered (transistor sizing absorbs part of
// the load, §5.1's "transistor sizes are selected"), so the effective
// load grows with the square root of the fan-out beyond the FO4 design
// point rather than linearly.
func PathDelay(gates []Gate, fanout int) float64 {
	if fanout < 1 {
		fanout = 1
	}
	d := driverDelay
	for i, g := range gates {
		p, e := gateParams(g)
		load := 1.0
		if i == len(gates)-1 && fanout > 4 {
			load = math.Sqrt(float64(fanout) / 4.0)
		}
		d += p + e*load
	}
	return d
}

// CAMDelay returns the search delay of a PD: bits-wide, entries-deep CAM
// with segmented search bit lines (Figure 6(c)): drive the search lines,
// discharge the match line, qualify the word line. The segmentation makes
// the entry count contribute only logarithmically.
func CAMDelay(bits, entries int) float64 {
	if bits < 1 || entries < 1 {
		panic(fmt.Sprintf("timing: bad CAM %dx%d", bits, entries))
	}
	searchDrive := 0.055 + 0.004*float64(log2ceil(entries))
	matchline := 0.110 + 0.013*float64(bits)
	return searchDrive + matchline + driverDelay
}

func log2ceil(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// Row is one line of Table 1.
type Row struct {
	// Name is the decoder size, e.g. "8x256" (8 address bits, 256 rows).
	Name string
	// SubarrayBytes is the data subarray this decoder serves (32 B lines).
	SubarrayBytes int

	// Orig describes the conventional decoder.
	OrigComposition []Gate
	OrigDelay       float64

	// PD and NPD describe the B-Cache replacement decoder; its delay is
	// the slower of the two paths (they run in parallel into the
	// wordline AND, which the converted driver absorbs, §5.1).
	PDBits, PDEntries int
	PDDelay           float64
	NPDComposition    []Gate
	NPDDelay          float64

	// Slack = OrigDelay − max(PDDelay, NPDDelay); the paper's conclusion
	// is that it is non-negative for every size.
	Slack float64
}

// BCacheDelay returns the B-Cache decoder delay for the row.
func (r Row) BCacheDelay() float64 { return max(r.PDDelay, r.NPDDelay) }

// Table1 computes the decoder timing rows of Table 1 for PD width pdBits
// (6 in the paper's design). Decoder fan-outs follow §5.1: the original
// local decoders drive ~4 gates; the B-Cache's shortened NPDs drive the
// row's cluster span (e.g. 32 gates for the 4×16 NPD), which is why a
// B-Cache NPD is slower than a standalone decoder of the same size.
func Table1(pdBits int) []Row {
	type spec struct {
		name     string
		subarray int
		rows     int
		orig     []Gate
		npd      []Gate
		npdFan   int
	}
	// Compositions follow the paper's Table 1 header row: 3D-3R for
	// 8×256 and 7×128, 2D-3R for 6×64, 3D-2R for 5×32, 2D-2R for 4×16;
	// B-Cache NPDs: 3D-2R, 2D-2R, NAND3, NAND2, INV.
	specs := []spec{
		{"8x256", 8192, 256, []Gate{NAND3, NOR3}, []Gate{NAND3, NOR2}, 8},
		{"7x128", 4096, 128, []Gate{NAND3, NOR3}, []Gate{NAND2, NOR2}, 8},
		{"6x64", 2048, 64, []Gate{NAND2, NOR3}, []Gate{NAND3}, 16},
		{"5x32", 1024, 32, []Gate{NAND3, NOR2}, []Gate{NAND2}, 16},
		{"4x16", 512, 16, []Gate{NAND2, NOR2}, []Gate{Inv}, 32},
	}
	out := make([]Row, len(specs))
	for i, s := range specs {
		r := Row{
			Name:            s.name,
			SubarrayBytes:   s.subarray,
			OrigComposition: s.orig,
			OrigDelay:       PathDelay(s.orig, 4),
			PDBits:          pdBits,
			PDEntries:       s.rows,
			PDDelay:         CAMDelay(pdBits, s.rows),
			NPDComposition:  s.npd,
			NPDDelay:        PathDelay(s.npd, s.npdFan),
		}
		r.Slack = r.OrigDelay - r.BCacheDelay()
		out[i] = r
	}
	return out
}
