package experiment

import (
	"fmt"

	"bcache/internal/cache"
	"bcache/internal/workload"
)

// Tables 5 and 6: the MF × BAS design space at fixed PD lengths.
// Table 5 reports the average D$ miss-rate reduction and Table 6 the PD
// hit rate during misses, for MF ∈ {2,4,8,16} at BAS = 4 and BAS = 8.
// Design A (BAS=8) vs design B (BAS=4) at equal PD length is the §6.3
// trade-off: B wins while the PD is short (lower PD hit rate), A wins
// once the PD reaches 6 bits.

func init() {
	register(Experiment{
		ID:    "table5",
		Title: "Average D$ miss rate reduction at varied MF, BAS (and PD length)",
		Run:   runTable5,
		Plan:  planDesignSpace,
	})
	register(Experiment{
		ID:    "table6",
		Title: "PD hit rate during cache misses at varied MF, BAS (and PD length)",
		Run:   runTable6,
		Plan:  planDesignSpace,
	})
}

// designSpecs returns the MF × BAS sweep configurations of Tables 5/6.
func designSpecs() []Spec {
	var specs []Spec
	for _, bas := range []int{4, 8} {
		for _, mf := range []int{2, 4, 8, 16} {
			s := bcacheSpec(mf, bas, cache.LRU)
			s.Name = fmt.Sprintf("mf%d-bas%d", mf, bas)
			specs = append(specs, s)
		}
	}
	return specs
}

// designSpace runs the MF × BAS sweep once and returns, per BAS, the
// averaged reduction and PD hit rate per MF.
func designSpace(opts Opts) (reductions, pdHits map[int]map[int]float64, err error) {
	specs := designSpecs()
	all := workload.All()
	res, err := missRates(opts, all, specs, dSide)
	if err != nil {
		return nil, nil, err
	}
	reductions = map[int]map[int]float64{4: {}, 8: {}}
	pdHits = map[int]map[int]float64{4: {}, 8: {}}
	for _, bas := range []int{4, 8} {
		for _, mf := range []int{2, 4, 8, 16} {
			name := fmt.Sprintf("mf%d-bas%d", mf, bas)
			var red, pd float64
			for _, p := range all {
				base := res[p.Name]["baseline"]
				r := res[p.Name][name]
				red += reduction(base, r)
				pd += r.pdHitDuringMiss
			}
			reductions[bas][mf] = red / float64(len(all))
			pdHits[bas][mf] = pd / float64(len(all))
		}
	}
	return reductions, pdHits, nil
}

func designTable(id, title string, vals map[int]map[int]float64) *Table {
	t := &Table{
		ID:    id,
		Title: title,
		Note:  "PD length = log2(MF)+log2(BAS) bits; design A is BAS=8, design B is BAS=4 (§6.3)",
		Headers: []string{
			"design", "MF=2", "MF=4", "MF=8", "MF=16",
		},
	}
	for _, bas := range []int{8, 4} {
		label := fmt.Sprintf("BAS=%d (A)", bas)
		if bas == 4 {
			label = "BAS=4 (B)"
		}
		cells := []string{label}
		for _, mf := range []int{2, 4, 8, 16} {
			cells = append(cells, pct(vals[bas][mf]))
		}
		t.AddRow(cells...)
	}
	pd := []string{"PD bits (A/B)"}
	for _, mf := range []int{2, 4, 8, 16} {
		pd = append(pd, fmt.Sprintf("%d/%d", log2i(mf)+3, log2i(mf)+2))
	}
	t.AddRow(pd...)
	return t
}

func runTable5(opts Opts) ([]*Table, error) {
	red, _, err := designSpace(opts)
	if err != nil {
		return nil, err
	}
	return []*Table{designTable("table5", "Miss rate reductions of the B-Cache vs MF, BAS, PD", red)}, nil
}

func runTable6(opts Opts) ([]*Table, error) {
	_, pd, err := designSpace(opts)
	if err != nil {
		return nil, err
	}
	return []*Table{designTable("table6", "PD hit rate during cache misses vs MF, BAS, PD", pd)}, nil
}

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
