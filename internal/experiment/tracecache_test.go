package experiment

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"bcache/internal/trace"
	"bcache/internal/workload"
)

// TestExtractMatchesMaterialize: deriving the address streams from a
// cached record trace must be byte-for-byte the streams the
// generator-driven materialize oracle produces, for every line size the
// suite sweeps (the data stream is line-independent; the oracle proves
// that by producing the same one at every line size).
func TestExtractMatchesMaterialize(t *testing.T) {
	const n = 50_000
	for _, p := range workload.All()[:3] {
		rt, err := generateRecords(p, n)
		if err != nil {
			t.Fatal(err)
		}
		data := extractData(rt)
		for _, lb := range []int{16, 32, 64} {
			want, err := materialize(p, n, lb)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(data.accs, want.data) {
				t.Fatalf("%s line=%d: extracted data stream diverges from materialize", p.Name, lb)
			}
			fetch := extractFetch(rt, lb)
			if !reflect.DeepEqual(fetch.pcs, want.fetch) {
				t.Fatalf("%s line=%d: extracted fetch stream diverges from materialize", p.Name, lb)
			}
		}
	}
}

// TestSpillRoundTrip: every payload kind survives a spill/reload cycle
// bit-identically, with the reload checksum matching the build-time one.
func TestSpillRoundTrip(t *testing.T) {
	p := workload.All()[0]
	rt, err := generateRecords(p, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	dt := extractData(rt)
	ft := extractFetch(rt, 32)
	dir := t.TempDir()

	for _, tc := range []struct {
		name string
		val  payload
		load func(*trace.CompressedReader) (payload, error)
	}{
		{"records", rt, func(r *trace.CompressedReader) (payload, error) {
			return loadRecordTrace(r, p.Name)
		}},
		{"data", dt, func(r *trace.CompressedReader) (payload, error) {
			return loadDataTrace(r, p.Name)
		}},
		{"fetch", ft, func(r *trace.CompressedReader) (payload, error) {
			return loadFetchTrace(r, p.Name)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".bct")
			size, err := writeSpill(path, tc.val)
			if err != nil {
				t.Fatal(err)
			}
			if size <= 0 {
				t.Fatal("spill file reports no bytes")
			}
			got, err := reloadSpill(&spillSlot{path: path, sum: tc.val.checksum(), size: size}, tc.load, true)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.val) {
				t.Fatal("reloaded payload differs from the original")
			}
		})
	}
}

// TestSpillCompression: the V2 delta encoding must beat the in-memory
// footprint by a wide margin — that is the point of spilling.
func TestSpillCompression(t *testing.T) {
	p := workload.All()[0]
	rt, err := generateRecords(p, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "r.bct")
	size, err := writeSpill(path, rt)
	if err != nil {
		t.Fatal(err)
	}
	if size*2 > rt.sizeBytes() {
		t.Fatalf("spill file %d bytes vs %d resident: compression lost", size, rt.sizeBytes())
	}
}

// TestSpilledTracesSorted: the spill-index listing is emitted in sorted
// order regardless of map iteration, and cleanup empties it along with
// the on-disk directory.
func TestSpilledTracesSorted(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	opts.TraceBytes = 1 // evict-and-spill everything as soon as it is built
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 3; seed++ {
		if _, err := cachedData(opts, withSeed(p, seed)); err != nil {
			t.Fatal(err)
		}
	}
	keys := SpilledTraces()
	if len(keys) == 0 {
		t.Fatal("nothing spilled under a 1-byte budget")
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("spill listing not sorted: %q", keys)
	}
	sharedTraces.mu.Lock()
	dir := sharedTraces.dir
	sharedTraces.mu.Unlock()
	CleanupTraceSpill()
	if got := SpilledTraces(); len(got) != 0 {
		t.Fatalf("cleanup left %d spill entries", len(got))
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("cleanup left the spill directory behind")
	}
	if c := TraceCacheStats(); c.SpillBytes != 0 {
		t.Fatalf("cleanup left SpillBytes=%d", c.SpillBytes)
	}
}

// TestPeakBytesHighWater: PeakBytes records the resident high-water
// mark, which survives the evictions that later shrink Bytes.
func TestPeakBytesHighWater(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cachedData(opts, p); err != nil {
		t.Fatal(err)
	}
	high := TraceCacheStats()
	if high.PeakBytes < high.Bytes || high.PeakBytes == 0 {
		t.Fatalf("peak %d below resident %d", high.PeakBytes, high.Bytes)
	}
	opts.TraceBytes = 1
	if _, err := cachedData(opts, withSeed(p, 1)); err != nil {
		t.Fatal(err)
	}
	c := TraceCacheStats()
	if c.PeakBytes < high.PeakBytes {
		t.Fatalf("peak shrank from %d to %d", high.PeakBytes, c.PeakBytes)
	}
	if c.Bytes >= c.PeakBytes {
		t.Fatalf("tight budget left resident %d at peak %d", c.Bytes, c.PeakBytes)
	}
}

// TestPeakStaysWithinBudget: eviction makes room before a new entry is
// accounted, so the resident high-water mark never exceeds the budget
// as long as completed entries exist to evict.
func TestPeakStaysWithinBudget(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	rt, err := cachedRecords(opts, mustProfile(t, "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	ResetTraceCache()
	// A budget that fits one record trace plus change, but not two.
	opts.TraceBytes = rt.sizeBytes() + rt.sizeBytes()/2
	for _, name := range []string{"gcc", "equake", "crafty"} {
		if _, err := cachedData(opts, mustProfile(t, name)); err != nil {
			t.Fatal(err)
		}
	}
	c := TraceCacheStats()
	if c.Evictions == 0 {
		t.Fatalf("three benchmarks under a two-trace budget evicted nothing: %+v", c)
	}
	if c.PeakBytes > opts.TraceBytes {
		t.Fatalf("resident peak %d exceeded budget %d", c.PeakBytes, opts.TraceBytes)
	}
}

// TestRecordsEvictedBeforeStreams: under budget pressure the record
// trace is the designated victim even when a stream payload is older.
func TestRecordsEvictedBeforeStreams(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p := mustProfile(t, "gcc")
	dt, err := cachedData(opts, p) // builds records, data, and the fetch byproduct
	if err != nil {
		t.Fatal(err)
	}
	// Pin the budget at the current working set: the next record-trace
	// build must make room for exactly one record trace.
	opts.TraceBytes = TraceCacheStats().Bytes
	if _, err := cachedData(opts, withSeed(p, 1)); err != nil {
		t.Fatal(err)
	}
	rKey := traceKey{kind: kindRecords, name: p.Name, seed: p.Seed, instructions: opts.Instructions}
	sharedTraces.mu.Lock()
	_, recordsResident := sharedTraces.entries[rKey]
	_, dataResident := sharedTraces.entries[dataTraceKey(opts, p)]
	sharedTraces.mu.Unlock()
	if recordsResident {
		t.Fatal("record trace survived eviction pressure")
	}
	if !dataResident {
		t.Fatal("data stream was evicted while a record trace was resident")
	}
	_ = dt
}

func mustProfile(t *testing.T, name string) *workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSpillNamesDistinct guards the spill naming scheme: distinct keys
// must map to distinct file names.
func TestSpillNamesDistinct(t *testing.T) {
	a := traceKey{kind: kindData, name: "gcc", seed: 1, instructions: 100}
	b := a
	b.kind = kindRecords
	c := a
	c.kind = kindFetch
	c.lineBytes = 32
	if spillName(a) == spillName(b) || spillName(a) == spillName(c) || spillName(b) == spillName(c) {
		t.Fatal("distinct keys share a spill file name")
	}
}
