package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// TestRenderPathByteIdentical pins every rendering surface of the
// experiment layer — aligned-text Render, WriteCSV, and the JSON
// document — to be byte-identical across two runs of the same
// experiment. TestExperimentDeterminism covers the text render of fig4;
// this test closes the rest of the render path, where a map-iteration
// leak would corrupt committed artifacts (EXPERIMENTS.md tables,
// `experiments -format json` documents) nondeterministically.
func TestRenderPathByteIdentical(t *testing.T) {
	opts := tinyOpts()
	e, err := ByID("fig3")
	if err != nil {
		t.Fatal(err)
	}
	renderAll := func() (text string, csv, doc []byte) {
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		var tb strings.Builder
		var cb bytes.Buffer
		res := Result{ID: e.ID, Title: e.Title}
		for _, table := range tables {
			tb.WriteString(table.Render())
			if err := table.WriteCSV(&cb); err != nil {
				t.Fatal(err)
			}
			res.Tables = append(res.Tables, table.JSON())
		}
		var db bytes.Buffer
		if err := NewDocument([]Result{res}).Write(&db); err != nil {
			t.Fatal(err)
		}
		return tb.String(), cb.Bytes(), db.Bytes()
	}
	text1, csv1, doc1 := renderAll()
	text2, csv2, doc2 := renderAll()
	if text1 != text2 {
		t.Error("text render differs between two identical runs")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("CSV output differs between two identical runs")
	}
	if !bytes.Equal(doc1, doc2) {
		t.Error("JSON document differs between two identical runs")
	}
}
