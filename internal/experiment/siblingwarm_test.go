package experiment

import (
	"reflect"
	"sync"
	"testing"

	"bcache/internal/workload"
)

// Differential coverage for the sibling-warming path (PR 9): a
// cachedData miss extracts the fetch stream as a byproduct of the
// resident record trace and publishes it with putIfAbsent, and the
// byproduct must be bit-identical to what the generator-driven
// materialize oracle produces — whether it was extracted from a
// freshly generated record trace or from one reloaded off a spill
// file. The concurrency half runs the publication against racing gets
// under the race-robust gate (-race over ./internal/experiment/...).

func siblingOpts() Opts {
	o := DefaultOpts()
	o.Instructions = 60_000
	o.TraceBytes = 1 << 30
	return o
}

// oracleStreams runs materialize once and hands back both streams.
func oracleStreams(t *testing.T, p *workload.Profile, o Opts) (*dataTrace, *fetchTrace) {
	t.Helper()
	at, err := materialize(p, o.Instructions, o.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	return &dataTrace{name: at.name, accs: at.data}, &fetchTrace{name: at.name, pcs: at.fetch}
}

// TestSiblingWarmingMatchesOracle: the fetch stream published as a
// byproduct of a cachedData build serves the next cachedFetch from
// memory — no second generator run — and matches materialize exactly.
func TestSiblingWarmingMatchesOracle(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := siblingOpts()
	p := mustProfile(t, "gcc")
	wantData, wantFetch := oracleStreams(t, p, opts)

	dt, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dt.accs, wantData.accs) {
		t.Fatal("cachedData stream diverges from materialize")
	}

	// The byproduct must already be resident before any fetch request.
	sharedTraces.mu.Lock()
	_, warmed := sharedTraces.entries[fetchTraceKey(opts, p)]
	sharedTraces.mu.Unlock()
	if !warmed {
		t.Fatal("cachedData did not publish the fetch sibling")
	}

	before := TraceCacheStats()
	ft, err := cachedFetch(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ft.pcs, wantFetch.pcs) {
		t.Fatal("sibling-warmed fetch stream diverges from materialize")
	}
	after := TraceCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("warmed fetch was not a memory hit: hits %d -> %d", before.Hits, after.Hits)
	}
	if after.Generations != 1 {
		t.Fatalf("generator ran %d times; the sibling should have prevented a second run", after.Generations)
	}
}

// TestSiblingFromSpilledRecords: under a starvation budget the record
// trace is spilled while the fetch entry is being built; a later fetch
// at a new line size reloads the record trace from its spill file and
// extracts from the decoded copy. The extracted stream must still match
// the oracle, and the byproduct for an already-spilled sibling must be
// dropped, not double-published.
func TestSiblingFromSpilledRecords(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := siblingOpts()
	opts.TraceBytes = 1 // evict-everything pressure; > 0 keeps the cache on
	p := mustProfile(t, "equake")

	if _, err := cachedFetch(opts, p); err != nil {
		t.Fatal(err)
	}
	c := TraceCacheStats()
	if c.Evictions == 0 {
		t.Fatalf("starvation budget evicted nothing: %+v", c)
	}

	wide := opts
	wide.LineBytes = 64
	wantData, wantFetch := oracleStreams(t, p, wide)
	ft, err := cachedFetch(wide, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ft.pcs, wantFetch.pcs) {
		t.Fatal("fetch stream extracted from spilled records diverges from materialize")
	}
	c = TraceCacheStats()
	if c.Reloads == 0 {
		t.Fatalf("second line size never reloaded the spilled record trace: %+v", c)
	}
	if c.Generations != 1 {
		t.Fatalf("generator ran %d times; the spill file should have fed the rebuild", c.Generations)
	}

	dt, err := cachedData(wide, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dt.accs, wantData.accs) {
		t.Fatal("data stream reloaded from spill diverges from materialize")
	}
}

// TestSiblingWarmingConcurrent races byproduct publications against
// in-flight gets: for each profile, data and fetch requests run
// concurrently from several goroutines, so putIfAbsent lands while the
// sibling's own build may be in flight (the no-singleflight drop path).
// Every returned stream must match the per-profile oracle regardless of
// which path produced it.
func TestSiblingWarmingConcurrent(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := siblingOpts()

	profiles := workload.All()[:3]
	type want struct {
		data  *dataTrace
		fetch *fetchTrace
	}
	wants := make(map[string]want, len(profiles))
	for _, p := range profiles {
		d, f := oracleStreams(t, p, opts)
		wants[p.Name] = want{data: d, fetch: f}
	}

	const callers = 4
	var wg sync.WaitGroup
	for _, p := range profiles {
		for i := 0; i < callers; i++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				dt, err := cachedData(opts, p)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(dt.accs, wants[p.Name].data.accs) {
					t.Errorf("%s: concurrent cachedData diverges from materialize", p.Name)
				}
			}()
			go func() {
				defer wg.Done()
				ft, err := cachedFetch(opts, p)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(ft.pcs, wants[p.Name].fetch.pcs) {
					t.Errorf("%s: concurrent cachedFetch diverges from materialize", p.Name)
				}
			}()
		}
	}
	wg.Wait()

	c := TraceCacheStats()
	if c.Generations != uint64(len(profiles)) {
		t.Fatalf("generator ran %d times for %d profiles; record traces must build once each",
			c.Generations, len(profiles))
	}
}
