// Package experiment reproduces every table and figure of the paper's
// evaluation: miss-rate reductions (Figures 4, 5, 12), the MF sweep
// (Figure 3), IPC (Figure 8), energy (Figure 9), decoder timing
// (Table 1), storage (Table 2), energy per access (Table 3), the MF/BAS
// design-space (Tables 5 and 6), and the set-balance analysis (Table 7).
//
// Each experiment is registered under the paper artifact's ID and
// produces one or more text tables; cmd/experiments is the CLI driver and
// EXPERIMENTS.md records paper-vs-measured values.
package experiment

import (
	"fmt"
	"sort"
)

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the short name used by cmd/experiments -run and bench_test.go.
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment at the given scale.
	Run func(Opts) ([]*Table, error)
	// Plan, when non-nil, enumerates the experiment's distributable
	// miss-rate work units (see plan.go). Experiments without a Plan run
	// only in-process; their Run is unaffected either way.
	Plan func(Opts) ([]PlannedUnit, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiment: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns the registered experiments sorted by ID (figures first,
// then tables, each numerically).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessID(out[i].ID, out[j].ID) })
	return out
}

// lessID orders "fig3" < "fig12" and figures before tables.
func lessID(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitID(id string) (prefix string, n int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	prefix = id[:i]
	for _, c := range id[i:] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return prefix, n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiment: unknown id %q (have %v)", id, ids)
	}
	return e, nil
}
