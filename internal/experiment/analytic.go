package experiment

import (
	"fmt"

	"bcache/internal/area"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/energy"
	"bcache/internal/timing"
)

// Tables 1–3: the analytical circuit-level results (decoder timing,
// storage cost, energy per access). These do not depend on workloads.

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Timing analysis of the B-Cache decoder vs the original local decoders",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Storage cost analysis (SRAM-bit equivalents)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Energy per cache access (pJ), baseline vs B-Cache",
		Run:   runTable3,
	})
}

func paperBCacheConfig(opts Opts) core.Config {
	return core.Config{
		SizeBytes: opts.L1Size, LineBytes: opts.LineBytes,
		MF: 8, BAS: 8, Policy: cache.LRU,
	}
}

func gateNames(gs []timing.Gate) string {
	s := ""
	for i, g := range gs {
		if i > 0 {
			s += "+"
		}
		s += g.String()
	}
	return s
}

func runTable1(Opts) ([]*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Decoder timing: original vs B-Cache PD (6-bit CAM) and NPD",
		Note:  "0.18um gate-delay model calibrated to the paper's compositions; absolute ns are model outputs (Table 1 cells were lost in text extraction)",
		Headers: []string{
			"decoder", "subarray", "orig-gates", "orig-ns",
			"PD-ns", "NPD-gates", "NPD-ns", "bcache-ns", "slack-ns",
		},
	}
	for _, r := range timing.Table1(6) {
		sub := fmt.Sprintf("%dB", r.SubarrayBytes)
		if r.SubarrayBytes >= 1024 {
			sub = fmt.Sprintf("%dkB", r.SubarrayBytes/1024)
		}
		t.AddRow(
			r.Name,
			sub,
			gateNames(r.OrigComposition),
			f3(r.OrigDelay),
			f3(r.PDDelay),
			gateNames(r.NPDComposition),
			f3(r.NPDDelay),
			f3(r.BCacheDelay()),
			f3(r.Slack),
		)
	}
	return []*Table{t}, nil
}

func runTable2(opts Opts) ([]*Table, error) {
	base, err := area.Baseline(opts.L1Size, opts.LineBytes)
	if err != nil {
		return nil, err
	}
	bc, err := area.BCache(paperBCacheConfig(opts))
	if err != nil {
		return nil, err
	}
	w4, err := area.SetAssoc(opts.L1Size, opts.LineBytes, 4)
	if err != nil {
		return nil, err
	}
	vt, err := area.Victim(opts.L1Size, opts.LineBytes, 16)
	if err != nil {
		return nil, err
	}
	hac, err := area.HAC(opts.L1Size, opts.LineBytes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table2",
		Title: "Storage cost (SRAM-bit equivalents; CAM cell = 1.25 SRAM cells)",
		Headers: []string{
			"config", "tag-dec", "tag-mem", "data-dec", "data-mem", "periphery", "total", "vs-baseline",
		},
	}
	row := func(name string, c area.Cost) {
		t.AddRow(name,
			fmt.Sprintf("%.0f", c.TagDecoderBits),
			fmt.Sprintf("%.0f", c.TagBits),
			fmt.Sprintf("%.0f", c.DataDecoderBits),
			fmt.Sprintf("%.0f", c.DataBits),
			fmt.Sprintf("%.0f", c.PeripheryBits),
			fmt.Sprintf("%.0f", c.Total()),
			pct(c.OverheadVs(base)),
		)
	}
	row("baseline (DM)", base)
	row("B-Cache (MF8/BAS8)", bc)
	row("4-way", w4)
	row("DM+victim16", vt)
	row("HAC-32", hac)
	return []*Table{t}, nil
}

func runTable3(opts Opts) ([]*Table, error) {
	p := energy.Defaults()
	base, bc, err := p.Table3(paperBCacheConfig(opts))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table3",
		Title: "Energy (pJ) per cache access",
		Note:  "T=tag, D=data, SA=sense amps, Dec=decoder, BL-WL=bit/word lines; anchored to the paper's +10.5% and CAM search energies",
		Headers: []string{
			"config", "T-SA", "T-Dec", "T-BL-WL", "D-SA", "D-Dec", "D-BL-WL", "D-others", "total",
		},
	}
	row := func(name string, a energy.AccessBreakdown) {
		t.AddRow(name, f3(a.TSA), f3(a.TDec), f3(a.TBLWL),
			f3(a.DSA), f3(a.DDec), f3(a.DBLWL), f3(a.DOthers), f3(a.Total()))
	}
	row("baseline", base)
	row("B-Cache", bc)
	// Context rows: the set-associative comparison points of §5.4.
	for _, k := range []energy.Kind{energy.Way2, energy.Way4, energy.Way8} {
		t.AddRow(k.String(), "", "", "", "", "", "", "", f3(p.PerAccess(k)))
	}
	return []*Table{t}, nil
}
