package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestDocumentRoundTrip(t *testing.T) {
	tbl := &Table{
		ID: "table6", Title: "PD hit rate during miss", Note: "calibrated",
		Headers: []string{"bench", "rate"},
	}
	tbl.AddRow("equake", "14.2%")
	doc := NewDocument([]Result{{
		ID: "table6", Title: tbl.Title, ElapsedSeconds: 1.5,
		Tables: []TableJSON{tbl.JSON()},
	}})

	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != DocSchemaVersion || len(got.Results) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	r := got.Results[0]
	if r.ID != "table6" || r.ElapsedSeconds != 1.5 || len(r.Tables) != 1 {
		t.Fatalf("result mangled: %+v", r)
	}
	tj := r.Tables[0]
	if tj.Note != "calibrated" || len(tj.Rows) != 1 || tj.Rows[0][1] != "14.2%" {
		t.Fatalf("table mangled: %+v", tj)
	}
}

func TestDocumentSchemaVersionRejected(t *testing.T) {
	bad := strings.NewReader(`{"schemaVersion": 99, "experiments": []}`)
	if _, err := LoadDocument(bad); err == nil {
		t.Fatal("accepted unknown schema version")
	}
}
