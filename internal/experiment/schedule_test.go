package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The scheduler's contract under failure: siblings of a failing unit
// still complete and commit, panics become errors with stacks, transient
// failures retry, deadlines abandon the unit without letting it commit,
// and a stop request drains the queue instead of finishing it.

func TestRunUnitsCollectsAllErrors(t *testing.T) {
	const n = 20
	var committed [n]bool
	err := runUnitsCtl(n, 4, unitOpts{}, func(i int) (func(), error) {
		if i%5 == 0 {
			return nil, fmt.Errorf("unit %d failed", i)
		}
		return func() { committed[i] = true }, nil
	})
	if err == nil {
		t.Fatal("want joined error, got nil")
	}
	for i := 0; i < n; i += 5 {
		if !strings.Contains(err.Error(), fmt.Sprintf("unit %d failed", i)) {
			t.Errorf("error missing unit %d: %v", i, err)
		}
	}
	for i := range committed {
		if want := i%5 != 0; committed[i] != want {
			t.Errorf("unit %d committed=%v, want %v", i, committed[i], want)
		}
	}
}

func TestRunUnitsPanicIsolation(t *testing.T) {
	var ok atomic.Int32
	err := runUnitsCtl(8, 4, unitOpts{}, func(i int) (func(), error) {
		if i == 3 {
			panic("boom in unit 3")
		}
		return func() { ok.Add(1) }, nil
	})
	if err == nil {
		t.Fatal("want error from panicking unit")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "boom in unit 3") {
		t.Errorf("panic not surfaced: %v", err)
	}
	// The stack trace names this test function.
	if !strings.Contains(err.Error(), "schedule_test") {
		t.Errorf("no stack trace in error: %v", err)
	}
	if got := ok.Load(); got != 7 {
		t.Errorf("%d siblings committed, want 7", got)
	}
}

func TestRunUnitsTransientRetry(t *testing.T) {
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 3, Backoff: time.Millisecond}, func(i int) (func(), error) {
		if attempts.Add(1) < 3 {
			return nil, fmt.Errorf("flaky: %w", ErrTransient)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("unit should succeed on third attempt: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("got %d attempts, want 3", got)
	}
}

func TestRunUnitsRetriesExhausted(t *testing.T) {
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 2, Backoff: time.Millisecond}, func(i int) (func(), error) {
		attempts.Add(1)
		return nil, fmt.Errorf("always down: %w", ErrTransient)
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient after exhausting retries, got %v", err)
	}
	if got := attempts.Load(); got != 3 { // initial + 2 retries
		t.Errorf("got %d attempts, want 3", got)
	}
}

func TestRunUnitsNonRetryableFailsFast(t *testing.T) {
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 5, Backoff: time.Millisecond}, func(i int) (func(), error) {
		attempts.Add(1)
		return nil, errors.New("permanent")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("non-retryable error ran %d attempts, want 1", got)
	}
}

func TestRunUnitsTimeout(t *testing.T) {
	var committed atomic.Bool
	release := make(chan struct{})
	defer close(release)
	err := runUnitsCtl(1, 1, unitOpts{Timeout: 20 * time.Millisecond}, func(i int) (func(), error) {
		<-release // outlives the deadline
		return func() { committed.Store(true) }, nil
	})
	if !errors.Is(err, ErrUnitTimeout) {
		t.Fatalf("want ErrUnitTimeout, got %v", err)
	}
	if committed.Load() {
		t.Error("abandoned unit's commit ran")
	}
}

func TestRunUnitsStopRequest(t *testing.T) {
	defer ResetStop()
	const n = 64
	var done atomic.Int32
	err := runUnitsCtl(n, 2, unitOpts{}, func(i int) (func(), error) {
		if done.Add(1) == 4 {
			RequestStop()
		}
		time.Sleep(time.Millisecond)
		return nil, nil
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if got := done.Load(); got >= n {
		t.Errorf("all %d units ran despite stop request", got)
	}
	if !Stopped() {
		t.Error("Stopped() false after RequestStop")
	}
	ResetStop()
	if Stopped() {
		t.Error("Stopped() true after ResetStop")
	}
}

func TestRunUnitsErrorCapElides(t *testing.T) {
	const n = maxJoinedErrors + 10
	err := runUnitsCtl(n, 4, unitOpts{}, func(i int) (func(), error) {
		return nil, fmt.Errorf("unit %d failed", i)
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "further unit failures elided") {
		t.Errorf("cap note missing from: %v", err)
	}
}
