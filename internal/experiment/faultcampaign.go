package experiment

import (
	"fmt"

	"bcache/internal/core"
	"bcache/internal/fault"
	"bcache/internal/workload"
)

// The fault campaign measures what the paper's evaluation never had to:
// the B-Cache concentrates its mechanism in mutable decoder state, so a
// soft error there is qualitatively worse than one in a conventional
// cache's metadata. This experiment sweeps injection rate × protection
// model across MF×BAS design points and reports miss-rate inflation,
// fault classification, scrubber activity, and whether any configuration
// ended a run degraded or — the one outcome the robustness layer
// forbids — with a silently broken invariant.

func init() {
	register(Experiment{
		ID:    "fault",
		Title: "Soft-error campaign: miss rate and corruption vs injection rate across MF×BAS",
		Run:   runFaultCampaign,
	})
}

// faultGeometries are the MF×BAS design points under test: the paper's
// design (8,8), a low-MF point, a BAS=4 point (scalar-relevant PD
// shape), and the largest PD of Figure 4.
var faultGeometries = []struct{ mf, bas int }{
	{2, 8}, {8, 8}, {8, 4}, {16, 8},
}

// faultRates are the per-access injection probabilities swept; 0 is the
// fault-free reference each geometry's miss inflation is measured
// against.
var faultRates = []float64{0, 1e-5, 1e-4, 1e-3}

// faultProfiles returns the benchmarks the campaign replays (a
// conflict-heavy trio, so decoder damage shows up in the miss rate).
func faultProfiles() ([]*workload.Profile, error) {
	var out []*workload.Profile
	for _, name := range []string{"equake", "crafty", "gcc"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// campaignSeed derives the deterministic injection seed of one
// (row, profile) cell; the golden-ratio multiplier keeps streams apart.
func campaignSeed(row, profile int) uint64 {
	return 0x9E3779B97F4A7C15*uint64(row+1) + uint64(profile+1)
}

// faultCell aggregates one campaign row across its profiles.
type faultCell struct {
	misses, accesses uint64
	counts           fault.Counts
	scrub            core.ScrubReport
	passes           uint64
	degraded         int
	// invariant holds the first end-of-run invariant violation ("" =
	// every run ended clean or explicitly degraded).
	invariant string
}

func runFaultCampaign(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	profiles, err := faultProfiles()
	if err != nil {
		return nil, err
	}

	type rowCfg struct {
		mf, bas int
		rate    float64
		prot    fault.Protection
	}
	var rows []rowCfg
	for _, g := range faultGeometries {
		for _, rate := range faultRates {
			if rate == 0 {
				// The fault-free reference needs no protection sweep.
				rows = append(rows, rowCfg{g.mf, g.bas, 0, fault.None})
				continue
			}
			for _, prot := range []fault.Protection{fault.None, fault.Parity, fault.SECDED} {
				rows = append(rows, rowCfg{g.mf, g.bas, rate, prot})
			}
		}
	}

	cells := make([]faultCell, len(rows)*len(profiles))
	uo := unitOpts{
		Timeout: opts.UnitTimeout,
		Retries: opts.UnitRetries,
		Label: func(i int) string {
			r := rows[i/len(profiles)]
			return fmt.Sprintf("fault/%s/MF%d-BAS%d-r%g-%s",
				profiles[i%len(profiles)].Name, r.mf, r.bas, r.rate, r.prot)
		},
	}
	err = runUnitsCtl(len(cells), opts.workers(), uo, func(i int) (func(), error) {
		r := rows[i/len(profiles)]
		pi := i % len(profiles)
		p := profiles[pi]
		at, err := cachedData(opts, p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		bc, err := core.New(core.Config{
			SizeBytes: opts.L1Size, LineBytes: opts.LineBytes,
			MF: r.mf, BAS: r.bas,
		})
		if err != nil {
			return nil, err
		}
		in, err := fault.Wrap(bc, fault.Config{
			Rate:       r.rate,
			Protection: r.prot,
			Seed:       campaignSeed(i/len(profiles), pi),
			ScrubEvery: 4096,
		})
		if err != nil {
			return nil, err
		}
		replayData(at.accs, in)
		var cell faultCell
		invErr := in.FinalScrub()
		st := in.Stats()
		cell.misses, cell.accesses = st.Misses, st.Accesses
		cell.counts = in.Counts()
		cell.scrub, cell.passes = in.ScrubTotals()
		if in.Degraded() {
			cell.degraded = 1
		}
		if invErr != nil && !in.Degraded() {
			cell.invariant = invErr.Error()
		}
		return func() { cells[i] = cell }, nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce across profiles and index the fault-free reference rates.
	agg := make([]faultCell, len(rows))
	for ri := range rows {
		a := &agg[ri]
		for pi := range profiles {
			c := cells[ri*len(profiles)+pi]
			a.misses += c.misses
			a.accesses += c.accesses
			a.counts.Injected += c.counts.Injected
			a.counts.Silent += c.counts.Silent
			a.counts.Detected += c.counts.Detected
			a.counts.Corrected += c.counts.Corrected
			a.scrub.Add(c.scrub)
			a.passes += c.passes
			a.degraded += c.degraded
			if a.invariant == "" {
				a.invariant = c.invariant
			}
		}
	}
	ref := map[[2]int]float64{}
	for ri, r := range rows {
		if r.rate == 0 && agg[ri].accesses > 0 {
			ref[[2]int{r.mf, r.bas}] = float64(agg[ri].misses) / float64(agg[ri].accesses)
		}
	}

	t := &Table{
		ID:    "fault",
		Title: "Miss rate and fault outcomes vs per-access soft-error rate (D$, 3 benchmarks)",
		Note: fmt.Sprintf("deterministic injection, PD scrub every 4096 accesses, %d instructions",
			opts.Instructions),
		Headers: []string{"config", "protect", "rate", "miss", "Δmiss-pp",
			"injected", "silent", "detected", "corrected", "repairs", "degraded", "invariant"},
	}
	for ri, r := range rows {
		a := agg[ri]
		miss := 0.0
		if a.accesses > 0 {
			miss = float64(a.misses) / float64(a.accesses)
		}
		delta := 100 * (miss - ref[[2]int{r.mf, r.bas}])
		inv := "ok"
		if a.invariant != "" {
			inv = "VIOLATED"
		}
		t.AddRow(
			fmt.Sprintf("MF%d/BAS%d", r.mf, r.bas),
			r.prot.String(),
			fmt.Sprintf("%.0e", r.rate),
			pct(miss),
			fmt.Sprintf("%+.3f", delta),
			fmt.Sprintf("%d", a.counts.Injected),
			fmt.Sprintf("%d", a.counts.Silent),
			fmt.Sprintf("%d", a.counts.Detected),
			fmt.Sprintf("%d", a.counts.Corrected),
			fmt.Sprintf("%d", a.scrub.Repaired),
			fmt.Sprintf("%d/%d", a.degraded, len(profiles)),
			inv,
		)
	}
	return []*Table{t}, nil
}
