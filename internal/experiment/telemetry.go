package experiment

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bcache/internal/obs/metrics"
	"bcache/internal/obs/tracespan"
)

// Telemetry is the experiment layer's live observability hub: one span
// journal (the scheduler's flight recorder) plus one metrics registry
// (the /metrics exposition), fed from the scheduler, checkpoint, and
// trace-cache seams. The CLIs install one per process with SetTelemetry;
// everything in this file is nil-safe, so with no telemetry installed
// the scheduler pays a single atomic pointer load per work unit and the
// checkpoint/trace-cache seams pay one per event.
//
// All wall-clock reads go through the tracespan.Clock seam — Telemetry
// never calls time.Now — so the determinism analyzer stays clean and
// tests drive retry/backoff schedules with a FakeClock.

// ProgressSchemaVersion identifies the /progress JSON layout.
const ProgressSchemaVersion = 1

// Progress is the live scheduler snapshot served at /progress.
type Progress struct {
	SchemaVersion int    `json:"schemaVersion"`
	Experiment    string `json:"experiment,omitempty"`
	QueuedUnits   uint64 `json:"queuedUnits"`
	DoneUnits     uint64 `json:"doneUnits"`
	FailedUnits   uint64 `json:"failedUnits"`
	RetriedUnits  uint64 `json:"retriedUnits"`
	InFlight      int64  `json:"inFlight"`
	Accesses      uint64 `json:"accesses"`
	SpansRecorded uint64 `json:"spansRecorded"`
	SpansDropped  uint64 `json:"spansDropped"`
	Interrupted   bool   `json:"interrupted"`
}

// ValidateProgress checks the invariants a /progress consumer can rely
// on; the telemetry smoke test runs it against a live scrape.
func ValidateProgress(p Progress) error {
	if p.SchemaVersion != ProgressSchemaVersion {
		return fmt.Errorf("progress schema v%d, this build reads v%d", p.SchemaVersion, ProgressSchemaVersion)
	}
	if p.DoneUnits+p.FailedUnits > p.QueuedUnits {
		return fmt.Errorf("progress: %d done + %d failed exceeds %d queued",
			p.DoneUnits, p.FailedUnits, p.QueuedUnits)
	}
	if p.InFlight < 0 {
		return fmt.Errorf("progress: negative in-flight %d", p.InFlight)
	}
	if p.SpansDropped > p.SpansRecorded {
		return fmt.Errorf("progress: %d spans dropped exceeds %d recorded", p.SpansDropped, p.SpansRecorded)
	}
	return nil
}

// UnitTimingSummary is the per-unit wall-time digest folded into each
// experiment's JSON result and text footer: exact quantiles over the
// experiment's completed units, with the slowest unit named so tail
// kernels show up in every run, not just in BENCH files.
type UnitTimingSummary struct {
	Units       int     `json:"units"`
	P50Seconds  float64 `json:"p50Seconds"`
	P90Seconds  float64 `json:"p90Seconds"`
	MaxSeconds  float64 `json:"maxSeconds"`
	SlowestUnit string  `json:"slowestUnit,omitempty"`
}

// Footer renders the summary as the one-line text-format annotation.
func (s *UnitTimingSummary) Footer() string {
	if s == nil || s.Units == 0 {
		return ""
	}
	return fmt.Sprintf("units: %d | p50 %v p90 %v max %v | slowest %s",
		s.Units,
		time.Duration(s.P50Seconds*float64(time.Second)).Round(time.Microsecond),
		time.Duration(s.P90Seconds*float64(time.Second)).Round(time.Microsecond),
		time.Duration(s.MaxSeconds*float64(time.Second)).Round(time.Microsecond),
		s.SlowestUnit)
}

// unitWallBounds are the wall-time histogram buckets in seconds: unit
// cost spans ~100µs stack-distance passes to multi-second 512-way
// replays.
var unitWallBounds = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60}

// Telemetry bundles the journal, registry, and instruments. Construct
// with NewTelemetry; install with SetTelemetry.
type Telemetry struct {
	journal *tracespan.Journal
	clock   tracespan.Clock
	reg     *metrics.Registry

	unitsQueued     *metrics.Counter
	unitsCompleted  *metrics.Counter
	unitsFailed     *metrics.Counter
	unitsRetried    *metrics.Counter
	unitsPanicked   *metrics.Counter
	unitsAbandoned  *metrics.Counter
	accesses        *metrics.Counter
	checkpointSaves *metrics.Counter
	traceHits       *metrics.Counter
	traceBuilds     *metrics.Counter
	traceRebuilds   *metrics.Counter
	queueDepth      *metrics.Gauge
	inFlight        *metrics.Gauge
	checkpointBytes *metrics.Gauge
	traceCacheBytes *metrics.Gauge
	unitWall        *metrics.Histogram

	distLeases     *metrics.Counter
	distReleases   *metrics.Counter
	distRestarts   *metrics.Counter
	distDuplicates *metrics.Counter
	distRecovered  *metrics.Counter
	distWorkers    *metrics.Gauge
	distShardMerge *metrics.Histogram

	mu         sync.Mutex
	experiment string    // guarded by mu
	durs       []float64 // guarded by mu
	slowest    float64   // guarded by mu
	slowestKey string    // guarded by mu
}

// NewTelemetry builds a telemetry hub with a journal of journalCap
// spans (<= 0 uses the default) on the given clock (nil uses the wall
// clock).
func NewTelemetry(journalCap int, clock tracespan.Clock) *Telemetry {
	if clock == nil {
		clock = tracespan.Wall
	}
	reg := metrics.NewRegistry()
	t := &Telemetry{
		journal: tracespan.NewJournal(journalCap, clock),
		clock:   clock,
		reg:     reg,

		unitsQueued:     reg.Counter("bcache_units_queued", "work units handed to the scheduler"),
		unitsCompleted:  reg.Counter("bcache_units_completed", "work units that committed successfully"),
		unitsFailed:     reg.Counter("bcache_units_failed", "work units that exhausted retries or failed terminally"),
		unitsRetried:    reg.Counter("bcache_units_retried", "retry attempts scheduled after timeouts or transient failures"),
		unitsPanicked:   reg.Counter("bcache_units_panicked", "unit attempts that panicked (recovered by the scheduler)"),
		unitsAbandoned:  reg.Counter("bcache_units_abandoned", "unit attempts abandoned past their deadline"),
		accesses:        reg.Counter("bcache_accesses", "cache accesses simulated by committed units"),
		checkpointSaves: reg.Counter("bcache_checkpoint_saves", "checkpoint files written (autosave and explicit)"),
		traceHits:       reg.Counter("bcache_trace_cache_hits", "trace-cache lookups served from memory"),
		traceBuilds:     reg.Counter("bcache_trace_cache_builds", "trace-cache misses that materialized a stream"),
		traceRebuilds:   reg.Counter("bcache_trace_cache_rebuilds", "trace-cache entries discarded on checksum mismatch"),
		queueDepth:      reg.Gauge("bcache_queue_depth", "work units queued but not yet claimed"),
		inFlight:        reg.Gauge("bcache_units_in_flight", "work units currently executing"),
		checkpointBytes: reg.Gauge("bcache_checkpoint_bytes", "size of the last checkpoint file written"),
		traceCacheBytes: reg.Gauge("bcache_trace_cache_bytes", "bytes held by the shared trace cache"),
		unitWall:        reg.Histogram("bcache_unit_wall_seconds", "wall time per work unit attempt", unitWallBounds),

		distLeases:     reg.Counter("dist_leases_granted", "unit-range leases granted to worker subprocesses"),
		distReleases:   reg.Counter("dist_releases", "leases released back to the pool (expiry or worker death)"),
		distRestarts:   reg.Counter("dist_worker_restarts", "dead worker subprocesses respawned"),
		distDuplicates: reg.Counter("dist_duplicates_dropped", "re-leased unit completions dropped (first commit wins)"),
		distRecovered:  reg.Counter("dist_shard_recovered_units", "units recovered from dead workers' shards"),
		distWorkers:    reg.Gauge("dist_workers_live", "worker subprocesses currently attached"),
		distShardMerge: reg.Histogram("dist_shard_merge_seconds", "wall time merging one worker shard", distMergeBounds),
	}
	return t
}

// distMergeBounds are the shard-merge histogram buckets in seconds:
// merges are small file reads, so the interesting range is sub-second.
var distMergeBounds = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Journal returns the span journal (for -trace-out exports).
func (t *Telemetry) Journal() *tracespan.Journal {
	if t == nil {
		return nil
	}
	return t.journal
}

// Registry returns the metrics registry (for the /metrics endpoint).
func (t *Telemetry) Registry() *metrics.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// ProgressSnapshot assembles the live /progress document.
func (t *Telemetry) ProgressSnapshot() Progress {
	p := Progress{SchemaVersion: ProgressSchemaVersion}
	if t == nil {
		return p
	}
	t.mu.Lock()
	p.Experiment = t.experiment
	t.mu.Unlock()
	p.QueuedUnits = t.unitsQueued.Value()
	p.DoneUnits = t.unitsCompleted.Value()
	p.FailedUnits = t.unitsFailed.Value()
	p.RetriedUnits = t.unitsRetried.Value()
	p.InFlight = int64(t.inFlight.Value())
	p.Accesses = t.accesses.Value()
	p.SpansRecorded = t.journal.Recorded()
	p.SpansDropped = t.journal.Dropped()
	p.Interrupted = Stopped()
	return p
}

// activeTelemetry is the process-wide hub; nil means telemetry is off.
var activeTelemetry atomic.Pointer[Telemetry]

// SetTelemetry installs t as the process-wide telemetry hub (nil turns
// telemetry off). Install before starting runs; the scheduler reads it
// per unit.
func SetTelemetry(t *Telemetry) { activeTelemetry.Store(t) }

// CurrentTelemetry returns the installed hub, or nil.
func CurrentTelemetry() *Telemetry { return activeTelemetry.Load() }

// BeginExperiment scopes subsequent unit timings to experiment id and
// resets the per-experiment digest.
func (t *Telemetry) BeginExperiment(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.experiment = id
	t.durs = t.durs[:0]
	t.slowest = 0
	t.slowestKey = ""
	t.mu.Unlock()
}

// EndExperiment emits the experiment-level span and returns the unit
// timing digest accumulated since BeginExperiment (nil with no units).
func (t *Telemetry) EndExperiment(id string, start time.Time, dur time.Duration) *UnitTimingSummary {
	if t == nil {
		return nil
	}
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindExperiment, Name: id,
		Worker: tracespan.SharedWorker, Unit: -1,
		StartUnixNano: start.UnixNano(), DurNanos: int64(dur),
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), t.durs...)
	sort.Float64s(sorted)
	quantile := func(q float64) float64 {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return &UnitTimingSummary{
		Units:       len(sorted),
		P50Seconds:  quantile(0.50),
		P90Seconds:  quantile(0.90),
		MaxSeconds:  sorted[len(sorted)-1],
		SlowestUnit: t.slowestKey,
	}
}

// now returns the hub's clock reading; callers gate on t != nil first.
func (t *Telemetry) now() time.Time { return t.clock.Now() }

// runQueued accounts n units entering the scheduler.
func (t *Telemetry) runQueued(n int) {
	if t == nil {
		return
	}
	t.unitsQueued.Add(uint64(n))
	t.queueDepth.Add(float64(n))
}

// runDrained removes units that will never be claimed (stop requests)
// from the queue-depth gauge.
func (t *Telemetry) runDrained(unclaimed int) {
	if t == nil || unclaimed <= 0 {
		return
	}
	t.queueDepth.Add(-float64(unclaimed))
}

// unitClaimed moves one unit from queued to in-flight.
func (t *Telemetry) unitClaimed() {
	if t == nil {
		return
	}
	t.queueDepth.Add(-1)
	t.inFlight.Add(1)
}

// unitReleased takes a unit out of in-flight once its last attempt ends.
func (t *Telemetry) unitReleased() {
	if t == nil {
		return
	}
	t.inFlight.Add(-1)
}

// unitAttempt records one completed attempt of a unit: the KindUnit
// span, the wall-time histogram sample, an abandon/panic instant when
// the error says so, and — on the successful attempt — the
// per-experiment timing digest.
func (t *Telemetry) unitAttempt(worker, unit int, label string, attempt int, start time.Time, dur time.Duration, err error) {
	if t == nil {
		return
	}
	s := tracespan.Span{
		Kind: tracespan.KindUnit, Name: label, Worker: worker, Unit: unit,
		Attempt: attempt, StartUnixNano: start.UnixNano(), DurNanos: int64(dur),
	}
	if err != nil {
		s.Err = err.Error()
	}
	t.journal.Record(s)
	sec := dur.Seconds()
	t.unitWall.Observe(sec)
	switch {
	case err == nil:
		t.unitsCompleted.Inc()
		t.mu.Lock()
		t.durs = append(t.durs, sec)
		if sec > t.slowest || t.slowestKey == "" {
			t.slowest, t.slowestKey = sec, label
		}
		t.mu.Unlock()
	case errors.Is(err, ErrUnitTimeout):
		t.unitsAbandoned.Inc()
		t.journal.Record(tracespan.Span{
			Kind: tracespan.KindAbandon, Name: label, Worker: worker, Unit: unit,
			Attempt: attempt, StartUnixNano: start.Add(dur).UnixNano(), Err: s.Err,
		})
	case errors.Is(err, errUnitPanic):
		t.unitsPanicked.Inc()
		t.journal.Record(tracespan.Span{
			Kind: tracespan.KindPanic, Name: label, Worker: worker, Unit: unit,
			Attempt: attempt, StartUnixNano: start.Add(dur).UnixNano(), Err: s.Err,
		})
	}
}

// unitRetry records a retry being scheduled after a failed attempt.
func (t *Telemetry) unitRetry(worker, unit int, label string, attempt int, delay time.Duration) {
	if t == nil {
		return
	}
	t.unitsRetried.Inc()
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindRetry, Name: label, Worker: worker, Unit: unit,
		Attempt: attempt, Detail: delay.String(),
	})
}

// unitFailed records a unit giving up for good.
func (t *Telemetry) unitFailed() {
	if t == nil {
		return
	}
	t.unitsFailed.Inc()
}

// addAccesses accounts simulated accesses from a committed unit.
func (t *Telemetry) addAccesses(n uint64) {
	if t == nil {
		return
	}
	t.accesses.Add(n)
}

// checkpointSaved records one checkpoint write.
func (t *Telemetry) checkpointSaved(units, bytes int) {
	if t == nil {
		return
	}
	t.checkpointSaves.Inc()
	t.checkpointBytes.Set(float64(bytes))
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindCheckpoint, Worker: tracespan.SharedWorker, Unit: -1,
		Detail: fmt.Sprintf("units=%d bytes=%d", units, bytes),
	})
}

// traceCacheEvent records one shared-trace-cache event (kind is a
// tracespan.KindTrace* constant); usedBytes refreshes the size gauge,
// and dur carries the build time for trace_build spans.
func (t *Telemetry) traceCacheEvent(kind, name string, start time.Time, dur time.Duration, usedBytes int64) {
	if t == nil {
		return
	}
	switch kind {
	case tracespan.KindTraceHit:
		t.traceHits.Inc()
	case tracespan.KindTraceBuild:
		t.traceBuilds.Inc()
	case tracespan.KindTraceRebuild:
		t.traceRebuilds.Inc()
	}
	t.traceCacheBytes.Set(float64(usedBytes))
	s := tracespan.Span{
		Kind: kind, Name: name, Worker: tracespan.SharedWorker, Unit: -1,
		DurNanos: int64(dur),
	}
	if !start.IsZero() {
		s.StartUnixNano = start.UnixNano()
	}
	t.journal.Record(s)
}

// The Dist* methods observe the distributed coordinator (internal/dist)
// through its Events hooks — cmd/experiments wires them up. All are
// nil-safe like the rest of the hub.

// DistLeaseGranted records a unit-range lease going to a worker slot.
func (t *Telemetry) DistLeaseGranted(worker, leaseID, start, end int) {
	if t == nil {
		return
	}
	t.distLeases.Inc()
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindLease, Worker: worker, Unit: -1, Attempt: leaseID,
		Detail: fmt.Sprintf("units=%d-%d", start, end),
	})
}

// DistLeaseExpired records a lease missing its deadline; returned units
// go back to the pool for re-lease.
func (t *Telemetry) DistLeaseExpired(worker, leaseID, returned int) {
	if t == nil {
		return
	}
	t.distReleases.Inc()
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindLeaseExpire, Worker: worker, Unit: -1, Attempt: leaseID,
		Detail: fmt.Sprintf("returned=%d", returned),
	})
}

// DistWorkerAttached moves the live-workers gauge as subprocesses come
// and go (delta is +1 on start, -1 on exit).
func (t *Telemetry) DistWorkerAttached(delta int) {
	if t == nil {
		return
	}
	t.distWorkers.Add(float64(delta))
}

// DistWorkerRestarted records a dead worker slot being respawned.
func (t *Telemetry) DistWorkerRestarted(worker, attempt int) {
	if t == nil {
		return
	}
	t.distRestarts.Inc()
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindWorkerRestart, Worker: worker, Unit: -1, Attempt: attempt,
	})
}

// DistShardMerged records one worker shard merge: how many records it
// held, how many units only the shard knew about, and the merge time.
func (t *Telemetry) DistShardMerged(worker, records, recovered int, dur time.Duration) {
	if t == nil {
		return
	}
	t.distRecovered.Add(uint64(recovered))
	t.distShardMerge.Observe(dur.Seconds())
	t.journal.Record(tracespan.Span{
		Kind: tracespan.KindShardMerge, Worker: worker, Unit: -1, DurNanos: int64(dur),
		Detail: fmt.Sprintf("records=%d recovered=%d", records, recovered),
	})
}

// DistDuplicateDropped records a re-leased unit completing twice; the
// second completion is dropped, never re-applied.
func (t *Telemetry) DistDuplicateDropped(unit int) {
	if t == nil {
		return
	}
	t.distDuplicates.Inc()
}
