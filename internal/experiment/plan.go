package experiment

import (
	"fmt"

	"bcache/internal/workload"
)

// A Plan is the distributable view of a campaign: the deterministic,
// enumerable list of miss-rate work units that a coordinator can lease
// out to worker subprocesses. Each planned unit is one job of the
// in-process scheduler — a single (profile, seed, spec) replay, or one
// (profile, seed) stack-distance pass answering every LRU spec at once —
// and executing it yields the same checkpoint records, under the same
// keys, that missRates would commit. That identity is what makes the
// coordinator's merged checkpoint bit-identical to a single-process run:
// distribution changes where a unit runs, never what it computes.
//
// Planning is cheap (no traces are materialized) and deterministic: the
// same Opts and experiment IDs produce the same unit list in the same
// order on every machine, so a coordinator and its workers can agree on
// the unit space by index alone, cross-checked with Fingerprint.

// profileSpecName is the pseudo spec name keying a stack-distance
// profiling job in a plan. It never collides with a real Spec: every
// registered spec name is a concrete configuration like "8way" or "MF8".
const profileSpecName = "lru-profile"

// KeyedResult is one checkpoint record produced by a planned unit: the
// self-describing unit key plus the raw counters stored under it.
type KeyedResult struct {
	Key    string     `json:"key"`
	Result UnitResult `json:"result"`
}

// PlannedUnit is one distributable work unit.
type PlannedUnit struct {
	// Key names the unit: for replay units the checkpoint unit key, for
	// profiling units the same key shape under the lru-profile pseudo
	// spec.
	Key string
	// keys lists every checkpoint key the unit commits (one per covered
	// spec); run executes the unit.
	keys []string
	run  func() ([]KeyedResult, error)
}

// Plan is an ordered, deduplicated list of planned units.
type Plan struct {
	units []PlannedUnit
}

// Len returns the number of planned units.
func (p *Plan) Len() int { return len(p.units) }

// Key returns the unit key of unit i.
func (p *Plan) Key(i int) string { return p.units[i].Key }

// UnitKeys returns the checkpoint keys unit i commits.
func (p *Plan) UnitKeys(i int) []string { return p.units[i].keys }

// Execute runs unit i and returns its checkpoint records.
func (p *Plan) Execute(i int) ([]KeyedResult, error) {
	return p.units[i].run()
}

// Fingerprint folds every unit key through FNV-1a so a coordinator and a
// worker built from different flags (or different binaries) cannot
// silently disagree about what unit i means.
func (p *Plan) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, u := range p.units {
		for i := 0; i < len(u.Key); i++ {
			h = (h ^ uint64(u.Key[i])) * prime
		}
		h = (h ^ 0xFF) * prime // key separator
	}
	return h
}

// Done reports whether every checkpoint key of unit i is already present
// in cp (a nil checkpoint marks nothing done).
func (p *Plan) Done(i int, cp *Checkpoint) bool {
	for _, k := range p.units[i].keys {
		if _, ok := cp.Lookup(k); !ok {
			return false
		}
	}
	return true
}

// PlanCampaign enumerates the distributable units of the experiments
// named by ids (nil or empty = all registered experiments), in registry
// order, deduplicated by unit key: experiments share units — the
// baseline column appears in every figure — and a shared unit is planned
// once, where it first appears. Experiments without a Plan hook (the
// analytic tables, the timed IPC runs) contribute nothing and simply run
// in-process after the merge.
func PlanCampaign(opts Opts, ids []string) (*Plan, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var exps []Experiment
	if len(ids) == 0 {
		exps = All()
	} else {
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				return nil, err
			}
			exps = append(exps, e)
		}
	}
	plan := &Plan{}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Plan == nil {
			continue
		}
		units, err := e.Plan(opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: planning %s: %w", e.ID, err)
		}
		for _, u := range units {
			if seen[u.Key] {
				continue
			}
			seen[u.Key] = true
			plan.units = append(plan.units, u)
		}
	}
	return plan, nil
}

// planMissRates enumerates the units missRates would schedule for one
// (profiles, specs, side) call: the job construction below mirrors
// missRates exactly — one profiling job per (profile, seed) when any
// pure-LRU spec is profileable, plus one replay job per remaining spec —
// so the distributed unit space is the in-process unit space.
func planMissRates(opts Opts, profiles []*workload.Profile, specs []Spec, s side) []PlannedUnit {
	all := append([]Spec{baselineSpec()}, specs...)
	seeds := opts.seeds()
	lru, replayed := lruSpecIndices(opts, all)
	var units []PlannedUnit
	for _, p := range profiles {
		p := p
		for k := 0; k < seeds; k++ {
			k := k
			if len(lru) > 0 {
				keys := make([]string, len(lru))
				for x, si := range lru {
					keys[x] = unitKey(opts, s, all[si].key(), k, p.Name)
				}
				units = append(units, PlannedUnit{
					Key:  unitKey(opts, s, profileSpecName, k, p.Name),
					keys: keys,
					run: func() ([]KeyedResult, error) {
						res, err := execProfileUnit(opts, s, p, all, lru, k)
						if err != nil {
							return nil, err
						}
						out := make([]KeyedResult, len(res))
						for x := range res {
							out[x] = KeyedResult{Key: keys[x], Result: res[x]}
						}
						return out, nil
					},
				})
			}
			for _, si := range replayed {
				spec := all[si]
				key := unitKey(opts, s, spec.key(), k, p.Name)
				units = append(units, PlannedUnit{
					Key:  key,
					keys: []string{key},
					run: func() ([]KeyedResult, error) {
						u, err := execReplayUnit(opts, s, p, spec, k)
						if err != nil {
							return nil, err
						}
						return []KeyedResult{{Key: key, Result: u}}, nil
					},
				})
			}
		}
	}
	return units
}

// reportedICacheProfiles returns the benchmarks Figure 5 reports.
func reportedICacheProfiles() []*workload.Profile {
	var reported []*workload.Profile
	for _, p := range workload.All() {
		if workload.IsReportedICache(p.Name) {
			reported = append(reported, p)
		}
	}
	return reported
}

// planFig4 mirrors runFig4's missRates call.
func planFig4(opts Opts) ([]PlannedUnit, error) {
	return planMissRates(opts, workload.All(), figureSpecs(), dSide), nil
}

// planFig5 mirrors runFig5's missRates call.
func planFig5(opts Opts) ([]PlannedUnit, error) {
	return planMissRates(opts, reportedICacheProfiles(), figureSpecs(), iSide), nil
}

// planFig12 mirrors runFig12's size × side sweep.
func planFig12(opts Opts) ([]PlannedUnit, error) {
	specs := fig12Specs()
	var units []PlannedUnit
	for _, size := range []int{32 * 1024, 8 * 1024} {
		o := opts
		o.L1Size = size
		units = append(units, planMissRates(o, workload.All(), specs, dSide)...)
		units = append(units, planMissRates(o, reportedICacheProfiles(), specs, iSide)...)
	}
	return units, nil
}

// planDesignSpace mirrors designSpace's missRates call (Tables 5 and 6).
func planDesignSpace(opts Opts) ([]PlannedUnit, error) {
	return planMissRates(opts, workload.All(), designSpecs(), dSide), nil
}

// planXLine mirrors runXLine's per-line-size missRates calls.
func planXLine(opts Opts) ([]PlannedUnit, error) {
	var units []PlannedUnit
	for _, line := range []int{16, 32, 64} {
		o := opts
		o.LineBytes = line
		units = append(units, planMissRates(o, workload.All(), xLineSpecs(), dSide)...)
	}
	return units, nil
}
