package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bcache/internal/obs/metrics"
	"bcache/internal/obs/tracespan"
)

// TestDistMetricsExposition: the distribution counters render as valid
// OpenMetrics under their documented series names — the contract the
// scrape dashboards key on.
func TestDistMetricsExposition(t *testing.T) {
	tel, _ := withTelemetry(t)
	tel.DistLeaseGranted(0, 1, 0, 8)
	tel.DistLeaseGranted(1, 2, 8, 16)
	tel.DistLeaseExpired(0, 1, 8)
	tel.DistWorkerAttached(1)
	tel.DistWorkerAttached(1)
	tel.DistWorkerAttached(-1)
	tel.DistWorkerRestarted(0, 1)
	tel.DistShardMerged(0, 6, 2, 40*time.Millisecond)
	tel.DistDuplicateDropped(3)

	var buf bytes.Buffer
	if err := tel.Registry().WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	text := buf.String()
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"dist_leases_granted_total 2",
		"dist_releases_total 1",
		"dist_worker_restarts_total 1",
		"dist_duplicates_dropped_total 1",
		"dist_shard_recovered_units_total 2",
		"dist_workers_live 1",
		"dist_shard_merge_seconds_bucket",
		"dist_shard_merge_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Each lifecycle event also lands one span of its kind.
	for kind, want := range map[string]int{
		tracespan.KindLease:         2,
		tracespan.KindLeaseExpire:   1,
		tracespan.KindWorkerRestart: 1,
		tracespan.KindShardMerge:    1,
	} {
		if got := len(spansOfKind(tel.Journal(), kind)); got != want {
			t.Errorf("%s spans = %d, want %d", kind, got, want)
		}
	}
}

// TestDistTelemetryNilSafe: the Dist* hooks follow the hub's nil-receiver
// convention so dist code never guards its telemetry calls.
func TestDistTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.DistLeaseGranted(0, 1, 0, 4)
	tel.DistLeaseExpired(0, 1, 4)
	tel.DistWorkerAttached(1)
	tel.DistWorkerRestarted(0, 1)
	tel.DistShardMerged(0, 1, 0, time.Millisecond)
	tel.DistDuplicateDropped(0)
}
