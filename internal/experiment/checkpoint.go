package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// A checkpoint makes long campaigns crash-safe: every completed
// miss-rate work unit — one (profile × seed × spec) replay — is recorded
// under a self-describing key, the file is rewritten atomically
// (temp + rename, so a crash mid-save leaves the previous checkpoint
// intact), and a resumed run looks each unit up before simulating it.
// The stored values are the raw uint64 event counters, which round-trip
// through JSON exactly, so a resumed run aggregates to bit-identical
// results — not approximately-equal ones.

// CheckpointSchemaVersion identifies the checkpoint JSON layout.
const CheckpointSchemaVersion = 1

// UnitResult is the committed outcome of one miss-rate work unit: raw
// counters only, so resume is exact.
type UnitResult struct {
	Misses   uint64 `json:"misses"`
	Accesses uint64 `json:"accesses"`
	PDHit    uint64 `json:"pdHit,omitempty"`
	PDMiss   uint64 `json:"pdMiss,omitempty"`
}

// checkpointFile is the on-disk layout.
type checkpointFile struct {
	SchemaVersion int                   `json:"schemaVersion"`
	Units         map[string]UnitResult `json:"units"`
}

// Checkpoint is a concurrency-safe set of completed work units bound to
// a file path. A nil *Checkpoint is valid and inert, so call sites need
// no guards.
type Checkpoint struct {
	mu    sync.Mutex
	path  string
	units map[string]UnitResult
	dirty int
	// autosaveEvery flushes to disk after that many new records
	// (0 = only on explicit Save).
	autosaveEvery int
	// afterRecord, when set, observes the total record count after each
	// Record — the hook the resume tests use to interrupt mid-run.
	afterRecord func(total int)
}

// NewCheckpoint returns an empty checkpoint bound to path ("" = purely
// in-memory).
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, units: map[string]UnitResult{}}
}

// LoadCheckpoint reads a checkpoint from path. A missing file is not an
// error — resuming a run that never started is an empty checkpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c := NewCheckpoint(path)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("experiment: parse checkpoint %s: %w", path, err)
	}
	if f.SchemaVersion != CheckpointSchemaVersion {
		return nil, fmt.Errorf("experiment: checkpoint %s is schema v%d, this build reads v%d",
			path, f.SchemaVersion, CheckpointSchemaVersion)
	}
	if f.Units != nil {
		c.units = f.Units
	}
	return c, nil
}

// SetAutosave flushes the checkpoint to disk after every n new records.
func (c *Checkpoint) SetAutosave(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.autosaveEvery = n
	c.mu.Unlock()
}

// SetAfterRecord installs a hook observing the record count after each
// Record (test hook; pass nil to clear).
func (c *Checkpoint) SetAfterRecord(fn func(total int)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.afterRecord = fn
	c.mu.Unlock()
}

// Lookup returns the recorded result for key, if any.
func (c *Checkpoint) Lookup(key string) (UnitResult, bool) {
	if c == nil {
		return UnitResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.units[key]
	return r, ok
}

// Record stores the result of a completed unit and autosaves when due.
// Save errors during autosave are deliberately swallowed — the units
// stay recorded in memory and the caller's explicit Save will report
// persistent failures.
func (c *Checkpoint) Record(key string, r UnitResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, dup := c.units[key]; !dup {
		c.dirty++
	}
	c.units[key] = r
	total := len(c.units)
	hook := c.afterRecord
	if c.autosaveEvery > 0 && c.dirty >= c.autosaveEvery {
		_ = c.saveLocked()
	}
	c.mu.Unlock()
	if hook != nil {
		hook(total)
	}
}

// Len returns the number of recorded units.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.units)
}

// Save writes the checkpoint atomically: the JSON goes to a temporary
// file in the same directory, which then renames over the target, so
// readers only ever see a complete document.
func (c *Checkpoint) Save() error {
	if c == nil || c.path == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Checkpoint) saveLocked() error {
	if c.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(checkpointFile{
		SchemaVersion: CheckpointSchemaVersion,
		Units:         c.units,
	}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.dirty = 0
	// Emitting under c.mu is safe: telemetry never calls back into the
	// checkpoint, so there is no lock-order cycle.
	CurrentTelemetry().checkpointSaved(len(c.units), len(data)+1)
	return nil
}
