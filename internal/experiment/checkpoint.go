package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// A checkpoint makes long campaigns crash-safe: every completed
// miss-rate work unit — one (profile × seed × spec) replay — is recorded
// under a self-describing key, the file is rewritten atomically
// (temp + rename, so a crash mid-save leaves the previous checkpoint
// intact), and a resumed run looks each unit up before simulating it.
// The stored values are the raw uint64 event counters, which round-trip
// through JSON exactly, so a resumed run aggregates to bit-identical
// results — not approximately-equal ones.

// CheckpointSchemaVersion identifies the checkpoint JSON layout.
const CheckpointSchemaVersion = 1

// UnitResult is the committed outcome of one miss-rate work unit: raw
// counters only, so resume is exact.
type UnitResult struct {
	Misses   uint64 `json:"misses"`
	Accesses uint64 `json:"accesses"`
	PDHit    uint64 `json:"pdHit,omitempty"`
	PDMiss   uint64 `json:"pdMiss,omitempty"`
}

// checkpointFile is the on-disk layout.
type checkpointFile struct {
	SchemaVersion int                   `json:"schemaVersion"`
	Units         map[string]UnitResult `json:"units"`
}

// Checkpoint is a concurrency-safe set of completed work units bound to
// a file path. A nil *Checkpoint is valid and inert, so call sites need
// no guards.
type Checkpoint struct {
	mu    sync.Mutex
	path  string
	units map[string]UnitResult // guarded by mu
	dirty int                   // guarded by mu
	// autosaveEvery flushes to disk after that many new records
	// (0 = only on explicit Save).
	autosaveEvery int
	// afterRecord, when set, observes the total record count after each
	// Record — the hook the resume tests use to interrupt mid-run.
	afterRecord func(total int)
	// loadWarning describes a torn-file recovery performed by
	// LoadCheckpoint ("" for clean loads); see LoadWarning.
	loadWarning string
}

// NewCheckpoint returns an empty checkpoint bound to path ("" = purely
// in-memory).
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, units: map[string]UnitResult{}}
}

// LoadCheckpoint reads a checkpoint from path. A missing file is not an
// error — resuming a run that never started is an empty checkpoint.
//
// A torn file — truncated mid-write by a crash, or with a corrupted
// tail — does not fail the resume: the valid prefix of complete unit
// records is recovered and the loss is reported through LoadWarning, so
// hours of completed units survive losing at most the trailing record.
// Only a file whose schema version is unreadable or wrong is rejected;
// resuming under the wrong schema would silently poison every table.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c := NewCheckpoint(path)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		ver, units, recErr := recoverCheckpointPrefix(data)
		if recErr != nil {
			return nil, fmt.Errorf("experiment: parse checkpoint %s: %w (prefix recovery: %v)", path, err, recErr)
		}
		if ver != CheckpointSchemaVersion {
			return nil, fmt.Errorf("experiment: checkpoint %s is schema v%d, this build reads v%d",
				path, ver, CheckpointSchemaVersion)
		}
		c.units = units
		c.loadWarning = fmt.Sprintf("checkpoint %s is torn (%v); recovered the valid prefix of %d units",
			path, err, len(units))
		return c, nil
	}
	if f.SchemaVersion != CheckpointSchemaVersion {
		return nil, fmt.Errorf("experiment: checkpoint %s is schema v%d, this build reads v%d",
			path, f.SchemaVersion, CheckpointSchemaVersion)
	}
	if f.Units != nil {
		c.units = f.Units
	}
	return c, nil
}

// recoverCheckpointPrefix walks a torn checkpoint token by token and
// keeps every complete unit record before the first decode error. The
// schema version must parse — a prefix so short it lost the version (or
// a file that is not a checkpoint at all) is unrecoverable, because
// resuming it would be a guess, not a recovery. Unit records are only
// kept when their key and value both decoded, so a record cut mid-value
// is dropped, not half-restored.
func recoverCheckpointPrefix(data []byte) (schemaVersion int, units map[string]UnitResult, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	if tok, terr := dec.Token(); terr != nil || tok != json.Delim('{') {
		return 0, nil, fmt.Errorf("no top-level object")
	}
	units = map[string]UnitResult{}
	sawVersion := false
	for {
		tok, terr := dec.Token()
		if terr != nil {
			break
		}
		key, ok := tok.(string)
		if !ok {
			break // closing delimiter or corruption; stop either way
		}
		switch key {
		case "schemaVersion":
			if derr := dec.Decode(&schemaVersion); derr != nil {
				return 0, nil, fmt.Errorf("schema version unreadable")
			}
			sawVersion = true
		case "units":
			if tok, terr := dec.Token(); terr != nil || tok != json.Delim('{') {
				return finishRecovery(schemaVersion, units, sawVersion)
			}
			for dec.More() {
				ktok, kerr := dec.Token()
				if kerr != nil {
					return finishRecovery(schemaVersion, units, sawVersion)
				}
				ukey, ok := ktok.(string)
				if !ok {
					return finishRecovery(schemaVersion, units, sawVersion)
				}
				var u UnitResult
				if derr := dec.Decode(&u); derr != nil {
					return finishRecovery(schemaVersion, units, sawVersion)
				}
				units[ukey] = u
			}
			if tok, terr := dec.Token(); terr != nil || tok != json.Delim('}') {
				return finishRecovery(schemaVersion, units, sawVersion)
			}
		default:
			// Unknown field (a future minor addition): skip its value.
			var skip json.RawMessage
			if derr := dec.Decode(&skip); derr != nil {
				return finishRecovery(schemaVersion, units, sawVersion)
			}
		}
	}
	return finishRecovery(schemaVersion, units, sawVersion)
}

// finishRecovery applies the one hard requirement of a recovery — the
// schema version must have been read — and returns the kept prefix.
func finishRecovery(ver int, units map[string]UnitResult, sawVersion bool) (int, map[string]UnitResult, error) {
	if !sawVersion {
		return 0, nil, fmt.Errorf("schema version missing from recoverable prefix")
	}
	return ver, units, nil
}

// LoadWarning reports how a torn checkpoint was recovered ("" for a
// clean load); callers surface it to the user.
func (c *Checkpoint) LoadWarning() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadWarning
}

// SetAutosave flushes the checkpoint to disk after every n new records.
func (c *Checkpoint) SetAutosave(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.autosaveEvery = n
	c.mu.Unlock()
}

// SetAfterRecord installs a hook observing the record count after each
// Record (test hook; pass nil to clear).
func (c *Checkpoint) SetAfterRecord(fn func(total int)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.afterRecord = fn
	c.mu.Unlock()
}

// Lookup returns the recorded result for key, if any.
func (c *Checkpoint) Lookup(key string) (UnitResult, bool) {
	if c == nil {
		return UnitResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.units[key]
	return r, ok
}

// Record stores the result of a completed unit and autosaves when due.
// Save errors during autosave are deliberately swallowed — the units
// stay recorded in memory and the caller's explicit Save will report
// persistent failures.
func (c *Checkpoint) Record(key string, r UnitResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, dup := c.units[key]; !dup {
		c.dirty++
	}
	c.units[key] = r
	total := len(c.units)
	hook := c.afterRecord
	if c.autosaveEvery > 0 && c.dirty >= c.autosaveEvery {
		_ = c.saveLocked()
	}
	c.mu.Unlock()
	if hook != nil {
		hook(total)
	}
}

// Len returns the number of recorded units.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.units)
}

// Save writes the checkpoint atomically: the JSON goes to a temporary
// file in the same directory, which then renames over the target, so
// readers only ever see a complete document.
func (c *Checkpoint) Save() error {
	if c == nil || c.path == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Checkpoint) saveLocked() error {
	if c.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(checkpointFile{
		SchemaVersion: CheckpointSchemaVersion,
		Units:         c.units,
	}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.dirty = 0
	// Emitting under c.mu is safe: telemetry never calls back into the
	// checkpoint, so there is no lock-order cycle.
	CurrentTelemetry().checkpointSaved(len(c.units), len(data)+1)
	return nil
}
