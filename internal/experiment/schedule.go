package experiment

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bcache/internal/obs/tracespan"
	"bcache/internal/workload"
)

// The scheduler is the suite's crash boundary. A multi-hour campaign must
// survive one misbehaving work unit — a panic in a cache model, a
// wedged simulation, a transient failure — without losing the hours of
// sibling results already computed. Three mechanisms provide that:
//
//   - Panic isolation: each unit runs under recover; a panic becomes an
//     error carrying the unit's stack, and every other unit proceeds.
//   - Deadlines and retry: a unit exceeding its deadline is abandoned
//     (the orphaned goroutine can never write shared state, because
//     results are committed only via a closure the worker itself invokes
//     on receipt) and retried with exponential backoff, as are units
//     failing with ErrTransient.
//   - No cancel-on-first-error: workers keep draining the unit counter
//     after a failure, so one bad (benchmark, spec) pair costs one cell,
//     not the whole table. All errors come back via errors.Join alongside
//     whatever results completed.
//
// RequestStop (wired to SIGINT in the CLIs) is the one thing that stops
// claiming early: in-flight units finish, the error includes
// ErrInterrupted, and completed units remain available for checkpointing.

var (
	// ErrTransient marks a unit failure worth retrying (wrap it:
	// fmt.Errorf("...: %w", ErrTransient)).
	ErrTransient = errors.New("transient failure")
	// ErrInterrupted is joined into the scheduler's error when a stop
	// request (RequestStop) cut the run short.
	ErrInterrupted = errors.New("experiment: interrupted")
	// ErrUnitTimeout marks a unit abandoned past its deadline.
	ErrUnitTimeout = errors.New("experiment: unit deadline exceeded")
)

// stopRequested is the process-wide graceful-stop latch.
var stopRequested atomic.Bool

// RequestStop asks all schedulers to stop claiming new work units.
// In-flight units finish and their results are committed; the active
// runs return ErrInterrupted (joined with any other errors).
func RequestStop() { stopRequested.Store(true) }

// ResetStop clears a previous stop request (tests and REPL-style
// drivers; a one-shot CLI exits instead).
func ResetStop() { stopRequested.Store(false) }

// Stopped reports whether a stop has been requested.
func Stopped() bool { return stopRequested.Load() }

// maxJoinedErrors bounds the error list a run returns; past it, failures
// are summarized by count so a systematically broken spec does not
// produce megabytes of joined errors.
const maxJoinedErrors = 16

// unitOpts bounds one scheduled work unit.
type unitOpts struct {
	// Timeout abandons a unit that runs longer (0 = no deadline). The
	// abandoned goroutine is left to finish in the background; its
	// commit closure is never invoked.
	Timeout time.Duration
	// Retries re-runs a unit that timed out or failed with ErrTransient
	// up to this many additional times.
	Retries int
	// Backoff is the first retry delay, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Clock times unit attempts and sleeps retry backoffs (nil = wall
	// clock). Tests inject tracespan.FakeClock to pin exact schedules.
	Clock tracespan.Clock
	// Label names unit i for telemetry spans and the slowest-unit
	// digest. Only called when a telemetry hub is installed, so label
	// formatting costs nothing on unobserved runs.
	Label func(i int) string
}

func (o unitOpts) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 50 * time.Millisecond
}

func (o unitOpts) clock() tracespan.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return tracespan.Wall
}

func (o unitOpts) label(i int) string {
	if o.Label == nil {
		return ""
	}
	return o.Label(i)
}

// runUnitsCtl executes fn(i) for every i in [0, n) on up to workers
// goroutines pulling from a shared atomic counter. Work units should be
// the finest independent grain available — (profile × spec × seed)
// rather than whole profiles — so a run with fewer benchmarks than cores
// still saturates the machine.
//
// fn returns (commit, error). On success the worker invokes commit (if
// non-nil) from its own goroutine — that is the only path results may
// reach shared state through, which is what makes abandoning a
// timed-out unit safe. Unit failures do not cancel siblings; every
// error is collected and returned via errors.Join after all claimable
// units ran.
func runUnitsCtl(n, workers int, o unitOpts, fn func(int) (func(), error)) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	tel := CurrentTelemetry()
	tel.runQueued(n)
	var (
		next        atomic.Int64
		interrupted atomic.Bool
		mu          sync.Mutex
		errs        []error
		dropped     int
		wg          sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				if stopRequested.Load() {
					interrupted.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				tel.unitClaimed()
				err := runOneUnit(w, i, o, tel, fn)
				tel.unitReleased()
				if err != nil {
					tel.unitFailed()
					mu.Lock()
					if len(errs) < maxJoinedErrors {
						errs = append(errs, err)
					} else {
						dropped++
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	// A stop request leaves units unclaimed; take them back out of the
	// queue-depth gauge. next counts claim attempts, so cap it at n.
	if claimed := int(next.Load()); claimed < n {
		tel.runDrained(n - claimed)
	}
	if dropped > 0 {
		errs = append(errs, fmt.Errorf("experiment: %d further unit failures elided", dropped))
	}
	if interrupted.Load() {
		errs = append(errs, ErrInterrupted)
	}
	return errors.Join(errs...)
}

// runOneUnit runs unit i to completion on worker w, committing on
// success and retrying timeouts and transient failures with exponential
// backoff through the unit clock. Each attempt emits exactly one
// KindUnit span, and each scheduled retry exactly one KindRetry span.
func runOneUnit(w, i int, o unitOpts, tel *Telemetry, fn func(int) (func(), error)) error {
	clk := o.clock()
	label := ""
	if tel != nil {
		label = o.label(i)
	}
	delay := o.backoff()
	for attempt := 0; ; attempt++ {
		var start time.Time
		if tel != nil {
			start = tel.now()
		}
		commit, err := invokeUnit(i, o.Timeout, fn)
		if tel != nil {
			tel.unitAttempt(w, i, label, attempt, start, tel.now().Sub(start), err)
		}
		if err == nil {
			if commit != nil {
				commit()
			}
			return nil
		}
		retryable := errors.Is(err, ErrTransient) || errors.Is(err, ErrUnitTimeout)
		if !retryable || attempt >= o.Retries || stopRequested.Load() {
			if attempt > 0 {
				return fmt.Errorf("unit %d (after %d retries): %w", i, attempt, err)
			}
			return fmt.Errorf("unit %d: %w", i, err)
		}
		tel.unitRetry(w, i, label, attempt, delay)
		clk.Sleep(delay)
		delay *= 2
	}
}

// invokeUnit calls fn(i) with panic isolation and, when a deadline is
// set, abandons the call past it. An abandoned call keeps running on its
// orphaned goroutine but its commit closure is discarded unseen, so it
// can never race a retry or corrupt shared slots.
func invokeUnit(i int, timeout time.Duration, fn func(int) (func(), error)) (func(), error) {
	if timeout <= 0 {
		return protectUnit(i, fn)
	}
	type outcome struct {
		commit func()
		err    error
	}
	ch := make(chan outcome, 1)
	//bcachelint:allow goroutinelife(deliberately abandoned on the timeout path: the buffered send never blocks and the unit's panic protection already ran; see the hung-unit contract above)
	go func() {
		c, err := protectUnit(i, fn)
		ch <- outcome{c, err}
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case out := <-ch:
		return out.commit, out.err
	case <-t.C:
		return nil, fmt.Errorf("after %v: %w", timeout, ErrUnitTimeout)
	}
}

// errUnitPanic marks an error produced by a recovered unit panic, so
// telemetry can classify it without string matching.
var errUnitPanic = errors.New("panicked")

// protectUnit converts a panic in fn into an error carrying the stack.
func protectUnit(i int, fn func(int) (func(), error)) (commit func(), err error) {
	defer func() {
		if r := recover(); r != nil {
			commit = nil
			err = fmt.Errorf("experiment: unit %d %w: %v\n%s", i, errUnitPanic, r, debug.Stack())
		}
	}()
	return fn(i)
}

// runUnits is the plain-grain scheduler: fn both computes and stores its
// result (safe because without a deadline no call is ever abandoned).
func runUnits(n, workers int, fn func(int) error) error {
	return runUnitsLabeled(n, workers, nil, fn)
}

// runUnitsLabeled is runUnits with telemetry labels for the units.
func runUnitsLabeled(n, workers int, label func(i int) string, fn func(int) error) error {
	return runUnitsCtl(n, workers, unitOpts{Label: label}, func(i int) (func(), error) {
		return nil, fn(i)
	})
}

// forEachProfile runs fn over profiles with bounded parallelism.
// Experiments whose work does not decompose further use this; the
// miss-rate and timed paths schedule finer units directly.
func forEachProfile(profiles []*workload.Profile, workers int, fn func(*workload.Profile) error) error {
	return runUnitsLabeled(len(profiles), workers,
		func(i int) string { return profiles[i].Name },
		func(i int) error {
			if err := fn(profiles[i]); err != nil {
				return fmt.Errorf("%s: %w", profiles[i].Name, err)
			}
			return nil
		})
}
