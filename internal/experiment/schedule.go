package experiment

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bcache/internal/workload"
)

// runUnits executes fn(i) for every i in [0, n) on up to workers
// goroutines pulling from a shared atomic counter. Work units should be
// the finest independent grain available — (profile × spec × seed) rather
// than whole profiles — so a run with fewer benchmarks than cores still
// saturates the machine.
//
// On the first error, workers stop claiming new units (in-flight units
// finish); every error collected before shutdown is returned via
// errors.Join, so concurrent failures are not silently dropped.
func runUnits(n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errs   []error
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// forEachProfile runs fn over profiles with bounded parallelism,
// cancelling outstanding profiles on the first error. Experiments whose
// work does not decompose further use this; the miss-rate and timed
// paths schedule finer units directly via runUnits.
func forEachProfile(profiles []*workload.Profile, workers int, fn func(*workload.Profile) error) error {
	return runUnits(len(profiles), workers, func(i int) error {
		if err := fn(profiles[i]); err != nil {
			return fmt.Errorf("%s: %w", profiles[i].Name, err)
		}
		return nil
	})
}
