package experiment

import (
	"sync"
	"time"

	"bcache/internal/obs/tracespan"
	"bcache/internal/workload"
)

// The miss-rate experiments replay the same few address streams against
// many cache configurations, and several experiments share benchmarks, so
// regenerating a stream per call site wastes most of the suite's time.
// traceCache memoizes materialize content-addressed by everything the
// generated stream depends on: (profile name, seed, instructions, line
// bytes). Entries are built once under a singleflight channel — duplicate
// requesters block on the first builder — and evicted least-recently-used
// when the byte budget is exceeded. Evicted traces stay usable by anyone
// already holding the pointer; accessTrace is immutable after build.

// defaultTraceBytes bounds the shared cache when Opts does not say
// otherwise. A DefaultOpts trace is ~15 MB, so this holds every stream of
// the full suite with room to spare while capping worst-case growth.
const defaultTraceBytes = 768 << 20

// traceKey identifies one materialized stream.
type traceKey struct {
	name         string
	seed         uint64
	instructions uint64
	lineBytes    int
}

// traceEntry is one cache slot. ready is closed when at/err are set;
// sum is the content checksum taken at build time, re-verified on every
// hit so a corrupted shared trace is rebuilt instead of silently
// poisoning every experiment that replays it.
type traceEntry struct {
	ready   chan struct{}
	at      *accessTrace
	err     error
	sum     uint64
	size    int64
	lastUse uint64
}

// TraceCacheCounters reports shared trace-cache effectiveness.
type TraceCacheCounters struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Rebuilds counts entries discarded because their content no longer
	// matched the build-time checksum.
	Rebuilds uint64
	Bytes    int64
}

type traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	used    int64
	ticks   uint64
	c       TraceCacheCounters
}

// sharedTraces is the process-wide cache; all experiments go through it.
var sharedTraces = &traceCache{entries: map[traceKey]*traceEntry{}}

// ResetTraceCache drops all memoized traces and counters (test hook).
func ResetTraceCache() {
	tc := sharedTraces
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.entries = map[traceKey]*traceEntry{}
	tc.used = 0
	tc.ticks = 0
	tc.c = TraceCacheCounters{}
}

// TraceCacheStats returns a snapshot of the shared cache counters.
func TraceCacheStats() TraceCacheCounters {
	tc := sharedTraces
	tc.mu.Lock()
	defer tc.mu.Unlock()
	c := tc.c
	c.Bytes = tc.used
	return c
}

// sizeBytes estimates the heap footprint of the trace's two streams.
func (at *accessTrace) sizeBytes() int64 {
	const memAccBytes = 16 // addr.Addr + bool, padded
	return int64(len(at.data))*memAccBytes + int64(len(at.fetch))*8
}

// checksum folds the trace's full content through FNV-1a. accessTrace is
// immutable after build, so any later mismatch means memory corruption
// (or a bug that mutated a shared trace) — either way the entry must not
// be replayed.
func (at *accessTrace) checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	word := func(v uint64) {
		for i := 0; i < 64; i += 8 {
			h = (h ^ (v >> i & 0xFF)) * prime
		}
	}
	word(uint64(len(at.data)))
	for _, m := range at.data {
		v := uint64(m.a) << 1
		if m.write {
			v |= 1
		}
		word(v)
	}
	word(uint64(len(at.fetch)))
	for _, pc := range at.fetch {
		word(uint64(pc))
	}
	return h
}

// get returns the materialized stream for (p, n, lineBytes), building it
// at most once per key and verifying its checksum on every hit. A
// corrupted entry is dropped, counted under Rebuilds, and rebuilt.
// budget <= 0 bypasses the cache entirely.
func (tc *traceCache) get(p *workload.Profile, n uint64, lineBytes int, budget int64) (*accessTrace, error) {
	if budget <= 0 {
		return materialize(p, n, lineBytes)
	}
	key := traceKey{name: p.Name, seed: p.Seed, instructions: n, lineBytes: lineBytes}
	for {
		at, err, verified := tc.getOnce(key, p, n, lineBytes, budget)
		if err != nil || verified {
			return at, err
		}
		// Checksum mismatch: the entry was already discarded by getOnce;
		// loop to rebuild. A rebuilt entry is returned by its builder
		// without re-verification, so this cannot loop forever.
	}
}

// getOnce performs one lookup-or-build. verified is false only when a
// cached entry failed its checksum (the caller should retry); built
// entries are trusted by construction.
func (tc *traceCache) getOnce(key traceKey, p *workload.Profile, n uint64, lineBytes int, budget int64) (_ *accessTrace, _ error, verified bool) {
	tel := CurrentTelemetry()
	tc.mu.Lock()
	if e, ok := tc.entries[key]; ok {
		tc.ticks++
		e.lastUse = tc.ticks
		tc.c.Hits++
		used := tc.used
		tc.mu.Unlock()
		<-e.ready
		if e.err == nil && e.at.checksum() != e.sum {
			tc.mu.Lock()
			// Only discard if the slot still holds this corrupt entry
			// (another caller may have replaced it already).
			if cur, ok := tc.entries[key]; ok && cur == e {
				tc.used -= e.size
				delete(tc.entries, key)
				tc.c.Rebuilds++
			}
			used = tc.used
			tc.mu.Unlock()
			tel.traceCacheEvent(tracespan.KindTraceRebuild, p.Name, time.Time{}, 0, used)
			return nil, nil, false
		}
		tel.traceCacheEvent(tracespan.KindTraceHit, p.Name, time.Time{}, 0, used)
		return e.at, e.err, true
	}
	e := &traceEntry{ready: make(chan struct{})}
	tc.ticks++
	e.lastUse = tc.ticks
	tc.entries[key] = e
	tc.c.Misses++
	tc.mu.Unlock()

	var buildStart time.Time
	if tel != nil {
		buildStart = tel.now()
	}
	at, err := materialize(p, n, lineBytes)
	e.at, e.err = at, err
	if err == nil {
		e.sum = at.checksum()
	}
	close(e.ready)

	tc.mu.Lock()
	if err != nil {
		// Failures are not cached; a later call may retry.
		delete(tc.entries, key)
	} else {
		e.size = at.sizeBytes()
		tc.used += e.size
		tc.evictLocked(key, budget)
	}
	used := tc.used
	tc.mu.Unlock()
	if tel != nil && err == nil {
		tel.traceCacheEvent(tracespan.KindTraceBuild, p.Name, buildStart, tel.now().Sub(buildStart), used)
	}
	return at, err, true
}

// evictLocked drops least-recently-used completed entries (never keep,
// never ones still building) until used fits budget. The entry count is
// small — one per (benchmark, seed) — so a linear minimum scan is fine.
func (tc *traceCache) evictLocked(keep traceKey, budget int64) {
	for tc.used > budget {
		var victim traceKey
		var oldest uint64
		found := false
		for k, e := range tc.entries {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // still building; owner will account for it
			}
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		tc.used -= tc.entries[victim].size
		delete(tc.entries, victim)
		tc.c.Evictions++
	}
}

// traceBudget resolves the Opts knob: 0 means the default budget,
// negative disables memoization.
func (o Opts) traceBudget() int64 {
	if o.TraceBytes == 0 {
		return defaultTraceBytes
	}
	if o.TraceBytes < 0 {
		return 0
	}
	return o.TraceBytes
}

// cachedTrace is the call-site helper: every miss-rate experiment obtains
// its streams here instead of calling materialize directly.
func cachedTrace(opts Opts, p *workload.Profile) (*accessTrace, error) {
	return sharedTraces.get(p, opts.Instructions, opts.LineBytes, opts.traceBudget())
}
