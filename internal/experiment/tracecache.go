package experiment

import (
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/obs/tracespan"
	"bcache/internal/trace"
	"bcache/internal/workload"
)

// The experiments replay the same few instruction streams against many
// cache configurations, and several experiments share benchmarks, so
// regenerating a stream per call site wastes most of the suite's time.
// traceCache memoizes three payload kinds, content-addressed by
// everything the payload depends on:
//
//   - record traces: the raw generator output for (profile name, seed,
//     instructions) — fed to the timed CPU model and extracted into
//     address streams, so the workload generator runs once per stream;
//   - data traces: the D-cache byte-address stream for (profile name,
//     seed, instructions), packed 8 bytes per access. Set and tag
//     derivation happen inside the caches, so the stream does not
//     depend on the line size: every line-size variant of an experiment
//     shares one entry;
//   - fetch traces: the I-cache stream for (profile name, seed,
//     instructions, line bytes) — consecutive same-line PCs collapse,
//     so this is the one stream a line-size sweep re-derives.
//
// A stream build extracts BOTH sides from the record trace while it is
// resident and publishes the sibling as a byproduct (putIfAbsent), so
// the record trace — 48 MB at DefaultOpts, and nearly as expensive to
// decode from a spill file as to regenerate — never has to come back
// just to derive the second stream.
//
// Entries are built once under a singleflight channel — duplicate
// requesters block on the first builder — and when the byte budget is
// exceeded, entries are spilled to checksummed on-disk V2 trace files
// instead of being discarded: a later request decodes the spill file
// (verifying the build-time FNV checksum; a corrupt file is deleted and
// the entry rebuilt) rather than re-running the generator. Record
// traces are evicted before stream payloads regardless of recency —
// they are the cheapest tier to lose (see evictLocked). Spilled-but-
// reloaded entries keep their file, so re-evicting them costs nothing.
// Evicted traces stay usable by anyone already holding the pointer;
// payloads are immutable after build.
//
// The budget bounds cache-RESIDENT bytes, and eviction makes room
// BEFORE a new entry is accounted, so the resident high-water mark
// (PeakBytes) stays at or below the budget whenever enough completed
// entries exist to evict. Units currently replaying a stream pin their
// own pointer for the duration, so transient process RSS can still
// exceed the budget by the working set of in-flight units.

// defaultTraceBytes bounds the shared cache when Opts does not say
// otherwise. At DefaultOpts the full suite's steady working set is
// every profile's data stream (~4.4 MB each) plus its 32-byte-line
// fetch stream (~2.5 MB each) plus one resident record trace (~48 MB);
// 232 MiB holds all of that with a little headroom, so the suite spills
// only record traces as it cycles between benchmarks.
const defaultTraceBytes = 232 << 20

// payloadKind discriminates the three cached stream representations.
type payloadKind uint8

const (
	kindData    payloadKind = iota // packed D-cache address streams
	kindFetch                      // I-cache fetch streams, per line size
	kindRecords                    // raw generator records
)

// traceKey identifies one cached payload.
type traceKey struct {
	kind         payloadKind
	name         string
	seed         uint64
	instructions uint64
	// lineBytes is 0 for record and data traces: neither the generator
	// nor the D-side byte-address stream depends on the cache line size.
	lineBytes int
}

// String is the stable form used for spill file naming and the sorted
// SpilledTraces listing.
func (k traceKey) String() string {
	return fmt.Sprintf("kind=%d|%s|seed=%d|n=%d|line=%d",
		k.kind, k.name, k.seed, k.instructions, k.lineBytes)
}

// payload is one cached value: a dataTrace, fetchTrace, or recordTrace.
// Implementations are immutable after build.
type payload interface {
	sizeBytes() int64
	checksum() uint64
	// spillRecords writes the payload as a V2 record stream; the
	// matching loader reverses it exactly (verified by checksum).
	spillRecords(w *trace.CompressedWriter) error
}

// traceEntry is one in-memory slot. ready is closed when val/err are
// set. The content checksum is not taken here: most entries live and
// die resident, so the spill writer computes it only when an eviction
// actually persists the payload.
type traceEntry struct {
	ready   chan struct{}
	val     payload
	err     error
	size    int64
	lastUse uint64
}

// spillSlot is one on-disk entry of the spill index. verified is set
// after the first reload proves the file reproduces the build-time
// checksum; later reloads of the same slot skip the verify pass — the
// file is process-private and immutable once written, so one successful
// round-trip establishes it for the slot's lifetime.
type spillSlot struct {
	path     string
	sum      uint64
	size     int64 // file bytes, compressed
	verified bool
}

// TraceCacheCounters reports shared trace-cache effectiveness.
type TraceCacheCounters struct {
	// Hits are in-memory lookups; Reloads are lookups served by
	// decoding a spill file; Misses are entries built from scratch
	// (byproduct publications — the sibling stream extracted during a
	// build — are not counted under any of these).
	Hits    uint64
	Misses  uint64
	Reloads uint64
	// Generations counts workload-generator runs — the expensive part a
	// miss may or may not imply (a stream miss extracts from a cached
	// record trace without regenerating).
	Generations uint64
	// Evictions counts entries dropped from memory under budget
	// pressure; Spills counts the subset persisted to disk (an entry
	// whose spill file already exists is not rewritten).
	Evictions uint64
	Spills    uint64
	// Rebuilds counts spill files discarded because their content no
	// longer matched the build-time checksum.
	Rebuilds uint64
	// Bytes is resident; SpillBytes is on disk; PeakBytes is the
	// resident high-water mark.
	Bytes      int64
	SpillBytes int64
	PeakBytes  int64
}

type traceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry // guarded by mu
	spilled map[traceKey]*spillSlot  // guarded by mu
	dir     string
	dirErr  error
	used    int64  // guarded by mu
	ticks   uint64 // guarded by mu
	c       TraceCacheCounters
}

// sharedTraces is the process-wide cache; all experiments go through it.
var sharedTraces = newTraceCache()

func newTraceCache() *traceCache {
	return &traceCache{
		entries: map[traceKey]*traceEntry{},
		spilled: map[traceKey]*spillSlot{},
	}
}

// ResetTraceCache drops all memoized traces, counters, and spill files
// (test hook; also the CLI exit cleanup via CleanupTraceSpill).
func ResetTraceCache() {
	tc := sharedTraces
	tc.mu.Lock()
	tc.entries = map[traceKey]*traceEntry{}
	tc.used = 0
	tc.ticks = 0
	tc.c = TraceCacheCounters{}
	tc.mu.Unlock()
	CleanupTraceSpill()
}

// CleanupTraceSpill removes the spill directory and forgets every
// spilled entry. CLIs defer this so temp files never outlive the
// process; the in-memory cache keeps working (evictions simply start a
// fresh spill directory).
func CleanupTraceSpill() {
	tc := sharedTraces
	tc.mu.Lock()
	dir := tc.dir
	tc.dir, tc.dirErr = "", nil
	tc.spilled = map[traceKey]*spillSlot{}
	tc.c.SpillBytes = 0
	tc.mu.Unlock()
	if dir != "" {
		os.RemoveAll(dir)
	}
}

// TraceCacheStats returns a snapshot of the shared cache counters.
func TraceCacheStats() TraceCacheCounters {
	tc := sharedTraces
	tc.mu.Lock()
	defer tc.mu.Unlock()
	c := tc.c
	c.Bytes = tc.used
	return c
}

// SpilledTraces lists the keys currently held on disk, sorted so the
// emission order is deterministic regardless of map iteration.
func SpilledTraces() []string {
	tc := sharedTraces
	tc.mu.Lock()
	defer tc.mu.Unlock()
	keys := make([]string, 0, len(tc.spilled))
	for k := range tc.spilled {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	return keys
}

// fnvWord folds one 64-bit word into the checksum state: xor, rotate,
// multiply by the FNV prime. A word-at-a-time variant of FNV-1a — the
// canonical byte fold costs 8 multiplies per word, which dominated
// spill verification at suite scale. The rotation carries high-byte
// bit flips into the low bytes that the upward-only multiply would
// otherwise never touch. The sums are process-private (computed when a
// payload spills, checked on its first reload), so the exact mixing
// function is free to change between versions.
func fnvWord(h, v uint64) uint64 {
	const prime = 1099511628211
	return bits.RotateLeft64(h^v, 27) * prime
}

const fnvOffset = 14695981039346656037

// ---- data traces ----

// dataTrace is the packed D-cache access stream for one (profile, seed,
// n). Immutable after build.
type dataTrace struct {
	name string
	accs []memAcc
}

func (dt *dataTrace) sizeBytes() int64 { return int64(len(dt.accs)) * 8 }

// checksum folds the stream through FNV-1a. memAcc already packs
// addr<<1|write into one word, so the fold consumes it directly.
func (dt *dataTrace) checksum() uint64 {
	h := uint64(fnvOffset)
	h = fnvWord(h, uint64(len(dt.accs)))
	for _, m := range dt.accs {
		h = fnvWord(h, uint64(m))
	}
	return h
}

func (dt *dataTrace) spillRecords(w *trace.CompressedWriter) error {
	for _, m := range dt.accs {
		k := trace.Load
		if m.Write() {
			k = trace.Store
		}
		if err := w.Write(trace.Record{Mem: m.Addr(), Kind: k, Lat: 1}); err != nil {
			return err
		}
	}
	return nil
}

func loadDataTrace(r *trace.CompressedReader, name string) (*dataTrace, error) {
	dt := &dataTrace{name: name, accs: make([]memAcc, 0, r.Remaining())}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		dt.accs = append(dt.accs, cache.NewMemAccess(rec.Mem, rec.Kind == trace.Store))
	}
	return dt, r.Err()
}

// ---- fetch traces ----

// fetchTrace is the I-cache access stream for one (profile, seed, n,
// line size): one PC per executed basic-block line. Immutable after
// build.
type fetchTrace struct {
	name string
	pcs  []addr.Addr
}

func (ft *fetchTrace) sizeBytes() int64 { return int64(len(ft.pcs)) * 8 }

func (ft *fetchTrace) checksum() uint64 {
	h := uint64(fnvOffset)
	h = fnvWord(h, uint64(len(ft.pcs)))
	for _, pc := range ft.pcs {
		h = fnvWord(h, uint64(pc))
	}
	return h
}

func (ft *fetchTrace) spillRecords(w *trace.CompressedWriter) error {
	for _, pc := range ft.pcs {
		if err := w.Write(trace.Record{PC: pc, Kind: trace.Int, Lat: 1}); err != nil {
			return err
		}
	}
	return nil
}

func loadFetchTrace(r *trace.CompressedReader, name string) (*fetchTrace, error) {
	ft := &fetchTrace{name: name, pcs: make([]addr.Addr, 0, r.Remaining())}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		ft.pcs = append(ft.pcs, rec.PC)
	}
	return ft, r.Err()
}

// ---- record traces ----

// recordTrace is the raw generator output for one (profile, seed, n):
// the stream the timed CPU model consumes and address streams are
// extracted from. Immutable after build.
type recordTrace struct {
	name string
	recs []trace.Record
}

// recordBytes is the in-memory stride of one trace.Record (two 8-byte
// addresses plus five bytes, padded).
const recordBytes = 24

func (rt *recordTrace) sizeBytes() int64 { return int64(len(rt.recs)) * recordBytes }

func (rt *recordTrace) checksum() uint64 {
	h := uint64(fnvOffset)
	h = fnvWord(h, uint64(len(rt.recs)))
	for _, r := range rt.recs {
		h = fnvWord(h, uint64(r.PC))
		h = fnvWord(h, uint64(r.Mem))
		h = fnvWord(h, uint64(r.Kind)|uint64(r.Src1)<<8|uint64(r.Src2)<<16|
			uint64(r.Dst)<<24|uint64(r.Lat)<<32)
	}
	return h
}

func (rt *recordTrace) spillRecords(w *trace.CompressedWriter) error {
	for _, r := range rt.recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return nil
}

func loadRecordTrace(r *trace.CompressedReader, name string) (*recordTrace, error) {
	rt := &recordTrace{name: name, recs: make([]trace.Record, 0, r.Remaining())}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		rt.recs = append(rt.recs, rec)
	}
	return rt, r.Err()
}

// generateRecords runs the workload generator for exactly n records —
// the same count materialize and the timed CPU model consume, so a
// cached record trace is bit-identical input for both.
func generateRecords(p *workload.Profile, n uint64) (*recordTrace, error) {
	g, err := workload.New(p)
	if err != nil {
		return nil, err
	}
	rt := &recordTrace{name: p.Name, recs: make([]trace.Record, n)}
	for i := range rt.recs {
		rt.recs[i], _ = g.Next()
	}
	return rt, nil
}

// extractData derives the D-cache stream from a record trace. This is
// materialize's data loop verbatim — materialize stays as the
// generator-driven oracle the differential tests compare against.
func extractData(rt *recordTrace) *dataTrace {
	dt := &dataTrace{name: rt.name}
	dt.accs = make([]memAcc, 0, len(rt.recs)/3)
	for _, rec := range rt.recs {
		if rec.Kind.IsMem() {
			dt.accs = append(dt.accs, cache.NewMemAccess(rec.Mem, rec.Kind == trace.Store))
		}
	}
	return dt
}

// extractFetch derives the I-cache stream from a record trace at one
// line size — materialize's fetch-collapse loop verbatim.
func extractFetch(rt *recordTrace, lineBytes int) *fetchTrace {
	ft := &fetchTrace{name: rt.name}
	ft.pcs = make([]addr.Addr, 0, len(rt.recs)/4)
	lineMask := ^addr.Addr(uint64(lineBytes) - 1)
	curLine := ^addr.Addr(0)
	for _, rec := range rt.recs {
		if line := rec.PC & lineMask; line != curLine {
			curLine = line
			ft.pcs = append(ft.pcs, rec.PC)
		}
	}
	return ft
}

// ---- the cache ----

// get returns the payload for key, building it at most once per key.
// Lookup order: memory (free), spill file (decode, plus a checksum
// verify on the slot's first reload), build. A corrupt spill file is
// deleted, counted under Rebuilds, and the entry rebuilt from scratch.
func (tc *traceCache) get(key traceKey, budget int64,
	build func() (payload, error),
	load func(*trace.CompressedReader) (payload, error)) (payload, error) {
	tel := CurrentTelemetry()
	tc.mu.Lock()
	if e, ok := tc.entries[key]; ok {
		tc.ticks++
		e.lastUse = tc.ticks
		tc.c.Hits++
		used := tc.used
		tc.mu.Unlock()
		<-e.ready
		tel.traceCacheEvent(tracespan.KindTraceHit, key.name, time.Time{}, 0, used)
		return e.val, e.err
	}
	e := &traceEntry{ready: make(chan struct{})}
	tc.ticks++
	e.lastUse = tc.ticks
	tc.entries[key] = e
	slot := tc.spilled[key]
	verify := slot != nil && !slot.verified
	tc.mu.Unlock()

	var buildStart time.Time
	if tel != nil {
		buildStart = tel.now()
	}
	var val payload
	var err error
	kind := tracespan.KindTraceReload
	if slot != nil {
		val, err = reloadSpill(slot, load, verify)
		if err != nil {
			// Corrupt or unreadable: delete the file so the next
			// eviction rewrites it, and fall through to a rebuild.
			os.Remove(slot.path)
			tc.mu.Lock()
			if tc.spilled[key] == slot {
				delete(tc.spilled, key)
				tc.c.SpillBytes -= slot.size
			}
			tc.c.Rebuilds++
			used := tc.used
			tc.mu.Unlock()
			tel.traceCacheEvent(tracespan.KindTraceRebuild, key.name, time.Time{}, 0, used)
			slot = nil
		}
	}
	if slot == nil {
		val, err = build()
		kind = tracespan.KindTraceBuild
	}
	e.val, e.err = val, err
	if err == nil {
		e.size = val.sizeBytes()
	}
	close(e.ready)

	tc.mu.Lock()
	var victims []spillJob
	if err != nil {
		// Failures are not cached; a later call may retry.
		delete(tc.entries, key)
	} else {
		if slot == nil {
			tc.c.Misses++
		} else {
			tc.c.Reloads++
			if verify {
				slot.verified = true
			}
		}
		// Make room BEFORE accounting the new entry, so the resident
		// high-water mark stays within budget whenever eviction can
		// keep up.
		victims = tc.evictLocked(key, budget-e.size)
		tc.used += e.size
		if tc.used > tc.c.PeakBytes {
			tc.c.PeakBytes = tc.used
		}
	}
	used := tc.used
	tc.mu.Unlock()
	tc.spill(victims, tel)
	if tel != nil && err == nil {
		tel.traceCacheEvent(kind, key.name, buildStart, tel.now().Sub(buildStart), used)
	}
	return val, err
}

// putIfAbsent publishes a byproduct payload — the sibling stream
// extracted while another entry was being built from the same resident
// record trace. No singleflight: if the key is already present in
// memory, in flight, or on disk, the byproduct is simply dropped. No
// counter moves; the publication is an accident of build order, not a
// lookup.
func (tc *traceCache) putIfAbsent(key traceKey, val payload, budget int64) {
	e := &traceEntry{
		ready: make(chan struct{}),
		val:   val,
		size:  val.sizeBytes(),
	}
	close(e.ready)
	tc.mu.Lock()
	if tc.entries[key] != nil || tc.spilled[key] != nil {
		tc.mu.Unlock()
		return
	}
	tc.ticks++
	e.lastUse = tc.ticks
	tc.entries[key] = e
	victims := tc.evictLocked(key, budget-e.size)
	tc.used += e.size
	if tc.used > tc.c.PeakBytes {
		tc.c.PeakBytes = tc.used
	}
	tc.mu.Unlock()
	tc.spill(victims, CurrentTelemetry())
}

// spillJob carries one evicted entry out of the lock for writing.
type spillJob struct {
	key traceKey
	val payload
}

// evictLocked drops completed entries (never keep, never ones still
// building) until used fits budget, returning the ones that need a
// spill file written. Record traces are chosen before stream payloads
// regardless of recency: decoding a spilled record trace costs about as
// much as regenerating it, so it is the cheapest tier to lose, and the
// much smaller extracted streams — the entries the replay loops
// actually reuse — stay resident. Within a tier the choice is LRU. The
// entry count is small — a few per (benchmark, seed) — so a linear
// minimum scan is fine.
func (tc *traceCache) evictLocked(keep traceKey, budget int64) []spillJob {
	var jobs []spillJob
	for tc.used > budget {
		var victim traceKey
		var oldest uint64
		found, foundRecords := false, false
		for k, e := range tc.entries {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // still building; owner will account for it
			}
			isRecords := k.kind == kindRecords
			switch {
			case !found, isRecords && !foundRecords:
				// First candidate, or first record trace seen.
			case isRecords == foundRecords && e.lastUse < oldest:
				// Same tier, older.
			default:
				continue
			}
			victim, oldest, found, foundRecords = k, e.lastUse, true, isRecords
		}
		if !found {
			return jobs
		}
		e := tc.entries[victim]
		tc.used -= e.size
		delete(tc.entries, victim)
		tc.c.Evictions++
		if tc.spilled[victim] == nil {
			jobs = append(jobs, spillJob{key: victim, val: e.val})
		}
	}
	return jobs
}

// spillDir lazily creates the process's spill directory.
func (tc *traceCache) spillDir() (string, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.dir == "" && tc.dirErr == nil {
		tc.dir, tc.dirErr = os.MkdirTemp("", "bcache-tracespill-")
	}
	return tc.dir, tc.dirErr
}

// spillName derives a stable file name from the key's string form.
func spillName(k traceKey) string {
	return fmt.Sprintf("t%016x.bct", stringFNV(k.String()))
}

func stringFNV(s string) uint64 {
	const prime = 1099511628211
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// spill writes evicted entries to disk, outside the cache lock — the
// write races only against a concurrent rebuild of the same key, which
// is benign (both produce content with the same checksum). A failed
// write degrades to a plain eviction.
func (tc *traceCache) spill(jobs []spillJob, tel *Telemetry) {
	if len(jobs) == 0 {
		return
	}
	dir, err := tc.spillDir()
	if err != nil {
		return
	}
	for _, j := range jobs {
		path := filepath.Join(dir, spillName(j.key))
		// The checksum is computed here, not at build time: the payload
		// is immutable, and only the minority of entries that reach a
		// spill file ever need one.
		sum := j.val.checksum()
		n, err := writeSpill(path, j.val)
		if err != nil {
			os.Remove(path)
			continue
		}
		tc.mu.Lock()
		if tc.spilled[j.key] == nil {
			tc.spilled[j.key] = &spillSlot{path: path, sum: sum, size: n}
			tc.c.Spills++
			tc.c.SpillBytes += n
		}
		used := tc.used
		tc.mu.Unlock()
		tel.traceCacheEvent(tracespan.KindTraceSpill, j.key.name, time.Time{}, 0, used)
	}
}

// writeSpill encodes val into a V2 trace file and reports its size.
func writeSpill(path string, val payload) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w, err := trace.NewCompressedWriter(f)
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := val.spillRecords(w); err != nil {
		f.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	return st.Size(), f.Close()
}

// reloadSpill decodes one spill file; when verify is set it also checks
// the content against the build-time checksum (the slot's first reload
// — see spillSlot.verified).
func reloadSpill(slot *spillSlot, load func(*trace.CompressedReader) (payload, error), verify bool) (payload, error) {
	f, err := os.Open(slot.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewCompressedReader(f)
	if err != nil {
		return nil, err
	}
	val, err := load(r)
	if err != nil {
		return nil, err
	}
	if verify {
		if got := val.checksum(); got != slot.sum {
			return nil, fmt.Errorf("spill %s: checksum %x, want %x", slot.path, got, slot.sum)
		}
	}
	return val, nil
}

// traceBudget resolves the Opts knob: 0 means the default budget,
// negative disables memoization.
func (o Opts) traceBudget() int64 {
	if o.TraceBytes == 0 {
		return defaultTraceBytes
	}
	if o.TraceBytes < 0 {
		return 0
	}
	return o.TraceBytes
}

// cachedRecords returns the generator output for (p, seed, n), running
// the generator at most once per key across the whole process.
func cachedRecords(opts Opts, p *workload.Profile) (*recordTrace, error) {
	budget := opts.traceBudget()
	if budget <= 0 {
		return generateRecords(p, opts.Instructions)
	}
	key := traceKey{kind: kindRecords, name: p.Name, seed: p.Seed, instructions: opts.Instructions}
	val, err := sharedTraces.get(key, budget,
		func() (payload, error) {
			sharedTraces.mu.Lock()
			sharedTraces.c.Generations++
			sharedTraces.mu.Unlock()
			return generateRecords(p, opts.Instructions)
		},
		func(r *trace.CompressedReader) (payload, error) {
			return loadRecordTrace(r, p.Name)
		})
	if err != nil {
		return nil, err
	}
	return val.(*recordTrace), nil
}

// dataTraceKey/fetchTraceKey name the two stream payloads of one
// (profile, seed, n) — the data key deliberately omits the line size.
func dataTraceKey(opts Opts, p *workload.Profile) traceKey {
	return traceKey{kind: kindData, name: p.Name, seed: p.Seed, instructions: opts.Instructions}
}

func fetchTraceKey(opts Opts, p *workload.Profile) traceKey {
	return traceKey{kind: kindFetch, name: p.Name, seed: p.Seed,
		instructions: opts.Instructions, lineBytes: opts.LineBytes}
}

// cachedData is the D-side call-site helper: every data-cache
// experiment obtains its stream here instead of calling materialize
// directly. A miss extracts from the cached record trace — and, while
// that trace is resident, also extracts the opts.LineBytes fetch stream
// and publishes it as a byproduct, so a later I-side experiment at the
// same line size hits without reloading the record trace.
func cachedData(opts Opts, p *workload.Profile) (*dataTrace, error) {
	budget := opts.traceBudget()
	if budget <= 0 {
		at, err := materialize(p, opts.Instructions, opts.LineBytes)
		if err != nil {
			return nil, err
		}
		return &dataTrace{name: at.name, accs: at.data}, nil
	}
	val, err := sharedTraces.get(dataTraceKey(opts, p), budget,
		func() (payload, error) {
			rt, err := cachedRecords(opts, p)
			if err != nil {
				return nil, err
			}
			sharedTraces.putIfAbsent(fetchTraceKey(opts, p), extractFetch(rt, opts.LineBytes), budget)
			return extractData(rt), nil
		},
		func(r *trace.CompressedReader) (payload, error) {
			return loadDataTrace(r, p.Name)
		})
	if err != nil {
		return nil, err
	}
	return val.(*dataTrace), nil
}

// cachedFetch is cachedData's I-side twin; a miss publishes the data
// stream as the byproduct.
func cachedFetch(opts Opts, p *workload.Profile) (*fetchTrace, error) {
	budget := opts.traceBudget()
	if budget <= 0 {
		at, err := materialize(p, opts.Instructions, opts.LineBytes)
		if err != nil {
			return nil, err
		}
		return &fetchTrace{name: at.name, pcs: at.fetch}, nil
	}
	val, err := sharedTraces.get(fetchTraceKey(opts, p), budget,
		func() (payload, error) {
			rt, err := cachedRecords(opts, p)
			if err != nil {
				return nil, err
			}
			sharedTraces.putIfAbsent(dataTraceKey(opts, p), extractData(rt), budget)
			return extractFetch(rt, opts.LineBytes), nil
		},
		func(r *trace.CompressedReader) (payload, error) {
			return loadFetchTrace(r, p.Name)
		})
	if err != nil {
		return nil, err
	}
	return val.(*fetchTrace), nil
}
