package experiment

import (
	"fmt"
	"io"
	"strings"

	"bcache/internal/area"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/energy"
	"bcache/internal/threec"
	"bcache/internal/timing"
	"bcache/internal/workload"
)

// A Check is one machine-verifiable claim from the paper. Running all of
// them (cmd/experiments -verify) produces the reproduction certificate:
// every headline comparative statement of the evaluation, checked against
// freshly simulated results.
type Check struct {
	// ID names the check, grouped by the artifact it belongs to.
	ID string
	// Claim quotes or paraphrases the paper's statement.
	Claim string
	// Eval measures the claim; measured is a short human-readable
	// summary of what was found.
	Eval func(Opts) (measured string, pass bool, err error)
}

// VerifyResult is the outcome of one check.
type VerifyResult struct {
	Check    Check
	Measured string
	Pass     bool
	Err      error
}

// Checks returns the reproduction checklist.
func Checks() []Check {
	return []Check{
		{
			ID:    "fig3-cliff",
			Claim: "wupwise's PD hit rate during misses stays high through MF=32 and collapses by MF=64, with the miss rate tracking it (Fig. 3)",
			Eval:  checkFig3Cliff,
		},
		{
			ID:    "fig4-ordering",
			Claim: "the B-Cache's average D$ miss reduction is at least 4-way-like and below the 8-way bound (§4.3.3)",
			Eval:  checkFig4Ordering,
		},
		{
			ID:    "fig4-saturation",
			Claim: "raising MF from 8 to 16 gains much less than from 4 to 8 (§4.3.2)",
			Eval:  checkFig4Saturation,
		},
		{
			ID:    "fig4-victim",
			Claim: "the B-Cache beats a 16-entry victim buffer on average (§6.6)",
			Eval:  checkFig4Victim,
		},
		{
			ID:    "fig4-streamers",
			Claim: "art, lucas, swim and mcf barely respond to associativity (§6.4: no frequent miss sets)",
			Eval:  checkStreamers,
		},
		{
			ID:    "fig4-wupwise",
			Claim: "wupwise is the benchmark where the victim buffer beats the B-Cache (§6.6)",
			Eval:  checkWupwise,
		},
		{
			ID:    "fig5-icache",
			Claim: "on the instruction side the B-Cache approaches 8-way and leads the victim buffer by a wide margin (§6.6: 37.9% higher)",
			Eval:  checkFig5,
		},
		{
			ID:    "table1-slack",
			Claim: "every B-Cache decoder fits the original decoder's time slack (§5.1)",
			Eval:  checkTable1,
		},
		{
			ID:    "table2-area",
			Claim: "the B-Cache adds 4.3% area, less than a 4-way cache's 7.98% (§5.3)",
			Eval:  checkTable2,
		},
		{
			ID:    "table3-energy",
			Claim: "the B-Cache consumes 10.5% more per access but far less than set-associative caches (§5.4)",
			Eval:  checkTable3,
		},
		{
			ID:    "table5-crossover",
			Claim: "at equal PD length design B (BAS=4) wins below 6 bits and design A (BAS=8) wins at 6 (§6.3)",
			Eval:  checkTable5,
		},
		{
			ID:    "table7-balance",
			Claim: "the B-Cache spreads hits over more sets and shrinks the less-accessed population (§6.4)",
			Eval:  checkTable7,
		},
		{
			ID:    "x3c-conflict-only",
			Claim: "the B-Cache removes conflict misses while compulsory misses are untouched (the mechanism's definition)",
			Eval:  check3C,
		},
	}
}

// Verify runs every check at the given scale, writing a line per check to
// w, and returns the pass/fail totals.
func Verify(opts Opts, w io.Writer) (passed, failed int, err error) {
	for _, c := range Checks() {
		measured, ok, cerr := c.Eval(opts)
		switch {
		case cerr != nil:
			failed++
			fmt.Fprintf(w, "ERROR %-18s %v\n", c.ID, cerr)
		case ok:
			passed++
			fmt.Fprintf(w, "PASS  %-18s %s\n", c.ID, measured)
		default:
			failed++
			fmt.Fprintf(w, "FAIL  %-18s %s\n", c.ID, measured)
			fmt.Fprintf(w, "      claim: %s\n", c.Claim)
		}
	}
	fmt.Fprintf(w, "\n%d passed, %d failed of %d checks\n", passed, failed, passed+failed)
	return passed, failed, nil
}

// ---- individual checks ----

func checkFig3Cliff(opts Opts) (string, bool, error) {
	p, err := workload.ByName("wupwise")
	if err != nil {
		return "", false, err
	}
	at, err := cachedData(opts, p)
	if err != nil {
		return "", false, err
	}
	rate := func(mf int) (float64, float64, error) {
		bc, err := core.New(core.Config{SizeBytes: opts.L1Size, LineBytes: opts.LineBytes, MF: mf, BAS: 8, Policy: cache.LRU})
		if err != nil {
			return 0, 0, err
		}
		replayData(at.accs, bc)
		return bc.Stats().MissRate(), bc.PDStats().HitRateDuringMiss(), nil
	}
	m32, pd32, err := rate(32)
	if err != nil {
		return "", false, err
	}
	m64, pd64, err := rate(64)
	if err != nil {
		return "", false, err
	}
	msg := fmt.Sprintf("PD hit on miss %.0f%%→%.0f%%, miss %.1f%%→%.1f%% across MF 32→64",
		100*pd32, 100*pd64, 100*m32, 100*m64)
	return msg, pd32 > 0.4 && pd64 < 0.2 && m64 < m32, nil
}

// fig4Averages runs the Figure 4 sweep once and returns suite-average
// reductions per spec name.
func fig4Averages(opts Opts) (map[string]float64, map[string]map[string]missRun, error) {
	specs := figureSpecs()
	res, err := missRates(opts, workload.All(), specs, dSide)
	if err != nil {
		return nil, nil, err
	}
	avg := map[string]float64{}
	for _, s := range specs {
		var sum float64
		for _, p := range workload.All() {
			sum += reduction(res[p.Name]["baseline"], res[p.Name][s.Name])
		}
		avg[s.Name] = sum / float64(len(workload.All()))
	}
	return avg, res, nil
}

func checkFig4Ordering(opts Opts) (string, bool, error) {
	avg, _, err := fig4Averages(opts)
	if err != nil {
		return "", false, err
	}
	msg := fmt.Sprintf("4way %.1f%% ≤ B-Cache %.1f%% ≤ 8way %.1f%%",
		100*avg["4way"], 100*avg["MF8"], 100*avg["8way"])
	pass := avg["MF8"] >= avg["4way"]*0.85 && avg["MF8"] <= avg["8way"]*1.02
	return msg, pass, nil
}

func checkFig4Saturation(opts Opts) (string, bool, error) {
	avg, _, err := fig4Averages(opts)
	if err != nil {
		return "", false, err
	}
	gain48 := avg["MF8"] - avg["MF4"]
	gain816 := avg["MF16"] - avg["MF8"]
	msg := fmt.Sprintf("MF4→8 gains %.1f points, MF8→16 gains %.1f", 100*gain48, 100*gain816)
	return msg, gain816 < gain48, nil
}

func checkFig4Victim(opts Opts) (string, bool, error) {
	avg, _, err := fig4Averages(opts)
	if err != nil {
		return "", false, err
	}
	msg := fmt.Sprintf("B-Cache %.1f%% vs victim16 %.1f%%", 100*avg["MF8"], 100*avg["victim16"])
	return msg, avg["MF8"] > avg["victim16"], nil
}

func checkStreamers(opts Opts) (string, bool, error) {
	_, res, err := fig4Averages(opts)
	if err != nil {
		return "", false, err
	}
	var parts []string
	pass := true
	for _, name := range []string{"art", "lucas", "swim", "mcf"} {
		r := reduction(res[name]["baseline"], res[name]["8way"])
		parts = append(parts, fmt.Sprintf("%s %.0f%%", name, 100*r))
		if r > 0.25 {
			pass = false
		}
	}
	return "8-way recovers only " + strings.Join(parts, ", "), pass, nil
}

func checkWupwise(opts Opts) (string, bool, error) {
	_, res, err := fig4Averages(opts)
	if err != nil {
		return "", false, err
	}
	row := res["wupwise"]
	rv := reduction(row["baseline"], row["victim16"])
	rb := reduction(row["baseline"], row["MF8"])
	msg := fmt.Sprintf("victim16 %.1f%% vs B-Cache %.1f%%", 100*rv, 100*rb)
	return msg, rv > rb, nil
}

func checkFig5(opts Opts) (string, bool, error) {
	var reported []*workload.Profile
	for _, p := range workload.All() {
		if workload.IsReportedICache(p.Name) {
			reported = append(reported, p)
		}
	}
	specs := figureSpecs()
	res, err := missRates(opts, reported, specs, iSide)
	if err != nil {
		return "", false, err
	}
	avg := func(name string) float64 {
		var sum float64
		for _, p := range reported {
			sum += reduction(res[p.Name]["baseline"], res[p.Name][name])
		}
		return sum / float64(len(reported))
	}
	bc, v, w8 := avg("MF8"), avg("victim16"), avg("8way")
	msg := fmt.Sprintf("B-Cache %.1f%%, 8way %.1f%%, victim16 %.1f%%", 100*bc, 100*w8, 100*v)
	return msg, bc >= w8*0.95 && bc-v > 0.20, nil
}

func checkTable1(Opts) (string, bool, error) {
	rows := timing.Table1(6)
	minSlack := rows[0].Slack
	for _, r := range rows {
		if r.Slack < minSlack {
			minSlack = r.Slack
		}
	}
	return fmt.Sprintf("min slack %.3f ns across %d decoder sizes", minSlack, len(rows)), minSlack >= 0, nil
}

func checkTable2(opts Opts) (string, bool, error) {
	base, err := area.Baseline(opts.L1Size, opts.LineBytes)
	if err != nil {
		return "", false, err
	}
	bc, err := area.BCache(paperBCacheConfig(opts))
	if err != nil {
		return "", false, err
	}
	w4, err := area.SetAssoc(opts.L1Size, opts.LineBytes, 4)
	if err != nil {
		return "", false, err
	}
	ob, o4 := bc.OverheadVs(base), w4.OverheadVs(base)
	msg := fmt.Sprintf("B-Cache +%.1f%%, 4-way +%.1f%%", 100*ob, 100*o4)
	return msg, ob > 0.035 && ob < 0.05 && ob < o4, nil
}

func checkTable3(Opts) (string, bool, error) {
	p := energy.Defaults()
	r := p.PerAccess(energy.BCache)/p.PerAccess(energy.DirectMapped) - 1
	below8 := 1 - p.PerAccess(energy.BCache)/p.PerAccess(energy.Way8)
	msg := fmt.Sprintf("B-Cache +%.1f%% vs baseline, −%.1f%% vs 8-way", 100*r, 100*below8)
	return msg, r > 0.10 && r < 0.11 && below8 > 0.6, nil
}

func checkTable5(opts Opts) (string, bool, error) {
	red, _, err := designSpace(opts)
	if err != nil {
		return "", false, err
	}
	msg := fmt.Sprintf("PD=5: B %.1f%% vs A %.1f%%; PD=6: A %.1f%% vs B %.1f%%",
		100*red[4][8], 100*red[8][4], 100*red[8][8], 100*red[4][16])
	return msg, red[4][8] > red[8][4] && red[8][8] > red[4][16], nil
}

func checkTable7(opts Opts) (string, bool, error) {
	tables, err := runTable7(opts)
	if err != nil {
		return "", false, err
	}
	rows := tables[0].Rows
	dm, bc := rows[len(rows)-2], rows[len(rows)-1]
	var dmCH, bcCH, dmLAS, bcLAS float64
	if _, err := fmt.Sscanf(strings.TrimSuffix(dm[3], "%"), "%g", &dmCH); err != nil {
		return "", false, err
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(bc[3], "%"), "%g", &bcCH); err != nil {
		return "", false, err
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(dm[6], "%"), "%g", &dmLAS); err != nil {
		return "", false, err
	}
	if _, err := fmt.Sscanf(strings.TrimSuffix(bc[6], "%"), "%g", &bcLAS); err != nil {
		return "", false, err
	}
	msg := fmt.Sprintf("hit concentration %.1f%%→%.1f%%, idle sets %.1f%%→%.1f%%", dmCH, bcCH, dmLAS, bcLAS)
	return msg, bcCH < dmCH && bcLAS < dmLAS, nil
}

func check3C(opts Opts) (string, bool, error) {
	p, err := workload.ByName("equake")
	if err != nil {
		return "", false, err
	}
	at, err := cachedData(opts, p)
	if err != nil {
		return "", false, err
	}
	run := func(c cache.Cache) (threec.Counts, error) {
		cl, err := threec.New(c)
		if err != nil {
			return threec.Counts{}, err
		}
		for _, m := range at.accs {
			cl.Access(m.Addr(), m.Write())
		}
		return cl.Counts(), nil
	}
	dm, _ := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
	bcU, _ := core.New(paperBCacheConfig(opts))
	cDM, err := run(dm)
	if err != nil {
		return "", false, err
	}
	cBC, err := run(bcU)
	if err != nil {
		return "", false, err
	}
	msg := fmt.Sprintf("equake conflicts %d→%d, compulsory %d→%d",
		cDM.Conflict, cBC.Conflict, cDM.Compulsory, cBC.Compulsory)
	return msg, cBC.Conflict*2 < cDM.Conflict && cBC.Compulsory == cDM.Compulsory, nil
}
