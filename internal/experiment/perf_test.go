package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bcache/internal/workload"
)

// TestTraceCacheSingleflight: concurrent requests for the same stream
// build it exactly once and all receive the same immutable trace.
func TestTraceCacheSingleflight(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	traces := make([]*dataTrace, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			at, err := cachedData(opts, p)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = at
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("caller %d got a distinct trace instance", i)
		}
	}
	c := TraceCacheStats()
	// One data-trace build plus the record trace it extracts from (the
	// fetch byproduct is published, not missed).
	if c.Misses != 2 || c.Hits != callers-1 || c.Generations != 1 {
		t.Fatalf("counters = %+v, want 2 misses, %d hits, 1 generation", c, callers-1)
	}
	if c.Bytes < traces[0].sizeBytes() {
		t.Fatalf("accounted %d bytes, access trace alone holds %d", c.Bytes, traces[0].sizeBytes())
	}
}

// TestTraceCacheKeying: a shifted seed or different instruction count is
// a different stream; a repeat request is not.
func TestTraceCacheKeying(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("equake")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if a2, _ := cachedData(opts, p); a2 != a1 {
		t.Fatal("identical request rebuilt the trace")
	}
	if as, _ := cachedData(opts, withSeed(p, 1)); as == a1 {
		t.Fatal("shifted seed shared the canonical trace")
	}
	shorter := opts
	shorter.Instructions /= 2
	if an, _ := cachedData(shorter, p); an == a1 {
		t.Fatal("different instruction count shared the trace")
	}
	c := TraceCacheStats()
	// Three distinct data keys, each over its own record trace.
	if c.Misses != 6 || c.Hits != 1 || c.Generations != 3 {
		t.Fatalf("counters = %+v, want 6 misses, 1 hit, 3 generations", c)
	}
}

// TestTraceCacheEviction: a budget below the working set evicts LRU
// entries to spill files, the accounting follows, and an evicted trace
// comes back from disk — bit-identical — without rerunning the
// generator.
func TestTraceCacheEviction(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	opts.TraceBytes = a1.sizeBytes() + a1.sizeBytes()/2 // below the record trace's size
	if _, err := cachedData(opts, withSeed(p, 1)); err != nil {
		t.Fatal(err)
	}
	c := TraceCacheStats()
	if c.Evictions == 0 || c.Spills == 0 {
		t.Fatalf("no spill under tight budget: %+v", c)
	}
	if c.Bytes > opts.TraceBytes {
		t.Fatalf("cache holds %d bytes over budget %d", c.Bytes, opts.TraceBytes)
	}
	if c.SpillBytes == 0 {
		t.Fatalf("spilled entries report no disk bytes: %+v", c)
	}
	// The canonical trace was evicted; re-requesting it reloads the
	// spill file instead of regenerating the stream.
	gens := c.Generations
	a2, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	c = TraceCacheStats()
	if c.Reloads == 0 {
		t.Fatalf("evicted trace was not reloaded from disk: %+v", c)
	}
	if c.Generations != gens {
		t.Fatalf("reload reran the generator (%d generations, want %d)", c.Generations, gens)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("reloaded trace differs from the original")
	}
}

// TestTraceCacheBypass: a negative budget disables memoization entirely.
func TestTraceCacheBypass(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	opts.TraceBytes = -1
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("bypass mode returned a shared instance")
	}
	if c := TraceCacheStats(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("bypass mode touched the shared cache: %+v", c)
	}
}

// TestSuiteZeroDuplicateGeneration: repeating the full miss-rate fan-out
// never regenerates a stream — misses equal the number of distinct
// (profile, seed) keys regardless of specs, sides, or repetition.
func TestSuiteZeroDuplicateGeneration(t *testing.T) {
	ResetTraceCache()
	ResetUnitMemo() // memoized units skip trace fetches entirely
	defer ResetTraceCache()
	opts := tinyOpts()
	opts.Seeds = 2
	profiles := workload.All()
	for round := 0; round < 2; round++ {
		for _, s := range []side{dSide, iSide} {
			if _, err := missRates(opts, profiles, figureSpecs(), s); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := TraceCacheStats()
	want := uint64(len(profiles) * opts.Seeds)
	if c.Generations != want {
		t.Fatalf("generated %d streams, want %d (duplicate generation)", c.Generations, want)
	}
	// One data build and one record build per distinct key, nothing
	// more: the iSide round's fetch streams were published as byproducts
	// of the dSide builds, so they hit instead of missing.
	if c.Misses != 2*want {
		t.Fatalf("built %d entries, want %d (duplicate builds)", c.Misses, 2*want)
	}
	if c.Hits == 0 {
		t.Fatal("cache recorded no hits across repeated suite runs")
	}
}

// TestTimedMemoShared: fig8 and fig9 request the identical timed sweep;
// the second request must reuse the first's simulations.
func TestTimedMemoShared(t *testing.T) {
	ResetTimedCache()
	defer ResetTimedCache()
	opts := tinyOpts()
	opts.Instructions = 40_000
	r1, err := timedResults(opts, timedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := timedResults(opts, timedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(r1).Pointer() != reflect.ValueOf(r2).Pointer() {
		t.Fatal("identical timed sweep was recomputed")
	}
	bigger := opts
	bigger.Instructions *= 2
	r3, err := timedResults(bigger, timedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(r3).Pointer() == reflect.ValueOf(r1).Pointer() {
		t.Fatal("different opts shared a memo entry")
	}
}

// TestRunUnitsCoversAll: every index is executed exactly once.
func TestRunUnitsCoversAll(t *testing.T) {
	const n = 1000
	var seen [n]atomic.Int32
	if err := runUnits(n, 8, func(i int) error {
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("unit %d ran %d times", i, got)
		}
	}
}

// TestRunUnitsSurvivesFailure: a failure costs that one unit, not the
// rest of the run — every sibling still executes, and the failure is
// reported.
func TestRunUnitsSurvivesFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := runUnits(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 1000 {
		t.Fatalf("ran %d units, want all 1000 despite unit 3 failing", got)
	}
}

// TestRunUnitsJoinsConcurrentErrors: two workers failing together are
// both reported instead of one being dropped.
func TestRunUnitsJoinsConcurrentErrors(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	err := runUnits(2, 2, func(i int) error {
		gate.Done()
		gate.Wait() // both workers fail simultaneously
		return fmt.Errorf("unit %d failed", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	for i := 0; i < 2; i++ {
		want := fmt.Sprintf("unit %d failed", i)
		found := false
		for _, e := range multiUnwrap(err) {
			if strings.Contains(e.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("joined error %q lost %q", err, want)
		}
	}
}

// multiUnwrap flattens an errors.Join result (or a single error).
func multiUnwrap(err error) []error {
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		return m.Unwrap()
	}
	return []error{err}
}

// TestForEachProfileWrapsName: errors carry the failing profile's name.
func TestForEachProfileWrapsName(t *testing.T) {
	profiles := workload.All()
	boom := errors.New("boom")
	err := forEachProfile(profiles, 2, func(p *workload.Profile) error {
		if p.Name == profiles[0].Name {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	want := profiles[0].Name + ": boom"
	found := false
	for _, e := range multiUnwrap(err) {
		if strings.Contains(e.Error(), want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("error %q does not name the failing profile (%q)", err, want)
	}
}
