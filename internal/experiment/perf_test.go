package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bcache/internal/workload"
)

// TestTraceCacheSingleflight: concurrent requests for the same stream
// build it exactly once and all receive the same immutable trace.
func TestTraceCacheSingleflight(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	traces := make([]*accessTrace, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			at, err := cachedTrace(opts, p)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = at
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("caller %d got a distinct trace instance", i)
		}
	}
	c := TraceCacheStats()
	if c.Misses != 1 || c.Hits != callers-1 {
		t.Fatalf("counters = %+v, want 1 miss and %d hits", c, callers-1)
	}
	if c.Bytes != traces[0].sizeBytes() {
		t.Fatalf("accounted %d bytes, trace holds %d", c.Bytes, traces[0].sizeBytes())
	}
}

// TestTraceCacheKeying: a shifted seed or different instruction count is
// a different stream; a repeat request is not.
func TestTraceCacheKeying(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("equake")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := cachedTrace(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if a2, _ := cachedTrace(opts, p); a2 != a1 {
		t.Fatal("identical request rebuilt the trace")
	}
	if as, _ := cachedTrace(opts, withSeed(p, 1)); as == a1 {
		t.Fatal("shifted seed shared the canonical trace")
	}
	shorter := opts
	shorter.Instructions /= 2
	if an, _ := cachedTrace(shorter, p); an == a1 {
		t.Fatal("different instruction count shared the trace")
	}
	c := TraceCacheStats()
	if c.Misses != 3 || c.Hits != 1 {
		t.Fatalf("counters = %+v, want 3 misses and 1 hit", c)
	}
}

// TestTraceCacheEviction: a budget below two traces keeps only the most
// recent stream and the accounting follows.
func TestTraceCacheEviction(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := cachedTrace(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	opts.TraceBytes = a1.sizeBytes() + a1.sizeBytes()/2 // room for ~1.5 traces
	if _, err := cachedTrace(opts, withSeed(p, 1)); err != nil {
		t.Fatal(err)
	}
	c := TraceCacheStats()
	if c.Evictions == 0 {
		t.Fatalf("no eviction under tight budget: %+v", c)
	}
	if c.Bytes > opts.TraceBytes {
		t.Fatalf("cache holds %d bytes over budget %d", c.Bytes, opts.TraceBytes)
	}
	// The canonical trace was the LRU victim; re-requesting it is a miss.
	before := c.Misses
	if _, err := cachedTrace(opts, p); err != nil {
		t.Fatal(err)
	}
	if got := TraceCacheStats().Misses; got != before+1 {
		t.Fatalf("evicted trace served from cache (misses %d, want %d)", got, before+1)
	}
}

// TestTraceCacheBypass: a negative budget disables memoization entirely.
func TestTraceCacheBypass(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	opts.TraceBytes = -1
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := cachedTrace(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cachedTrace(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("bypass mode returned a shared instance")
	}
	if c := TraceCacheStats(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("bypass mode touched the shared cache: %+v", c)
	}
}

// TestSuiteZeroDuplicateGeneration: repeating the full miss-rate fan-out
// never regenerates a stream — misses equal the number of distinct
// (profile, seed) keys regardless of specs, sides, or repetition.
func TestSuiteZeroDuplicateGeneration(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	opts.Seeds = 2
	profiles := workload.All()
	for round := 0; round < 2; round++ {
		for _, s := range []side{dSide, iSide} {
			if _, err := missRates(opts, profiles, figureSpecs(), s); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := TraceCacheStats()
	want := uint64(len(profiles) * opts.Seeds)
	if c.Misses != want {
		t.Fatalf("generated %d streams, want %d (duplicate generation)", c.Misses, want)
	}
	if c.Hits == 0 {
		t.Fatal("cache recorded no hits across repeated suite runs")
	}
}

// TestTimedMemoShared: fig8 and fig9 request the identical timed sweep;
// the second request must reuse the first's simulations.
func TestTimedMemoShared(t *testing.T) {
	ResetTimedCache()
	defer ResetTimedCache()
	opts := tinyOpts()
	opts.Instructions = 40_000
	r1, err := timedResults(opts, timedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := timedResults(opts, timedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(r1).Pointer() != reflect.ValueOf(r2).Pointer() {
		t.Fatal("identical timed sweep was recomputed")
	}
	bigger := opts
	bigger.Instructions *= 2
	r3, err := timedResults(bigger, timedSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(r3).Pointer() == reflect.ValueOf(r1).Pointer() {
		t.Fatal("different opts shared a memo entry")
	}
}

// TestRunUnitsCoversAll: every index is executed exactly once.
func TestRunUnitsCoversAll(t *testing.T) {
	const n = 1000
	var seen [n]atomic.Int32
	if err := runUnits(n, 8, func(i int) error {
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("unit %d ran %d times", i, got)
		}
	}
}

// TestRunUnitsSurvivesFailure: a failure costs that one unit, not the
// rest of the run — every sibling still executes, and the failure is
// reported.
func TestRunUnitsSurvivesFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := runUnits(1000, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 1000 {
		t.Fatalf("ran %d units, want all 1000 despite unit 3 failing", got)
	}
}

// TestRunUnitsJoinsConcurrentErrors: two workers failing together are
// both reported instead of one being dropped.
func TestRunUnitsJoinsConcurrentErrors(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	err := runUnits(2, 2, func(i int) error {
		gate.Done()
		gate.Wait() // both workers fail simultaneously
		return fmt.Errorf("unit %d failed", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	for i := 0; i < 2; i++ {
		want := fmt.Sprintf("unit %d failed", i)
		found := false
		for _, e := range multiUnwrap(err) {
			if strings.Contains(e.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("joined error %q lost %q", err, want)
		}
	}
}

// multiUnwrap flattens an errors.Join result (or a single error).
func multiUnwrap(err error) []error {
	if m, ok := err.(interface{ Unwrap() []error }); ok {
		return m.Unwrap()
	}
	return []error{err}
}

// TestForEachProfileWrapsName: errors carry the failing profile's name.
func TestForEachProfileWrapsName(t *testing.T) {
	profiles := workload.All()
	boom := errors.New("boom")
	err := forEachProfile(profiles, 2, func(p *workload.Profile) error {
		if p.Name == profiles[0].Name {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	want := profiles[0].Name + ": boom"
	found := false
	for _, e := range multiUnwrap(err) {
		if strings.Contains(e.Error(), want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("error %q does not name the failing profile (%q)", err, want)
	}
}
