package experiment

import (
	"reflect"
	"testing"

	"bcache/internal/cache"
	"bcache/internal/energy"
	"bcache/internal/rng"
	"bcache/internal/workload"
)

// TestSetWorkersBitIdentical: a missRates sweep with set-sharded replay
// must produce exactly the result map a sequential sweep does — same
// misses, accesses, and PD counters for every (profile, spec) cell —
// including a wide Random spec exercising the per-set split-RNG streams
// and a non-SetAssoc spec exercising the sequential fallback.
func TestSetWorkersBitIdentical(t *testing.T) {
	opts := DefaultOpts()
	opts.Instructions = 150000
	opts.DisableStackDist = true // replay every spec; profiling units don't shard
	specs := []Spec{
		setAssocSpec(8, energy.Way8),
		{Name: "rand64", Kind: energy.Way32, New: func(size, line int) (cache.Cache, error) {
			return cache.NewSetAssoc(size, line, 64, cache.Random, rng.New(7))
		}},
		bcacheSpec(8, 8, cache.LRU), // not a SetAssoc: must fall back
	}
	profiles := workload.All()[:2]

	for _, s := range []side{dSide, iSide} {
		seq := opts
		ResetUnitMemo() // force real simulations on both runs
		res1, err := missRates(seq, profiles, specs, s)
		if err != nil {
			t.Fatal(err)
		}
		par := opts
		par.SetWorkers = 8
		ResetUnitMemo()
		res2, err := missRates(par, profiles, specs, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("side %d: sharded results diverged\nseq: %+v\npar: %+v", s, res1, res2)
		}
	}
}
