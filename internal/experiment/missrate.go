package experiment

import (
	"fmt"

	"bcache/internal/cache"
	"bcache/internal/energy"
	"bcache/internal/workload"
)

// Figures 4, 5 and 12: miss-rate reductions over the direct-mapped
// baseline.

func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Data cache miss rate reductions, 16kB (2/4/8/32-way, victim16, B-Cache MF=2..16 BAS=8)",
		Run:   runFig4,
		Plan:  planFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Instruction cache miss rate reductions, 16kB (reported benchmarks)",
		Run:   runFig5,
		Plan:  planFig5,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Miss rate reductions at 8kB and 32kB (12 configurations)",
		Run:   runFig12,
		Plan:  planFig12,
	})
}

// reductionTable renders one figure panel: rows = benchmarks (+Ave),
// columns = configurations, cells = % reduction vs. baseline, with the
// baseline miss rate as the second column for context. Profiles missing
// from res — units lost to an interrupt or a failure — are skipped, so
// partial runs still render the rows they completed.
func reductionTable(id, title, note string, profiles []*workload.Profile,
	specs []Spec, res map[string]map[string]missRun) *Table {

	t := &Table{ID: id, Title: title, Note: note}
	t.Headers = append([]string{"benchmark", "base-miss"}, specNames(specs)...)
	sums := make([]float64, len(specs))
	included := 0
	for _, p := range profiles {
		row, ok := res[p.Name]
		if !ok {
			continue
		}
		included++
		base := row["baseline"]
		cells := []string{p.Name, pct(base.missRate)}
		for i, s := range specs {
			r := reduction(base, row[s.Name])
			sums[i] += r
			cells = append(cells, pct(r))
		}
		t.AddRow(cells...)
	}
	if included > 0 {
		ave := []string{"Ave", ""}
		for _, s := range sums {
			ave = append(ave, pct(s/float64(included)))
		}
		t.AddRow(ave...)
	}
	if included < len(profiles) {
		t.Note = fmt.Sprintf("%s [partial: %d/%d benchmarks completed]", t.Note, included, len(profiles))
	}
	return t
}

func specNames(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func runFig4(opts Opts) ([]*Table, error) {
	specs := figureSpecs()
	all := workload.All()
	res, err := missRates(opts, all, specs, dSide)
	if err != nil && len(res) == 0 {
		return nil, err
	}
	note := fmt.Sprintf("synthetic SPEC2K surrogates, %d instructions, LRU", opts.Instructions)
	var tables []*Table
	for _, suite := range []string{"CFP2K", "CINT2K"} { // paper order: FP panel first
		tables = append(tables, reductionTable(
			"fig4", fmt.Sprintf("D$ miss rate reductions over 16kB direct-mapped baseline (%s)", suite),
			note, workload.Suite(suite), specs, res))
	}
	return tables, err
}

func runFig5(opts Opts) ([]*Table, error) {
	specs := figureSpecs()
	reported := reportedICacheProfiles()
	res, err := missRates(opts, reported, specs, iSide)
	if err != nil && len(res) == 0 {
		return nil, err
	}
	note := fmt.Sprintf("benchmarks with I$ miss rate ≥ 0.01%%; %d instructions", opts.Instructions)
	t := reductionTable("fig5", "I$ miss rate reductions over 16kB direct-mapped baseline",
		note, reported, specs, res)
	return []*Table{t}, err
}

// fig12Specs: the twelve configurations of Figure 12 — conventional
// 2/4/8-way, victim16, and the B-Cache at MF ∈ {2,4,8,16} × BAS ∈ {4,8}.
func fig12Specs() []Spec {
	specs := []Spec{
		setAssocSpec(2, energy.Way2), setAssocSpec(4, energy.Way4),
		setAssocSpec(8, energy.Way8), victimSpec(16),
	}
	for _, bas := range []int{4, 8} {
		for _, mf := range []int{2, 4, 8, 16} {
			specs = append(specs, bcacheSpec(mf, bas, cache.LRU))
		}
	}
	// Give unambiguous names to the BAS=8 variants too.
	for i := range specs {
		if specs[i].Name == "MF2" || specs[i].Name == "MF4" ||
			specs[i].Name == "MF8" || specs[i].Name == "MF16" {
			specs[i].Name += "/BAS8"
		}
	}
	return specs
}

func runFig12(opts Opts) ([]*Table, error) {
	specs := fig12Specs()
	all := workload.All()
	var tables []*Table
	for _, size := range []int{32 * 1024, 8 * 1024} { // paper panel order
		o := opts
		o.L1Size = size
		for _, s := range []struct {
			side side
			tag  string
		}{{dSide, "D$"}, {iSide, "I$"}} {
			profiles := all
			if s.side == iSide {
				profiles = reportedICacheProfiles()
			}
			res, err := missRates(o, profiles, specs, s.side)
			if err != nil {
				return nil, err
			}
			// Figure 12 plots suite averages only.
			t := &Table{
				ID:    "fig12",
				Title: fmt.Sprintf("Average miss rate reductions, %dkB %s", size/1024, s.tag),
				Note:  "averaged over the benchmarks Figures 4/5 report for this side",
			}
			t.Headers = append([]string{"group"}, specNames(specs)...)
			sums := make([]float64, len(specs))
			included := 0
			for _, p := range profiles {
				row, ok := res[p.Name]
				if !ok {
					continue
				}
				included++
				base := row["baseline"]
				for i, sp := range specs {
					sums[i] += reduction(base, row[sp.Name])
				}
			}
			if included == 0 {
				included = 1
			}
			cells := []string{fmt.Sprintf("%dK %s", size/1024, s.tag)}
			for _, v := range sums {
				cells = append(cells, pct(v/float64(included)))
			}
			t.AddRow(cells...)
			tables = append(tables, t)
		}
	}
	return tables, nil
}
