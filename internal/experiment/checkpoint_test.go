package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bcache/internal/cache"
	"bcache/internal/energy"
	"bcache/internal/workload"
)

func TestCheckpointSaveLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint(path)
	cp.Record("k1", UnitResult{Misses: 1, Accesses: 2, PDHit: 3, PDMiss: 4})
	cp.Record("k2", UnitResult{Misses: 5, Accesses: 6})
	if err := cp.Save(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d units, want 2", got.Len())
	}
	u, ok := got.Lookup("k1")
	if !ok || u != (UnitResult{Misses: 1, Accesses: 2, PDHit: 3, PDMiss: 4}) {
		t.Errorf("k1 roundtrip: got %+v ok=%v", u, ok)
	}
}

func TestCheckpointMissingFileIsEmpty(t *testing.T) {
	cp, err := LoadCheckpoint(filepath.Join(t.TempDir(), "never-written.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 {
		t.Errorf("missing file loaded %d units", cp.Len())
	}
}

func TestCheckpointSchemaMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	if err := os.WriteFile(path, []byte(`{"schemaVersion":99,"units":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("schema v99 accepted")
	}
}

func TestCheckpointAutosave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint(path)
	cp.SetAutosave(2)
	cp.Record("a", UnitResult{Accesses: 1})
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("autosave fired before threshold")
	}
	cp.Record("b", UnitResult{Accesses: 2})
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("autosave did not write the file: %v", err)
	}
}

func TestCheckpointNilSafe(t *testing.T) {
	var cp *Checkpoint
	cp.Record("k", UnitResult{})
	cp.SetAutosave(1)
	cp.SetAfterRecord(nil)
	if _, ok := cp.Lookup("k"); ok {
		t.Error("nil checkpoint returned a unit")
	}
	if cp.Len() != 0 {
		t.Error("nil checkpoint non-empty")
	}
	if err := cp.Save(); err != nil {
		t.Errorf("nil Save: %v", err)
	}
}

// resumeFixture is the small miss-rate run the resume test interrupts:
// 2 profiles × 3 configs (baseline + 2) × 1 seed = 6 work units.
func resumeFixture(t *testing.T) (Opts, []*workload.Profile, []Spec) {
	t.Helper()
	opts := tinyOpts()
	opts.Workers = 1 // deterministic interruption point
	var profiles []*workload.Profile
	for _, name := range []string{"equake", "gcc"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	specs := []Spec{setAssocSpec(2, energy.Way2), bcacheSpec(8, 8, cache.LRU)}
	return opts, profiles, specs
}

// TestCheckpointResumeBitIdentical kills a miss-rate run in-process after
// three committed units, saves the checkpoint, resumes from the file, and
// requires the resumed results to equal an uninterrupted run exactly —
// bit-identical, not approximately equal.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	defer ResetStop()
	opts, profiles, specs := resumeFixture(t)

	ref, err := missRates(opts, profiles, specs, dSide)
	if err != nil {
		t.Fatal(err)
	}
	// Memoized units commit instantly and would race past the interrupt
	// threshold before the stop request lands.
	ResetUnitMemo()

	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint(path)
	const stopAfter = 3
	cp.SetAfterRecord(func(total int) {
		if total >= stopAfter {
			RequestStop()
		}
	})
	o1 := opts
	o1.Checkpoint = cp
	partial, err := missRates(o1, profiles, specs, dSide)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if cp.Len() < stopAfter {
		t.Fatalf("checkpoint has %d units, want >= %d", cp.Len(), stopAfter)
	}
	if cp.Len() >= len(profiles)*(len(specs)+1) {
		t.Fatalf("interrupt too late: all %d units completed", cp.Len())
	}
	// Whatever profiles did complete must already match the reference.
	for name, row := range partial {
		if !reflect.DeepEqual(row, ref[name]) {
			t.Errorf("partial row %s differs from reference", name)
		}
	}
	if err := cp.Save(); err != nil {
		t.Fatal(err)
	}

	ResetStop()
	cp2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Len() != cp.Len() {
		t.Fatalf("reloaded checkpoint has %d units, want %d", cp2.Len(), cp.Len())
	}
	o2 := opts
	o2.Checkpoint = cp2
	res, err := missRates(o2, profiles, specs, dSide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Errorf("resumed results differ from uninterrupted run:\n got %+v\nwant %+v", res, ref)
	}
}

// TestTraceSpillDetectsCorruption corrupts a spill file on disk and
// checks the reload notices the checksum mismatch, deletes the file,
// and rebuilds the stream from scratch with identical content.
func TestTraceSpillDetectsCorruption(t *testing.T) {
	ResetTraceCache()
	defer ResetTraceCache()
	opts := tinyOpts()
	p, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	at1, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(at1.accs) == 0 {
		t.Fatal("empty trace")
	}

	// Evict the canonical trace to disk by building another stream
	// under a budget no two entries fit in.
	opts.TraceBytes = 1
	if _, err := cachedData(opts, withSeed(p, 1)); err != nil {
		t.Fatal(err)
	}
	key := dataTraceKey(opts, p)
	sharedTraces.mu.Lock()
	slot := sharedTraces.spilled[key]
	sharedTraces.mu.Unlock()
	if slot == nil {
		t.Fatal("canonical trace was not spilled")
	}
	b, err := os.ReadFile(slot.path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xFF // corrupt the final record
	if err := os.WriteFile(slot.path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	at2, err := cachedData(opts, p)
	if err != nil {
		t.Fatal(err)
	}
	c := TraceCacheStats()
	if c.Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1", c.Rebuilds)
	}
	if !reflect.DeepEqual(at1, at2) {
		t.Error("rebuilt trace differs from original")
	}
	if _, err := os.Stat(slot.path); !os.IsNotExist(err) {
		t.Error("corrupt spill file was not deleted")
	}
}
