package experiment

import (
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/stats"
	"bcache/internal/workload"
)

// Table 7: data-cache set-balance behaviour of the baseline (dm) vs the
// B-Cache (bc). Column names follow the paper: fhs = frequent-hit sets,
// ch = cache hits occurring in them, fms = frequent-miss sets, cm = cache
// misses occurring in them, las = less-accessed sets, tca = share of
// total accesses they carry.

func init() {
	register(Experiment{
		ID:    "table7",
		Title: "Data cache memory access behaviour (set balance), baseline vs B-Cache",
		Run:   runTable7,
	})
}

func runTable7(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	all := workload.All()
	t := &Table{
		ID:    "table7",
		Title: "Set balance: fhs/ch, fms/cm, las/tca per benchmark (dm = baseline, bc = B-Cache MF8/BAS8)",
		Note:  "a set is frequent when 2x over the per-set average; less-accessed when below half of it (§6.4)",
		Headers: []string{
			"benchmark", "cfg", "fhs", "ch", "fms", "cm", "las", "tca",
		},
	}
	type rowPair struct {
		name   string
		dm, bc stats.Balance
	}
	rows := make([]rowPair, len(all))
	err := forEachProfile(all, opts.workers(), func(p *workload.Profile) error {
		at, err := cachedData(opts, p)
		if err != nil {
			return err
		}
		dm, err := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
		if err != nil {
			return err
		}
		bc, err := core.New(core.Config{
			SizeBytes: opts.L1Size, LineBytes: opts.LineBytes,
			MF: 8, BAS: 8, Policy: cache.LRU,
		})
		if err != nil {
			return err
		}
		replayData(at.accs, dm)
		replayData(at.accs, bc)
		bdm, err := stats.Analyze(dm.Stats())
		if err != nil {
			return err
		}
		bbc, err := stats.Analyze(bc.Stats())
		if err != nil {
			return err
		}
		for i, q := range all {
			if q.Name == p.Name {
				rows[i] = rowPair{p.Name, bdm, bbc}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var sumDM, sumBC stats.Balance
	for _, r := range rows {
		addBalance(&sumDM, r.dm)
		addBalance(&sumBC, r.bc)
		t.AddRow(r.name, "dm", pct(r.dm.FreqHitSets), pct(r.dm.HitsInFreqSets),
			pct(r.dm.FreqMissSets), pct(r.dm.MissesInFreqSets),
			pct(r.dm.LessAccessedSets), pct(r.dm.AccessesInLessSets))
		t.AddRow("", "bc", pct(r.bc.FreqHitSets), pct(r.bc.HitsInFreqSets),
			pct(r.bc.FreqMissSets), pct(r.bc.MissesInFreqSets),
			pct(r.bc.LessAccessedSets), pct(r.bc.AccessesInLessSets))
	}
	n := float64(len(rows))
	scaleBalance(&sumDM, 1/n)
	scaleBalance(&sumBC, 1/n)
	t.AddRow("Ave", "dm", pct(sumDM.FreqHitSets), pct(sumDM.HitsInFreqSets),
		pct(sumDM.FreqMissSets), pct(sumDM.MissesInFreqSets),
		pct(sumDM.LessAccessedSets), pct(sumDM.AccessesInLessSets))
	t.AddRow("", "bc", pct(sumBC.FreqHitSets), pct(sumBC.HitsInFreqSets),
		pct(sumBC.FreqMissSets), pct(sumBC.MissesInFreqSets),
		pct(sumBC.LessAccessedSets), pct(sumBC.AccessesInLessSets))
	return []*Table{t}, nil
}

func addBalance(dst *stats.Balance, s stats.Balance) {
	dst.FreqHitSets += s.FreqHitSets
	dst.HitsInFreqSets += s.HitsInFreqSets
	dst.FreqMissSets += s.FreqMissSets
	dst.MissesInFreqSets += s.MissesInFreqSets
	dst.LessAccessedSets += s.LessAccessedSets
	dst.AccessesInLessSets += s.AccessesInLessSets
}

func scaleBalance(dst *stats.Balance, f float64) {
	dst.FreqHitSets *= f
	dst.HitsInFreqSets *= f
	dst.FreqMissSets *= f
	dst.MissesInFreqSets *= f
	dst.LessAccessedSets *= f
	dst.AccessesInLessSets *= f
}
