package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: one paper table or figure
// (figures are reproduced as the data series they plot).
type Table struct {
	// ID is the experiment identifier, e.g. "fig4" or "table2".
	ID string
	// Title describes the artifact, e.g. "Figure 4: D-cache miss rate
	// reductions (CINT2K)".
	Title string
	// Note carries caveats (workload substitution, model calibration).
	Note string

	Headers []string
	Rows    [][]string
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("experiment: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// pct formats a fraction as a percentage with one decimal.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// f3 formats a float with three decimals.
func f3(f float64) string { return fmt.Sprintf("%.3f", f) }

// WriteCSV writes the table as CSV: a comment-style header line with the
// ID/title, then headers and rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"# " + t.ID, t.Title}
	if t.Note != "" {
		meta = append(meta, t.Note)
	}
	if err := cw.Write(meta); err != nil {
		return err
	}
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
