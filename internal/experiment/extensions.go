package experiment

import (
	"fmt"

	"bcache/internal/altcache"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/cpu"
	"bcache/internal/energy"
	"bcache/internal/hier"
	"bcache/internal/rng"
	"bcache/internal/stats"
	"bcache/internal/threec"
	"bcache/internal/trace"
	"bcache/internal/vm"
	"bcache/internal/workload"
)

// Extension experiments beyond the paper's artifacts: the §7 related-work
// designs measured head-to-head (xrelated), the §6.8 virtual-addressing
// demonstration (xvipt), the §7.1 OS page-recoloring alternative
// (xrecolor), and the §6.4 drowsy-compatibility analysis (xdrowsy).

func init() {
	register(Experiment{
		ID:    "xrelated",
		Title: "Related-work comparison: miss-rate reduction and hit latency per design (§7)",
		Run:   runXRelated,
	})
	register(Experiment{
		ID:    "xvipt",
		Title: "Virtually-indexed physically-tagged B-Cache with and without page coloring (§6.8)",
		Run:   runXVIPT,
	})
	register(Experiment{
		ID:    "xrecolor",
		Title: "OS page recoloring (CML) vs the B-Cache on conflict-bound benchmarks (§7.1)",
		Run:   runXRecolor,
	})
	register(Experiment{
		ID:    "xdrowsy",
		Title: "Drowsy-eligible frame fraction: baseline vs B-Cache (§6.4)",
		Run:   runXDrowsy,
	})
}

// relatedSpecs returns every alternative design under comparison.
func relatedSpecs() []Spec {
	return []Spec{
		setAssocSpec(2, 0),
		setAssocSpec(4, 0),
		setAssocSpec(8, 0),
		{Name: "column", New: func(size, line int) (cache.Cache, error) {
			return altcache.NewColumn(size, line)
		}},
		{Name: "skewed2", New: func(size, line int) (cache.Cache, error) {
			return altcache.NewSkewed(size, line, rng.New(1))
		}},
		{Name: "psa", New: func(size, line int) (cache.Cache, error) {
			return altcache.NewPSA(size, line, 10)
		}},
		{Name: "agac", New: func(size, line int) (cache.Cache, error) {
			return altcache.NewAGAC(size, line, 32, 4096)
		}},
		{Name: "pam4", New: func(size, line int) (cache.Cache, error) {
			return altcache.NewPAM(size, line, 4, 5)
		}},
		victimSpec(16),
		hacSpec(),
		bcacheSpec(8, 8, cache.LRU),
	}
}

func runXRelated(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	specs := relatedSpecs()
	all := workload.All()

	type agg struct {
		baseMisses, misses uint64
		hits, extra        uint64
	}
	sums := make(map[string]*agg, len(specs))
	for _, s := range specs {
		sums[s.Name] = &agg{}
	}

	for _, p := range all {
		at, err := cachedData(opts, p)
		if err != nil {
			return nil, err
		}
		base, err := baselineSpec().New(opts.L1Size, opts.LineBytes)
		if err != nil {
			return nil, err
		}
		replayData(at.accs, base)
		baseMisses := base.Stats().Misses
		for _, s := range specs {
			c, err := s.New(opts.L1Size, opts.LineBytes)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.Name, s.Name, err)
			}
			a := sums[s.Name]
			for _, m := range at.accs {
				r := c.Access(m.Addr(), m.Write())
				if r.Hit {
					a.hits++
					a.extra += uint64(r.ExtraLatency)
				}
			}
			a.baseMisses += baseMisses
			a.misses += c.Stats().Misses
		}
	}

	t := &Table{
		ID:    "xrelated",
		Title: "Related-work designs on the full suite (D$, 16kB): reduction vs baseline and mean hit latency",
		Note:  "hit latency in cycles assuming 1-cycle primary probes; the B-Cache's defining property is 1.000",
		Headers: []string{
			"design", "miss-reduction", "mean-hit-latency",
		},
	}
	for _, s := range specs {
		a := sums[s.Name]
		red := 0.0
		if a.baseMisses > 0 {
			red = 1 - float64(a.misses)/float64(a.baseMisses)
		}
		lat := 1.0
		if a.hits > 0 {
			lat = 1 + float64(a.extra)/float64(a.hits)
		}
		t.AddRow(s.Name, pct(red), fmt.Sprintf("%.3f", lat))
	}
	return []*Table{t}, nil
}

func runXVIPT(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	const pageBytes = 8192
	t := &Table{
		ID:    "xvipt",
		Title: "B-Cache under virtual addressing (8kB pages, 64-entry TLB)",
		Note:  "coloring preserves the PD's borrowed tag bits; the physical column is the PIPT reference",
		Headers: []string{
			"benchmark", "physical", "vipt-colored", "vipt-arbitrary", "tlb-miss",
		},
	}
	for _, name := range []string{"equake", "crafty", "gcc", "mcf"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		at, err := cachedData(opts, p)
		if err != nil {
			return nil, err
		}
		mkBC := func() (*core.BCache, error) {
			return core.New(core.Config{
				SizeBytes: opts.L1Size, LineBytes: opts.LineBytes,
				MF: 8, BAS: 8, Policy: cache.LRU,
			})
		}
		// Physical reference: same frames for both VIPT runs via a
		// shared colored address space.
		colored, err := vm.NewAddressSpace(vm.Config{PageBytes: pageBytes, ColorBits: 4, Policy: vm.Colored, Seed: 1})
		if err != nil {
			return nil, err
		}
		arbitrary, err := vm.NewAddressSpace(vm.Config{PageBytes: pageBytes, Policy: vm.Arbitrary, Seed: 1})
		if err != nil {
			return nil, err
		}
		pipt, err := mkBC()
		if err != nil {
			return nil, err
		}
		for _, m := range at.accs {
			pipt.Access(colored.Translate(m.Addr()), m.Write())
		}

		var rates []float64
		var tlbMiss float64
		for i, as := range []*vm.AddressSpace{colored, arbitrary} {
			bc, err := mkBC()
			if err != nil {
				return nil, err
			}
			tlb, err := vm.NewTLB(64)
			if err != nil {
				return nil, err
			}
			vipt, err := vm.NewVIPT(bc, as, tlb, 17)
			if err != nil {
				return nil, err
			}
			for _, m := range at.accs {
				vipt.Access(m.Addr(), m.Write())
			}
			rates = append(rates, bc.Stats().MissRate())
			if i == 0 {
				tlbMiss = float64(tlb.Misses) / float64(tlb.Hits+tlb.Misses)
			}
		}
		t.AddRow(name, pct(pipt.Stats().MissRate()), pct(rates[0]), pct(rates[1]), pct(tlbMiss))
	}
	return []*Table{t}, nil
}

func runXRecolor(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	const pageBytes = 4096
	t := &Table{
		ID:    "xrecolor",
		Title: "OS page recoloring (CML buffer) vs hardware approaches (D$ miss rate)",
		Note:  "recoloring approaches 2-way behaviour (§7.1); the B-Cache reaches 4-way+ in hardware",
		Headers: []string{
			"benchmark", "dm", "dm+recolor", "remaps", "2way", "bcache",
		},
	}
	for _, name := range []string{"equake", "crafty", "twolf", "gcc"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		at, err := cachedData(opts, p)
		if err != nil {
			return nil, err
		}

		// Plain DM and the B-Cache run on physical addresses from the
		// same arbitrary allocator.
		as1, _ := vm.NewAddressSpace(vm.Config{PageBytes: pageBytes, Policy: vm.Arbitrary, Seed: 2})
		dm, _ := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
		w2, _ := cache.NewSetAssoc(opts.L1Size, opts.LineBytes, 2, cache.LRU, nil)
		bc, _ := core.New(core.Config{SizeBytes: opts.L1Size, LineBytes: opts.LineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
		for _, m := range at.accs {
			pa := as1.Translate(m.Addr())
			dm.Access(pa, m.Write())
			w2.Access(pa, m.Write())
			bc.Access(pa, m.Write())
		}

		// DM plus the recoloring policy (fresh, identically-seeded
		// address space so initial placements match).
		as2, _ := vm.NewAddressSpace(vm.Config{PageBytes: pageBytes, Policy: vm.Arbitrary, Seed: 2})
		rc, err := vm.NewRecolorer(as2, opts.L1Size, 24)
		if err != nil {
			return nil, err
		}
		dmRC, _ := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
		for _, m := range at.accs {
			pa := as2.Translate(m.Addr())
			rc.Note(m.Addr(), pa)
			if !dmRC.Access(pa, m.Write()).Hit {
				rc.OnMiss(pa)
			}
		}

		t.AddRow(name,
			pct(dm.Stats().MissRate()),
			pct(dmRC.Stats().MissRate()),
			fmt.Sprintf("%d", rc.Remaps),
			pct(w2.Stats().MissRate()),
			pct(bc.Stats().MissRate()))
	}
	return []*Table{t}, nil
}

func runXDrowsy(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	const window = 2048
	t := &Table{
		ID:    "xdrowsy",
		Title: "Drowsy-eligible frame fraction (window 2048 accesses): baseline vs B-Cache",
		Note:  "§6.4: the B-Cache balances accesses yet leaves cold frames for drowsy/decay techniques",
		Headers: []string{
			"benchmark", "dm-drowsy", "bc-drowsy", "dm-static-factor", "bc-static-factor",
		},
	}
	for _, name := range []string{"equake", "crafty", "art", "mcf", "gcc"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		at, err := cachedData(opts, p)
		if err != nil {
			return nil, err
		}
		measure := func(c cache.Cache) (float64, error) {
			d, err := stats.NewDrowsyTracker(c.Geometry().Frames, window)
			if err != nil {
				return 0, err
			}
			for _, m := range at.accs {
				r := c.Access(m.Addr(), m.Write())
				d.Touch(r.Frame)
			}
			return d.DrowsyFraction(), nil
		}
		dm, _ := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
		bc, _ := core.New(core.Config{SizeBytes: opts.L1Size, LineBytes: opts.LineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
		fDM, err := measure(dm)
		if err != nil {
			return nil, err
		}
		fBC, err := measure(bc)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, pct(fDM), pct(fBC),
			f3(energy.DrowsyStaticFactor(fDM)), f3(energy.DrowsyStaticFactor(fBC)))
	}
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "x3c",
		Title: "3C miss decomposition (D$): the B-Cache removes conflict misses only",
		Run:   runX3C,
	})
}

func runX3C(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "x3c",
		Title: "Compulsory/capacity/conflict decomposition of D$ misses (% of accesses)",
		Note:  "the B-Cache (MF8/BAS8) attacks the conflict column; compulsory and capacity are indexing-independent",
		Headers: []string{
			"benchmark", "cfg", "compulsory", "capacity", "conflict", "total-miss",
		},
	}
	for _, name := range []string{"equake", "crafty", "gcc", "art", "mcf", "wupwise"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		at, err := cachedData(opts, p)
		if err != nil {
			return nil, err
		}
		decompose := func(under cache.Cache) (threec.Counts, error) {
			cl, err := threec.New(under)
			if err != nil {
				return threec.Counts{}, err
			}
			for _, m := range at.accs {
				cl.Access(m.Addr(), m.Write())
			}
			return cl.Counts(), nil
		}
		dm, _ := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
		bc, _ := core.New(core.Config{SizeBytes: opts.L1Size, LineBytes: opts.LineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
		cDM, err := decompose(dm)
		if err != nil {
			return nil, err
		}
		cBC, err := decompose(bc)
		if err != nil {
			return nil, err
		}
		row := func(cfg string, c threec.Counts) {
			n := float64(c.Accesses())
			t.AddRow(name, cfg,
				pct(float64(c.Compulsory)/n),
				pct(float64(c.Capacity)/n),
				pct(float64(c.Conflict)/n),
				pct(float64(c.Misses())/n))
			name = "" // only label the first row of the pair
		}
		row("dm", cDM)
		row("bc", cBC)
	}
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "xprefetch",
		Title: "Stream-buffer prefetching is orthogonal to B-Cache balancing (IPC)",
		Run:   runXPrefetch,
	})
}

// runXPrefetch contrasts the two miss-reduction mechanisms of the era:
// a stream buffer attacks sequential (capacity/compulsory) misses, the
// B-Cache attacks conflict misses. On streaming benchmarks the buffer
// wins; on conflict-bound ones the B-Cache wins; together they compose.
func runXPrefetch(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "xprefetch",
		Title: "IPC with and without an 8-entry data stream buffer",
		Note:  "dm = direct-mapped baseline, bc = B-Cache MF8/BAS8; +sb adds the stream buffer",
		Headers: []string{
			"benchmark", "dm", "dm+sb", "bc", "bc+sb", "sb-hit-rate",
		},
	}
	for _, name := range []string{"art", "swim", "equake", "crafty", "mcf"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		run := func(useBC, useSB bool) (cpu.Result, *hier.Hierarchy, error) {
			mk := func() (cache.Cache, error) {
				if useBC {
					return core.New(core.Config{SizeBytes: opts.L1Size, LineBytes: opts.LineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
				}
				return cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
			}
			ic, err := mk()
			if err != nil {
				return cpu.Result{}, nil, err
			}
			dc, err := mk()
			if err != nil {
				return cpu.Result{}, nil, err
			}
			cfg := hier.Defaults()
			if useSB {
				cfg.StreamBuffer = 8
			}
			h, err := hier.New(ic, dc, cfg)
			if err != nil {
				return cpu.Result{}, nil, err
			}
			rt, err := cachedRecords(opts, p)
			if err != nil {
				return cpu.Result{}, nil, err
			}
			res, err := cpu.Run(trace.NewSliceStream(rt.recs), h, cpu.Defaults(), opts.Instructions)
			return res, h, err
		}
		dm, _, err := run(false, false)
		if err != nil {
			return nil, err
		}
		dmSB, hSB, err := run(false, true)
		if err != nil {
			return nil, err
		}
		bc, _, err := run(true, false)
		if err != nil {
			return nil, err
		}
		bcSB, _, err := run(true, true)
		if err != nil {
			return nil, err
		}
		sbRate := 0.0
		if hSB.Prefetches > 0 {
			sbRate = float64(hSB.StreamHits) / float64(hSB.Prefetches)
		}
		t.AddRow(name, f3(dm.IPC()), f3(dmSB.IPC()), f3(bc.IPC()), f3(bcSB.IPC()), pct(sbRate))
	}
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "xl2",
		Title: "The B-Cache mechanism applied at the L2 (misses per 1k instructions)",
		Run:   runXL2,
	})
}

// runXL2 swaps the unified 256kB L2 between direct-mapped, B-Cache
// (MF=8, BAS=8) and the paper's 4-way baseline: the balancing idea is
// not level-one specific.
func runXL2(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "xl2",
		Title: "L2 organization sweep (16kB DM L1s in front): L2 miss rate",
		Note:  "an L2 B-Cache recovers most of the associativity a 4-way L2 provides, at direct-mapped access time",
		Headers: []string{
			"benchmark", "dm-l2", "bcache-l2", "4way-l2",
		},
	}
	cfg := hier.Defaults()
	for _, name := range []string{"mcf", "gcc", "equake", "ammp"} {
		p, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		run := func(mk func() (cache.Cache, error)) (float64, error) {
			ic, err := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
			if err != nil {
				return 0, err
			}
			dc, err := cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
			if err != nil {
				return 0, err
			}
			l2, err := mk()
			if err != nil {
				return 0, err
			}
			h, err := hier.NewWithL2(ic, dc, l2, cfg)
			if err != nil {
				return 0, err
			}
			rt, err := cachedRecords(opts, p)
			if err != nil {
				return 0, err
			}
			if _, err := cpu.Run(trace.NewSliceStream(rt.recs), h, cpu.Defaults(), opts.Instructions); err != nil {
				return 0, err
			}
			return l2.Stats().MissRate(), nil
		}
		dm, err := run(func() (cache.Cache, error) {
			return cache.NewDirectMapped(cfg.L2Size, cfg.L2Line)
		})
		if err != nil {
			return nil, err
		}
		bc, err := run(func() (cache.Cache, error) {
			return core.New(core.Config{SizeBytes: cfg.L2Size, LineBytes: cfg.L2Line, MF: 8, BAS: 8, Policy: cache.LRU})
		})
		if err != nil {
			return nil, err
		}
		w4, err := run(func() (cache.Cache, error) {
			return cache.NewSetAssoc(cfg.L2Size, cfg.L2Line, cfg.L2Ways, cache.LRU, nil)
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, pct(dm), pct(bc), pct(w4))
	}
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "xline",
		Title: "Line-size sensitivity: B-Cache reductions at 16/32/64-byte lines",
		Run:   runXLine,
		Plan:  planXLine,
	})
}

// xLineSpecs returns the three configurations runXLine compares.
func xLineSpecs() []Spec {
	return []Spec{
		setAssocSpec(4, energy.Way4),
		setAssocSpec(8, energy.Way8),
		bcacheSpec(8, 8, cache.LRU),
	}
}

// runXLine re-runs the Figure 4 averages with different line sizes: the
// paper evaluates only 32-byte lines, but the balancing mechanism should
// be insensitive to the line size (conflicts are a set-indexing property).
func runXLine(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	specs := xLineSpecs()
	t := &Table{
		ID:    "xline",
		Title: "Average D$ miss-rate reduction vs line size (16kB)",
		Note:  "suite average over all 26 benchmarks; the B-Cache stays between 4- and 8-way at every line size",
		Headers: []string{
			"line", "4way", "8way", "MF8",
		},
	}
	for _, line := range []int{16, 32, 64} {
		o := opts
		o.LineBytes = line
		res, err := missRates(o, workload.All(), specs, dSide)
		if err != nil {
			return nil, err
		}
		avg := func(name string) float64 {
			var sum float64
			for _, p := range workload.All() {
				sum += reduction(res[p.Name]["baseline"], res[p.Name][name])
			}
			return sum / float64(len(workload.All()))
		}
		t.AddRow(fmt.Sprintf("%dB", line), pct(avg("4way")), pct(avg("8way")), pct(avg("MF8")))
	}
	return []*Table{t}, nil
}

func init() {
	register(Experiment{
		ID:    "xwindow",
		Title: "Instruction-window sensitivity: how much miss latency the window hides",
		Run:   runXWindow,
	})
}

// runXWindow sweeps the out-of-order window size on the baseline and the
// B-Cache. equake's misses sit on dependence chains, so even an 8x larger
// window hides almost none of their latency: the B-Cache's gain is flat
// across window sizes. Out-of-order execution is not a substitute for
// removing conflict misses — the observation that motivates the paper.
func runXWindow(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "xwindow",
		Title: "equake IPC vs window size (baseline / B-Cache / B-Cache gain)",
		Note:  "dependent misses defeat latency hiding at every window size; only removing them (the B-Cache) helps",
		Headers: []string{
			"window", "dm-IPC", "bc-IPC", "bc-gain",
		},
	}
	p, err := workload.ByName("equake")
	if err != nil {
		return nil, err
	}
	for _, window := range []int{8, 16, 32, 64} {
		run := func(useBC bool) (float64, error) {
			mk := func() (cache.Cache, error) {
				if useBC {
					return core.New(core.Config{SizeBytes: opts.L1Size, LineBytes: opts.LineBytes, MF: 8, BAS: 8, Policy: cache.LRU})
				}
				return cache.NewDirectMapped(opts.L1Size, opts.LineBytes)
			}
			ic, err := mk()
			if err != nil {
				return 0, err
			}
			dc, err := mk()
			if err != nil {
				return 0, err
			}
			h, err := hier.New(ic, dc, hier.Defaults())
			if err != nil {
				return 0, err
			}
			rt, err := cachedRecords(opts, p)
			if err != nil {
				return 0, err
			}
			cfg := cpu.Defaults()
			cfg.Window = window
			res, err := cpu.Run(trace.NewSliceStream(rt.recs), h, cfg, opts.Instructions)
			if err != nil {
				return 0, err
			}
			return res.IPC(), nil
		}
		dm, err := run(false)
		if err != nil {
			return nil, err
		}
		bc, err := run(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", window), f3(dm), f3(bc), pct(bc/dm-1))
	}
	return []*Table{t}, nil
}
