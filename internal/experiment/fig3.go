package experiment

import (
	"fmt"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/workload"
)

// Figure 3: the benchmark wupwise's data-cache miss rate and PD hit rate
// during misses as MF sweeps from 2 to 512 (BAS = 8, 16 kB). The paper's
// point: wupwise's conflicting blocks sit at a power-of-two stride whose
// low tag bits coincide, so the PD keeps hitting during misses — and the
// miss rate only falls once MF grows past the collision (between 32 and
// 64), tracking the PD hit rate downward.

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "wupwise D$ miss rate and PD hit rate vs MF (BAS=8, 16kB)",
		Run:   runFig3,
	})
}

func runFig3(opts Opts) ([]*Table, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	p, err := workload.ByName("wupwise")
	if err != nil {
		return nil, err
	}
	at, err := cachedData(opts, p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "wupwise: D$ miss rate (left axis) and PD hit rate during misses (right axis) vs MF",
		Note:    "BAS=8, LRU; the sharp PD-hit-rate drop marks where MF exceeds the benchmark's tag-collision stride",
		Headers: []string{"MF", "miss-rate", "pd-hit-rate"},
	}
	for mf := 2; mf <= 512; mf *= 2 {
		bc, err := core.New(core.Config{
			SizeBytes: opts.L1Size, LineBytes: opts.LineBytes,
			MF: mf, BAS: 8, Policy: cache.LRU,
		})
		if err != nil {
			return nil, fmt.Errorf("MF=%d: %w", mf, err)
		}
		replayData(at.accs, bc)
		t.AddRow(fmt.Sprintf("MF%d", mf),
			pct(bc.Stats().MissRate()),
			pct(bc.PDStats().HitRateDuringMiss()))
	}
	return []*Table{t}, nil
}
