package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bcache/internal/addr"
	"bcache/internal/altcache"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/energy"
	"bcache/internal/rng"
	"bcache/internal/stackdist"
	"bcache/internal/trace"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

// Opts controls experiment scale. The paper runs 500 M instructions per
// benchmark after a 2 B fast-forward; the synthetic workloads reach
// steady state within thousands of instructions, so a few million
// instructions reproduce the same steady-state rates in seconds.
type Opts struct {
	// Instructions per benchmark per configuration.
	Instructions uint64
	// Workers bounds concurrent benchmark runs (0 = GOMAXPROCS).
	Workers int
	// L1Size and LineBytes shape the level-one caches under study.
	L1Size    int
	LineBytes int
	// Seeds replicates miss-rate runs with shifted workload seeds and
	// averages the results (noise control for small instruction counts).
	// Zero or one means a single run with the canonical seed.
	Seeds int
	// TraceBytes bounds the shared materialized-trace cache: 0 uses the
	// default budget, negative disables memoization.
	TraceBytes int64
	// Checkpoint, when non-nil, records every completed miss-rate work
	// unit and lets an interrupted run resume bit-identically: units
	// found in the checkpoint are not re-simulated.
	Checkpoint *Checkpoint
	// UnitTimeout abandons a single work unit running longer than this
	// (0 = no deadline); abandoned and ErrTransient units are retried
	// up to UnitRetries times with exponential backoff.
	UnitTimeout time.Duration
	UnitRetries int
	// DisableStackDist forces every pure-LRU baseline spec through its
	// own cache replay instead of the shared one-pass stack-distance
	// profile. The replay path is the differential oracle the profiler
	// is tested against; results are bit-identical either way.
	DisableStackDist bool
	// SetWorkers, when above 1, shards each set-associative replay unit
	// by set index across up to that many goroutines
	// (cache.ReplayShards). Results are bit-identical to sequential
	// replay; the knob only trades cores for unit latency when there are
	// fewer runnable units than cores.
	SetWorkers int
}

// DefaultOpts returns the scale used for EXPERIMENTS.md.
func DefaultOpts() Opts {
	return Opts{
		Instructions: 2_000_000,
		Workers:      0,
		L1Size:       16 * 1024,
		LineBytes:    32,
	}
}

func (o Opts) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Opts) validate() error {
	if o.Instructions == 0 {
		return fmt.Errorf("experiment: zero instructions")
	}
	if o.L1Size <= 0 || o.LineBytes <= 0 {
		return fmt.Errorf("experiment: bad L1 shape %d/%d", o.L1Size, o.LineBytes)
	}
	if o.Seeds < 0 {
		return fmt.Errorf("experiment: negative seed count %d", o.Seeds)
	}
	return nil
}

func (o Opts) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

// seedShift spreads replica seeds away from the canonical one.
const seedShift = 1_000_003

// withSeed returns p with its seed shifted for replica k (k=0 is the
// canonical profile, untouched).
func withSeed(p *workload.Profile, k int) *workload.Profile {
	if k == 0 {
		return p
	}
	q := *p
	q.Regions = append([]workload.Region(nil), p.Regions...)
	q.Seed += uint64(k) * seedShift
	return &q
}

// memAcc is one data-cache access — the cache package's replayable
// stream element, so set-sharded replay (cache.ReplayShards) can consume
// a materialized trace without conversion.
type memAcc = cache.MemAccess

// accessTrace is a benchmark's address streams, materialized once and
// replayed against every cache configuration.
type accessTrace struct {
	name  string
	suite string
	// data holds the D-cache accesses in program order.
	data []memAcc
	// fetch holds the I-cache accesses: one per executed basic-block
	// line (consecutive same-line PCs collapse, matching the CPU model).
	fetch []addr.Addr
}

// materialize runs the generator for n instructions and extracts the
// cache-visible address streams.
func materialize(p *workload.Profile, n uint64, lineBytes int) (*accessTrace, error) {
	g, err := workload.New(p)
	if err != nil {
		return nil, err
	}
	at := &accessTrace{name: p.Name, suite: p.Suite}
	at.data = make([]memAcc, 0, n/3)
	at.fetch = make([]addr.Addr, 0, n/4)
	lineMask := ^addr.Addr(uint64(lineBytes) - 1)
	curLine := ^addr.Addr(0)
	for i := uint64(0); i < n; i++ {
		rec, _ := g.Next()
		if line := rec.PC & lineMask; line != curLine {
			curLine = line
			at.fetch = append(at.fetch, rec.PC)
		}
		if rec.Kind.IsMem() {
			at.data = append(at.data, cache.NewMemAccess(rec.Mem, rec.Kind == trace.Store))
		}
	}
	return at, nil
}

// Spec is a buildable L1 cache configuration.
type Spec struct {
	// Name appears as the table column, e.g. "8way" or "MF8".
	Name string
	// Key canonically identifies the cache CONFIGURATION, independent
	// of the display name an experiment picks. Two specs with equal
	// keys must build behaviourally identical caches: work-unit results
	// are shared across experiments under this key (see unitKey), so
	// table5's "mf8-bas8" column reuses fig4's "MF8" simulations.
	// Empty falls back to Name, which keeps experiment-local custom
	// specs correct as long as their names are unambiguous.
	Key string
	// Kind prices the configuration in the energy model.
	Kind energy.Kind
	// New builds the cache at the given geometry.
	New func(size, line int) (cache.Cache, error)
	// LRUWays, when positive, marks the spec as a plain LRU
	// set-associative cache of that associativity, whose hit/miss
	// counts the scheduler may derive from a shared stack-distance
	// profile instead of a dedicated replay (see missRates).
	LRUWays int
}

// key returns the canonical configuration identity for unit keys.
func (s Spec) key() string {
	if s.Key != "" {
		return s.Key
	}
	return s.Name
}

// baselineSpec is the paper's baseline: a direct-mapped cache.
func baselineSpec() Spec {
	return Spec{
		Name: "baseline",
		Key:  "dm",
		Kind: energy.DirectMapped,
		New: func(size, line int) (cache.Cache, error) {
			return cache.NewDirectMapped(size, line)
		},
		LRUWays: 1,
	}
}

func setAssocSpec(ways int, kind energy.Kind) Spec {
	return Spec{
		Name: fmt.Sprintf("%dway", ways),
		Key:  fmt.Sprintf("sa:%dway:lru", ways),
		Kind: kind,
		New: func(size, line int) (cache.Cache, error) {
			return cache.NewSetAssoc(size, line, ways, cache.LRU, rng.New(1))
		},
		LRUWays: ways,
	}
}

func victimSpec(entries int) Spec {
	return Spec{
		Name: fmt.Sprintf("victim%d", entries),
		Key:  fmt.Sprintf("victim:%d", entries),
		Kind: energy.VictimDM,
		New: func(size, line int) (cache.Cache, error) {
			return victim.New(size, line, entries)
		},
	}
}

func bcacheSpec(mf, bas int, pol cache.PolicyKind) Spec {
	name := fmt.Sprintf("MF%d", mf)
	if bas != 8 {
		name = fmt.Sprintf("MF%d/BAS%d", mf, bas)
	}
	return Spec{
		Name: name,
		Key:  fmt.Sprintf("bc:mf%d:bas%d:pol%d", mf, bas, pol),
		Kind: energy.BCache,
		New: func(size, line int) (cache.Cache, error) {
			return core.New(core.Config{
				SizeBytes: size, LineBytes: line, MF: mf, BAS: bas, Policy: pol,
			})
		},
	}
}

func hacSpec() Spec {
	return Spec{
		Name: "hac32",
		Key:  "hac:32",
		Kind: energy.HAC,
		New: func(size, line int) (cache.Cache, error) {
			return altcache.NewHAC(size, line)
		},
	}
}

// figureSpecs returns the nine configurations of Figures 4 and 5:
// 2/4/8/32-way, a 16-entry victim buffer, and the B-Cache at MF 2..16
// with BAS = 8 (LRU throughout, as the figure captions state).
func figureSpecs() []Spec {
	return []Spec{
		setAssocSpec(2, energy.Way2),
		setAssocSpec(4, energy.Way4),
		setAssocSpec(8, energy.Way8),
		setAssocSpec(32, energy.Way32),
		victimSpec(16),
		bcacheSpec(2, 8, cache.LRU),
		bcacheSpec(4, 8, cache.LRU),
		bcacheSpec(8, 8, cache.LRU),
		bcacheSpec(16, 8, cache.LRU),
	}
}

// side selects which L1 a miss-rate experiment drives.
type side int

const (
	dSide side = iota
	iSide
)

// replayData drives a data stream through c sequentially.
func replayData(data []memAcc, c cache.Cache) {
	for _, m := range data {
		c.Access(m.Addr(), m.Write())
	}
}

// replayFetch drives a fetch stream through c sequentially.
func replayFetch(fetch []addr.Addr, c cache.Cache) {
	for _, pc := range fetch {
		c.Access(pc, false)
	}
}

// replayWorkersData drives a data stream through c, sharding the replay
// by set index across up to setWorkers goroutines when c supports it
// (see cache.ReplayShards); results are bit-identical to replayData
// either way. setWorkers <= 1 always replays sequentially.
func replayWorkersData(data []memAcc, c cache.Cache, setWorkers int) {
	if setWorkers > 1 {
		if sa, ok := c.(*cache.SetAssoc); ok && sa.ReplayShards(data, nil, setWorkers) {
			return
		}
	}
	replayData(data, c)
}

// replayWorkersFetch is replayWorkersData for the fetch side.
func replayWorkersFetch(fetch []addr.Addr, c cache.Cache, setWorkers int) {
	if setWorkers > 1 {
		if sa, ok := c.(*cache.SetAssoc); ok && sa.ReplayShards(nil, fetch, setWorkers) {
			return
		}
	}
	replayFetch(fetch, c)
}

// missRun is the result of one (benchmark, spec) miss-rate run,
// aggregated over seeds as raw event counts.
type missRun struct {
	missRate float64
	misses   uint64
	accesses uint64
	// pdHit/pdMiss are the PD lookup outcomes during cache misses,
	// summed across seeds (B-Cache only).
	pdHit  uint64
	pdMiss uint64
	// pdHitDuringMiss is pdHit/(pdHit+pdMiss): the PD hit rate during
	// misses, computed once from the summed counters so seeds with
	// unequal miss counts carry their true weight.
	pdHitDuringMiss float64
}

// unitKey names one (side, scale, spec, seed, profile) work unit for the
// checkpoint and the in-process unit memo. The key is self-describing —
// it embeds everything the stored counters depend on — so a checkpoint
// written at one scale can never poison a resume at another. specKey is
// the spec's canonical configuration key (Spec.key), not its display
// name, so experiments that render the same configuration under
// different column names share one simulation. v2: specs are keyed
// canonically (v1 used display names).
func unitKey(opts Opts, s side, specKey string, seedIdx int, profile string) string {
	return fmt.Sprintf("v2|side=%d|n=%d|size=%d|line=%d|spec=%s|seed=%d|prof=%s",
		s, opts.Instructions, opts.L1Size, opts.LineBytes, specKey, seedIdx, profile)
}

// unitMemo shares completed work units across experiments in one
// process: fig4, fig12, table5/6, xline, and xrelated overlap heavily in
// (configuration, profile, scale) space, and a unit's counters are a
// pure function of its unitKey. Lookup order in missRates is checkpoint
// first (resume semantics unchanged), then this memo, then simulation;
// every simulated or checkpoint-restored unit is published here.
var unitMemo sync.Map // unitKey string -> UnitResult

// ResetUnitMemo drops all cross-experiment unit results (test hook and
// perfbench cold-start).
func ResetUnitMemo() {
	unitMemo.Range(func(k, _ any) bool {
		unitMemo.Delete(k)
		return true
	})
}

// memoLookup consults the cross-experiment memo.
func memoLookup(key string) (UnitResult, bool) {
	if v, ok := unitMemo.Load(key); ok {
		return v.(UnitResult), true
	}
	return UnitResult{}, false
}

// profileLRU answers every spec in lru (indices into all, each with
// LRUWays set) for one materialized trace side with a single Mattson
// stack-distance pass: under LRU's inclusion property an access hits a
// (sets, ways) cache iff its per-set reuse distance is below ways, so
// one profile yields the same hit/miss counts a per-spec replay would —
// bit-identically — at a fraction of the work. feed replays the chosen
// side's stream into the profile, one Access per element.
func profileLRU(feed func(*stackdist.Profile), opts Opts, all []Spec, lru []int) ([]UnitResult, error) {
	frames := opts.L1Size / opts.LineBytes
	geoms := make([]stackdist.Geom, len(lru))
	for x, si := range lru {
		w := all[si].LRUWays
		geoms[x] = stackdist.Geom{Sets: frames / w, Ways: w}
	}
	prof, err := stackdist.NewProfile(opts.LineBytes, geoms)
	if err != nil {
		return nil, err
	}
	feed(prof)
	out := make([]UnitResult, len(lru))
	for x, g := range geoms {
		misses, err := prof.Misses(g.Sets, g.Ways)
		if err != nil {
			return nil, err
		}
		out[x] = UnitResult{Misses: misses, Accesses: prof.Accesses()}
	}
	return out, nil
}

// execReplayUnit runs one (profile, seed, spec) replay: materialize (or
// fetch) the trace, build the cache, replay the side, and return the raw
// counters. It is the single execution path behind both the in-process
// scheduler (missRates) and the distributed plan (plan.go), so a unit
// computed in a worker subprocess is bit-identical to one computed here.
func execReplayUnit(opts Opts, s side, p *workload.Profile, spec Spec, k int) (UnitResult, error) {
	c, err := spec.New(opts.L1Size, opts.LineBytes)
	if err != nil {
		return UnitResult{}, fmt.Errorf("%s/%s: %w", p.Name, spec.Name, err)
	}
	// Fetch only the stream this side replays: a D-side unit never
	// forces an I-side extraction, and vice versa.
	switch s {
	case dSide:
		dt, err := cachedData(opts, withSeed(p, k))
		if err != nil {
			return UnitResult{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		replayWorkersData(dt.accs, c, opts.SetWorkers)
	case iSide:
		ft, err := cachedFetch(opts, withSeed(p, k))
		if err != nil {
			return UnitResult{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		replayWorkersFetch(ft.pcs, c, opts.SetWorkers)
	}
	st := c.Stats()
	u := UnitResult{Misses: st.Misses, Accesses: st.Accesses}
	if bc, ok := c.(*core.BCache); ok {
		pd := bc.PDStats()
		u.PDHit, u.PDMiss = pd.MissPDHit, pd.MissPDMiss
	}
	return u, nil
}

// execProfileUnit runs one (profile, seed) stack-distance pass answering
// every LRU spec in lru (indices into all) at once. Like execReplayUnit
// it is shared between the in-process scheduler and the distributed plan.
func execProfileUnit(opts Opts, s side, p *workload.Profile, all []Spec, lru []int, k int) ([]UnitResult, error) {
	var feed func(*stackdist.Profile)
	switch s {
	case dSide:
		dt, err := cachedData(opts, withSeed(p, k))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		feed = func(prof *stackdist.Profile) {
			for _, m := range dt.accs {
				prof.Access(m.Addr())
			}
		}
	case iSide:
		ft, err := cachedFetch(opts, withSeed(p, k))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		feed = func(prof *stackdist.Profile) {
			for _, pc := range ft.pcs {
				prof.Access(pc)
			}
		}
	}
	res, err := profileLRU(feed, opts, all, lru)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return res, nil
}

// lruSpecIndices partitions all into stack-distance-profileable specs
// (pure LRU set-associative shapes valid at the run's geometry) and the
// rest, which replay individually.
func lruSpecIndices(opts Opts, all []Spec) (lru, replayed []int) {
	frames := opts.L1Size / opts.LineBytes
	for si, sp := range all {
		if !opts.DisableStackDist && sp.LRUWays > 0 && sp.LRUWays <= frames {
			lru = append(lru, si)
		} else {
			replayed = append(replayed, si)
		}
	}
	return lru, replayed
}

// missRates runs all profiles × (baseline + specs) on one cache side and
// returns results[profile][specName] plus the baseline under "baseline".
//
// Pure-LRU set-associative specs (Spec.LRUWays > 0) are not replayed
// one cache at a time: each (profile, seed) trace feeds one profiling
// unit whose single stack-distance pass answers all of them at once
// (profileLRU). Every other spec — B-Cache, victim, random/FIFO, the
// related-work designs — replays as its own (profile, seed, spec) unit,
// and Opts.DisableStackDist forces the LRU specs down that replay path
// too, which is the differential oracle the profiler is tested against.
// Units still saturate the machine: the grain is never coarser than one
// (profile, seed) trace.
//
// Failed or interrupted units do not void the run: the returned map
// holds every profile whose units all completed, alongside the joined
// error, so callers can render partial results. Units found in
// opts.Checkpoint are restored instead of re-simulated (bit-identically:
// the checkpoint stores the raw counters, and profiled counts equal
// replayed counts), and completed units are recorded there as they
// finish under the same per-spec keys either way.
func missRates(opts Opts, profiles []*workload.Profile, specs []Spec, s side) (map[string]map[string]missRun, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	all := append([]Spec{baselineSpec()}, specs...)
	seeds := opts.seeds()
	cp := opts.Checkpoint
	lru, replayed := lruSpecIndices(opts, all)

	// jobs: per (profile, seed), one profiling job covering every LRU
	// spec (specIdx < 0) plus one replay job per remaining spec.
	type job struct {
		pi, k   int
		specIdx int
	}
	jobsPerSeed := len(replayed)
	if len(lru) > 0 {
		jobsPerSeed++
	}
	jobs := make([]job, 0, len(profiles)*seeds*jobsPerSeed)
	for pi := range profiles {
		for k := 0; k < seeds; k++ {
			if len(lru) > 0 {
				jobs = append(jobs, job{pi, k, -1})
			}
			for _, si := range replayed {
				jobs = append(jobs, job{pi, k, si})
			}
		}
	}

	// One slot per (profile, seed, spec) result, written only by its
	// owner job's commit closure on the worker goroutine; reduced below.
	perSeed := seeds * len(all)
	units := make([]UnitResult, len(profiles)*perSeed)
	done := make([]bool, len(units))
	slot := func(pi, k, si int) int { return pi*perSeed + k*len(all) + si }
	uo := unitOpts{
		Timeout: opts.UnitTimeout,
		Retries: opts.UnitRetries,
		Label: func(i int) string {
			j := jobs[i]
			if j.specIdx >= 0 {
				return fmt.Sprintf("%s/%s/seed%d", profiles[j.pi].Name, all[j.specIdx].Name, j.k)
			}
			return fmt.Sprintf("%s/lru-profile/seed%d", profiles[j.pi].Name, j.k)
		},
	}
	tel := CurrentTelemetry()
	err := runUnitsCtl(len(jobs), opts.workers(), uo, func(i int) (func(), error) {
		j := jobs[i]
		p := profiles[j.pi]
		if j.specIdx >= 0 {
			// Replay job: one cache, one spec.
			spec := all[j.specIdx]
			key := unitKey(opts, s, spec.key(), j.k, p.Name)
			idx := slot(j.pi, j.k, j.specIdx)
			if u, ok := cp.Lookup(key); ok {
				return func() {
					units[idx], done[idx] = u, true
					unitMemo.Store(key, u)
				}, nil
			}
			if u, ok := memoLookup(key); ok {
				// Another experiment already simulated this exact unit.
				return func() {
					units[idx], done[idx] = u, true
					cp.Record(key, u)
				}, nil
			}
			u, err := execReplayUnit(opts, s, p, spec, j.k)
			if err != nil {
				return nil, err
			}
			return func() {
				units[idx], done[idx] = u, true
				cp.Record(key, u)
				unitMemo.Store(key, u)
				tel.addAccesses(u.Accesses)
			}, nil
		}

		// Profiling job: one stack-distance pass, every LRU spec.
		keys := make([]string, len(lru))
		for x, si := range lru {
			keys[x] = unitKey(opts, s, all[si].key(), j.k, p.Name)
		}
		restored := make([]UnitResult, len(lru))
		lookup := func(get func(string) (UnitResult, bool)) bool {
			for x := range keys {
				u, ok := get(keys[x])
				if !ok {
					return false
				}
				restored[x] = u
			}
			return true
		}
		if lookup(cp.Lookup) {
			return func() {
				for x, si := range lru {
					idx := slot(j.pi, j.k, si)
					units[idx], done[idx] = restored[x], true
					unitMemo.Store(keys[x], restored[x])
				}
			}, nil
		}
		if lookup(memoLookup) {
			return func() {
				for x, si := range lru {
					idx := slot(j.pi, j.k, si)
					units[idx], done[idx] = restored[x], true
					cp.Record(keys[x], restored[x])
				}
			}, nil
		}
		res, err := execProfileUnit(opts, s, p, all, lru, j.k)
		if err != nil {
			return nil, err
		}
		return func() {
			for x, si := range lru {
				idx := slot(j.pi, j.k, si)
				units[idx], done[idx] = res[x], true
				cp.Record(keys[x], res[x])
				unitMemo.Store(keys[x], res[x])
			}
			if len(res) > 0 {
				// One profiling pass replays the trace once, however many
				// specs it answers.
				tel.addAccesses(res[0].Accesses)
			}
		}, nil
	})

	results := make(map[string]map[string]missRun, len(profiles))
	for pi, p := range profiles {
		row := make(map[string]missRun, len(all))
		complete := true
		for si, spec := range all {
			var r missRun
			for k := 0; k < seeds; k++ {
				idx := pi*perSeed + k*len(all) + si
				if !done[idx] {
					complete = false
					break
				}
				u := units[idx]
				r.misses += u.Misses
				r.accesses += u.Accesses
				r.pdHit += u.PDHit
				r.pdMiss += u.PDMiss
			}
			if r.accesses > 0 {
				r.missRate = float64(r.misses) / float64(r.accesses)
			}
			if pd := r.pdHit + r.pdMiss; pd > 0 {
				r.pdHitDuringMiss = float64(r.pdHit) / float64(pd)
			}
			row[spec.Name] = r
		}
		if complete {
			results[p.Name] = row
		}
	}
	if err != nil {
		return results, err
	}
	return results, nil
}

// reduction converts a (baseline, config) miss pair into the paper's
// "% reduction in miss rate over baseline".
func reduction(baseline, config missRun) float64 {
	if baseline.misses == 0 {
		return 0
	}
	return 1 - float64(config.misses)/float64(baseline.misses)
}
