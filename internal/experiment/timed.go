package experiment

import (
	"fmt"
	"sync"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/cpu"
	"bcache/internal/energy"
	"bcache/internal/hier"
	"bcache/internal/trace"
	"bcache/internal/victim"
	"bcache/internal/workload"
)

// Figures 8 and 9: whole-processor IPC and memory energy. Each
// configuration replaces both level-one caches; the rest of the platform
// is Table 4's.

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "IPC improvement of 2/4/8-way, B-Cache and victim16 over the baseline",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Total memory energy normalized to the baseline",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Baseline and B-Cache processor configuration",
		Run:   runTable4,
	})
}

// timedSpecs: the five configurations Figures 8 and 9 compare against the
// baseline.
func timedSpecs() []Spec {
	return []Spec{
		setAssocSpec(2, energy.Way2),
		setAssocSpec(4, energy.Way4),
		setAssocSpec(8, energy.Way8),
		{Name: "B-Cache", Kind: energy.BCache, New: func(size, line int) (cache.Cache, error) {
			return core.New(core.Config{SizeBytes: size, LineBytes: line, MF: 8, BAS: 8, Policy: cache.LRU})
		}},
		victimSpec(16),
	}
}

// timedRun holds one (benchmark, config) timed simulation.
type timedRun struct {
	cpu    cpu.Result
	counts energy.Counts
	kind   energy.Kind
}

// runTimed simulates one benchmark on one L1 configuration.
func runTimed(p *workload.Profile, spec Spec, opts Opts) (timedRun, error) {
	ic, err := spec.New(opts.L1Size, opts.LineBytes)
	if err != nil {
		return timedRun{}, err
	}
	dc, err := spec.New(opts.L1Size, opts.LineBytes)
	if err != nil {
		return timedRun{}, err
	}
	h, err := hier.New(ic, dc, hier.Defaults())
	if err != nil {
		return timedRun{}, err
	}
	rt, err := cachedRecords(opts, p)
	if err != nil {
		return timedRun{}, err
	}
	res, err := cpu.Run(trace.NewSliceStream(rt.recs), h, cpu.Defaults(), opts.Instructions)
	if err != nil {
		return timedRun{}, err
	}

	c := energy.Counts{
		L1Accesses: ic.Stats().Accesses + dc.Stats().Accesses,
		L1Misses:   ic.Stats().Misses + dc.Stats().Misses,
		L2Accesses: h.L2.Stats().Accesses,
		L2Misses:   h.L2.Stats().Misses,
		Cycles:     res.Cycles,
	}
	if bc, ok := ic.(*core.BCache); ok {
		c.PDPredictedMisses += bc.PDStats().MissPDMiss
	}
	if bc, ok := dc.(*core.BCache); ok {
		c.PDPredictedMisses += bc.PDStats().MissPDMiss
	}
	if vc, ok := ic.(*victim.Cache); ok {
		c.VictimProbes += vc.Stats().Misses + vc.BufferHits
	}
	if vc, ok := dc.(*victim.Cache); ok {
		c.VictimProbes += vc.Stats().Misses + vc.BufferHits
	}
	return timedRun{cpu: res, counts: c, kind: spec.Kind}, nil
}

// timedMemo shares timed-simulation results between experiments: fig8
// and fig9 request the identical (opts, specs) sweep and only differ in
// how they reduce it, so the second caller reuses the first's runs.
// Entries are built once under a singleflight channel, like the trace
// cache; the result maps are treated as immutable by all callers.
var timedMemo = struct {
	sync.Mutex
	m map[timedKey]*timedEntry
}{m: map[timedKey]*timedEntry{}}

type timedKey struct {
	opts  Opts
	specs string
}

type timedEntry struct {
	ready chan struct{}
	out   map[string]map[string]timedRun
	err   error
}

// ResetTimedCache drops memoized timed-simulation results (test hook).
func ResetTimedCache() {
	timedMemo.Lock()
	defer timedMemo.Unlock()
	timedMemo.m = map[timedKey]*timedEntry{}
}

// timedResults runs all profiles × (baseline + specs), scheduling each
// (profile, spec) simulation as its own work unit. Results are memoized
// per (opts, spec set).
func timedResults(opts Opts, specs []Spec) (map[string]map[string]timedRun, error) {
	key := timedKey{opts: opts}
	for _, s := range specs {
		key.specs += s.Name + "\x00"
	}
	timedMemo.Lock()
	if e, ok := timedMemo.m[key]; ok {
		timedMemo.Unlock()
		<-e.ready
		return e.out, e.err
	}
	e := &timedEntry{ready: make(chan struct{})}
	timedMemo.m[key] = e
	timedMemo.Unlock()

	e.out, e.err = runTimedResults(opts, specs)
	close(e.ready)
	if e.err != nil {
		// Failures are not cached; a later call may retry.
		timedMemo.Lock()
		delete(timedMemo.m, key)
		timedMemo.Unlock()
	}
	return e.out, e.err
}

func runTimedResults(opts Opts, specs []Spec) (map[string]map[string]timedRun, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	all := append([]Spec{baselineSpec()}, specs...)
	profiles := workload.All()
	runs := make([]timedRun, len(profiles)*len(all))
	err := runUnitsLabeled(len(runs), opts.workers(), func(i int) string {
		return fmt.Sprintf("timed/%s/%s", profiles[i/len(all)].Name, all[i%len(all)].Name)
	}, func(i int) error {
		p, spec := profiles[i/len(all)], all[i%len(all)]
		r, err := runTimed(p, spec, opts)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", p.Name, spec.Name, err)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]timedRun, len(profiles))
	for pi, p := range profiles {
		row := make(map[string]timedRun, len(all))
		for si, spec := range all {
			row[spec.Name] = runs[pi*len(all)+si]
		}
		out[p.Name] = row
	}
	return out, nil
}

func runFig8(opts Opts) ([]*Table, error) {
	specs := timedSpecs()
	res, err := timedResults(opts, specs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8",
		Title:   "% IPC improvement over the 16kB direct-mapped baseline",
		Note:    fmt.Sprintf("Table 4 processor, %d instructions per run", opts.Instructions),
		Headers: append([]string{"benchmark", "base-IPC"}, specNames(specs)...),
	}
	sums := make([]float64, len(specs))
	all := workload.All()
	for _, p := range all {
		row := res[p.Name]
		base := row["baseline"].cpu.IPC()
		cells := []string{p.Name, f3(base)}
		for i, s := range specs {
			imp := row[s.Name].cpu.IPC()/base - 1
			sums[i] += imp
			cells = append(cells, pct(imp))
		}
		t.AddRow(cells...)
	}
	ave := []string{"Ave", ""}
	for _, s := range sums {
		ave = append(ave, pct(s/float64(len(all))))
	}
	t.AddRow(ave...)
	return []*Table{t}, nil
}

func runFig9(opts Opts) ([]*Table, error) {
	specs := timedSpecs()
	res, err := timedResults(opts, specs)
	if err != nil {
		return nil, err
	}
	params := energy.Defaults()
	t := &Table{
		ID:      "fig9",
		Title:   "Total memory-related energy normalized to the baseline (lower is better)",
		Note:    "Figure 10 equations; k_static=0.5, off-chip=100x L1 access",
		Headers: append([]string{"benchmark"}, specNames(specs)...),
	}
	sums := make([]float64, len(specs))
	all := workload.All()
	for _, p := range all {
		row := res[p.Name]
		base := row["baseline"]
		spc := params.StaticPerCycle(params.Dynamic(energy.DirectMapped, base.counts), base.counts.Cycles)
		baseTotal := params.Total(energy.DirectMapped, base.counts, spc).Total()
		cells := []string{p.Name}
		for i, s := range specs {
			r := row[s.Name]
			norm := params.Total(r.kind, r.counts, spc).Total() / baseTotal
			sums[i] += norm
			cells = append(cells, f3(norm))
		}
		t.AddRow(cells...)
	}
	ave := []string{"Ave"}
	for _, s := range sums {
		ave = append(ave, f3(s/float64(len(all))))
	}
	t.AddRow(ave...)
	return []*Table{t}, nil
}

func runTable4(Opts) ([]*Table, error) {
	c := cpu.Defaults()
	h := hier.Defaults()
	t := &Table{
		ID:      "table4",
		Title:   "Baseline and B-Cache processor configuration",
		Headers: []string{"parameter", "value"},
	}
	t.AddRow("Fetch/Issue/Retire width", fmt.Sprintf("%d instructions/cycle", c.IssueWidth))
	t.AddRow("Instruction window", fmt.Sprintf("%d instructions", c.Window))
	t.AddRow("Data cache ports", fmt.Sprintf("%d", c.MemPorts))
	t.AddRow("L1 caches", "16kB, 32B line, direct-mapped (baseline) / B-Cache MF=8 BAS=8")
	t.AddRow("L2 unified cache", fmt.Sprintf("%dkB, %dB line, %d-way, %d-cycle hit",
		h.L2Size/1024, h.L2Line, h.L2Ways, h.L2Latency))
	t.AddRow("Main memory", fmt.Sprintf("infinite size, %d-cycle access", h.MemLatency))
	return []*Table{t}, nil
}
