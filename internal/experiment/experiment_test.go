package experiment

import (
	"fmt"
	"strings"
	"testing"

	"bcache/internal/workload"
)

// tinyOpts keeps experiment self-tests fast; the shapes asserted here are
// robust even at this scale.
func tinyOpts() Opts {
	o := DefaultOpts()
	o.Instructions = 120_000
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fault",
		"fig3", "fig4", "fig5", "fig8", "fig9", "fig12",
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"x3c", "xdrowsy", "xl2", "xline", "xprefetch", "xrecolor", "xrelated", "xvipt", "xwindow",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %s not registered: %v", id, err)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	// Ordering: figures before tables, numeric within.
	ids := make([]string, 0, len(want))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	for i, id := range []string{"fault", "fig3", "fig4", "fig5", "fig8", "fig9", "fig12", "table1"} {
		if ids[i] != id {
			t.Fatalf("ordering: got %v", ids)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Note: "n", Headers: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	out := tb.Render()
	for _, want := range []string{"== x: T ==", "(n)", "a", "bb", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowWidthChecked(t *testing.T) {
	tb := &Table{ID: "x", Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	tb.AddRow("only-one")
}

func TestOptsValidate(t *testing.T) {
	o := DefaultOpts()
	o.Instructions = 0
	if err := o.validate(); err == nil {
		t.Fatal("zero instructions accepted")
	}
}

func TestAnalyticExperiments(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(DefaultOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

// TestFig3Shape: the MF sweep must show the wupwise signature — the PD
// hit rate during misses collapses between MF=32 and MF=64 and the miss
// rate improves across the sweep.
func TestFig3Shape(t *testing.T) {
	e, _ := ByID("fig3")
	tables, err := e.Run(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 9 {
		t.Fatalf("fig3 has %d rows, want 9 (MF=2..512)", len(rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("bad cell %q: %v", s, err)
		}
		return v
	}
	pd32 := parse(rows[4][2]) // MF32 pd-hit-rate
	pd64 := parse(rows[5][2]) // MF64
	if pd32 < 40 || pd64 > 20 {
		t.Errorf("PD hit rate cliff missing: MF32=%.1f%%, MF64=%.1f%%", pd32, pd64)
	}
	if first, last := parse(rows[0][1]), parse(rows[8][1]); last >= first {
		t.Errorf("miss rate did not improve across the sweep: %.1f%% -> %.1f%%", first, last)
	}
}

// TestMissRateOrdering checks the headline Figure 4/5 relations on a
// reduced benchmark set: B-Cache MF8 beats MF2, beats the victim buffer
// on conflict-heavy benchmarks, and stays between the DM baseline and the
// 8-way cache.
func TestMissRateOrdering(t *testing.T) {
	var profiles []*workload.Profile
	for _, name := range []string{"equake", "crafty", "gcc"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	res, err := missRates(tinyOpts(), profiles, figureSpecs(), dSide)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		row := res[p.Name]
		base := row["baseline"]
		r2 := reduction(base, row["MF2"])
		r8 := reduction(base, row["MF8"])
		w8 := reduction(base, row["8way"])
		if r8 <= r2 {
			t.Errorf("%s: MF8 (%.3f) not better than MF2 (%.3f)", p.Name, r8, r2)
		}
		if r8 > w8+0.05 {
			t.Errorf("%s: B-Cache MF8 (%.3f) beats 8-way (%.3f) by more than noise", p.Name, r8, w8)
		}
		if r8 <= 0 {
			t.Errorf("%s: B-Cache shows no reduction", p.Name)
		}
	}
}

// TestTable56Crossover: at equal PD length the paper's §6.3 trade-off —
// design B (BAS=4) wins below 6 PD bits, design A (BAS=8) wins at 6.
func TestTable56Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("design-space sweep is slow")
	}
	red, pd, err := designSpace(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// PD=5 bits: A is MF4/BAS8, B is MF8/BAS4.
	if red[4][8] <= red[8][4] {
		t.Errorf("PD=5: design B (%.3f) did not beat design A (%.3f)", red[4][8], red[8][4])
	}
	// PD=6 bits: A is MF8/BAS8, B is MF16/BAS4.
	if red[8][8] <= red[4][16] {
		t.Errorf("PD=6: design A (%.3f) did not beat design B (%.3f)", red[8][8], red[4][16])
	}
	// PD hit rate falls with MF for both designs (Table 6).
	for _, bas := range []int{4, 8} {
		if !(pd[bas][2] > pd[bas][8]) {
			t.Errorf("BAS=%d: PD hit rate not decreasing with MF: %v", bas, pd[bas])
		}
	}
}

// fmtSscan adapts fmt.Sscanf for percentage cells like "12.3%".
func fmtSscan(s string, v *float64) (int, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	return sscan(s, v)
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%g", v)
}

// TestExtensionExperiments runs each x* experiment at a small scale and
// checks the headline shape it exists to demonstrate.
func TestExtensionExperiments(t *testing.T) {
	opts := tinyOpts()

	t.Run("xdrowsy", func(t *testing.T) {
		e, _ := ByID("xdrowsy")
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(tables[0].Rows) == 0 {
			t.Fatal("no rows")
		}
	})

	t.Run("xvipt-colored-matches-physical", func(t *testing.T) {
		e, _ := ByID("xvipt")
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tables[0].Rows {
			if row[1] != row[2] {
				t.Errorf("%s: VIPT+coloring (%s) diverges from physical (%s)", row[0], row[2], row[1])
			}
		}
	})

	t.Run("xrecolor-beats-plain-dm", func(t *testing.T) {
		e, _ := ByID("xrecolor")
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tables[0].Rows {
			var dm, rc float64
			if _, err := fmtSscan(row[1], &dm); err != nil {
				t.Fatal(err)
			}
			if _, err := fmtSscan(row[2], &rc); err != nil {
				t.Fatal(err)
			}
			if rc > dm {
				t.Errorf("%s: recoloring (%.1f%%) worse than plain DM (%.1f%%)", row[0], rc, dm)
			}
		}
	})

	t.Run("xrelated-bcache-single-cycle", func(t *testing.T) {
		e, _ := ByID("xrelated")
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tables[0].Rows {
			if row[0] == "MF8" && row[2] != "1.000" {
				t.Errorf("B-Cache mean hit latency %s, want 1.000", row[2])
			}
		}
	})
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2,3") // comma must be quoted
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x", "a,b", `"2,3"`} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

// TestAllExperimentsSmoke runs every registered experiment end to end at
// a small scale: no errors, non-empty tables, full column coverage.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep is slow")
	}
	opts := tinyOpts()
	opts.Instructions = 60_000
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("table %s empty", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Fatalf("table %s row width %d != headers %d", tb.ID, len(row), len(tb.Headers))
					}
				}
				if tb.Render() == "" {
					t.Fatal("empty render")
				}
			}
		})
	}
}

// TestExperimentDeterminism: rendering the same experiment twice must be
// byte-identical (no map-order or scheduling leakage into results).
func TestExperimentDeterminism(t *testing.T) {
	opts := tinyOpts()
	opts.Workers = 4
	e, _ := ByID("fig4")
	render := func() string {
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tb := range tables {
			b.WriteString(tb.Render())
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("fig4 output not deterministic across runs")
	}
}

// TestVerifyChecklist runs the full reproduction checklist at reduced
// scale: every check must pass (these are the claims EXPERIMENTS.md
// records).
func TestVerifyChecklist(t *testing.T) {
	if testing.Short() {
		t.Skip("checklist is slow")
	}
	opts := tinyOpts()
	var buf strings.Builder
	passed, failed, err := Verify(opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if failed > 0 {
		t.Fatalf("%d/%d reproduction checks failed:\n%s", failed, passed+failed, buf.String())
	}
	if passed != len(Checks()) {
		t.Fatalf("passed %d of %d checks", passed, len(Checks()))
	}
}

// TestMultiSeedRuns: seed replication must stay deterministic and not
// change the headline ordering.
func TestMultiSeedRuns(t *testing.T) {
	opts := tinyOpts()
	opts.Seeds = 3
	p, err := workload.ByName("equake")
	if err != nil {
		t.Fatal(err)
	}
	run := func() map[string]map[string]missRun {
		res, err := missRates(opts, []*workload.Profile{p}, figureSpecs(), dSide)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for spec, v1 := range r1["equake"] {
		if v2 := r2["equake"][spec]; v1 != v2 {
			t.Fatalf("multi-seed run nondeterministic for %s: %+v vs %+v", spec, v1, v2)
		}
	}
	row := r1["equake"]
	if reduction(row["baseline"], row["MF8"]) <= 0 {
		t.Fatal("B-Cache shows no reduction under seed replication")
	}
	// 3 seeds triple the access volume vs a single-seed run.
	opts1 := opts
	opts1.Seeds = 1
	res1, err := missRates(opts1, []*workload.Profile{p}, nil, dSide)
	if err != nil {
		t.Fatal(err)
	}
	if row["baseline"].accesses <= res1["equake"]["baseline"].accesses*2 {
		t.Fatal("seed replication did not accumulate accesses")
	}
}

// TestWithSeedDoesNotMutate: the canonical profile must never change.
func TestWithSeedDoesNotMutate(t *testing.T) {
	p, _ := workload.ByName("gcc")
	orig := p.Seed
	q := withSeed(p, 2)
	if p.Seed != orig {
		t.Fatal("withSeed mutated the canonical profile")
	}
	if q.Seed == orig {
		t.Fatal("withSeed did not shift the replica seed")
	}
	if withSeed(p, 0) != p {
		t.Fatal("replica 0 should be the canonical profile itself")
	}
}
