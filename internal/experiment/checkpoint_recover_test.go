package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildCheckpointBytes writes a checkpoint with n units and returns the
// on-disk bytes plus the recorded units.
func buildCheckpointBytes(t *testing.T, n int) ([]byte, map[string]UnitResult) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	c := NewCheckpoint(path)
	want := map[string]UnitResult{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("v1|side=0|n=1000|size=16384|line=32|spec=MF%d|seed=0|prof=bench%d", i, i)
		u := UnitResult{Misses: uint64(100 + i), Accesses: uint64(1000 + i), PDHit: uint64(i)}
		c.Record(key, u)
		want[key] = u
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, want
}

func loadBytes(t *testing.T, data []byte) (*Checkpoint, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return LoadCheckpoint(path)
}

// TestLoadCheckpointTornTail sweeps every truncation point of a real
// checkpoint file: a torn file must either be rejected outright (cut so
// early the schema version is gone) or recover a subset of the original
// units with bit-exact values and a non-empty LoadWarning. It must never
// fail the resume once the schema version survives the tear.
func TestLoadCheckpointTornTail(t *testing.T) {
	data, want := buildCheckpointBytes(t, 10)
	full, err := loadBytes(t, data)
	if err != nil {
		t.Fatalf("clean load: %v", err)
	}
	if full.Len() != len(want) || full.LoadWarning() != "" {
		t.Fatalf("clean load: %d units, warning %q", full.Len(), full.LoadWarning())
	}

	sawRecovered := false
	for cut := 0; cut < len(data); cut++ {
		c, err := loadBytes(t, data[:cut])
		if err != nil {
			continue // unrecoverable prefix: acceptable only as an error
		}
		if cut == 0 {
			t.Fatal("empty file loaded without error") // ReadFile gives empty, parse must fail
		}
		if c.Len() > len(want) {
			t.Fatalf("cut %d: recovered %d units, more than the %d written", cut, c.Len(), len(want))
		}
		if c.Len() < len(want) && c.LoadWarning() == "" {
			t.Fatalf("cut %d: lost units (%d of %d) with empty LoadWarning", cut, c.Len(), len(want))
		}
		if c.LoadWarning() != "" {
			sawRecovered = true
		}
		for key, u := range want {
			got, ok := c.Lookup(key)
			if ok && got != u {
				t.Fatalf("cut %d: unit %s recovered as %+v, want %+v", cut, key, got, u)
			}
		}
	}
	if !sawRecovered {
		t.Fatal("no truncation point exercised prefix recovery")
	}
}

// TestLoadCheckpointTornLastRecord is the headline case: the file loses
// exactly its tail mid-final-record and the resume keeps everything else.
func TestLoadCheckpointTornLastRecord(t *testing.T) {
	data, want := buildCheckpointBytes(t, 10)
	// Cut inside the final unit's value object: 20 bytes back is always
	// mid-record for this layout.
	c, err := loadBytes(t, data[:len(data)-20])
	if err != nil {
		t.Fatalf("torn load failed instead of recovering: %v", err)
	}
	if c.LoadWarning() == "" {
		t.Fatal("recovered load carries no warning")
	}
	if c.Len() < len(want)-1 || c.Len() >= len(want) {
		t.Fatalf("recovered %d units, want %d", c.Len(), len(want)-1)
	}
}

// TestLoadCheckpointWrongSchemaStillRejected: recovery must not soften
// the schema gate.
func TestLoadCheckpointWrongSchemaStillRejected(t *testing.T) {
	for _, data := range []string{
		`{"schemaVersion":99,"units":{}}`,         // clean wrong-schema
		`{"schemaVersion":99,"units":{"k":{"mis`,  // torn wrong-schema
		`{"units":{"k":{"misses":1,"accesses":2}`, // torn, version lost
		`"just a string"`,                         // not a checkpoint
		`{"schemaVersion":"one","units":{"k":{"m`, // unreadable version
	} {
		if _, err := loadBytes(t, []byte(data)); err == nil {
			t.Errorf("load of %q succeeded, want error", data)
		}
	}
}

// FuzzLoadCheckpointTorn hammers the loader with truncated and
// bit-flipped variants of a real checkpoint: whatever the damage, the
// loader must return cleanly — recover, or reject with an error — and a
// recovery must never invent more units than the file ever held.
func FuzzLoadCheckpointTorn(f *testing.F) {
	dir, err := os.MkdirTemp("", "ckfuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "ck.json")
	c := NewCheckpoint(path)
	const nUnits = 6
	for i := 0; i < nUnits; i++ {
		c.Record(fmt.Sprintf("v1|spec=MF%d|prof=p%d", i, i), UnitResult{Misses: uint64(i), Accesses: uint64(10 * i)})
	}
	if err := c.Save(); err != nil {
		f.Fatal(err)
	}
	base, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(len(base), -1, uint8(0))
	f.Add(len(base)/2, -1, uint8(0))
	f.Add(len(base), 10, uint8(0x40))
	f.Fuzz(func(t *testing.T, cut, flip int, xor uint8) {
		data := append([]byte(nil), base...)
		if cut >= 0 && cut < len(data) {
			data = data[:cut]
		}
		if flip >= 0 && flip < len(data) {
			data[flip] ^= xor
		}
		p := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(p)
		if err != nil {
			return // rejection is always acceptable for damaged input
		}
		if got.Len() > nUnits {
			t.Fatalf("recovered %d units from a %d-unit checkpoint", got.Len(), nUnits)
		}
	})
}
