package experiment

import (
	"testing"
)

// tinyPlanOpts is the smallest scale the campaign planner and scheduler
// both accept, with an in-memory checkpoint attached.
func tinyPlanOpts() Opts {
	opts := DefaultOpts()
	opts.Instructions = 60_000
	opts.Checkpoint = NewCheckpoint("")
	return opts
}

// TestMissRatesCheckpointsEveryProfiledSpec is the regression test for a
// bug where the profiling job built its checkpoint keys in the same loop
// that breaks on the first cache miss: on a fresh checkpoint the later
// LRU specs were recorded under the empty key, silently dropping them
// from resumes and desynchronizing the sequential checkpoint from the
// distributed plan's.
func TestMissRatesCheckpointsEveryProfiledSpec(t *testing.T) {
	opts := tinyPlanOpts()
	profiles := reportedICacheProfiles()[:1]
	all := append([]Spec{baselineSpec()}, figureSpecs()...)
	lru, _ := lruSpecIndices(opts, all)
	if len(lru) < 2 {
		t.Fatalf("test needs >= 2 profileable specs, have %d", len(lru))
	}
	if _, err := missRates(opts, profiles, figureSpecs(), iSide); err != nil {
		t.Fatal(err)
	}
	cp := opts.Checkpoint
	if _, ok := cp.Lookup(""); ok {
		t.Error("checkpoint holds a unit under the empty key")
	}
	for _, si := range lru {
		key := unitKey(opts, iSide, all[si].key(), 0, profiles[0].Name)
		if _, ok := cp.Lookup(key); !ok {
			t.Errorf("profiled spec %s not checkpointed (key %s)", all[si].Name, key)
		}
	}
	if want := len(all) * len(profiles); cp.Len() != want {
		t.Errorf("checkpoint holds %d units, want %d", cp.Len(), want)
	}
}

// TestPlanCoversSequentialCheckpoint: after a sequential fig5 run, every
// planned unit must be Done against its checkpoint and the checkpoint
// must hold exactly the planned keys — the plan seam and the in-process
// scheduler enumerate the same unit space, which is what makes the
// distributed merge bit-identical.
func TestPlanCoversSequentialCheckpoint(t *testing.T) {
	opts := tinyPlanOpts()
	e, err := ByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(opts); err != nil {
		t.Fatal(err)
	}
	planOpts := opts
	planOpts.Checkpoint = nil
	plan, err := PlanCampaign(planOpts, []string{"fig5"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() == 0 {
		t.Fatal("fig5 plan is empty")
	}
	total := 0
	for i := 0; i < plan.Len(); i++ {
		if !plan.Done(i, opts.Checkpoint) {
			t.Errorf("planned unit %d (%s) missing from the sequential checkpoint", i, plan.Key(i))
		}
		total += len(plan.UnitKeys(i))
	}
	if opts.Checkpoint.Len() != total {
		t.Errorf("checkpoint holds %d keys, plan enumerates %d — unit spaces differ",
			opts.Checkpoint.Len(), total)
	}
}
