package experiment

import (
	"fmt"
	"testing"

	"bcache/internal/cache"
	"bcache/internal/energy"
	"bcache/internal/stackdist"
	"bcache/internal/workload"
)

// gridProfiles returns a small but behaviourally diverse benchmark set:
// hot-loop reuse, pointer chasing, and power-of-two conflict striding.
func gridProfiles(t *testing.T) []*workload.Profile {
	t.Helper()
	var out []*workload.Profile
	for _, name := range []string{"gcc", "mcf", "wupwise"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestStackDistMatchesReplay is the end-to-end differential: miss-rate
// results derived from the one-pass stack-distance profile must be
// bit-identical (hit and miss counts) to the per-spec replay oracle
// across a capacity × associativity × profile × side grid.
func TestStackDistMatchesReplay(t *testing.T) {
	profiles := gridProfiles(t)
	specs := []Spec{
		setAssocSpec(2, energy.Way2),
		setAssocSpec(8, energy.Way8),
		setAssocSpec(32, energy.Way32),
		victimSpec(4), // non-LRU spec: must replay identically in both modes
	}
	for _, size := range []int{8 * 1024, 16 * 1024} {
		for _, s := range []side{dSide, iSide} {
			t.Run(fmt.Sprintf("%dkB-side%d", size/1024, s), func(t *testing.T) {
				opts := tinyOpts()
				opts.L1Size = size

				ResetUnitMemo() // force real simulations on both runs
				fast, err := missRates(opts, profiles, specs, s)
				if err != nil {
					t.Fatal(err)
				}
				opts.DisableStackDist = true
				ResetUnitMemo()
				oracle, err := missRates(opts, profiles, specs, s)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range profiles {
					for _, name := range []string{"baseline", "2way", "8way", "32way", "victim4"} {
						f, o := fast[p.Name][name], oracle[p.Name][name]
						if f.misses != o.misses || f.accesses != o.accesses {
							t.Errorf("%s/%s: profile (m=%d a=%d) != replay (m=%d a=%d)",
								p.Name, name, f.misses, f.accesses, o.misses, o.accesses)
						}
					}
				}
			})
		}
	}
}

// TestStackDistMatchesDirectReplay checks the profiler against raw
// cache.SetAssoc replays, including the fully-associative extreme that
// no figure spec exercises.
func TestStackDistMatchesDirectReplay(t *testing.T) {
	opts := tinyOpts()
	for _, p := range gridProfiles(t) {
		at, err := cachedData(opts, p)
		if err != nil {
			t.Fatal(err)
		}
		frames := opts.L1Size / opts.LineBytes
		var geoms []stackdist.Geom
		ways := []int{1, 2, 8, 64, frames}
		for _, w := range ways {
			geoms = append(geoms, stackdist.Geom{Sets: frames / w, Ways: w})
		}
		prof, err := stackdist.NewProfile(opts.LineBytes, geoms)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range at.accs {
			prof.Access(m.Addr())
		}
		for _, w := range ways {
			c, err := cache.NewSetAssoc(opts.L1Size, opts.LineBytes, w, cache.LRU, nil)
			if err != nil {
				t.Fatal(err)
			}
			replayData(at.accs, c)
			got, err := prof.Misses(frames/w, w)
			if err != nil {
				t.Fatal(err)
			}
			if st := c.Stats(); got != st.Misses || prof.Accesses() != st.Accesses {
				t.Errorf("%s %dway: profile (m=%d a=%d) != replay (m=%d a=%d)",
					p.Name, w, got, prof.Accesses(), st.Misses, st.Accesses)
			}
		}
	}
}

// TestStackDistInclusionProperty: the property one-pass profiling rests
// on — at a fixed set count, an LRU cache's content is a prefix of the
// recency stack, so misses are exactly non-increasing in associativity.
// Asserted over every workload the suite ships, at several set counts.
func TestStackDistInclusionProperty(t *testing.T) {
	opts := tinyOpts()
	frames := opts.L1Size / opts.LineBytes
	var geoms []stackdist.Geom
	for _, sets := range []int{1, 16, 128} {
		geoms = append(geoms, stackdist.Geom{Sets: sets, Ways: frames / sets * 2})
	}
	for _, p := range workload.All() {
		at, err := cachedData(opts, p)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := stackdist.NewProfile(opts.LineBytes, geoms)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range at.accs {
			prof.Access(m.Addr())
		}
		for _, g := range geoms {
			prev := prof.Accesses() + 1
			for w := 1; w <= g.Ways; w *= 2 {
				m, err := prof.Misses(g.Sets, w)
				if err != nil {
					t.Fatal(err)
				}
				if m > prev {
					t.Errorf("%s sets=%d: misses rose %d→%d going to %d ways",
						p.Name, g.Sets, prev, m, w)
				}
				prev = m
			}
		}
	}
}

// TestStackDistCapacityNearMonotone: at fixed capacity, doubling
// associativity also halves the set count — a different index mapping —
// so strict inclusion no longer applies and tiny anomalies are genuine
// cache behaviour (the replay oracle reproduces them bit-identically;
// see TestStackDistMatchesDirectReplay). This pins the anomaly down:
// miss counts may rise by at most 1% per associativity doubling.
func TestStackDistCapacityNearMonotone(t *testing.T) {
	opts := tinyOpts()
	frames := opts.L1Size / opts.LineBytes
	var geoms []stackdist.Geom
	for w := 1; w <= frames; w *= 2 {
		geoms = append(geoms, stackdist.Geom{Sets: frames / w, Ways: w})
	}
	for _, p := range workload.All() {
		at, err := cachedData(opts, p)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := stackdist.NewProfile(opts.LineBytes, geoms)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range at.accs {
			prof.Access(m.Addr())
		}
		prev := prof.Accesses() + 1
		for w := 1; w <= frames; w *= 2 {
			m, err := prof.Misses(frames/w, w)
			if err != nil {
				t.Fatal(err)
			}
			if m > prev+prev/100 {
				t.Errorf("%s: misses rose %d→%d (>1%%) going to %d ways at fixed %dkB",
					p.Name, prev, m, w, opts.L1Size/1024)
			}
			prev = m
		}
	}
}

// TestStackDistCheckpointInterop: units checkpointed by a replay run
// must satisfy a later profiled run (and vice versa) — the keys and the
// stored counters are path-independent.
func TestStackDistCheckpointInterop(t *testing.T) {
	dir := t.TempDir()
	profiles := gridProfiles(t)[:1]
	specs := []Spec{setAssocSpec(4, energy.Way4)}

	opts := tinyOpts()
	opts.DisableStackDist = true
	opts.Checkpoint = NewCheckpoint(dir + "/cp.json")
	oracle, err := missRates(opts, profiles, specs, dSide)
	if err != nil {
		t.Fatal(err)
	}
	recorded := opts.Checkpoint.Len()
	if recorded == 0 {
		t.Fatal("replay run recorded no units")
	}

	// Second run with profiling enabled must restore every unit from the
	// checkpoint rather than recompute.
	opts.DisableStackDist = false
	hits := 0
	opts.Checkpoint.SetAfterRecord(func(int) { hits++ })
	fast, err := missRates(opts, profiles, specs, dSide)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("profiled run re-recorded %d units despite full checkpoint", hits)
	}
	p := profiles[0].Name
	for _, name := range []string{"baseline", "4way"} {
		if fast[p][name] != oracle[p][name] {
			t.Errorf("%s: restored %+v != oracle %+v", name, fast[p][name], oracle[p][name])
		}
	}
}
