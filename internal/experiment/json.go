package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// DocSchemaVersion identifies the experiment-document JSON layout.
// Bump it on any breaking field change so downstream tooling can
// reject documents it does not understand.
const DocSchemaVersion = 1

// Document is the machine-readable form of an experiments run: every
// executed experiment with its tables and wall-clock cost, produced by
// `experiments -format json`.
type Document struct {
	SchemaVersion int      `json:"schemaVersion"`
	Results       []Result `json:"experiments"`
}

// Result is one experiment's outcome inside a Document.
type Result struct {
	ID             string  `json:"id"`
	Title          string  `json:"title"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// UnitTiming digests per-unit wall time (present when a telemetry
	// hub was installed for the run; additive, so no schema bump).
	UnitTiming *UnitTimingSummary `json:"unitTiming,omitempty"`
	Tables     []TableJSON        `json:"tables"`
}

// TableJSON mirrors Table with stable lowerCamel JSON field names.
type TableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// JSON converts a rendered Table into its document form.
func (t *Table) JSON() TableJSON {
	return TableJSON{ID: t.ID, Title: t.Title, Note: t.Note, Headers: t.Headers, Rows: t.Rows}
}

// NewDocument wraps results in a schema-versioned document.
func NewDocument(results []Result) *Document {
	return &Document{SchemaVersion: DocSchemaVersion, Results: results}
}

// Write emits the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// LoadDocument parses a document, rejecting unknown schema versions.
func LoadDocument(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("experiment: parse document: %w", err)
	}
	if d.SchemaVersion != DocSchemaVersion {
		return nil, fmt.Errorf("experiment: document schema version %d, this build reads %d",
			d.SchemaVersion, DocSchemaVersion)
	}
	return &d, nil
}
