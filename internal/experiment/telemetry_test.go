package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bcache/internal/obs/tracespan"
	"bcache/internal/workload"
)

// The retry/backoff schedule and span emission are pinned through the
// Clock seam: a FakeClock advances instead of sleeping, so these tests
// assert the exact doubling sequence and exactly-one-span-per-event
// invariants without wall-clock flakiness.

// withTelemetry installs a FakeClock-backed hub for the test and
// restores the previous hub afterwards.
func withTelemetry(t *testing.T) (*Telemetry, *tracespan.FakeClock) {
	t.Helper()
	clk := tracespan.NewFakeClock(time.Unix(1_700_000_000, 0))
	tel := NewTelemetry(1024, clk)
	prev := CurrentTelemetry()
	SetTelemetry(tel)
	t.Cleanup(func() { SetTelemetry(prev) })
	return tel, clk
}

func spansOfKind(j *tracespan.Journal, kind string) []tracespan.Span {
	var out []tracespan.Span
	for _, s := range j.Snapshot() {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

func TestRetryBackoffExactDoubling(t *testing.T) {
	_, clk := withTelemetry(t)
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 3, Backoff: 50 * time.Millisecond, Clock: clk},
		func(i int) (func(), error) {
			if attempts.Add(1) < 4 {
				return nil, fmt.Errorf("flaky: %w", ErrTransient)
			}
			return nil, nil
		})
	if err != nil {
		t.Fatalf("unit should succeed on fourth attempt: %v", err)
	}
	sleeps := clk.Sleeps()
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("backoff sleeps = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (exact doubling)", i, sleeps[i], want[i])
		}
	}
}

func TestRetryBackoffDefaultBase(t *testing.T) {
	_, clk := withTelemetry(t)
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 1, Clock: clk}, func(i int) (func(), error) {
		if attempts.Add(1) == 1 {
			return nil, fmt.Errorf("once: %w", ErrTransient)
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sleeps := clk.Sleeps(); len(sleeps) != 1 || sleeps[0] != 50*time.Millisecond {
		t.Fatalf("sleeps = %v, want the 50ms default base", sleeps)
	}
}

func TestRetryStopRequestedShortCircuit(t *testing.T) {
	defer ResetStop()
	_, clk := withTelemetry(t)
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 10, Backoff: time.Millisecond, Clock: clk},
		func(i int) (func(), error) {
			attempts.Add(1)
			RequestStop()
			return nil, fmt.Errorf("transient under stop: %w", ErrTransient)
		})
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want the transient error surfaced, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("stop-requested unit ran %d attempts, want 1 (no retries)", got)
	}
	if sleeps := clk.Sleeps(); len(sleeps) != 0 {
		t.Fatalf("stop-requested unit slept %v, want no backoff at all", sleeps)
	}
}

func TestOneRetrySpanPerScheduledRetry(t *testing.T) {
	tel, clk := withTelemetry(t)
	var attempts atomic.Int32
	err := runUnitsCtl(1, 1, unitOpts{Retries: 2, Backoff: 10 * time.Millisecond, Clock: clk,
		Label: func(i int) string { return "flaky-unit" }},
		func(i int) (func(), error) {
			if attempts.Add(1) < 3 {
				return nil, fmt.Errorf("flaky: %w", ErrTransient)
			}
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	unitSpans := spansOfKind(tel.Journal(), tracespan.KindUnit)
	retrySpans := spansOfKind(tel.Journal(), tracespan.KindRetry)
	if len(unitSpans) != 3 {
		t.Fatalf("unit spans = %d, want exactly one per attempt (3)", len(unitSpans))
	}
	if len(retrySpans) != 2 {
		t.Fatalf("retry spans = %d, want exactly one per scheduled retry (2)", len(retrySpans))
	}
	for i, s := range retrySpans {
		if s.Attempt != i {
			t.Errorf("retry span %d Attempt = %d, want %d", i, s.Attempt, i)
		}
		if s.Name != "flaky-unit" {
			t.Errorf("retry span %d Name = %q", i, s.Name)
		}
		if s.Detail == "" {
			t.Errorf("retry span %d missing backoff delay detail", i)
		}
	}
	// The two failed attempts carry the error; the last one is clean.
	if unitSpans[0].Err == "" || unitSpans[1].Err == "" || unitSpans[2].Err != "" {
		t.Errorf("unit span errors = %q, %q, %q", unitSpans[0].Err, unitSpans[1].Err, unitSpans[2].Err)
	}
}

func TestPanicAndCountersInTelemetry(t *testing.T) {
	tel, _ := withTelemetry(t)
	err := runUnitsCtl(4, 2, unitOpts{}, func(i int) (func(), error) {
		if i == 2 {
			panic("boom")
		}
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
	if got := spansOfKind(tel.Journal(), tracespan.KindPanic); len(got) != 1 {
		t.Fatalf("panic spans = %d, want 1", len(got))
	}
	p := tel.ProgressSnapshot()
	if p.QueuedUnits != 4 || p.DoneUnits != 3 || p.FailedUnits != 1 {
		t.Fatalf("progress = %+v, want 4 queued / 3 done / 1 failed", p)
	}
	if p.InFlight != 0 {
		t.Fatalf("in-flight = %d after run, want 0", p.InFlight)
	}
	if err := ValidateProgress(p); err != nil {
		t.Fatalf("progress snapshot invalid: %v", err)
	}
}

func TestAbandonSpanOnTimeout(t *testing.T) {
	tel, _ := withTelemetry(t)
	release := make(chan struct{})
	defer close(release)
	err := runUnitsCtl(1, 1, unitOpts{Timeout: 10 * time.Millisecond}, func(i int) (func(), error) {
		<-release
		return nil, nil
	})
	if !errors.Is(err, ErrUnitTimeout) {
		t.Fatalf("want ErrUnitTimeout, got %v", err)
	}
	if got := spansOfKind(tel.Journal(), tracespan.KindAbandon); len(got) != 1 {
		t.Fatalf("abandon spans = %d, want 1", len(got))
	}
	if tel.ProgressSnapshot().FailedUnits != 1 {
		t.Fatal("abandoned unit not counted as failed")
	}
}

func TestUnitTimingSummary(t *testing.T) {
	tel, clk := withTelemetry(t)
	tel.BeginExperiment("figX")
	durs := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 400 * time.Millisecond}
	err := runUnitsCtl(len(durs), 1, unitOpts{Clock: clk,
		Label: func(i int) string { return fmt.Sprintf("unit%d", i) }},
		func(i int) (func(), error) {
			clk.Advance(durs[i])
			return nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	sum := tel.EndExperiment("figX", start, time.Second)
	if sum == nil {
		t.Fatal("no summary")
	}
	if sum.Units != 3 {
		t.Fatalf("Units = %d, want 3", sum.Units)
	}
	if sum.MaxSeconds != 0.4 {
		t.Fatalf("MaxSeconds = %v, want 0.4", sum.MaxSeconds)
	}
	if sum.SlowestUnit != "unit2" {
		t.Fatalf("SlowestUnit = %q, want unit2", sum.SlowestUnit)
	}
	if sum.P50Seconds != 0.02 {
		t.Fatalf("P50Seconds = %v, want 0.02", sum.P50Seconds)
	}
	footer := sum.Footer()
	for _, want := range []string{"units: 3", "unit2", "p50", "max 400ms"} {
		if !strings.Contains(footer, want) {
			t.Fatalf("footer %q missing %q", footer, want)
		}
	}
	// Experiment span recorded with the given start/duration.
	exp := spansOfKind(tel.Journal(), tracespan.KindExperiment)
	if len(exp) != 1 || exp[0].Name != "figX" || exp[0].DurNanos != int64(time.Second) {
		t.Fatalf("experiment spans = %+v", exp)
	}
	// A second BeginExperiment resets the digest.
	tel.BeginExperiment("figY")
	if sum := tel.EndExperiment("figY", start, 0); sum != nil {
		t.Fatalf("digest not reset: %+v", sum)
	}
}

func TestCheckpointSpanOnAutosave(t *testing.T) {
	tel, _ := withTelemetry(t)
	dir := t.TempDir()
	cp := NewCheckpoint(dir + "/ckpt.json")
	cp.SetAutosave(2)
	cp.Record("a", UnitResult{Accesses: 1})
	cp.Record("b", UnitResult{Accesses: 2})
	spans := spansOfKind(tel.Journal(), tracespan.KindCheckpoint)
	if len(spans) != 1 {
		t.Fatalf("checkpoint spans after autosave = %d, want 1", len(spans))
	}
	if !strings.Contains(spans[0].Detail, "units=2") {
		t.Fatalf("checkpoint span detail = %q", spans[0].Detail)
	}
	if err := cp.Save(); err != nil {
		t.Fatal(err)
	}
	if got := spansOfKind(tel.Journal(), tracespan.KindCheckpoint); len(got) != 2 {
		t.Fatalf("checkpoint spans after explicit save = %d, want 2", len(got))
	}
}

func TestTraceCacheSpans(t *testing.T) {
	tel, _ := withTelemetry(t)
	ResetTraceCache()
	defer ResetTraceCache()
	opts := DefaultOpts()
	opts.Instructions = 10_000
	p := workload.All()[0]
	if _, err := cachedData(opts, p); err != nil {
		t.Fatal(err)
	}
	if _, err := cachedData(opts, p); err != nil {
		t.Fatal(err)
	}
	builds := spansOfKind(tel.Journal(), tracespan.KindTraceBuild)
	hits := spansOfKind(tel.Journal(), tracespan.KindTraceHit)
	// Two builds: the record trace plus the data trace extracted
	// from it; the second cachedData call is a single in-memory hit.
	if len(builds) != 2 || len(hits) != 1 {
		t.Fatalf("builds=%d hits=%d, want 2 and 1", len(builds), len(hits))
	}
	if builds[0].Name != p.Name {
		t.Fatalf("build span name = %q, want %q", builds[0].Name, p.Name)
	}
}

func TestTelemetryNilSafe(t *testing.T) {
	var tel *Telemetry
	tel.runQueued(5)
	tel.unitClaimed()
	tel.unitAttempt(0, 0, "x", 0, time.Time{}, 0, nil)
	tel.unitRetry(0, 0, "x", 0, time.Millisecond)
	tel.unitReleased()
	tel.unitFailed()
	tel.addAccesses(100)
	tel.checkpointSaved(1, 2)
	tel.traceCacheEvent(tracespan.KindTraceHit, "x", time.Time{}, 0, 0)
	tel.BeginExperiment("e")
	if sum := tel.EndExperiment("e", time.Time{}, 0); sum != nil {
		t.Fatal("nil telemetry returned a summary")
	}
	if tel.Journal() != nil || tel.Registry() != nil {
		t.Fatal("nil telemetry leaked non-nil components")
	}
	p := tel.ProgressSnapshot()
	if err := ValidateProgress(p); err != nil {
		t.Fatalf("nil progress invalid: %v", err)
	}
}

func TestValidateProgressRejects(t *testing.T) {
	bad := []Progress{
		{SchemaVersion: 99},
		{SchemaVersion: ProgressSchemaVersion, DoneUnits: 2, QueuedUnits: 1},
		{SchemaVersion: ProgressSchemaVersion, InFlight: -1},
		{SchemaVersion: ProgressSchemaVersion, SpansDropped: 5, SpansRecorded: 1},
	}
	for i, p := range bad {
		if err := ValidateProgress(p); err == nil {
			t.Errorf("case %d: accepted %+v", i, p)
		}
	}
}
