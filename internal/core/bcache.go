// Package core implements the paper's contribution: the Balanced Cache
// (B-Cache), a direct-mapped cache whose local decoders are partially
// programmable.
//
// A conventional direct-mapped cache decodes a fixed index: each address
// maps to exactly one frame, and non-uniform access streams overload some
// sets while others idle. The B-Cache lengthens the index by log2(MF)
// bits taken from the low end of the tag and makes the top
// log2(BAS)+log2(MF) index bits *programmable*: each frame carries a
// small CAM entry (its programmable-decoder, or PD, entry) holding the
// index value that currently activates it.
//
// Decoding stays direct-mapped — the non-programmable index (NPI) selects
// a row of BAS candidate frames and at most one of their PD entries can
// match (a checked invariant), so exactly one word line fires and hits
// take a single cycle. But on a miss whose PD lookup also misses, the
// victim may be chosen from all BAS frames of the row by a replacement
// policy, and the victim's PD entry is reprogrammed on the fly. Heavily
// used sets spill into underutilized ones and conflict misses approach
// those of a BAS-way set-associative cache (paper §3).
//
// Terminology (paper §3.1):
//
//	MF  = 2^(PI+NPI)/2^OI — the memory-address mapping factor: only 1/MF
//	      of the address space has a mapping at any instant.
//	BAS = 2^OI/2^NPI — the B-Cache associativity: the number of candidate
//	      frames a victim can be chosen from.
//
// MF = 1 and BAS = 1 degenerate to a conventional direct-mapped cache.
package core

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// Config parameterizes a B-Cache.
type Config struct {
	// SizeBytes and LineBytes fix the data array (e.g. 16384 and 32 for
	// the paper's baseline).
	SizeBytes int
	LineBytes int
	// MF is the memory-address mapping factor (power of two ≥ 1).
	// The paper selects 8 (§4.3.2).
	MF int
	// BAS is the B-Cache associativity (power of two ≥ 1).
	// The paper selects 8 (§4.3.1).
	BAS int
	// Policy selects the replacement policy used on PD misses
	// (LRU or Random; §3.3).
	Policy cache.PolicyKind
	// Seed seeds the Random policy; ignored for LRU.
	Seed uint64
}

// PDStats counts programmable-decoder outcomes.
type PDStats struct {
	// HitPD counts cache hits (which are PD hits by definition).
	HitPD uint64
	// MissPDHit counts cache misses whose PD lookup hit: the victim is
	// forced to the matching frame and the replacement policy cannot be
	// exploited (§2.3, second situation).
	MissPDHit uint64
	// MissPDMiss counts cache misses whose PD lookup also missed: the
	// miss is predetermined (no tag/data read needed) and the victim is
	// chosen by the replacement policy (§2.3, third situation).
	MissPDMiss uint64
	// Programmed counts PD entry writes (refills that reprogram a
	// decoder entry).
	Programmed uint64
}

// HitRateDuringMiss returns the fraction of cache misses whose PD lookup
// hit — the quantity Table 6 and Figure 3 report. Lower is better: a low
// PD hit rate during misses means the replacement policy is fully
// exploited (§2.3).
func (s PDStats) HitRateDuringMiss() float64 {
	m := s.MissPDHit + s.MissPDMiss
	if m == 0 {
		return 0
	}
	return float64(s.MissPDHit) / float64(m)
}

// frame is one line frame plus its programmable-decoder entry.
type frame struct {
	pdValid bool
	pd      addr.Addr // PI-bit programmable index value
	valid   bool
	dirty   bool
	tag     addr.Addr // tag bits above the PI field
}

// BCache is the balanced cache. It implements cache.Cache.
type BCache struct {
	cfg  Config
	geom cache.Geometry // ways = 1: the B-Cache is direct-mapped

	nb   uint // log2(BAS)
	nm   uint // log2(MF)
	rows int  // 2^NPI where NPI = OI - nb

	// frames[cluster*rows + row]; the row's candidates are the BAS frames
	// at (c*rows + row) for c = 0..BAS-1 (paper Figure 2's clusters).
	frames   []frame
	policies []cache.Policy // one per row, arbitrating the BAS clusters

	stats   *cache.Stats
	pdStats PDStats
	probe   cache.Probe // nil unless observability is attached
}

var _ cache.Cache = (*BCache)(nil)

// New validates cfg and builds the B-Cache.
func New(cfg Config) (*BCache, error) {
	geom, err := cache.NewGeometry(cfg.SizeBytes, cfg.LineBytes, 1)
	if err != nil {
		return nil, err
	}
	if cfg.MF < 1 || !addr.IsPow2(uint64(cfg.MF)) {
		return nil, fmt.Errorf("core: MF %d is not a positive power of two", cfg.MF)
	}
	if cfg.BAS < 1 || !addr.IsPow2(uint64(cfg.BAS)) {
		return nil, fmt.Errorf("core: BAS %d is not a positive power of two", cfg.BAS)
	}
	nb := addr.Log2(uint64(cfg.BAS))
	nm := addr.Log2(uint64(cfg.MF))
	if nb > geom.IndexBits() {
		return nil, fmt.Errorf("core: BAS %d exceeds %d sets", cfg.BAS, geom.Sets)
	}
	if nm > geom.TagBits() {
		return nil, fmt.Errorf("core: MF %d needs %d tag bits, have %d", cfg.MF, nm, geom.TagBits())
	}
	var src *rng.Source
	if cfg.Policy == cache.Random {
		src = rng.New(cfg.Seed)
	}
	c := &BCache{
		cfg:   cfg,
		geom:  geom,
		nb:    nb,
		nm:    nm,
		rows:  1 << (geom.IndexBits() - nb),
		stats: cache.NewStats(geom.Frames),
	}
	c.frames = make([]frame, geom.Frames)
	c.policies = make([]cache.Policy, c.rows)
	for r := range c.policies {
		c.policies[r] = cache.NewPolicy(cfg.Policy, cfg.BAS, src)
	}
	return c, nil
}

// PDBits returns the programmable-index length in bits
// (log2(BAS) + log2(MF); 6 for the paper's MF=8, BAS=8 design).
func (c *BCache) PDBits() uint { return c.nb + c.nm }

// NPDBits returns the non-programmable-index length in bits.
func (c *BCache) NPDBits() uint { return c.geom.IndexBits() - c.nb }

// Config returns the configuration the cache was built with.
func (c *BCache) Config() Config { return c.cfg }

// row extracts the non-programmable index of a.
func (c *BCache) row(a addr.Addr) int {
	return int(addr.Field(a, c.geom.OffsetBits(), c.geom.IndexBits()-c.nb))
}

// pi extracts the programmable index of a: the top log2(BAS) original
// index bits plus the adjacent low log2(MF) tag bits.
func (c *BCache) pi(a addr.Addr) addr.Addr {
	return addr.Field(a, c.geom.OffsetBits()+c.geom.IndexBits()-c.nb, c.nb+c.nm)
}

// tagRem extracts the tag bits not covered by the PD (the bits the tag
// array stores — three fewer than the baseline in the paper's design).
func (c *BCache) tagRem(a addr.Addr) addr.Addr {
	return a >> (c.geom.OffsetBits() + c.geom.IndexBits() + c.nm)
}

// frameIndex maps (cluster, row) to the physical frame index.
func (c *BCache) frameIndex(cluster, row int) int { return cluster*c.rows + row }

// lookupPD returns the cluster whose PD entry matches a's programmable
// index in a's row, or -1. At most one can match (decoding uniqueness).
func (c *BCache) lookupPD(a addr.Addr) int {
	row := c.row(a)
	pi := c.pi(a)
	for cl := 0; cl < c.cfg.BAS; cl++ {
		f := &c.frames[c.frameIndex(cl, row)]
		if f.pdValid && f.pd == pi {
			return cl
		}
	}
	return -1
}

// Access implements cache.Cache.
func (c *BCache) Access(a addr.Addr, write bool) cache.Result {
	row := c.row(a)
	pi := c.pi(a)
	tag := c.tagRem(a)
	pol := c.policies[row]

	if cl := c.lookupPD(a); cl >= 0 {
		fi := c.frameIndex(cl, row)
		f := &c.frames[fi]
		if f.valid && f.tag == tag {
			// Cache hit: single activated word line, one cycle.
			pol.Touch(cl)
			if write {
				f.dirty = true
			}
			c.pdStats.HitPD++
			c.stats.Record(fi, true, write)
			if c.probe != nil {
				// A cache hit is a PD hit by definition (§2.3), so the
				// hot path emits a single event; probes derive total PD
				// hits as Hits + PDHits-during-miss.
				c.probe.ObserveAccess(fi, true, write)
			}
			return cache.Result{Hit: true, Frame: fi}
		}
		// PD hit, cache miss: unique decoding forces this frame as the
		// victim — replacing any other frame would require evicting this
		// one too (paper §2.3). The replacement policy cannot help here.
		c.pdStats.MissPDHit++
		res := c.refill(fi, frame{pdValid: true, pd: pi, valid: true, dirty: write, tag: tag}, row, cl)
		c.stats.Record(fi, false, write)
		if c.probe != nil {
			c.probe.ObservePD(true)
			c.probe.ObserveAccess(fi, false, write)
		}
		return res
	}

	// PD miss: the miss is predetermined (no data or tag array read).
	// The victim comes from any of the row's BAS clusters; its PD entry
	// is reprogrammed with a's programmable index.
	c.pdStats.MissPDMiss++
	cl := -1
	for k := 0; k < c.cfg.BAS; k++ { // cold start: program invalid entries first
		if !c.frames[c.frameIndex(k, row)].pdValid {
			cl = k
			break
		}
	}
	if cl < 0 {
		cl = pol.Victim()
	}
	fi := c.frameIndex(cl, row)
	c.pdStats.Programmed++
	res := c.refill(fi, frame{pdValid: true, pd: pi, valid: true, dirty: write, tag: tag}, row, cl)
	c.stats.Record(fi, false, write)
	if c.probe != nil {
		c.probe.ObservePD(false)
		c.probe.ObserveReprogram()
		c.probe.ObserveAccess(fi, false, write)
	}
	return res
}

// refill replaces frames[fi] with nf, reporting any eviction, and touches
// the replacement state.
func (c *BCache) refill(fi int, nf frame, row, cluster int) cache.Result {
	old := c.frames[fi]
	res := cache.Result{Frame: fi}
	if old.valid {
		res.Evicted = true
		res.EvictedAddr = c.frameLineAddr(old, row)
		res.EvictedDirty = old.dirty
		c.stats.RecordEviction(old.dirty)
		if c.probe != nil {
			c.probe.ObserveEvict(old.dirty)
		}
	}
	c.frames[fi] = nf
	c.policies[row].Touch(cluster)
	return res
}

// frameLineAddr reconstructs the line-aligned address cached in f, which
// lives in the given row.
func (c *BCache) frameLineAddr(f frame, row int) addr.Addr {
	off := c.geom.OffsetBits()
	npi := c.geom.IndexBits() - c.nb
	return f.tag<<(off+npi+c.nb+c.nm) | f.pd<<(off+npi) | addr.Addr(row)<<off
}

// Contains implements cache.Cache.
func (c *BCache) Contains(a addr.Addr) bool {
	cl := c.lookupPD(a)
	if cl < 0 {
		return false
	}
	f := &c.frames[c.frameIndex(cl, c.row(a))]
	return f.valid && f.tag == c.tagRem(a)
}

// Stats implements cache.Cache.
func (c *BCache) Stats() *cache.Stats { return c.stats }

// PDStats returns the programmable-decoder counters.
func (c *BCache) PDStats() PDStats { return c.pdStats }

// SetProbe implements cache.Probed. Passing nil detaches.
func (c *BCache) SetProbe(p cache.Probe) { c.probe = p }

// Geometry implements cache.Cache.
func (c *BCache) Geometry() cache.Geometry { return c.geom }

// Name implements cache.Cache.
func (c *BCache) Name() string {
	return fmt.Sprintf("%dkB-bcache-mf%d-bas%d-%s",
		c.cfg.SizeBytes/1024, c.cfg.MF, c.cfg.BAS, c.cfg.Policy)
}

// Reset implements cache.Cache.
func (c *BCache) Reset() {
	for i := range c.frames {
		c.frames[i] = frame{}
	}
	for _, p := range c.policies {
		p.Reset()
	}
	c.stats.Reset()
	c.pdStats = PDStats{}
}

// CheckInvariants verifies the structural properties the design depends
// on and returns the first violation found, if any:
//
//  1. Decoding uniqueness: within a row, valid PD entries are pairwise
//     distinct, so at most one word line can activate per access.
//  2. A valid line implies a valid (programmed) PD entry.
//  3. PD values fit in PDBits().
func (c *BCache) CheckInvariants() error {
	maxPD := addr.Addr(1)<<(c.nb+c.nm) - 1
	for row := 0; row < c.rows; row++ {
		seen := make(map[addr.Addr]int, c.cfg.BAS)
		for cl := 0; cl < c.cfg.BAS; cl++ {
			f := &c.frames[c.frameIndex(cl, row)]
			if f.valid && !f.pdValid {
				return fmt.Errorf("core: row %d cluster %d: valid line with unprogrammed PD", row, cl)
			}
			if !f.pdValid {
				continue
			}
			if f.pd > maxPD {
				return fmt.Errorf("core: row %d cluster %d: PD value %#x exceeds %d bits", row, cl, f.pd, c.nb+c.nm)
			}
			if prev, dup := seen[f.pd]; dup {
				return fmt.Errorf("core: row %d: clusters %d and %d share PD value %#x (decoding not unique)", row, prev, cl, f.pd)
			}
			seen[f.pd] = cl
		}
	}
	return nil
}

// Describe returns the address bit-field layout of this configuration,
// e.g. for the paper's 16 kB design:
//
//	tag[31:17] | PI: tag[16:14]+idx[13:11] | NPI: idx[10:5] | off[4:0]
//
// The PI field is the programmable decoder's CAM content; everything
// else decodes conventionally.
func (c *BCache) Describe() string {
	off := c.geom.OffsetBits()
	npi := c.geom.IndexBits() - c.nb
	loPI := off + npi
	hiPI := loPI + c.nb + c.nm
	return fmt.Sprintf("tag[%d:%d] | PI: tag[%d:%d]+idx[%d:%d] | NPI: idx[%d:%d] | off[%d:0]",
		addr.Bits-1, hiPI,
		hiPI-1, loPI+c.nb, loPI+c.nb-1, loPI,
		loPI-1, off,
		off-1)
}
