// Package core implements the paper's contribution: the Balanced Cache
// (B-Cache), a direct-mapped cache whose local decoders are partially
// programmable.
//
// A conventional direct-mapped cache decodes a fixed index: each address
// maps to exactly one frame, and non-uniform access streams overload some
// sets while others idle. The B-Cache lengthens the index by log2(MF)
// bits taken from the low end of the tag and makes the top
// log2(BAS)+log2(MF) index bits *programmable*: each frame carries a
// small CAM entry (its programmable-decoder, or PD, entry) holding the
// index value that currently activates it.
//
// Decoding stays direct-mapped — the non-programmable index (NPI) selects
// a row of BAS candidate frames and at most one of their PD entries can
// match (a checked invariant), so exactly one word line fires and hits
// take a single cycle. But on a miss whose PD lookup also misses, the
// victim may be chosen from all BAS frames of the row by a replacement
// policy, and the victim's PD entry is reprogrammed on the fly. Heavily
// used sets spill into underutilized ones and conflict misses approach
// those of a BAS-way set-associative cache (paper §3).
//
// Terminology (paper §3.1):
//
//	MF  = 2^(PI+NPI)/2^OI — the memory-address mapping factor: only 1/MF
//	      of the address space has a mapping at any instant.
//	BAS = 2^OI/2^NPI — the B-Cache associativity: the number of candidate
//	      frames a victim can be chosen from.
//
// MF = 1 and BAS = 1 degenerate to a conventional direct-mapped cache.
//
// The hardware PD is a bit-parallel CAM: all BAS entries of a row compare
// against the programmable index simultaneously (§3.2). BCache mirrors
// that in software — PD entries are packed eight-per-uint64 and matched
// with a branch-free SWAR compare — while Reference keeps the scalar
// array-of-structs implementation as the differential-testing oracle.
package core

import (
	"fmt"
	"math/bits"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// Config parameterizes a B-Cache.
type Config struct {
	// SizeBytes and LineBytes fix the data array (e.g. 16384 and 32 for
	// the paper's baseline).
	SizeBytes int
	LineBytes int
	// MF is the memory-address mapping factor (power of two ≥ 1).
	// The paper selects 8 (§4.3.2).
	MF int
	// BAS is the B-Cache associativity (power of two ≥ 1).
	// The paper selects 8 (§4.3.1).
	BAS int
	// Policy selects the replacement policy used on PD misses
	// (LRU or Random; §3.3).
	Policy cache.PolicyKind
	// Seed seeds the Random policy; ignored for LRU.
	Seed uint64
}

// PDStats counts programmable-decoder outcomes.
type PDStats struct {
	// HitPD counts cache hits (which are PD hits by definition).
	HitPD uint64
	// MissPDHit counts cache misses whose PD lookup hit: the victim is
	// forced to the matching frame and the replacement policy cannot be
	// exploited (§2.3, second situation).
	MissPDHit uint64
	// MissPDMiss counts cache misses whose PD lookup also missed: the
	// miss is predetermined (no tag/data read needed) and the victim is
	// chosen by the replacement policy (§2.3, third situation).
	MissPDMiss uint64
	// Programmed counts PD entry writes (refills that reprogram a
	// decoder entry).
	Programmed uint64
}

// HitRateDuringMiss returns the fraction of cache misses whose PD lookup
// hit — the quantity Table 6 and Figure 3 report. Lower is better: a low
// PD hit rate during misses means the replacement policy is fully
// exploited (§2.3).
func (s PDStats) HitRateDuringMiss() float64 {
	m := s.MissPDHit + s.MissPDMiss
	if m == 0 {
		return 0
	}
	return float64(s.MissPDHit) / float64(m)
}

// SWAR constants for the packed PD word: 8 lanes of 8 bits.
const (
	swarLanes = 8
	// laneBits is the width of one packed PD lane.
	laneBits = 8
	// laneInvalid marks an unprogrammed (or absent, when BAS < 8) lane.
	// Programmed PD values on the SWAR path fit in 7 bits, so a lane with
	// bit 7 set can never equal any broadcast programmable index and the
	// zero-byte search skips it for free.
	laneInvalid = 0x80
	// laneLSBs has the least-significant bit of every lane set;
	// multiplying by it broadcasts a 7-bit value to all lanes.
	laneLSBs = 0x0101010101010101
	// laneMSBs has the most-significant bit of every lane set.
	laneMSBs        = 0x8080808080808080
	allLanesInvalid = laneInvalid * laneLSBs
)

// matchLanes returns a word whose lane MSBs mark the lanes of w equal to
// the 7-bit value v (the classic XOR + has-zero-byte SWAR trick). Lanes
// above a matching lane can carry false positives from borrow
// propagation, so callers must take the lowest set lane; decoding
// uniqueness guarantees at most one true match.
func matchLanes(w uint64, v uint64) uint64 {
	x := w ^ (v * laneLSBs)
	return (x - laneLSBs) & ^x & laneMSBs
}

// BCache is the balanced cache. It implements cache.Cache.
//
// Storage is structure-of-arrays: the per-frame metadata lives in flat
// parallel arrays indexed by frameIndex, and the PD entries of a row are
// packed into a single uint64 (eight 8-bit lanes, one per cluster) so
// lookupPD compares all BAS candidates in a handful of ALU ops — the
// software analogue of the paper's bit-parallel PD CAM. Configurations
// whose PD does not fit the lanes (PDBits > 7 or BAS > 8) fall back to a
// scalar scan over the same arrays.
//
// A BCache instance is goroutine-confined: no internal locking.
type BCache struct {
	cfg  Config
	geom cache.Geometry // ways = 1: the B-Cache is direct-mapped

	nb   uint // log2(BAS)
	nm   uint // log2(MF)
	rows int  // 2^NPI where NPI = OI - nb

	// Precomputed address-field shifts and masks so the access path never
	// re-derives geometry logarithms.
	rowShift uint      // offset bits: low bit of the NPI field
	rowMask  addr.Addr // 2^NPI - 1
	piShift  uint      // low bit of the programmable index
	piMask   addr.Addr // 2^(nb+nm) - 1
	tagShift uint      // low bit of the stored tag remainder

	// swar selects the packed-word PD lookup (PDBits ≤ 7 and BAS ≤ 8 —
	// true for every configuration the paper evaluates, including the
	// MF=8/BAS=8 design point with its 6-bit PD).
	swar bool
	// pdWords[row] packs the row's PD entries, lane cl = cluster cl
	// (SWAR path only; unprogrammed lanes hold laneInvalid).
	pdWords []uint64
	// pdVals[frameIndex] holds PD values on the scalar fallback path.
	pdVals []uint32

	// Per-row bitmasks, one bit per cluster, maskWords words per row:
	// pdValid = programmed decoder entries, valid = resident lines,
	// dirty = lines needing writeback.
	pdValid   []uint64
	valid     []uint64
	dirty     []uint64
	maskWords int
	// tailMask masks the clusters present in the last mask word of a row.
	tailMask uint64

	// tags[frameIndex] holds the tag bits above the PI field.
	tags []addr.Addr

	policies []cache.Policy // one per row, arbitrating the BAS clusters

	stats   *cache.Stats
	pdStats PDStats
	probe   cache.Probe // nil unless observability is attached

	// degraded marks the direct-mapped fallback mode the scrubber enters
	// when PD repair is impossible (see scrub.go); the PD is then ignored
	// and decoding uses the conventional index bits.
	degraded bool
	// scrubLimit and scrubRepairs arm graceful degradation: once
	// cumulative repairs reach the (positive) limit, ScrubPD degrades.
	scrubLimit   int
	scrubRepairs int
}

var _ cache.Cache = (*BCache)(nil)

// validate checks cfg and derives the geometry shared by New and
// NewReference.
func validate(cfg Config) (geom cache.Geometry, nb, nm uint, err error) {
	geom, err = cache.NewGeometry(cfg.SizeBytes, cfg.LineBytes, 1)
	if err != nil {
		return cache.Geometry{}, 0, 0, err
	}
	if cfg.MF < 1 || !addr.IsPow2(uint64(cfg.MF)) {
		return cache.Geometry{}, 0, 0, fmt.Errorf("core: MF %d is not a positive power of two", cfg.MF)
	}
	if cfg.BAS < 1 || !addr.IsPow2(uint64(cfg.BAS)) {
		return cache.Geometry{}, 0, 0, fmt.Errorf("core: BAS %d is not a positive power of two", cfg.BAS)
	}
	nb = addr.Log2(uint64(cfg.BAS))
	nm = addr.Log2(uint64(cfg.MF))
	if nb > geom.IndexBits() {
		return cache.Geometry{}, 0, 0, fmt.Errorf("core: BAS %d exceeds %d sets", cfg.BAS, geom.Sets)
	}
	if nm > geom.TagBits() {
		return cache.Geometry{}, 0, 0, fmt.Errorf("core: MF %d needs %d tag bits, have %d", cfg.MF, nm, geom.TagBits())
	}
	return geom, nb, nm, nil
}

// New validates cfg and builds the B-Cache.
func New(cfg Config) (*BCache, error) {
	geom, nb, nm, err := validate(cfg)
	if err != nil {
		return nil, err
	}
	var src *rng.Source
	if cfg.Policy == cache.Random {
		src = rng.New(cfg.Seed)
	}
	c := &BCache{
		cfg:       cfg,
		geom:      geom,
		nb:        nb,
		nm:        nm,
		rows:      1 << (geom.IndexBits() - nb),
		swar:      nb+nm <= 7 && cfg.BAS <= swarLanes,
		maskWords: (cfg.BAS + 63) / 64,
		stats:     cache.NewStats(geom.Frames),
	}
	npi := geom.IndexBits() - nb
	c.rowShift = geom.OffsetBits()
	c.rowMask = 1<<npi - 1
	c.piShift = c.rowShift + npi
	c.piMask = 1<<(nb+nm) - 1
	c.tagShift = c.rowShift + geom.IndexBits() + nm
	if tail := cfg.BAS & 63; tail != 0 {
		c.tailMask = 1<<uint(tail) - 1
	} else {
		c.tailMask = ^uint64(0)
	}
	if c.swar {
		c.pdWords = make([]uint64, c.rows)
		for i := range c.pdWords {
			c.pdWords[i] = allLanesInvalid
		}
	} else {
		c.pdVals = make([]uint32, geom.Frames)
	}
	c.pdValid = make([]uint64, c.rows*c.maskWords)
	c.valid = make([]uint64, c.rows*c.maskWords)
	c.dirty = make([]uint64, c.rows*c.maskWords)
	c.tags = make([]addr.Addr, geom.Frames)
	c.policies = make([]cache.Policy, c.rows)
	for r := range c.policies {
		c.policies[r] = cache.NewPolicy(cfg.Policy, cfg.BAS, src)
	}
	return c, nil
}

// PDBits returns the programmable-index length in bits
// (log2(BAS) + log2(MF); 6 for the paper's MF=8, BAS=8 design).
func (c *BCache) PDBits() uint { return c.nb + c.nm }

// NPDBits returns the non-programmable-index length in bits.
func (c *BCache) NPDBits() uint { return c.geom.IndexBits() - c.nb }

// Config returns the configuration the cache was built with.
func (c *BCache) Config() Config { return c.cfg }

// row extracts the non-programmable index of a.
func (c *BCache) row(a addr.Addr) int {
	return int(a >> c.rowShift & c.rowMask)
}

// pi extracts the programmable index of a: the top log2(BAS) original
// index bits plus the adjacent low log2(MF) tag bits.
func (c *BCache) pi(a addr.Addr) addr.Addr {
	return a >> c.piShift & c.piMask
}

// tagRem extracts the tag bits not covered by the PD (the bits the tag
// array stores — three fewer than the baseline in the paper's design).
func (c *BCache) tagRem(a addr.Addr) addr.Addr {
	return a >> c.tagShift
}

// frameIndex maps (cluster, row) to the physical frame index.
func (c *BCache) frameIndex(cluster, row int) int { return cluster*c.rows + row }

// maskAt returns the bitmask word index and bit for (cluster, row).
func (c *BCache) maskAt(cluster, row int) (int, uint64) {
	return row*c.maskWords + cluster>>6, 1 << (uint(cluster) & 63)
}

// rowWordMask returns the bits usable in mask word k of a row (the last
// word of a row with BAS not a multiple of 64 is partially populated).
func (c *BCache) rowWordMask(k int) uint64 {
	if k == c.maskWords-1 {
		return c.tailMask
	}
	return ^uint64(0)
}

// pdValue returns the PD entry of (cluster, row); only meaningful when
// the entry is programmed.
func (c *BCache) pdValue(cluster, row int) addr.Addr {
	if c.swar {
		return addr.Addr(c.pdWords[row] >> (uint(cluster) * 8) & 0x7F)
	}
	return addr.Addr(c.pdVals[c.frameIndex(cluster, row)])
}

// setPD programs the PD entry of (cluster, row) with pi.
func (c *BCache) setPD(cluster, row int, pi addr.Addr) {
	if c.swar {
		sh := uint(cluster) * 8
		c.pdWords[row] = c.pdWords[row]&^(0xFF<<sh) | uint64(pi)<<sh
	} else {
		c.pdVals[c.frameIndex(cluster, row)] = uint32(pi)
	}
	w, bit := c.maskAt(cluster, row)
	c.pdValid[w] |= bit
}

// lookupPD returns the cluster whose PD entry matches pi in row, or -1.
// At most one can match (decoding uniqueness).
func (c *BCache) lookupPD(row int, pi addr.Addr) int {
	if c.swar {
		// Branch-free compare of all eight lanes at once. False-positive
		// lanes can only sit above the true zero lane, so the lowest set
		// lane is the match.
		m := matchLanes(c.pdWords[row], uint64(pi))
		if m == 0 {
			return -1
		}
		return bits.TrailingZeros64(m) >> 3
	}
	// Scalar fallback: visit only the programmed clusters, walking the
	// valid bitmask word by word.
	base := row * c.maskWords
	for k := 0; k < c.maskWords; k++ {
		for w := c.pdValid[base+k]; w != 0; w &= w - 1 {
			cl := k<<6 + bits.TrailingZeros64(w)
			if addr.Addr(c.pdVals[c.frameIndex(cl, row)]) == pi {
				return cl
			}
		}
	}
	return -1
}

// firstUnprogrammed returns the lowest cluster of row without a PD entry,
// or -1 when all BAS entries are programmed.
func (c *BCache) firstUnprogrammed(row int) int {
	base := row * c.maskWords
	for k := 0; k < c.maskWords; k++ {
		if free := ^c.pdValid[base+k] & c.rowWordMask(k); free != 0 {
			return k<<6 + bits.TrailingZeros64(free)
		}
	}
	return -1
}

// Access implements cache.Cache.
func (c *BCache) Access(a addr.Addr, write bool) cache.Result {
	if c.degraded {
		return c.accessDegraded(a, write)
	}
	row := c.row(a)
	pi := c.pi(a)
	tag := c.tagRem(a)
	pol := c.policies[row]

	if cl := c.lookupPD(row, pi); cl >= 0 {
		fi := c.frameIndex(cl, row)
		w, bit := c.maskAt(cl, row)
		if c.valid[w]&bit != 0 && c.tags[fi] == tag {
			// Cache hit: single activated word line, one cycle.
			pol.Touch(cl)
			if write {
				c.dirty[w] |= bit
			}
			c.pdStats.HitPD++
			c.stats.Record(fi, true, write)
			if c.probe != nil {
				// A cache hit is a PD hit by definition (§2.3), so the
				// hot path emits a single event; probes derive total PD
				// hits as Hits + PDHits-during-miss.
				c.probe.ObserveAccess(fi, true, write)
			}
			return cache.Result{Hit: true, Frame: fi}
		}
		// PD hit, cache miss: unique decoding forces this frame as the
		// victim — replacing any other frame would require evicting this
		// one too (paper §2.3). The replacement policy cannot help here.
		c.pdStats.MissPDHit++
		res := c.refill(cl, row, pi, tag, write)
		c.stats.Record(fi, false, write)
		if c.probe != nil {
			c.probe.ObservePD(true)
			c.probe.ObserveAccess(fi, false, write)
		}
		return res
	}

	// PD miss: the miss is predetermined (no data or tag array read).
	// The victim comes from any of the row's BAS clusters; its PD entry
	// is reprogrammed with a's programmable index.
	c.pdStats.MissPDMiss++
	cl := c.firstUnprogrammed(row) // cold start: program invalid entries first
	if cl < 0 {
		cl = pol.Victim()
	}
	fi := c.frameIndex(cl, row)
	c.pdStats.Programmed++
	res := c.refill(cl, row, pi, tag, write)
	c.stats.Record(fi, false, write)
	if c.probe != nil {
		c.probe.ObservePD(false)
		c.probe.ObserveReprogram()
		c.probe.ObserveAccess(fi, false, write)
	}
	return res
}

// refill installs (pi, tag) into (cluster, row), reporting any eviction,
// and touches the replacement state.
func (c *BCache) refill(cluster, row int, pi, tag addr.Addr, write bool) cache.Result {
	fi := c.frameIndex(cluster, row)
	w, bit := c.maskAt(cluster, row)
	res := cache.Result{Frame: fi}
	if c.valid[w]&bit != 0 {
		dirty := c.dirty[w]&bit != 0
		res.Evicted = true
		res.EvictedAddr = c.lineAddr(cluster, row)
		res.EvictedDirty = dirty
		c.stats.RecordEviction(dirty)
		if c.probe != nil {
			c.probe.ObserveEvict(dirty)
		}
	}
	c.setPD(cluster, row, pi)
	c.tags[fi] = tag
	c.valid[w] |= bit
	if write {
		c.dirty[w] |= bit
	} else {
		c.dirty[w] &^= bit
	}
	c.policies[row].Touch(cluster)
	return res
}

// lineAddr reconstructs the line-aligned address cached in (cluster, row).
func (c *BCache) lineAddr(cluster, row int) addr.Addr {
	fi := c.frameIndex(cluster, row)
	return c.tags[fi]<<c.tagShift | c.pdValue(cluster, row)<<c.piShift | addr.Addr(row)<<c.rowShift
}

// Contains implements cache.Cache.
func (c *BCache) Contains(a addr.Addr) bool {
	if c.degraded {
		row := c.row(a)
		cl := int(c.pi(a)) & (c.cfg.BAS - 1)
		w, bit := c.maskAt(cl, row)
		return c.valid[w]&bit != 0 && c.tags[c.frameIndex(cl, row)] == a>>(c.piShift+c.nb)
	}
	row := c.row(a)
	cl := c.lookupPD(row, c.pi(a))
	if cl < 0 {
		return false
	}
	w, bit := c.maskAt(cl, row)
	return c.valid[w]&bit != 0 && c.tags[c.frameIndex(cl, row)] == c.tagRem(a)
}

// Stats implements cache.Cache.
func (c *BCache) Stats() *cache.Stats { return c.stats }

// PDStats returns the programmable-decoder counters.
func (c *BCache) PDStats() PDStats { return c.pdStats }

// SetProbe implements cache.Probed. Passing nil detaches.
func (c *BCache) SetProbe(p cache.Probe) { c.probe = p }

// Geometry implements cache.Cache.
func (c *BCache) Geometry() cache.Geometry { return c.geom }

// Name implements cache.Cache.
func (c *BCache) Name() string {
	return fmt.Sprintf("%dkB-bcache-mf%d-bas%d-%s",
		c.cfg.SizeBytes/1024, c.cfg.MF, c.cfg.BAS, c.cfg.Policy)
}

// Reset implements cache.Cache.
func (c *BCache) Reset() {
	for i := range c.pdWords {
		c.pdWords[i] = allLanesInvalid
	}
	for i := range c.pdVals {
		c.pdVals[i] = 0
	}
	for i := range c.pdValid {
		c.pdValid[i] = 0
		c.valid[i] = 0
		c.dirty[i] = 0
	}
	for i := range c.tags {
		c.tags[i] = 0
	}
	for _, p := range c.policies {
		p.Reset()
	}
	c.stats.Reset()
	c.pdStats = PDStats{}
	c.degraded = false
	c.scrubRepairs = 0
}

// CheckInvariants verifies the structural properties the design depends
// on and returns the first violation found, if any:
//
//  1. Decoding uniqueness: within a row, valid PD entries are pairwise
//     distinct, so at most one word line can activate per access.
//  2. A valid line implies a valid (programmed) PD entry.
//  3. PD values fit in PDBits().
//  4. The packed representation is self-consistent: on the SWAR path a
//     lane reads laneInvalid exactly when its pdValid bit is clear.
func (c *BCache) CheckInvariants() error {
	if c.degraded {
		// Direct-mapped fallback: the PD is cleared and ignored, and
		// resident lines intentionally have no PD entries, so none of
		// the decoder invariants apply.
		return nil
	}
	maxPD := addr.Addr(1)<<(c.nb+c.nm) - 1
	for row := 0; row < c.rows; row++ {
		seen := make(map[addr.Addr]int, c.cfg.BAS)
		for cl := 0; cl < c.cfg.BAS; cl++ {
			w, bit := c.maskAt(cl, row)
			programmed := c.pdValid[w]&bit != 0
			if c.valid[w]&bit != 0 && !programmed {
				return fmt.Errorf("core: row %d cluster %d: valid line with unprogrammed PD", row, cl)
			}
			if c.swar {
				lane := c.pdWords[row] >> (uint(cl) * 8) & 0xFF
				if programmed == (lane == laneInvalid) {
					return fmt.Errorf("core: row %d cluster %d: PD lane %#x disagrees with valid bit %v", row, cl, lane, programmed)
				}
			}
			if !programmed {
				continue
			}
			pd := c.pdValue(cl, row)
			if pd > maxPD {
				return fmt.Errorf("core: row %d cluster %d: PD value %#x exceeds %d bits", row, cl, pd, c.nb+c.nm)
			}
			if prev, dup := seen[pd]; dup {
				return fmt.Errorf("core: row %d: clusters %d and %d share PD value %#x (decoding not unique)", row, prev, cl, pd)
			}
			seen[pd] = cl
		}
	}
	return nil
}

// Describe returns the address bit-field layout of this configuration,
// e.g. for the paper's 16 kB design:
//
//	tag[31:17] | PI: tag[16:14]+idx[13:11] | NPI: idx[10:5] | off[4:0]
//
// The PI field is the programmable decoder's CAM content; everything
// else decodes conventionally.
func (c *BCache) Describe() string {
	off := c.geom.OffsetBits()
	npi := c.geom.IndexBits() - c.nb
	loPI := off + npi
	hiPI := loPI + c.nb + c.nm
	return fmt.Sprintf("tag[%d:%d] | PI: tag[%d:%d]+idx[%d:%d] | NPI: idx[%d:%d] | off[%d:0]",
		addr.Bits-1, hiPI,
		hiPI-1, loPI+c.nb, loPI+c.nb-1, loPI,
		loPI-1, off,
		off-1)
}
