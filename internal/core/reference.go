package core

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// scalarFrame is one line frame plus its programmable-decoder entry, in the
// array-of-structs layout the optimized kernel replaced.
type scalarFrame struct {
	pdValid bool
	pd      addr.Addr // PI-bit programmable index value
	valid   bool
	dirty   bool
	tag     addr.Addr // tag bits above the PI field
}

// Reference is the scalar array-of-structs B-Cache implementation, kept
// verbatim as the semantic oracle for the optimized SWAR kernel in
// BCache. Every observable behaviour — hit/miss outcomes, evictions,
// statistics, PD counters, replacement-policy interaction order — must
// match BCache access for access; differential_test.go enforces this
// across the MF × BAS × policy grid.
//
// It trades speed for obviousness: one struct per frame, a plain loop
// over the row's BAS candidates in lookupPD. Use BCache everywhere else.
type Reference struct {
	cfg  Config
	geom cache.Geometry // ways = 1: the B-Cache is direct-mapped

	nb   uint // log2(BAS)
	nm   uint // log2(MF)
	rows int  // 2^NPI where NPI = OI - nb

	// frames[cluster*rows + row]; the row's candidates are the BAS frames
	// at (c*rows + row) for c = 0..BAS-1 (paper Figure 2's clusters).
	frames   []scalarFrame
	policies []cache.Policy // one per row, arbitrating the BAS clusters

	stats   *cache.Stats
	pdStats PDStats
	probe   cache.Probe // nil unless observability is attached
}

var _ cache.Cache = (*Reference)(nil)

// NewReference validates cfg and builds the scalar reference B-Cache.
func NewReference(cfg Config) (*Reference, error) {
	geom, nb, nm, err := validate(cfg)
	if err != nil {
		return nil, err
	}
	var src *rng.Source
	if cfg.Policy == cache.Random {
		src = rng.New(cfg.Seed)
	}
	c := &Reference{
		cfg:   cfg,
		geom:  geom,
		nb:    nb,
		nm:    nm,
		rows:  1 << (geom.IndexBits() - nb),
		stats: cache.NewStats(geom.Frames),
	}
	c.frames = make([]scalarFrame, geom.Frames)
	c.policies = make([]cache.Policy, c.rows)
	for r := range c.policies {
		c.policies[r] = cache.NewPolicy(cfg.Policy, cfg.BAS, src)
	}
	return c, nil
}

// Config returns the configuration the cache was built with.
func (c *Reference) Config() Config { return c.cfg }

// row extracts the non-programmable index of a.
func (c *Reference) row(a addr.Addr) int {
	return int(addr.Field(a, c.geom.OffsetBits(), c.geom.IndexBits()-c.nb))
}

// pi extracts the programmable index of a: the top log2(BAS) original
// index bits plus the adjacent low log2(MF) tag bits.
func (c *Reference) pi(a addr.Addr) addr.Addr {
	return addr.Field(a, c.geom.OffsetBits()+c.geom.IndexBits()-c.nb, c.nb+c.nm)
}

// tagRem extracts the tag bits not covered by the PD.
func (c *Reference) tagRem(a addr.Addr) addr.Addr {
	return a >> (c.geom.OffsetBits() + c.geom.IndexBits() + c.nm)
}

// frameIndex maps (cluster, row) to the physical frame index.
func (c *Reference) frameIndex(cluster, row int) int { return cluster*c.rows + row }

// lookupPD returns the cluster whose PD entry matches a's programmable
// index in a's row, or -1. At most one can match (decoding uniqueness).
func (c *Reference) lookupPD(a addr.Addr) int {
	row := c.row(a)
	pi := c.pi(a)
	for cl := 0; cl < c.cfg.BAS; cl++ {
		f := &c.frames[c.frameIndex(cl, row)]
		if f.pdValid && f.pd == pi {
			return cl
		}
	}
	return -1
}

// Access implements cache.Cache.
func (c *Reference) Access(a addr.Addr, write bool) cache.Result {
	row := c.row(a)
	pi := c.pi(a)
	tag := c.tagRem(a)
	pol := c.policies[row]

	if cl := c.lookupPD(a); cl >= 0 {
		fi := c.frameIndex(cl, row)
		f := &c.frames[fi]
		if f.valid && f.tag == tag {
			// Cache hit: single activated word line, one cycle.
			pol.Touch(cl)
			if write {
				f.dirty = true
			}
			c.pdStats.HitPD++
			c.stats.Record(fi, true, write)
			if c.probe != nil {
				c.probe.ObserveAccess(fi, true, write)
			}
			return cache.Result{Hit: true, Frame: fi}
		}
		// PD hit, cache miss: unique decoding forces this frame as the
		// victim (paper §2.3). The replacement policy cannot help here.
		c.pdStats.MissPDHit++
		res := c.refill(fi, scalarFrame{pdValid: true, pd: pi, valid: true, dirty: write, tag: tag}, row, cl)
		c.stats.Record(fi, false, write)
		if c.probe != nil {
			c.probe.ObservePD(true)
			c.probe.ObserveAccess(fi, false, write)
		}
		return res
	}

	// PD miss: the miss is predetermined (no data or tag array read).
	c.pdStats.MissPDMiss++
	cl := -1
	for k := 0; k < c.cfg.BAS; k++ { // cold start: program invalid entries first
		if !c.frames[c.frameIndex(k, row)].pdValid {
			cl = k
			break
		}
	}
	if cl < 0 {
		cl = pol.Victim()
	}
	fi := c.frameIndex(cl, row)
	c.pdStats.Programmed++
	res := c.refill(fi, scalarFrame{pdValid: true, pd: pi, valid: true, dirty: write, tag: tag}, row, cl)
	c.stats.Record(fi, false, write)
	if c.probe != nil {
		c.probe.ObservePD(false)
		c.probe.ObserveReprogram()
		c.probe.ObserveAccess(fi, false, write)
	}
	return res
}

// refill replaces frames[fi] with nf, reporting any eviction, and touches
// the replacement state.
func (c *Reference) refill(fi int, nf scalarFrame, row, cluster int) cache.Result {
	old := c.frames[fi]
	res := cache.Result{Frame: fi}
	if old.valid {
		res.Evicted = true
		res.EvictedAddr = c.frameLineAddr(old, row)
		res.EvictedDirty = old.dirty
		c.stats.RecordEviction(old.dirty)
		if c.probe != nil {
			c.probe.ObserveEvict(old.dirty)
		}
	}
	c.frames[fi] = nf
	c.policies[row].Touch(cluster)
	return res
}

// frameLineAddr reconstructs the line-aligned address cached in f.
func (c *Reference) frameLineAddr(f scalarFrame, row int) addr.Addr {
	off := c.geom.OffsetBits()
	npi := c.geom.IndexBits() - c.nb
	return f.tag<<(off+npi+c.nb+c.nm) | f.pd<<(off+npi) | addr.Addr(row)<<off
}

// Contains implements cache.Cache.
func (c *Reference) Contains(a addr.Addr) bool {
	cl := c.lookupPD(a)
	if cl < 0 {
		return false
	}
	f := &c.frames[c.frameIndex(cl, c.row(a))]
	return f.valid && f.tag == c.tagRem(a)
}

// Stats implements cache.Cache.
func (c *Reference) Stats() *cache.Stats { return c.stats }

// PDStats returns the programmable-decoder counters.
func (c *Reference) PDStats() PDStats { return c.pdStats }

// SetProbe implements cache.Probed. Passing nil detaches.
func (c *Reference) SetProbe(p cache.Probe) { c.probe = p }

// Geometry implements cache.Cache.
func (c *Reference) Geometry() cache.Geometry { return c.geom }

// Name implements cache.Cache.
func (c *Reference) Name() string {
	return fmt.Sprintf("%dkB-bcache-mf%d-bas%d-%s-ref",
		c.cfg.SizeBytes/1024, c.cfg.MF, c.cfg.BAS, c.cfg.Policy)
}

// Reset implements cache.Cache.
func (c *Reference) Reset() {
	for i := range c.frames {
		c.frames[i] = scalarFrame{}
	}
	for _, p := range c.policies {
		p.Reset()
	}
	c.stats.Reset()
	c.pdStats = PDStats{}
}

// CheckInvariants verifies the same structural properties as
// (*BCache).CheckInvariants on the reference representation.
func (c *Reference) CheckInvariants() error {
	maxPD := addr.Addr(1)<<(c.nb+c.nm) - 1
	for row := 0; row < c.rows; row++ {
		seen := make(map[addr.Addr]int, c.cfg.BAS)
		for cl := 0; cl < c.cfg.BAS; cl++ {
			f := &c.frames[c.frameIndex(cl, row)]
			if f.valid && !f.pdValid {
				return fmt.Errorf("core: row %d cluster %d: valid line with unprogrammed PD", row, cl)
			}
			if !f.pdValid {
				continue
			}
			if f.pd > maxPD {
				return fmt.Errorf("core: row %d cluster %d: PD value %#x exceeds %d bits", row, cl, f.pd, c.nb+c.nm)
			}
			if prev, dup := seen[f.pd]; dup {
				return fmt.Errorf("core: row %d: clusters %d and %d share PD value %#x (decoding not unique)", row, prev, cl, f.pd)
			}
			seen[f.pd] = cl
		}
	}
	return nil
}
