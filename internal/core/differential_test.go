package core

import (
	"fmt"
	"reflect"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// diffTrace builds a deterministic access stream that mixes hot rows,
// conflict ping-pong, and uniform noise so every PD path (hit, PD-hit
// miss, PD-miss with cold clusters, PD-miss with policy victim) fires.
type diffAcc struct {
	a     addr.Addr
	write bool
}

func diffTrace(seed uint64, n int) []diffAcc {
	src := rng.New(seed)
	hot := make([]addr.Addr, 32)
	for i := range hot {
		hot[i] = addr.Addr(src.Uint32()) & addr.Max
	}
	out := make([]diffAcc, n)
	for i := range out {
		var a addr.Addr
		switch src.Intn(4) {
		case 0: // uniform noise across the space
			a = addr.Addr(src.Uint32()) & addr.Max
		case 1: // reuse a hot line exactly
			a = hot[src.Intn(len(hot))]
		default: // conflict neighborhood of a hot line (same row, new tag)
			a = hot[src.Intn(len(hot))] + addr.Addr(src.Intn(64))<<17
		}
		out[i] = diffAcc{a: a & addr.Max, write: src.Intn(4) == 0}
	}
	return out
}

// TestDifferentialSWARvsReference replays deterministic random traces
// through the optimized BCache and the scalar Reference oracle and
// demands bit-identical behaviour: every Result, the running Stats and
// PDStats, Contains answers, and CheckInvariants on both, across the
// MF × BAS × policy grid. MF=512 and BAS=16 rows exercise the non-SWAR
// fallback (PDBits > 7 or BAS > lanes).
func TestDifferentialSWARvsReference(t *testing.T) {
	const (
		accesses   = 20000
		checkEvery = 2048
	)
	mfs := []int{1, 2, 4, 8, 16, 512}
	bases := []int{1, 2, 4, 8, 16}
	for _, mf := range mfs {
		for _, bas := range bases {
			for _, pol := range []cache.PolicyKind{cache.LRU, cache.Random} {
				cfg := Config{
					SizeBytes: 16 * 1024,
					LineBytes: 32,
					MF:        mf,
					BAS:       bas,
					Policy:    pol,
					Seed:      0xB00C,
				}
				name := fmt.Sprintf("mf%d-bas%d-%s", mf, bas, pol)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					opt, err := New(cfg)
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					ref, err := NewReference(cfg)
					if err != nil {
						t.Fatalf("NewReference: %v", err)
					}
					if wantSWAR := opt.PDBits() <= 7 && bas <= swarLanes; opt.swar != wantSWAR {
						t.Fatalf("swar = %v, want %v (PDBits=%d BAS=%d)", opt.swar, wantSWAR, opt.PDBits(), bas)
					}
					trace := diffTrace(uint64(mf)<<16|uint64(bas)<<4|uint64(pol), accesses)
					for i, acc := range trace {
						ro := opt.Access(acc.a, acc.write)
						rr := ref.Access(acc.a, acc.write)
						if ro != rr {
							t.Fatalf("access %d (%#x write=%v): Result %+v != reference %+v", i, acc.a, acc.write, ro, rr)
						}
						if (i+1)%checkEvery == 0 {
							compareState(t, i, opt, ref)
							if !opt.Contains(acc.a) {
								t.Fatalf("access %d: %#x not contained right after refill", i, acc.a)
							}
						}
					}
					compareState(t, accesses-1, opt, ref)

					// Contains must agree for both seen and unseen lines.
					probe := diffTrace(0xC0117A135, 512)
					for _, acc := range probe {
						if co, cr := opt.Contains(acc.a), ref.Contains(acc.a); co != cr {
							t.Fatalf("Contains(%#x) = %v, reference %v", acc.a, co, cr)
						}
					}

					// Reset must bring both back to an identical cold state.
					opt.Reset()
					ref.Reset()
					for i, acc := range trace[:checkEvery] {
						ro := opt.Access(acc.a, acc.write)
						rr := ref.Access(acc.a, acc.write)
						if ro != rr {
							t.Fatalf("post-Reset access %d: Result %+v != reference %+v", i, ro, rr)
						}
					}
					compareState(t, checkEvery-1, opt, ref)
				})
			}
		}
	}
}

// compareState asserts identical Stats and PDStats and passing
// invariants on both implementations after access i.
func compareState(t *testing.T, i int, opt *BCache, ref *Reference) {
	t.Helper()
	if err := opt.CheckInvariants(); err != nil {
		t.Fatalf("after access %d: BCache invariants: %v", i, err)
	}
	if err := ref.CheckInvariants(); err != nil {
		t.Fatalf("after access %d: Reference invariants: %v", i, err)
	}
	if got, want := opt.PDStats(), ref.PDStats(); got != want {
		t.Fatalf("after access %d: PDStats %+v != reference %+v", i, got, want)
	}
	if got, want := opt.Stats(), ref.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after access %d: Stats %v != reference %v", i, got, want)
	}
}
