package core_test

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
)

// Example reproduces the paper's §2.2 motivating sequence: four addresses
// that thrash a direct-mapped cache hit like a 2-way cache in the
// B-Cache, at direct-mapped access time.
func Example() {
	bc, err := core.New(core.Config{
		SizeBytes: 256, // the paper's 8-set toy cache, scaled to 32 B lines
		LineBytes: 32,
		MF:        2,
		BAS:       2,
		Policy:    cache.LRU,
	})
	if err != nil {
		panic(err)
	}
	seq := []addr.Addr{0, 32, 256, 288} // the paper's words 0, 1, 8, 9
	for round := 0; round < 3; round++ {
		hits := 0
		for _, a := range seq {
			if bc.Access(a, false).Hit {
				hits++
			}
		}
		fmt.Printf("round %d: %d/4 hits\n", round, hits)
	}
	// Output:
	// round 0: 0/4 hits
	// round 1: 4/4 hits
	// round 2: 4/4 hits
}

// ExampleBCache_PDStats shows the programmable-decoder statistics that
// drive the paper's Figure 3 and Table 6 analyses.
func ExampleBCache_PDStats() {
	bc, err := core.New(core.Config{
		SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU,
	})
	if err != nil {
		panic(err)
	}
	// Eight blocks whose tags agree in their low three bits: every miss
	// is a PD hit and the decoder can never exploit the replacement
	// policy — the pathology Figure 3 shows for wupwise.
	for i := 0; i < 64; i++ {
		bc.Access(addr.Addr((i%2)*8*16*1024), false)
	}
	pd := bc.PDStats()
	fmt.Printf("PD hit rate during misses: %.0f%%\n", 100*pd.HitRateDuringMiss())
	// Output:
	// PD hit rate during misses: 98%
}
