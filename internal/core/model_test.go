package core

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// refBCache is an obviously-correct reference model of the B-Cache built
// from maps and explicit LRU lists, with none of the production code's
// bit manipulation or frame packing. Model-based testing: both
// implementations must agree on every access outcome and every eviction.
type refBCache struct {
	offBits, idxBits uint
	nb, nm           uint
	bas              int

	// rows[row] maps a programmable-index value to the block address the
	// frame with that PD entry holds (or an invalid marker).
	rows []map[addr.Addr]refFrame
	// lru[row] lists PI values from least to most recently used.
	lru [][]addr.Addr
}

type refFrame struct {
	valid bool
	block addr.Addr
}

func newRefBCache(size, line, mf, bas int) *refBCache {
	offBits := addr.Log2(uint64(line))
	idxBits := addr.Log2(uint64(size / line))
	nb := addr.Log2(uint64(bas))
	r := &refBCache{
		offBits: offBits, idxBits: idxBits,
		nb: nb, nm: addr.Log2(uint64(mf)), bas: bas,
	}
	nRows := 1 << (idxBits - nb)
	r.rows = make([]map[addr.Addr]refFrame, nRows)
	r.lru = make([][]addr.Addr, nRows)
	for i := range r.rows {
		r.rows[i] = make(map[addr.Addr]refFrame)
	}
	return r
}

func (r *refBCache) fields(a addr.Addr) (row int, pi, block addr.Addr) {
	block = a >> r.offBits
	row = int(addr.Field(a, r.offBits, r.idxBits-r.nb))
	pi = addr.Field(a, r.offBits+r.idxBits-r.nb, r.nb+r.nm)
	return
}

// touch moves pi to the MRU end of the row's list.
func (r *refBCache) touch(row int, pi addr.Addr) {
	l := r.lru[row]
	for i, v := range l {
		if v == pi {
			l = append(append(append([]addr.Addr{}, l[:i]...), l[i+1:]...), pi)
			r.lru[row] = l
			return
		}
	}
	r.lru[row] = append(l, pi)
}

// access returns (hit, evictedBlock, evictionHappened).
func (r *refBCache) access(a addr.Addr) (bool, addr.Addr, bool) {
	row, pi, block := r.fields(a)
	m := r.rows[row]

	if f, ok := m[pi]; ok {
		// PD hit.
		if f.valid && f.block == block {
			r.touch(row, pi)
			return true, 0, false
		}
		// Forced victim: the frame holding this PD entry.
		old := f
		m[pi] = refFrame{valid: true, block: block}
		r.touch(row, pi)
		return false, old.block, old.valid
	}

	// PD miss: free frame if the row has spare capacity, else the LRU
	// PD entry is reprogrammed.
	if len(m) < r.bas {
		m[pi] = refFrame{valid: true, block: block}
		r.touch(row, pi)
		return false, 0, false
	}
	victimPI := r.lru[row][0]
	old := m[victimPI]
	delete(m, victimPI)
	r.lru[row] = r.lru[row][1:]
	m[pi] = refFrame{valid: true, block: block}
	r.touch(row, pi)
	return false, old.block, old.valid
}

// TestModelEquivalence drives long pseudo-random streams through the
// production B-Cache and the reference model; hits, eviction events, and
// evicted blocks must match exactly, for several geometries.
func TestModelEquivalence(t *testing.T) {
	configs := []Config{
		{SizeBytes: 512, LineBytes: 32, MF: 4, BAS: 4, Policy: cache.LRU},
		{SizeBytes: 2048, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU},
		{SizeBytes: 4096, LineBytes: 64, MF: 2, BAS: 2, Policy: cache.LRU},
		{SizeBytes: 1024, LineBytes: 32, MF: 16, BAS: 2, Policy: cache.LRU},
	}
	for _, cfg := range configs {
		prod := mustBCache(t, cfg)
		ref := newRefBCache(cfg.SizeBytes, cfg.LineBytes, cfg.MF, cfg.BAS)
		src := rng.New(uint64(cfg.MF*100 + cfg.BAS))
		for i := 0; i < 200000; i++ {
			// Mix hot lines and conflicting far blocks so all three PD
			// situations occur.
			var a addr.Addr
			switch src.Intn(3) {
			case 0:
				a = addr.Addr(src.Intn(1 << 14))
			case 1:
				a = addr.Addr(src.Intn(16) * cfg.SizeBytes * 3)
			default:
				a = addr.Addr(src.Intn(1 << 20))
			}
			gotRes := prod.Access(a, false)
			wantHit, wantBlock, wantEvict := ref.access(a)
			if gotRes.Hit != wantHit {
				t.Fatalf("cfg %+v access %d (%#x): hit=%v, model says %v", cfg, i, a, gotRes.Hit, wantHit)
			}
			if gotRes.Evicted != wantEvict {
				t.Fatalf("cfg %+v access %d (%#x): evicted=%v, model says %v", cfg, i, a, gotRes.Evicted, wantEvict)
			}
			if wantEvict {
				gotBlock := gotRes.EvictedAddr >> addr.Log2(uint64(cfg.LineBytes))
				if gotBlock != wantBlock {
					t.Fatalf("cfg %+v access %d (%#x): evicted block %#x, model says %#x",
						cfg, i, a, gotBlock, wantBlock)
				}
			}
		}
		if err := prod.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
