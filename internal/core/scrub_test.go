package core

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// scrubConfigs are the geometries the scrub tests exercise: the paper's
// design point (SWAR), a narrow-BAS SWAR layout with padding lanes, and
// a wide configuration on the scalar fallback path.
var scrubConfigs = []Config{
	{SizeBytes: 16 << 10, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU},
	{SizeBytes: 4 << 10, LineBytes: 32, MF: 2, BAS: 4, Policy: cache.LRU},
	{SizeBytes: 16 << 10, LineBytes: 32, MF: 16, BAS: 16, Policy: cache.LRU},
}

// warm drives n deterministic accesses through c.
func warm(c *BCache, seed uint64, n int) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		c.Access(addr.Addr(r.Uint64())&0xFFFFF, r.Uint64()&1 == 0)
	}
}

// TestScrubCleanIsNoop: a healthy cache scrubs to an empty report.
func TestScrubCleanIsNoop(t *testing.T) {
	for _, cfg := range scrubConfigs {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm(c, 1, 20000)
		rep := c.ScrubPD()
		if rep.Faulty() || rep.Repaired != 0 || rep.Degraded {
			t.Errorf("%s: clean cache scrubbed to %+v", c.Name(), rep)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestScrubRepairsDuplicate: forcing two clusters of a row onto the same
// PD value violates decoding uniqueness; one pass must repair it and
// keep an entry backing a valid line.
func TestScrubRepairsDuplicate(t *testing.T) {
	for _, cfg := range scrubConfigs {
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm(c, 2, 20000)

		// Copy cluster 0's PD value into cluster 1 of row 0.
		row := 0
		if w, bit := c.maskAt(0, row); c.pdValid[w]&bit == 0 {
			t.Fatalf("%s: row 0 cluster 0 unprogrammed after warmup", c.Name())
		}
		c.setPD(1, row, c.pdValue(0, row))
		if err := c.CheckInvariants(); err == nil {
			t.Fatalf("%s: duplicate not detected by invariant check", c.Name())
		}

		rep := c.ScrubPD()
		if rep.Duplicates == 0 {
			t.Errorf("%s: scrub missed the duplicate: %+v", c.Name(), rep)
		}
		if rep.Degraded {
			t.Errorf("%s: one duplicate should not degrade", c.Name())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%s: invariant still broken after scrub: %v", c.Name(), err)
		}
		if rep := c.ScrubPD(); rep.Faulty() {
			t.Errorf("%s: second pass still found faults: %+v", c.Name(), rep)
		}
	}
}

// TestScrubRepairsGhostAndDead: on the SWAR path, flipping raw lane bits
// can fabricate a matchable entry nothing programmed (ghost) or kill a
// programmed one (dead). The scrubber must classify and repair both.
func TestScrubRepairsGhostAndDead(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, LineBytes: 32, MF: 2, BAS: 4, Policy: cache.LRU}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.swar {
		t.Fatal("config expected to use the SWAR path")
	}
	warm(c, 3, 20000)

	// Ghost: clear bit 7 of an unprogrammed lane. Unprogram cluster 2 of
	// row 1 first so the lane is laneInvalid, then flip its MSB.
	c.unprogramPD(2, 1)
	c.invalidateLine(2, 1)
	lb := uint64(cfg.BAS) * laneBits
	c.FlipStateBit(cache.FaultPD, 1*lb+2*laneBits+7)
	// Dead: set bit 7 of a programmed lane (cluster 0 of row 0).
	if w, bit := c.maskAt(0, 0); c.pdValid[w]&bit == 0 {
		t.Fatal("row 0 cluster 0 unprogrammed after warmup")
	}
	c.FlipStateBit(cache.FaultPD, 0*lb+0*laneBits+7)

	rep := c.ScrubPD()
	if rep.Ghosts != 1 || rep.Dead != 1 {
		t.Errorf("scrub report %+v, want 1 ghost and 1 dead", rep)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariant after scrub: %v", err)
	}
}

// TestScrubDegradeLimit: past the cumulative repair limit the cache must
// fall back to direct-mapped mode, stay correct, and Reset must restore
// the healthy mode.
func TestScrubDegradeLimit(t *testing.T) {
	cfg := Config{SizeBytes: 4 << 10, LineBytes: 32, MF: 2, BAS: 4, Policy: cache.LRU}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetScrubDegradeLimit(1)
	warm(c, 4, 20000)
	c.setPD(1, 0, c.pdValue(0, 0)) // one duplicate = one repair = at the limit

	rep := c.ScrubPD()
	if !rep.Degraded || !c.Degraded() {
		t.Fatalf("repair limit 1 with 1 repair should degrade: %+v", rep)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("degraded invariants: %v", err)
	}
	warm(c, 5, 20000) // degraded path must serve accesses without panics
	if got := c.ScrubPD(); !got.Degraded || got.Repaired != 0 {
		t.Errorf("degraded scrub should be a marker no-op, got %+v", got)
	}

	c.Reset()
	if c.Degraded() || c.ScrubRepairsTotal() != 0 {
		t.Error("Reset should restore the healthy mode")
	}
	warm(c, 6, 1000)
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("post-reset invariants: %v", err)
	}
}

// TestDegradedMatchesDirectMapped: the fallback decode (NPI row bits plus
// the low log2(BAS) PI bits) spans exactly the conventional index, so a
// degraded B-Cache must produce the same hit/miss sequence as a plain
// direct-mapped cache of the same size.
func TestDegradedMatchesDirectMapped(t *testing.T) {
	for _, cfg := range scrubConfigs {
		bc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bc.DegradeToDirectMapped()
		dm, err := cache.NewDirectMapped(cfg.SizeBytes, cfg.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(7)
		for i := 0; i < 200000; i++ {
			a := addr.Addr(r.Uint64()) & 0x3FFFFF
			write := r.Uint64()&3 == 0
			got := bc.Access(a, write)
			want := dm.Access(a, write)
			if got.Hit != want.Hit {
				t.Fatalf("%s degraded: access %d addr %#x hit=%v, direct-mapped hit=%v",
					bc.Name(), i, a, got.Hit, want.Hit)
			}
			if got.Evicted != want.Evicted || (got.Evicted && got.EvictedAddr != want.EvictedAddr) {
				t.Fatalf("%s degraded: access %d addr %#x eviction (%v,%#x) vs (%v,%#x)",
					bc.Name(), i, a, got.Evicted, got.EvictedAddr, want.Evicted, want.EvictedAddr)
			}
		}
		if bc.Stats().Misses != dm.Stats().Misses {
			t.Errorf("%s degraded: %d misses, direct-mapped %d",
				bc.Name(), bc.Stats().Misses, dm.Stats().Misses)
		}
	}
}

// FuzzPDScrub throws arbitrary bit flips at every metadata domain of a
// warmed cache and demands the robustness contract: after one scrub pass
// the invariant holds or the cache has explicitly degraded — never a
// silent violation — and a second pass finds nothing left to repair.
func FuzzPDScrub(f *testing.F) {
	f.Add(uint64(1), []byte{0})
	f.Add(uint64(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint64(3), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint64(4), []byte("scrub me"))

	f.Fuzz(func(t *testing.T, seed uint64, flips []byte) {
		cfg := scrubConfigs[int(seed%uint64(len(scrubConfigs)))]
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm(c, seed, 5000)

		// Decode (domain, bit) pairs from the fuzz bytes: 5 bytes each.
		domains := []cache.FaultDomain{cache.FaultTag, cache.FaultValid, cache.FaultDirty, cache.FaultPD}
		for len(flips) >= 5 {
			d := domains[int(flips[0])%len(domains)]
			raw := uint64(flips[1]) | uint64(flips[2])<<8 | uint64(flips[3])<<16 | uint64(flips[4])<<24
			flips = flips[5:]
			if n := c.StateBits(d); n > 0 {
				c.FlipStateBit(d, raw%n)
			}
		}

		rep := c.ScrubPD()
		if err := c.CheckInvariants(); err != nil && !c.Degraded() {
			t.Fatalf("silent invariant violation after scrub: %v (report %+v)", err, rep)
		}
		if rep2 := c.ScrubPD(); rep2.Faulty() && !rep2.Degraded {
			t.Fatalf("second scrub pass still faulty: %+v", rep2)
		}
		// The repaired (or degraded) cache must serve traffic unharmed.
		warm(c, seed+1, 5000)
		if err := c.CheckInvariants(); err != nil && !c.Degraded() {
			t.Fatalf("invariant violated by post-scrub traffic: %v", err)
		}
	})
}
