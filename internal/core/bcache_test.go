package core

import (
	"testing"
	"testing/quick"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

func mustBCache(t testing.TB, cfg Config) *BCache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// paperToy builds the Figure 1(c) cache scaled to 32-byte lines:
// 8 frames (256 B), BAS=2, MF=2, i.e. a 3-bit original index split into a
// 2-bit NPI and a 2-bit PI (1 old index bit + 1 tag bit), LRU.
func paperToy(t testing.TB) *BCache {
	return mustBCache(t, Config{
		SizeBytes: 256, LineBytes: 32, MF: 2, BAS: 2, Policy: cache.LRU,
	})
}

// word converts the paper's word addresses (1-byte lines, 8 sets) to the
// scaled 32-byte-line equivalents.
func word(w int) addr.Addr { return addr.Addr(w * 32) }

func TestPaperExampleThrashingResolved(t *testing.T) {
	// §2.2/2.3: the sequence 0,1,8,9 repeated has zero hits in the
	// direct-mapped cache but hits like a 2-way cache in the B-Cache:
	// 4 warm-up misses, then all hits.
	c := paperToy(t)
	seq := []int{0, 1, 8, 9}
	for round := 0; round < 4; round++ {
		for _, w := range seq {
			r := c.Access(word(w), false)
			if round == 0 && r.Hit {
				t.Fatalf("cold access %d hit", w)
			}
			if round > 0 && !r.Hit {
				t.Fatalf("round %d: B-Cache missed %d; paper predicts 2-way behaviour", round, w)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 warm-up misses", got)
	}
}

func TestPaperExamplePDHitForcesVictim(t *testing.T) {
	// §2.3 second situation: after 0,1,8,9 the access to 25 has a PD hit
	// (its programmable index matches the entry programmed for 9), so 25
	// MUST replace 9 — 1 stays resident.
	c := paperToy(t)
	for _, w := range []int{0, 1, 8, 9} {
		c.Access(word(w), false)
	}
	before := c.PDStats()
	r := c.Access(word(25), false)
	if r.Hit {
		t.Fatal("access to 25 hit")
	}
	after := c.PDStats()
	if after.MissPDHit != before.MissPDHit+1 {
		t.Fatalf("expected a PD hit during the miss: %+v -> %+v", before, after)
	}
	if !r.Evicted || r.EvictedAddr != word(9) {
		t.Fatalf("25 evicted %#x, want address 9 (%#x)", r.EvictedAddr, word(9))
	}
	for _, w := range []int{0, 1, 8, 25} {
		if !c.Contains(word(w)) {
			t.Errorf("address %d should be resident", w)
		}
	}
	if c.Contains(word(9)) {
		t.Error("address 9 should have been evicted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExamplePDMissUsesPolicy(t *testing.T) {
	// §2.3 third situation: address 13's programmable index matches no
	// programmed PD entry, so the miss is predetermined and the victim is
	// chosen by LRU from the row's two clusters.
	c := paperToy(t)
	for _, w := range []int{0, 1, 8, 9} {
		c.Access(word(w), false)
	}
	// Touch 1 so that 9 is the LRU candidate in row 1.
	c.Access(word(1), false)
	before := c.PDStats()
	r := c.Access(word(13), false)
	if r.Hit {
		t.Fatal("access to 13 hit")
	}
	after := c.PDStats()
	if after.MissPDMiss != before.MissPDMiss+1 {
		t.Fatalf("expected a PD miss: %+v -> %+v", before, after)
	}
	if after.Programmed != before.Programmed+1 {
		t.Fatal("PD miss refill did not reprogram a decoder entry")
	}
	if !r.Evicted || r.EvictedAddr != word(9) {
		t.Fatalf("13 evicted %#x, want LRU victim 9 (%#x)", r.EvictedAddr, word(9))
	}
	if !c.Contains(word(1)) || !c.Contains(word(13)) {
		t.Error("addresses 1 and 13 should be resident")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 16384, LineBytes: 32, MF: 0, BAS: 8, Policy: cache.LRU},
		{SizeBytes: 16384, LineBytes: 32, MF: 3, BAS: 8, Policy: cache.LRU},
		{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 0, Policy: cache.LRU},
		{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 1024, Policy: cache.LRU}, // BAS > sets
		{SizeBytes: 16384, LineBytes: 32, MF: 1 << 20, BAS: 8, Policy: cache.LRU},
		{SizeBytes: 1000, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestPaperDesignPoint(t *testing.T) {
	// The paper's 16 kB design: MF=8, BAS=8 → 6-bit PD, 6-bit NPI
	// (Figure 2: eight 6×16 PDs, I5..I0 non-programmable).
	c := mustBCache(t, Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if c.PDBits() != 6 || c.NPDBits() != 6 {
		t.Fatalf("PD/NPD bits = %d/%d, want 6/6", c.PDBits(), c.NPDBits())
	}
}

// TestDegenerateEqualsDirectMapped: with BAS=1 (any MF) or MF=1 ∧ BAS=1,
// the B-Cache must behave exactly like a direct-mapped cache, access for
// access (paper §3.1: MF=1 or BAS=1 is a traditional direct-mapped cache).
func TestDegenerateEqualsDirectMapped(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 4096, LineBytes: 32, MF: 1, BAS: 1, Policy: cache.LRU},
		{SizeBytes: 4096, LineBytes: 32, MF: 4, BAS: 1, Policy: cache.LRU},
		{SizeBytes: 4096, LineBytes: 32, MF: 1, BAS: 1, Policy: cache.Random},
	} {
		bc := mustBCache(t, cfg)
		dm, err := cache.NewDirectMapped(4096, 32)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(31)
		for i := 0; i < 50000; i++ {
			a := addr.Addr(src.Intn(1 << 18))
			w := src.Intn(4) == 0
			rb := bc.Access(a, w)
			rd := dm.Access(a, w)
			if rb.Hit != rd.Hit {
				t.Fatalf("cfg %+v: access %d (%#x): bcache hit=%v, dm hit=%v", cfg, i, a, rb.Hit, rd.Hit)
			}
		}
		if err := bc.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMF1SettlesToDirectMapped: with MF=1 the PD holds only original
// index bits, so after the decoders are programmed the hit/miss behaviour
// converges to direct-mapped (§3.1).
func TestMF1SettlesToDirectMapped(t *testing.T) {
	bc := mustBCache(t, Config{SizeBytes: 4096, LineBytes: 32, MF: 1, BAS: 8, Policy: cache.LRU})
	dm, _ := cache.NewDirectMapped(4096, 32)
	src := rng.New(41)
	stream := make([]addr.Addr, 200000)
	for i := range stream {
		stream[i] = addr.Addr(src.Intn(1 << 15))
	}
	var bcMiss, dmMiss int
	for _, a := range stream {
		if !bc.Access(a, false).Hit {
			bcMiss++
		}
		if !dm.Access(a, false).Hit {
			dmMiss++
		}
	}
	ratio := float64(bcMiss) / float64(dmMiss)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("MF=1 B-Cache misses %d vs DM %d (ratio %.3f), want ≈1", bcMiss, dmMiss, ratio)
	}
}

// TestApproachesSetAssociative: on a conflict-alias stream (the pattern
// the B-Cache is built for), an MF=8/BAS=8 B-Cache must eliminate most of
// the direct-mapped conflict misses, landing between the 4-way and 8-way
// caches (paper §4.3.3: reductions as good as 4-way, approaching 8-way).
func TestApproachesSetAssociative(t *testing.T) {
	const size, line = 16384, 32
	run := func(c cache.Cache) uint64 {
		src := rng.New(7)
		// 6 blocks aliasing in the same sets (stride = 13*32kB keeps tags
		// uncorrelated), visited in random order, 2 lines per visit.
		for i := 0; i < 300000; i++ {
			blk := src.Intn(6)
			ln := src.Intn(2)
			c.Access(addr.Addr(blk*13*32768+ln*32), false)
		}
		return c.Stats().Misses
	}
	dm, _ := cache.NewDirectMapped(size, line)
	w4, _ := cache.NewSetAssoc(size, line, 4, cache.LRU, nil)
	w8, _ := cache.NewSetAssoc(size, line, 8, cache.LRU, nil)
	bc := mustBCache(t, Config{SizeBytes: size, LineBytes: line, MF: 8, BAS: 8, Policy: cache.LRU})

	mDM, m4, m8, mBC := run(dm), run(w4), run(w8), run(bc)
	if err := bc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if mDM < 10*m8 {
		t.Fatalf("stream not conflict-bound enough: DM=%d 8way=%d", mDM, m8)
	}
	if mBC > m4 {
		t.Errorf("B-Cache misses %d exceed 4-way %d (DM=%d, 8-way=%d)", mBC, m4, mDM, m8)
	}
	if mBC*2 > mDM {
		t.Errorf("B-Cache removed under half the DM misses: %d vs %d", mBC, mDM)
	}
}

// TestLowTagCollisionDefeatsPD: blocks at a stride whose tag difference
// is a multiple of MF share the same programmable index, so every miss is
// a PD hit and the B-Cache degrades to direct-mapped (the wupwise
// behaviour of Figure 3). Raising MF past the collision breaks the tie.
func TestLowTagCollisionDefeatsPD(t *testing.T) {
	const size, line = 16384, 32
	stream := func(c cache.Cache) {
		// Two blocks 8 cache-sizes apart: tags differ by 8, so their low
		// three tag bits coincide (MF=8 sees identical PIs).
		for i := 0; i < 10000; i++ {
			c.Access(addr.Addr((i%2)*8*size), false)
		}
	}
	weak := mustBCache(t, Config{SizeBytes: size, LineBytes: line, MF: 8, BAS: 8, Policy: cache.LRU})
	stream(weak)
	if hr := weak.PDStats().HitRateDuringMiss(); hr < 0.99 {
		t.Fatalf("MF=8 PD hit rate during misses = %.3f, want ≈1 (collision)", hr)
	}
	if miss := weak.Stats().Misses; miss < 9990 {
		t.Fatalf("MF=8 misses = %d, want thrashing (≈10000)", miss)
	}

	strong := mustBCache(t, Config{SizeBytes: size, LineBytes: line, MF: 16, BAS: 8, Policy: cache.LRU})
	stream(strong)
	if miss := strong.Stats().Misses; miss > 10 {
		t.Fatalf("MF=16 misses = %d, want ≈2 (collision broken)", miss)
	}
}

// TestInvariantsUnderRandomStreams is the core property test: decoding
// uniqueness and PD/line consistency hold after arbitrary access streams,
// for a range of MF/BAS/policy combinations.
func TestInvariantsUnderRandomStreams(t *testing.T) {
	cfgs := []Config{
		{SizeBytes: 2048, LineBytes: 32, MF: 2, BAS: 2, Policy: cache.LRU},
		{SizeBytes: 2048, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU},
		{SizeBytes: 2048, LineBytes: 32, MF: 16, BAS: 4, Policy: cache.Random, Seed: 5},
		{SizeBytes: 4096, LineBytes: 64, MF: 4, BAS: 8, Policy: cache.Random, Seed: 6},
		{SizeBytes: 2048, LineBytes: 32, MF: 64, BAS: 2, Policy: cache.LRU},
	}
	f := func(seed uint64) bool {
		src := rng.New(seed)
		for _, cfg := range cfgs {
			c := mustBCache(t, cfg)
			for i := 0; i < 3000; i++ {
				a := addr.Addr(src.Intn(1 << 16))
				c.Access(a, src.Intn(3) == 0)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("cfg %+v seed %d: %v", cfg, seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestContainsConsistent: Contains must agree with Access hit results and
// a just-accessed address must be resident.
func TestContainsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := mustBCache(t, Config{SizeBytes: 1024, LineBytes: 32, MF: 8, BAS: 4, Policy: cache.LRU})
		for i := 0; i < 3000; i++ {
			a := addr.Addr(src.Intn(1 << 14))
			want := c.Contains(a)
			r := c.Access(a, false)
			if r.Hit != want || !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEvictedAddrRoundTrip: the reconstructed eviction address must be
// the line that was actually cached (reinserting it must not hit anything
// else, and re-accessing the evicted address must miss).
func TestEvictedAddrRoundTrip(t *testing.T) {
	c := mustBCache(t, Config{SizeBytes: 1024, LineBytes: 32, MF: 8, BAS: 4, Policy: cache.LRU})
	src := rng.New(3)
	inserted := map[addr.Addr]bool{}
	for i := 0; i < 5000; i++ {
		a := addr.Align(addr.Addr(src.Intn(1<<15)), 32)
		r := c.Access(a, false)
		inserted[a] = true
		if r.Evicted {
			if !inserted[r.EvictedAddr] {
				t.Fatalf("evicted address %#x was never inserted", r.EvictedAddr)
			}
			if c.Contains(r.EvictedAddr) {
				t.Fatalf("evicted address %#x still resident", r.EvictedAddr)
			}
		}
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := mustBCache(t, Config{SizeBytes: 256, LineBytes: 32, MF: 2, BAS: 2, Policy: cache.LRU})
	c.Access(0, true) // dirty
	// Evict it via a PD-hit replacement: address with the same row and pi.
	// Row = bits[5,6], pi = bits[7,8]; adding 1<<9 keeps both.
	r := c.Access(1<<9, false)
	if !r.Evicted || !r.EvictedDirty || r.EvictedAddr != 0 {
		t.Fatalf("eviction = %+v, want dirty line 0", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestPDStatsPartitionMisses(t *testing.T) {
	// Every miss is either a PD hit or a PD miss; every hit is a PD hit.
	c := mustBCache(t, Config{SizeBytes: 512, LineBytes: 32, MF: 4, BAS: 4, Policy: cache.LRU})
	src := rng.New(77)
	for i := 0; i < 20000; i++ {
		c.Access(addr.Addr(src.Intn(1<<13)), false)
	}
	s, pd := c.Stats(), c.PDStats()
	if pd.MissPDHit+pd.MissPDMiss != s.Misses {
		t.Fatalf("PD miss partition %d+%d != misses %d", pd.MissPDHit, pd.MissPDMiss, s.Misses)
	}
	if pd.HitPD != s.Hits {
		t.Fatalf("PD hit count %d != hits %d", pd.HitPD, s.Hits)
	}
	if pd.Programmed != pd.MissPDMiss {
		t.Fatalf("programmed %d != PD misses %d", pd.Programmed, pd.MissPDMiss)
	}
}

func TestReset(t *testing.T) {
	c := mustBCache(t, Config{SizeBytes: 512, LineBytes: 32, MF: 4, BAS: 4, Policy: cache.LRU})
	c.Access(0x1234, false)
	c.Reset()
	if c.Contains(0x1234) {
		t.Fatal("Reset left a line resident")
	}
	if c.Stats().Accesses != 0 || c.PDStats() != (PDStats{}) {
		t.Fatal("Reset left counters")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRandomVsLRU: on a conflict-heavy stream, both policies must beat
// direct-mapped; LRU should be at least as good as random (paper §3.3:
// "LRU may achieve a better hit rate").
func TestRandomVsLRU(t *testing.T) {
	run := func(pol cache.PolicyKind) uint64 {
		c := mustBCache(t, Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: pol, Seed: 9})
		src := rng.New(4)
		for i := 0; i < 200000; i++ {
			blk := src.Intn(5)
			c.Access(addr.Addr(blk*7*32768+src.Intn(4)*32), false)
		}
		return c.Stats().Misses
	}
	lru, random := run(cache.LRU), run(cache.Random)
	dm, _ := cache.NewDirectMapped(16384, 32)
	src := rng.New(4)
	for i := 0; i < 200000; i++ {
		blk := src.Intn(5)
		dm.Access(addr.Addr(blk*7*32768+src.Intn(4)*32), false)
	}
	dmMiss := dm.Stats().Misses
	if lru >= dmMiss/2 || random >= dmMiss/2 {
		t.Fatalf("policies did not reduce conflict misses: lru=%d random=%d dm=%d", lru, random, dmMiss)
	}
	if lru > random+random/10 {
		t.Errorf("LRU (%d misses) much worse than random (%d)", lru, random)
	}
}

func BenchmarkBCacheAccess(b *testing.B) {
	c := mustBCache(b, Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	src := rng.New(5)
	addrs := make([]addr.Addr, 4096)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], false)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// BenchmarkReferenceAccess is the scalar oracle on the same stream, so
// the SWAR kernel's speedup is visible in one benchstat run.
func BenchmarkReferenceAccess(b *testing.B) {
	c, err := NewReference(Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(5)
	addrs := make([]addr.Addr, 4096)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], false)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
}

// TestFullTagPDEqualsSetAssociative is the §6.7 limit theorem: when the
// PD holds the entire tag (MF = 2^tagBits), every miss is a PD miss, the
// replacement policy always has a free choice, and the B-Cache becomes
// exactly a BAS-way set-associative LRU cache — the HAC. This must hold
// access for access.
func TestFullTagPDEqualsSetAssociative(t *testing.T) {
	const size, line = 1024, 32 // 32 frames; tag bits = 32-5-5 = 22
	for _, bas := range []int{2, 4, 8} {
		bc := mustBCache(t, Config{
			SizeBytes: size, LineBytes: line,
			MF: 1 << 22, BAS: bas, Policy: cache.LRU,
		})
		sa, err := cache.NewSetAssoc(size, line, bas, cache.LRU, nil)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(bas))
		for i := 0; i < 100000; i++ {
			a := addr.Addr(src.Intn(1 << 16))
			w := src.Intn(4) == 0
			rb := bc.Access(a, w)
			rs := sa.Access(a, w)
			if rb.Hit != rs.Hit {
				t.Fatalf("BAS=%d: access %d (%#x): bcache=%v setassoc=%v", bas, i, a, rb.Hit, rs.Hit)
			}
		}
		// In the full-tag limit the PD never hits during a miss.
		if pd := bc.PDStats(); pd.MissPDHit != 0 {
			t.Fatalf("BAS=%d: %d PD hits during misses in the full-tag limit", bas, pd.MissPDHit)
		}
		if err := bc.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMissRateMonotonicInMF: more programmable bits can only help on
// these streams (the Figure 4/5 trend).
func TestMissRateMonotonicInMF(t *testing.T) {
	src := rng.New(55)
	stream := make([]addr.Addr, 150000)
	for i := range stream {
		if src.Intn(3) == 0 {
			stream[i] = addr.Addr(src.Intn(8) * 9 * 16384)
		} else {
			stream[i] = addr.Addr(src.Intn(4096))
		}
	}
	prev := uint64(1 << 62)
	for _, mf := range []int{1, 2, 4, 8, 16} {
		c := mustBCache(t, Config{SizeBytes: 16384, LineBytes: 32, MF: mf, BAS: 8, Policy: cache.LRU})
		for _, a := range stream {
			c.Access(a, false)
		}
		m := c.Stats().Misses
		if m > prev+prev/20 {
			t.Errorf("MF=%d misses=%d clearly above MF=%d misses=%d", mf, m, mf/2, prev)
		}
		prev = m
	}
}

// TestCheckInvariantsDetectsViolations corrupts internal state directly
// (white-box) and confirms every violation class is caught — otherwise
// the invariant checker itself could silently rot.
func TestCheckInvariantsDetectsViolations(t *testing.T) {
	mk := func() *BCache {
		return mustBCache(t, Config{SizeBytes: 512, LineBytes: 32, MF: 4, BAS: 4, Policy: cache.LRU})
	}

	t.Run("duplicate-pd", func(t *testing.T) {
		c := mk()
		c.Access(0, false)
		// Copy cluster 0's PD value into another cluster of row 0.
		c.setPD(1, 0, c.pdValue(0, 0))
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("duplicate PD value not detected")
		}
	})

	t.Run("valid-line-unprogrammed-pd", func(t *testing.T) {
		c := mk()
		c.valid[0] |= 1 // cluster 0 of row 0, with no PD entry programmed
		c.tags[0] = 1
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("valid line with invalid PD not detected")
		}
	})

	t.Run("oversized-pd", func(t *testing.T) {
		c := mk()
		c.setPD(0, 0, 0x7F) // MF=4/BAS=4 has a 4-bit PD: max value 0xF
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("oversized PD value not detected")
		}
	})

	t.Run("lane-bitmask-disagreement", func(t *testing.T) {
		c := mk()
		if !c.swar {
			t.Skip("packed-lane consistency only applies to the SWAR path")
		}
		c.pdValid[0] |= 1 // bit set but lane left at laneInvalid
		if err := c.CheckInvariants(); err == nil {
			t.Fatal("PD lane / bitmask disagreement not detected")
		}
	})

	t.Run("clean-state-passes", func(t *testing.T) {
		c := mk()
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDescribe(t *testing.T) {
	c := mustBCache(t, Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	want := "tag[31:17] | PI: tag[16:14]+idx[13:11] | NPI: idx[10:5] | off[4:0]"
	if got := c.Describe(); got != want {
		t.Fatalf("Describe() = %q, want %q", got, want)
	}
}
