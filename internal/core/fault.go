package core

import (
	"bcache/internal/addr"
	"bcache/internal/cache"
)

// Fault-injection state accessors: BCache exposes its metadata arrays —
// including the programmable-decoder CAM, the state the design is
// uniquely exposed through — as flat, stably-numbered bit spaces for
// internal/fault. The numbering is part of the fault log contract.
//
// Site numbering:
//
//	FaultTag:   bit = frame*tagBits + b          (b < tagBits)
//	FaultValid: bit = cluster*rows + row          (one bit per frame)
//	FaultDirty: bit = cluster*rows + row
//	FaultPD:    SWAR   — bit = row*(BAS*8) + b    (raw packed lanes, so
//	            lane-invalid encoding bits are injectable: a flip can
//	            create a matchable ghost entry or kill a live one; the
//	            padding lanes above BAS model no hardware and are not
//	            injectable)
//	            scalar — bit = frame*PDBits + b

// faultTagBits returns the stored tag width in bits.
func (c *BCache) faultTagBits() uint64 {
	return uint64(addr.Bits) - uint64(c.tagShift)
}

// StateBits reports the number of injectable state bits in domain d.
func (c *BCache) StateBits(d cache.FaultDomain) uint64 {
	switch d {
	case cache.FaultTag:
		return uint64(c.geom.Frames) * c.faultTagBits()
	case cache.FaultValid, cache.FaultDirty:
		return uint64(c.geom.Frames)
	case cache.FaultPD:
		if c.swar {
			return uint64(c.rows) * uint64(c.cfg.BAS) * laneBits
		}
		return uint64(c.geom.Frames) * uint64(c.PDBits())
	}
	return 0
}

// frameSite decomposes a Valid/Dirty site number into (cluster, row).
func (c *BCache) frameSite(bit uint64) (cluster, row int) {
	return int(bit) / c.rows, int(bit) % c.rows
}

// FlipStateBit flips bit `bit` of domain d (a silent soft error).
func (c *BCache) FlipStateBit(d cache.FaultDomain, bit uint64) {
	switch d {
	case cache.FaultTag:
		tb := c.faultTagBits()
		c.tags[bit/tb] ^= 1 << (bit % tb)
	case cache.FaultValid:
		cl, row := c.frameSite(bit)
		w, b := c.maskAt(cl, row)
		c.valid[w] ^= b
	case cache.FaultDirty:
		cl, row := c.frameSite(bit)
		w, b := c.maskAt(cl, row)
		c.dirty[w] ^= b
	case cache.FaultPD:
		if c.swar {
			lb := uint64(c.cfg.BAS) * laneBits
			c.pdWords[bit/lb] ^= 1 << (bit % lb)
		} else {
			pb := uint64(c.PDBits())
			c.pdVals[bit/pb] ^= 1 << (bit % pb)
		}
	}
}

// InvalidateSite conservatively repairs the site owning bit `bit` of
// domain d after a detected error: the line is dropped, and a PD-domain
// hit additionally unprograms the decoder entry so it can never fire a
// corrupt match.
func (c *BCache) InvalidateSite(d cache.FaultDomain, bit uint64) {
	var cluster, row int
	unprogram := false
	switch d {
	case cache.FaultTag:
		fi := int(bit / c.faultTagBits())
		cluster, row = fi/c.rows, fi%c.rows
	case cache.FaultValid, cache.FaultDirty:
		cluster, row = c.frameSite(bit)
	case cache.FaultPD:
		if c.swar {
			lb := uint64(c.cfg.BAS) * laneBits
			row = int(bit / lb)
			cluster = int(bit%lb) / laneBits
		} else {
			fi := int(bit / uint64(c.PDBits()))
			cluster, row = fi/c.rows, fi%c.rows
		}
		unprogram = true
	default:
		return
	}
	w, b := c.maskAt(cluster, row)
	c.valid[w] &^= b
	c.dirty[w] &^= b
	if unprogram {
		c.unprogramPD(cluster, row)
	}
}

// unprogramPD clears the PD entry of (cluster, row): the lane returns to
// the invalid encoding (SWAR) and the pdValid bit drops, so the entry
// can neither match nor count as programmed.
func (c *BCache) unprogramPD(cluster, row int) {
	if c.swar {
		sh := uint(cluster) * 8
		c.pdWords[row] = c.pdWords[row]&^(0xFF<<sh) | laneInvalid<<sh
	} else {
		c.pdVals[c.frameIndex(cluster, row)] = 0
	}
	w, b := c.maskAt(cluster, row)
	c.pdValid[w] &^= b
}
