package core

import (
	"bcache/internal/addr"
	"bcache/internal/cache"
)

// The PD scrubber is the B-Cache's self-healing path. All of the design's
// extra state lives in the programmable decoder, and a single upset bit
// there can silently break the decoding-uniqueness invariant (§3.2) and
// corrupt every later lookup of the row: a ghost entry can fire a second
// word line, a duplicate can shadow a live line, a dead entry strands its
// line unreachable. ScrubPD walks the decoder, classifies every
// inconsistency, and repairs each one conservatively (unprogram the
// entry, drop its line — the functional model's "refetch"). When the
// cumulative damage passes a configurable limit, or a repair pass somehow
// fails to restore the invariant, the cache degrades to plain
// direct-mapped indexing: the PD is switched off entirely and decoding
// falls back to the conventional index bits, trading the conflict-miss
// win for guaranteed correctness.

// ScrubReport is the outcome of one ScrubPD pass.
type ScrubReport struct {
	// Ghosts are matchable PD lanes whose pdValid bit is clear: CAM
	// content that could fire a word line nothing programmed (SWAR path).
	Ghosts int
	// Dead are programmed entries whose lane reads as invalid: the entry
	// can never match, stranding any line behind it (SWAR path).
	Dead int
	// OutOfRange are programmed entries whose value exceeds PDBits.
	OutOfRange int
	// Duplicates are entries sharing a PD value within a row — direct
	// violations of decoding uniqueness.
	Duplicates int
	// Orphans are valid lines with no programmed PD entry (unreachable).
	Orphans int
	// Repaired counts PD entries unprogrammed or rewritten to restore
	// the invariant.
	Repaired int
	// LinesInvalidated counts resident lines dropped during repair.
	LinesInvalidated int
	// Degraded reports that the cache is (now) running in direct-mapped
	// fallback mode.
	Degraded bool
}

// Faulty reports whether the pass found anything to repair.
func (r ScrubReport) Faulty() bool {
	return r.Ghosts+r.Dead+r.OutOfRange+r.Duplicates+r.Orphans > 0
}

// add accumulates pass totals (used by campaign aggregation).
func (r *ScrubReport) Add(o ScrubReport) {
	r.Ghosts += o.Ghosts
	r.Dead += o.Dead
	r.OutOfRange += o.OutOfRange
	r.Duplicates += o.Duplicates
	r.Orphans += o.Orphans
	r.Repaired += o.Repaired
	r.LinesInvalidated += o.LinesInvalidated
	r.Degraded = r.Degraded || o.Degraded
}

// SetScrubDegradeLimit arms graceful degradation: once the cumulative
// number of scrub repairs over the cache's lifetime reaches n, the next
// ScrubPD pass switches the cache to direct-mapped fallback instead of
// repairing forever. n <= 0 (the default) never degrades on count alone;
// a repair pass that fails to restore the invariant still degrades.
func (c *BCache) SetScrubDegradeLimit(n int) { c.scrubLimit = n }

// ScrubRepairsTotal returns the lifetime count of scrub repairs.
func (c *BCache) ScrubRepairsTotal() int { return c.scrubRepairs }

// Degraded reports whether the cache has fallen back to plain
// direct-mapped indexing (the PD is switched off).
func (c *BCache) Degraded() bool { return c.degraded }

// ScrubPD detects and repairs programmable-decoder corruption, restoring
// decoding uniqueness or degrading to direct-mapped indexing. It is safe
// to call at any point between accesses; a clean decoder is a no-op.
func (c *BCache) ScrubPD() ScrubReport {
	var rep ScrubReport
	if c.degraded {
		rep.Degraded = true
		return rep
	}
	maxPD := addr.Addr(1)<<c.PDBits() - 1
	seen := make(map[addr.Addr]int, c.cfg.BAS)
	for row := 0; row < c.rows; row++ {
		clear(seen)
		for cl := 0; cl < c.cfg.BAS; cl++ {
			w, bit := c.maskAt(cl, row)
			programmed := c.pdValid[w]&bit != 0
			lineValid := c.valid[w]&bit != 0

			if c.swar {
				lane := c.pdWords[row] >> (uint(cl) * 8) & 0xFF
				switch {
				case !programmed && lane != laneInvalid:
					// Ghost: raw CAM content with no owner. The SWAR
					// matcher scans raw lanes, so a ghost with bit 7
					// clear could fire for a real programmable index.
					rep.Ghosts++
					rep.Repaired++
					c.unprogramPD(cl, row)
					if lineValid {
						rep.Orphans++
						rep.LinesInvalidated++
						c.invalidateLine(cl, row)
					}
					continue
				case programmed && lane&laneInvalid != 0:
					// Dead: a programmed entry that can never match.
					rep.Dead++
					rep.Repaired++
					c.unprogramPD(cl, row)
					if lineValid {
						rep.LinesInvalidated++
						c.invalidateLine(cl, row)
					}
					continue
				}
			}
			if !programmed {
				if lineValid {
					// Orphan: a resident line no lookup can reach.
					rep.Orphans++
					rep.LinesInvalidated++
					c.invalidateLine(cl, row)
				}
				continue
			}

			pd := c.pdValue(cl, row)
			if pd > maxPD {
				rep.OutOfRange++
				rep.Repaired++
				c.unprogramPD(cl, row)
				if lineValid {
					rep.LinesInvalidated++
					c.invalidateLine(cl, row)
				}
				continue
			}
			if prev, dup := seen[pd]; dup {
				// Duplicate PD value: decoding is no longer unique.
				// Keep the entry backing a valid line (prefer the
				// earlier cluster when both or neither are valid —
				// the choice is deterministic, which matters more to
				// the campaign than which copy was "right").
				rep.Duplicates++
				rep.Repaired++
				victim := cl
				pw, pb := c.maskAt(prev, row)
				if !lineValid || c.valid[pw]&pb == 0 {
					// current invalid, or previous invalid: evict the
					// invalid one (current first).
					if !lineValid {
						victim = cl
					} else {
						victim = prev
						seen[pd] = cl
					}
				}
				vw, vb := c.maskAt(victim, row)
				if c.valid[vw]&vb != 0 {
					rep.LinesInvalidated++
					c.invalidateLine(victim, row)
				}
				c.unprogramPD(victim, row)
				continue
			}
			seen[pd] = cl
		}
	}

	c.scrubRepairs += rep.Repaired
	if c.scrubLimit > 0 && c.scrubRepairs >= c.scrubLimit {
		// Too much cumulative damage: stop patching a decoder that keeps
		// failing and fall back to conventional indexing.
		c.DegradeToDirectMapped()
	} else if rep.Repaired > 0 || rep.Orphans > 0 {
		// Defense in depth: a repair pass must leave the invariant
		// intact. If it somehow did not, degrading is the only safe
		// answer — zero silent violations, ever.
		if err := c.CheckInvariants(); err != nil {
			c.DegradeToDirectMapped()
		}
	}
	rep.Degraded = c.degraded
	return rep
}

// invalidateLine drops the resident line of (cluster, row) without
// touching the PD entry.
func (c *BCache) invalidateLine(cluster, row int) {
	w, bit := c.maskAt(cluster, row)
	c.valid[w] &^= bit
	c.dirty[w] &^= bit
}

// DegradeToDirectMapped switches the cache to conventional direct-mapped
// indexing: the entire contents are flushed (tags stored before and
// after the switch have different widths, so mixing them would be
// incoherent), the PD is cleared and from then on ignored, and each
// address maps to the frame its conventional index bits select. Miss
// rates return to baseline direct-mapped levels but every lookup is
// correct by construction. Reset restores the healthy mode.
func (c *BCache) DegradeToDirectMapped() {
	if c.degraded {
		return
	}
	for i := range c.pdWords {
		c.pdWords[i] = allLanesInvalid
	}
	for i := range c.pdVals {
		c.pdVals[i] = 0
	}
	for i := range c.pdValid {
		c.pdValid[i] = 0
		c.valid[i] = 0
		c.dirty[i] = 0
	}
	c.degraded = true
}

// accessDegraded is the direct-mapped fallback path: the low log2(BAS)
// bits of the programmable index are exactly the top conventional index
// bits, so (cluster, row) spans the same bits a conventional
// direct-mapped cache of this size decodes, and the stored tag widens to
// cover everything above them.
func (c *BCache) accessDegraded(a addr.Addr, write bool) cache.Result {
	row := c.row(a)
	cl := int(c.pi(a)) & (c.cfg.BAS - 1)
	tag := a >> (c.piShift + c.nb)
	fi := c.frameIndex(cl, row)
	w, bit := c.maskAt(cl, row)

	if c.valid[w]&bit != 0 && c.tags[fi] == tag {
		if write {
			c.dirty[w] |= bit
		}
		c.stats.Record(fi, true, write)
		if c.probe != nil {
			c.probe.ObserveAccess(fi, true, write)
		}
		return cache.Result{Hit: true, Frame: fi}
	}

	res := cache.Result{Frame: fi}
	if c.valid[w]&bit != 0 {
		dirty := c.dirty[w]&bit != 0
		res.Evicted = true
		res.EvictedAddr = c.tags[fi]<<(c.piShift+c.nb) |
			addr.Addr(cl)<<c.piShift | addr.Addr(row)<<c.rowShift
		res.EvictedDirty = dirty
		c.stats.RecordEviction(dirty)
		if c.probe != nil {
			c.probe.ObserveEvict(dirty)
		}
	}
	c.tags[fi] = tag
	c.valid[w] |= bit
	if write {
		c.dirty[w] |= bit
	} else {
		c.dirty[w] &^= bit
	}
	c.stats.Record(fi, false, write)
	if c.probe != nil {
		c.probe.ObserveAccess(fi, false, write)
	}
	return res
}
