package cache

import "bcache/internal/addr"

// Fault-injection state accessors: SetAssoc exposes its raw metadata
// arrays as flat, stably-numbered bit spaces so internal/fault can flip
// deterministic sites. The numbering is part of the fault log contract —
// changing it changes campaign byte-identity, so keep it append-only.
//
// Site numbering:
//
//	FaultTag:   bit = frame*tagBits + b  (b < tagBits)
//	FaultValid: bit = set*Ways + way
//	FaultDirty: bit = set*Ways + way
//	FaultPD:    absent (no programmable decoder)

// tagBits returns the stored tag width in bits.
func (c *SetAssoc) tagBits() uint64 {
	return uint64(addr.Bits) - uint64(c.offBits) - uint64(c.idxBits)
}

// StateBits reports the number of injectable state bits in domain d.
func (c *SetAssoc) StateBits(d FaultDomain) uint64 {
	switch d {
	case FaultTag:
		return uint64(c.geom.Frames) * c.tagBits()
	case FaultValid, FaultDirty:
		return uint64(c.geom.Frames)
	}
	return 0
}

// setWay decomposes a Valid/Dirty site number into mask coordinates.
func (c *SetAssoc) setWay(bit uint64) (word int, mask uint64) {
	set := int(bit) / c.geom.Ways
	way := int(bit) % c.geom.Ways
	return set*c.maskWords + way>>6, 1 << (uint(way) & 63)
}

// FlipStateBit flips bit `bit` of domain d (a silent soft error).
// Any injection permanently drops the wide-set hash index (see
// dropIndex): the linear scan is the only lookup that stays faithful to
// corrupted metadata.
func (c *SetAssoc) FlipStateBit(d FaultDomain, bit uint64) {
	c.dropIndex()
	switch d {
	case FaultTag:
		tb := c.tagBits()
		c.tags[bit/tb] ^= 1 << (bit % tb)
	case FaultValid:
		w, m := c.setWay(bit)
		c.valid[w] ^= m
	case FaultDirty:
		w, m := c.setWay(bit)
		c.dirty[w] ^= m
	}
}

// InvalidateSite conservatively drops the line owning bit `bit` of
// domain d: the recovery action of a detected-but-uncorrectable error
// (the functional model does not track data, so "refetch" is simply a
// future miss).
func (c *SetAssoc) InvalidateSite(d FaultDomain, bit uint64) {
	c.dropIndex()
	var w int
	var m uint64
	switch d {
	case FaultTag:
		fi := bit / c.tagBits()
		w, m = c.setWay(fi)
	case FaultValid, FaultDirty:
		w, m = c.setWay(bit)
	default:
		return
	}
	c.valid[w] &^= m
	c.dirty[w] &^= m
}
