package cache

import "fmt"

// Stats holds the access counters of one cache.
// Per-frame counters feed the set-balance analysis of Table 7.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Reads      uint64
	Writes     uint64
	Evictions  uint64
	Writebacks uint64

	// FrameHits/FrameMisses are indexed by physical frame. A frame's
	// access total is their sum — see FrameAccess; keeping a third
	// array in sync would cost an extra counter write per access.
	FrameHits   []uint64
	FrameMisses []uint64
}

// NewStats returns zeroed counters for a cache with frames line frames.
func NewStats(frames int) *Stats {
	return &Stats{
		FrameHits:   make([]uint64, frames),
		FrameMisses: make([]uint64, frames),
	}
}

// Record books one access outcome against frame.
func (s *Stats) Record(frame int, hit, write bool) {
	s.Accesses++
	if write {
		s.Writes++
	} else {
		s.Reads++
	}
	if hit {
		s.Hits++
		s.FrameHits[frame]++
	} else {
		s.Misses++
		s.FrameMisses[frame]++
	}
}

// Frames returns the number of per-frame counters.
func (s *Stats) Frames() int { return len(s.FrameHits) }

// FrameAccess returns frame i's total accesses, derived from the hit
// and miss counters.
func (s *Stats) FrameAccess(i int) uint64 { return s.FrameHits[i] + s.FrameMisses[i] }

// RecordEviction books the displacement of a valid line.
func (s *Stats) RecordEviction(dirty bool) {
	s.Evictions++
	if dirty {
		s.Writebacks++
	}
}

// Merge adds o's counters into s; frame arrays must be equally sized.
// Set-sharded replay folds per-shard counters back through this.
func (s *Stats) Merge(o *Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	for i, v := range o.FrameHits {
		s.FrameHits[i] += v
	}
	for i, v := range o.FrameMisses {
		s.FrameMisses[i] += v
	}
}

// MissRate returns Misses/Accesses, or 0 if the cache was never accessed.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses, or 0 if the cache was never accessed.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Reset zeroes all counters in place.
func (s *Stats) Reset() {
	frames := len(s.FrameHits)
	*s = Stats{
		FrameHits:   s.FrameHits[:0],
		FrameMisses: s.FrameMisses[:0],
	}
	s.FrameHits = append(s.FrameHits, make([]uint64, frames)...)
	s.FrameMisses = append(s.FrameMisses, make([]uint64, frames)...)
}

func (s *Stats) String() string {
	return fmt.Sprintf("accesses=%d hits=%d misses=%d missRate=%.4f%%",
		s.Accesses, s.Hits, s.Misses, 100*s.MissRate())
}
