package cache

import (
	"testing"
	"testing/quick"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

func mustDM(t testing.TB, size, line int) *SetAssoc {
	t.Helper()
	c, err := NewDirectMapped(size, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustSA(t testing.TB, size, line, ways int, kind PolicyKind) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc(size, line, ways, kind, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometry(t *testing.T) {
	g, err := NewGeometry(16*1024, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's baseline: 16kB, 32B lines, direct-mapped →
	// 5 offset bits, 9 index bits, 18 tag bits (32-bit addresses).
	if g.OffsetBits() != 5 || g.IndexBits() != 9 || g.TagBits() != 18 {
		t.Fatalf("baseline geometry = off %d idx %d tag %d, want 5/9/18",
			g.OffsetBits(), g.IndexBits(), g.TagBits())
	}
	if g.Sets != 512 || g.Frames != 512 {
		t.Fatalf("baseline sets/frames = %d/%d, want 512/512", g.Sets, g.Frames)
	}
}

func TestGeometryErrors(t *testing.T) {
	cases := []struct{ size, line, ways int }{
		{0, 32, 1},
		{12345, 32, 1},    // size not pow2
		{16384, 24, 1},    // line not pow2
		{16384, 32768, 1}, // line > size
		{16384, 32, 3},    // ways not pow2
		{16384, 32, 1024}, // ways > frames
		{16384, 32, -4},   // negative
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.size, c.line, c.ways); err == nil {
			t.Errorf("NewGeometry(%d,%d,%d) succeeded, want error", c.size, c.line, c.ways)
		}
	}
}

func TestDirectMappedBasics(t *testing.T) {
	c := mustDM(t, 1024, 32) // 32 sets
	if r := c.Access(0, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("second access to same address missed")
	}
	if r := c.Access(31, false); !r.Hit {
		t.Fatal("access within same line missed")
	}
	if r := c.Access(32, false); r.Hit {
		t.Fatal("next line hit while cold")
	}
	// Address 0 and 0+1024 conflict in a 1kB direct-mapped cache.
	c.Access(1024, false)
	if c.Contains(0) {
		t.Fatal("conflicting line not evicted in direct-mapped cache")
	}
	if !c.Contains(1024) {
		t.Fatal("refilled line absent")
	}
}

// TestThrashingExample reproduces the paper's §2.2 example: the address
// sequence 0,1,8,9 repeated thrashes a direct-mapped cache (0% hits after
// any warm-up) but hits in a 2-way cache after 4 warm-up misses.
// Addresses are line-aligned equivalents of the paper's 8-set toy cache.
func TestThrashingExample(t *testing.T) {
	const lineBytes = 32
	// Paper's toy: 8 sets, 1-byte lines, addresses 0,1,8,9.
	// Scaled: 8 sets of 32B lines = 256B cache; 0,32 conflict with 256,288.
	seq := []addr.Addr{0, 32, 256, 288}

	dm := mustDM(t, 256, lineBytes)
	for round := 0; round < 4; round++ {
		for _, a := range seq {
			if r := dm.Access(a, false); r.Hit {
				t.Fatalf("direct-mapped cache hit on %d in round %d; paper predicts zero hits", a, round)
			}
		}
	}

	sa := mustSA(t, 256, lineBytes, 2, LRU)
	hits := 0
	for round := 0; round < 4; round++ {
		for _, a := range seq {
			if r := sa.Access(a, false); r.Hit {
				hits++
			} else if round > 0 {
				t.Fatalf("2-way cache missed %d after warm-up round", a)
			}
		}
	}
	if hits != 12 { // 16 accesses - 4 warm-up misses
		t.Fatalf("2-way hits = %d, want 12", hits)
	}
}

func TestLRUOrder(t *testing.T) {
	// 2 sets x 2 ways, line 32B: set stride is 64.
	c := mustSA(t, 128, 32, 2, LRU)
	// Fill set 0 with A and B (set 0 addresses are multiples of 64).
	c.Access(0, false)   // A
	c.Access(128, false) // B
	c.Access(0, false)   // touch A: LRU = B
	r := c.Access(256, false)
	if !r.Evicted || r.EvictedAddr != 128 {
		t.Fatalf("LRU evicted %v (%d), want line 128", r.Evicted, r.EvictedAddr)
	}
	if !c.Contains(0) || c.Contains(128) || !c.Contains(256) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestFIFOOrder(t *testing.T) {
	c := mustSA(t, 128, 32, 2, FIFO)
	c.Access(0, false)
	c.Access(128, false)
	c.Access(0, false) // touching A must NOT save it under FIFO
	r := c.Access(256, false)
	if !r.Evicted || r.EvictedAddr != 0 {
		t.Fatalf("FIFO evicted addr %d, want 0", r.EvictedAddr)
	}
}

func TestWritebackDirty(t *testing.T) {
	c := mustDM(t, 128, 32)
	c.Access(0, true) // dirty line
	r := c.Access(128, false)
	if !r.Evicted || !r.EvictedDirty {
		t.Fatalf("evicting written line: Evicted=%v Dirty=%v, want true/true", r.Evicted, r.EvictedDirty)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
	c.Access(0, false) // clean line this time
	r = c.Access(128, false)
	if !r.Evicted || r.EvictedDirty {
		t.Fatalf("evicting clean line: Dirty=%v, want false", r.EvictedDirty)
	}
}

func TestStatsCounting(t *testing.T) {
	c := mustDM(t, 128, 32)
	c.Access(0, false)
	c.Access(0, true)
	c.Access(64, false)
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 1 || s.Misses != 2 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FrameAccess(0) != 2 || s.FrameAccess(2) != 1 {
		t.Fatalf("frame hits = %v, frame misses = %v", s.FrameHits, s.FrameMisses)
	}
	c.Reset()
	if s2 := c.Stats(); s2.Accesses != 0 || s2.FrameAccess(0) != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if c.Contains(0) {
		t.Fatal("Reset did not invalidate lines")
	}
}

func TestFullyAssocNoConflicts(t *testing.T) {
	// A fully-associative LRU cache holding N lines never misses on a
	// cyclic working set of N lines (after warm-up), whatever the indices.
	c, err := NewFullyAssoc(256, 32, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 8 lines with identical direct-mapped indices (stride 256).
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			r := c.Access(addr.Addr(i*256), false)
			if round > 0 && !r.Hit {
				t.Fatalf("fully-associative cache missed line %d after warm-up", i)
			}
		}
	}
}

// TestMissRateMonotonicWithWays checks the classic inclusion-adjacent
// property on a random-but-local reference stream: with LRU, more ways at
// the same size should not increase the miss count on these streams.
// (Not a theorem for set-associative caches in general, but holds for the
// generated streams and guards against gross replacement bugs.)
func TestMissRateMonotonicWithWays(t *testing.T) {
	src := rng.New(99)
	stream := make([]addr.Addr, 20000)
	cur := addr.Addr(0)
	for i := range stream {
		switch src.Intn(10) {
		case 0:
			cur = addr.Addr(src.Intn(1 << 16))
		default:
			cur += addr.Addr(src.Intn(96))
		}
		stream[i] = cur
	}
	prev := uint64(1 << 62)
	for _, ways := range []int{1, 2, 4, 8} {
		c := mustSA(t, 4096, 32, ways, LRU)
		for _, a := range stream {
			c.Access(a, false)
		}
		m := c.Stats().Misses
		if m > prev+prev/20 { // allow 5% non-monotonic wiggle
			t.Errorf("%d-way misses=%d substantially above %d-way misses=%d", ways, m, ways/2, prev)
		}
		prev = m
	}
}

// TestContainsMatchesAccess cross-checks Contains against Access outcomes
// under random streams (property-based).
func TestContainsMatchesAccess(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := mustSA(t, 1024, 32, 4, LRU)
		for i := 0; i < 2000; i++ {
			a := addr.Addr(src.Intn(1 << 13))
			want := c.Contains(a)
			got := c.Access(a, src.Intn(2) == 0).Hit
			if want != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictedAddrRoundTrip(t *testing.T) {
	c := mustSA(t, 2048, 64, 2, LRU)
	a1 := addr.Addr(0x1240)
	a2 := a1 + 2048
	a3 := a1 + 4096
	c.Access(a1, false)
	c.Access(a2, false)
	r := c.Access(a3, false)
	if !r.Evicted {
		t.Fatal("expected eviction")
	}
	if r.EvictedAddr != addr.Align(a1, 64) {
		t.Fatalf("EvictedAddr = %#x, want %#x", r.EvictedAddr, addr.Align(a1, 64))
	}
}

func TestRandomPolicyStillCorrect(t *testing.T) {
	c := mustSA(t, 1024, 32, 4, Random)
	// Correctness (hit/miss identity), not victim quality: after filling a
	// set, accessing resident lines must hit.
	for i := 0; i < 4; i++ {
		c.Access(addr.Addr(i*1024), false)
	}
	for i := 0; i < 4; i++ {
		if !c.Access(addr.Addr(i*1024), false).Hit {
			t.Fatalf("resident line %d missed under random policy", i)
		}
	}
}

func BenchmarkDirectMappedAccess(b *testing.B) {
	c := mustDM(b, 16*1024, 32)
	src := rng.New(5)
	addrs := make([]addr.Addr, 4096)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], false)
	}
}

func Benchmark8WayAccess(b *testing.B) {
	c := mustSA(b, 16*1024, 32, 8, LRU)
	src := rng.New(5)
	addrs := make([]addr.Addr, 4096)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], false)
	}
}
