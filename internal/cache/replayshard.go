package cache

import (
	"sync"

	"bcache/internal/addr"
)

// Set-sharded parallel replay.
//
// Accesses to distinct sets of a set-associative cache are independent:
// every piece of mutable state — tags, valid/dirty mask words, the
// replacement policy, the hash index, and the per-frame statistic slots —
// is owned by exactly one set, and (with per-set Random streams, see
// NewSetAssoc) no decision reads another set's state. A replay sharded
// by set index therefore produces bit-identical final state and counters
// regardless of how the shards interleave, which lets one replay unit
// use several cores instead of one.
//
// Each worker scans the full access slice but applies only the accesses
// whose set lands in its shard (set & (shards-1) == worker), running
// them through a shadow view of the cache that shares every per-set
// array and differs only in its private Stats; the scalar counters — the
// one piece of state all sets share — are merged after the join, in
// worker order. The scan itself is cheap relative to Access, so
// wall-clock approaches a 1/shards share per worker on wide caches.

// MemAccess is one element of a replayable data stream: a byte address
// plus its read/write direction, packed into one word (addr<<1 | write)
// so a materialized stream costs 8 bytes per access instead of 16.
// Addresses must fit in 63 bits; NewMemAccess rejects the top bit.
type MemAccess uint64

// NewMemAccess packs one data access.
func NewMemAccess(a addr.Addr, write bool) MemAccess {
	if a>>63 != 0 {
		panic("cache: MemAccess address exceeds 63 bits")
	}
	m := MemAccess(a) << 1
	if write {
		m |= 1
	}
	return m
}

// Addr returns the byte address.
func (m MemAccess) Addr() addr.Addr { return addr.Addr(m >> 1) }

// Write reports the access direction.
func (m MemAccess) Write() bool { return m&1 != 0 }

// replayShardCap bounds the shard fan-out; beyond this the redundant
// stream scans outweigh the extra cores.
const replayShardCap = 16

// ReplayShards replays one address stream — data (with write flags) or,
// when data is nil, fetch (read-only) — through c using up to workers
// goroutines sharded by set index. It reports false without replaying
// anything when sharding is unavailable (a probe is attached, the cache
// has a single set, or workers < 2); the caller then replays
// sequentially. Results are bit-identical to a sequential replay: the
// per-set independence argument above, plus deterministic per-set Random
// streams, make every shard's outcome a function of its own accesses
// alone.
func (c *SetAssoc) ReplayShards(data []MemAccess, fetch []addr.Addr, workers int) bool {
	shards := 1
	for shards*2 <= workers && shards*2 <= c.geom.Sets && shards*2 <= replayShardCap {
		shards *= 2
	}
	if shards < 2 || c.probe != nil {
		return false
	}
	shardMask := addr.Addr(shards - 1)

	shadows := make([]*SetAssoc, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		// The shadow shares tags/valid/dirty/policies/idx with c — all
		// per-set, all disjoint across shards — and takes private Stats.
		shadow := *c
		shadow.stats = NewStats(c.geom.Frames)
		shadows[w] = &shadow
		wg.Add(1)
		go func(w int, sc *SetAssoc) {
			defer wg.Done()
			want := addr.Addr(w)
			if data != nil {
				for _, m := range data {
					if m.Addr()>>sc.offBits&sc.idxMask&shardMask == want {
						sc.Access(m.Addr(), m.Write())
					}
				}
				return
			}
			for _, a := range fetch {
				if a>>sc.offBits&sc.idxMask&shardMask == want {
					sc.Access(a, false)
				}
			}
		}(w, shadows[w])
	}
	wg.Wait()
	for _, sc := range shadows {
		c.stats.Merge(sc.stats)
	}
	return true
}
