// Package cache implements the conventional cache models the paper
// compares against: direct-mapped, N-way set-associative, and
// fully-associative caches with pluggable replacement policies, plus the
// statistics every model reports.
//
// All caches in this repository are functional (hit/miss) models that
// also expose enough structure — per-frame accounting, evictions with
// dirty state — for the timing, energy, and set-balance analyses built on
// top of them.
package cache

import (
	"fmt"

	"bcache/internal/addr"
)

// Cache is the interface implemented by every cache model in the
// simulator (including internal/core.BCache and internal/victim.Cache).
type Cache interface {
	// Access performs one read (write=false) or write (write=true) of the
	// byte at a, allocating on miss (write-allocate, write-back).
	Access(a addr.Addr, write bool) Result

	// Contains reports whether the line holding a is present, without
	// disturbing replacement state or statistics.
	Contains(a addr.Addr) bool

	// Stats returns the live counters for this cache.
	Stats() *Stats

	// Geometry returns the cache's shape.
	Geometry() Geometry

	// Name returns a short human-readable configuration name, e.g.
	// "16kB-8way-lru" or "bcache-mf8-bas8".
	Name() string

	// Reset invalidates all lines and clears statistics.
	Reset()
}

// Geometry describes a cache's physical shape.
type Geometry struct {
	SizeBytes int // total data capacity
	LineBytes int // line (block) size
	Ways      int // associativity (1 for direct-mapped and the B-Cache)
	Sets      int // number of sets
	Frames    int // number of line frames = Sets*Ways
}

// NewGeometry validates and derives a cache shape.
// size and line must be powers of two; ways must divide size/line.
func NewGeometry(size, line, ways int) (Geometry, error) {
	switch {
	case size <= 0 || !addr.IsPow2(uint64(size)):
		return Geometry{}, fmt.Errorf("cache: size %d is not a positive power of two", size)
	case line <= 0 || !addr.IsPow2(uint64(line)):
		return Geometry{}, fmt.Errorf("cache: line size %d is not a positive power of two", line)
	case line > size:
		return Geometry{}, fmt.Errorf("cache: line size %d exceeds cache size %d", line, size)
	case ways <= 0 || !addr.IsPow2(uint64(ways)):
		return Geometry{}, fmt.Errorf("cache: associativity %d is not a positive power of two", ways)
	}
	frames := size / line
	if ways > frames {
		return Geometry{}, fmt.Errorf("cache: associativity %d exceeds %d frames", ways, frames)
	}
	return Geometry{
		SizeBytes: size,
		LineBytes: line,
		Ways:      ways,
		Sets:      frames / ways,
		Frames:    frames,
	}, nil
}

// OffsetBits returns log2(line size).
func (g Geometry) OffsetBits() uint { return addr.Log2(uint64(g.LineBytes)) }

// IndexBits returns log2(sets).
func (g Geometry) IndexBits() uint { return addr.Log2(uint64(g.Sets)) }

// TagBits returns the number of address bits above offset and index.
func (g Geometry) TagBits() uint { return addr.Bits - g.OffsetBits() - g.IndexBits() }

// Block returns the line-aligned block number of a (address >> offset).
func (g Geometry) Block(a addr.Addr) addr.Addr { return a >> g.OffsetBits() }

// Index returns a's set index.
func (g Geometry) Index(a addr.Addr) int {
	return int(addr.Field(a, g.OffsetBits(), g.IndexBits()))
}

// Tag returns a's tag.
func (g Geometry) Tag(a addr.Addr) addr.Addr {
	return a >> (g.OffsetBits() + g.IndexBits())
}

func (g Geometry) String() string {
	return fmt.Sprintf("%dkB/%dB-line/%d-way", g.SizeBytes/1024, g.LineBytes, g.Ways)
}

// Result describes the outcome of one Access.
type Result struct {
	Hit bool

	// Frame is the physical frame index (0..Frames-1) that served the hit
	// or received the refill. Set-balance analysis (Table 7) keys on it.
	Frame int

	// ExtraLatency is the number of cycles this access costs beyond the
	// cache's base hit time: victim-buffer probe hits and column-
	// associative second-probe hits report 1 here. Conventional caches
	// and the B-Cache (whose defining property is one-cycle access for
	// all hits) always report 0.
	ExtraLatency int

	// Evicted reports that a valid line was displaced by this access.
	Evicted bool
	// EvictedAddr is the line-aligned address of the displaced line.
	EvictedAddr addr.Addr
	// EvictedDirty reports whether the displaced line required writeback.
	EvictedDirty bool
}
