package cache

import (
	"fmt"

	"bcache/internal/rng"
)

// Policy chooses replacement victims within one set of `ways` frames.
// Implementations are per-set: a cache holds one Policy instance per set.
type Policy interface {
	// Touch records a reference to way (hit or refill completion).
	Touch(way int)
	// Victim returns the way to displace. The caller then refills it and
	// calls Touch.
	Victim() int
	// Reset clears history.
	Reset()
}

// PolicyKind names a replacement policy family.
type PolicyKind int

// Replacement policy families. The paper evaluates LRU and random for the
// B-Cache (§3.3); FIFO is included for the HAC model and ablations.
const (
	LRU PolicyKind = iota
	Random
	FIFO
)

func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// NewPolicy returns a fresh per-set policy of the given kind.
// Random policies draw from src, which must not be nil for Random.
func NewPolicy(kind PolicyKind, ways int, src *rng.Source) Policy {
	switch kind {
	case LRU:
		return newLRUPolicy(ways)
	case Random:
		if src == nil {
			panic("cache: Random policy requires an rng source")
		}
		return &randomPolicy{ways: ways, src: src}
	case FIFO:
		return &fifoPolicy{ways: ways}
	default:
		panic(fmt.Sprintf("cache: unknown policy kind %d", int(kind)))
	}
}

// lruPolicy tracks recency with a timestamp per way. The linear victim
// scan is intentional, but only below the index crossover: sets with
// faIndexMinWays (64) ways or more carry a stackdist.Index whose recency
// list answers the LRU victim in O(1), so this scan only ever runs on
// narrow sets — the paper's 2..32-way sweeps — where it beats
// maintaining a list. TestIndexCrossover asserts the threshold.
type lruPolicy struct {
	stamp []uint64
	clock uint64
}

func newLRUPolicy(ways int) *lruPolicy {
	return &lruPolicy{stamp: make([]uint64, ways)}
}

func (p *lruPolicy) Touch(way int) {
	p.clock++
	p.stamp[way] = p.clock
}

func (p *lruPolicy) Victim() int {
	victim, best := 0, p.stamp[0]
	for w, s := range p.stamp[1:] {
		if s < best {
			victim, best = w+1, s
		}
	}
	return victim
}

func (p *lruPolicy) Reset() {
	p.clock = 0
	for i := range p.stamp {
		p.stamp[i] = 0
	}
}

type randomPolicy struct {
	ways int
	src  *rng.Source
}

func (p *randomPolicy) Touch(int)   {}
func (p *randomPolicy) Victim() int { return p.src.Intn(p.ways) }
func (p *randomPolicy) Reset()      {}

type fifoPolicy struct {
	ways int
	next int
}

func (p *fifoPolicy) Touch(int) {}

func (p *fifoPolicy) Victim() int {
	v := p.next
	p.next = (p.next + 1) % p.ways
	return v
}

func (p *fifoPolicy) Reset() { p.next = 0 }
