package cache

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// conflictStream mixes hot reuse, power-of-two striding, and cold sweeps
// so hit, refill, and eviction paths all run.
func conflictStream(n int, seed uint64) []addr.Addr {
	src := rng.New(seed)
	out := make([]addr.Addr, n)
	for i := range out {
		switch src.Intn(3) {
		case 0:
			out[i] = addr.Addr(src.Intn(1 << 14)) // resident working set
		case 1:
			out[i] = addr.Addr(src.Intn(64)) * (1 << 16) // tag aliases
		default:
			out[i] = addr.Addr(src.Intn(1 << 24)) // mostly cold
		}
	}
	return out
}

// assertSameState compares every observable of two caches that replayed
// the same stream: full statistics (including per-frame arrays) and tag
// array / valid / dirty masks.
func assertSameState(t *testing.T, hash, scan *SetAssoc) {
	t.Helper()
	if !reflect.DeepEqual(hash.Stats(), scan.Stats()) {
		t.Fatalf("stats diverged:\nhash: %+v\nscan: %+v", hash.Stats(), scan.Stats())
	}
	if !reflect.DeepEqual(hash.tags, scan.tags) || !reflect.DeepEqual(hash.valid, scan.valid) ||
		!reflect.DeepEqual(hash.dirty, scan.dirty) {
		t.Fatal("tag/valid/dirty arrays diverged")
	}
}

// TestFAHashVsLinear proves the hash-indexed wide-set path bit-identical
// to the linear scan across geometries, including per-access Results.
func TestFAHashVsLinear(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{
		{16 * 1024, 64},
		{16 * 1024, 512}, // fully associative
		{8 * 1024, 256},  // fully associative at 8kB
		{32 * 1024, 128},
	} {
		t.Run(fmt.Sprintf("%dkB-%dway", tc.size/1024, tc.ways), func(t *testing.T) {
			hash, err := NewSetAssoc(tc.size, 32, tc.ways, LRU, nil)
			if err != nil {
				t.Fatal(err)
			}
			if hash.idx == nil {
				t.Fatal("hash index not active")
			}
			scan, err := NewSetAssocScan(tc.size, 32, tc.ways, LRU, nil)
			if err != nil {
				t.Fatal(err)
			}
			if scan.idx != nil {
				t.Fatal("scan reference has an index")
			}
			src := rng.New(1)
			for i, a := range conflictStream(200000, uint64(tc.size+tc.ways)) {
				write := src.Intn(4) == 0
				rh := hash.Access(a, write)
				rs := scan.Access(a, write)
				if rh != rs {
					t.Fatalf("access %d (%#x, write=%v): hash %+v, scan %+v", i, a, write, rh, rs)
				}
				if i%4096 == 0 && hash.Contains(a) != scan.Contains(a) {
					t.Fatalf("access %d: Contains diverged", i)
				}
			}
			assertSameState(t, hash, scan)
		})
	}
}

// TestFAIndexSurvivesReset: Reset keeps the index active and consistent.
func TestFAIndexSurvivesReset(t *testing.T) {
	hash, err := NewFullyAssoc(16*1024, 32, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := NewSetAssocScan(16*1024, 32, 512, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	stream := conflictStream(50000, 3)
	for _, a := range stream {
		hash.Access(a, false)
		scan.Access(a, false)
	}
	hash.Reset()
	scan.Reset()
	if hash.idx == nil {
		t.Fatal("reset dropped the index")
	}
	for i, a := range stream {
		if rh, rs := hash.Access(a, true), scan.Access(a, true); rh != rs {
			t.Fatalf("post-reset access %d diverged: %+v vs %+v", i, rh, rs)
		}
	}
	assertSameState(t, hash, scan)
}

// TestFAIndexDropsOnFault: after any fault mutation the indexed cache
// must continue bit-identically with a scan cache receiving the same
// mutation — the recency handoff preserves victim order.
func TestFAIndexDropsOnFault(t *testing.T) {
	for _, mutate := range []struct {
		name string
		do   func(c *SetAssoc)
	}{
		{"flip-tag", func(c *SetAssoc) { c.FlipStateBit(FaultTag, 7) }},
		{"flip-valid", func(c *SetAssoc) { c.FlipStateBit(FaultValid, 100) }},
		{"invalidate", func(c *SetAssoc) { c.InvalidateSite(FaultDirty, 250) }},
	} {
		t.Run(mutate.name, func(t *testing.T) {
			hash, err := NewFullyAssoc(16*1024, 32, LRU, nil)
			if err != nil {
				t.Fatal(err)
			}
			scan, err := NewSetAssocScan(16*1024, 32, 512, LRU, nil)
			if err != nil {
				t.Fatal(err)
			}
			pre := conflictStream(100000, 17)
			for _, a := range pre {
				hash.Access(a, a&64 != 0)
				scan.Access(a, a&64 != 0)
			}
			mutate.do(hash)
			mutate.do(scan)
			if hash.idx != nil {
				t.Fatal("fault mutation left the index active")
			}
			for i, a := range conflictStream(100000, 18) {
				if rh, rs := hash.Access(a, a&32 != 0), scan.Access(a, a&32 != 0); rh != rs {
					t.Fatalf("post-fault access %d diverged: %+v vs %+v", i, rh, rs)
				}
			}
			assertSameState(t, hash, scan)
		})
	}
}

// FuzzFAHashVsLinear feeds arbitrary byte strings, decoded as an address
// stream with interleaved write flags and resets, to the hash-indexed
// fully-associative cache and the linear-scan reference.
func FuzzFAHashVsLinear(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("\xff\xff\xff\xff\x00\x00\x00\x00repeat-me-repeat-me"))
	seed := make([]byte, 0, 9*64)
	src := rng.New(99)
	for i := 0; i < 64; i++ {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(src.Intn(1<<18)))
		seed = append(seed, byte(i), w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7])
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		// A small FA geometry keeps evictions frequent at fuzz sizes.
		hash, err := NewSetAssoc(2048, 32, 64, LRU, nil)
		if err != nil {
			t.Fatal(err)
		}
		if hash.idx == nil {
			t.Fatal("hash index not active")
		}
		scan, err := NewSetAssocScan(2048, 32, 64, LRU, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+9 <= len(data); i += 9 {
			op := data[i]
			a := addr.Addr(binary.LittleEndian.Uint64(data[i+1:i+9])) & addr.Max
			switch {
			case op == 0xff:
				hash.Reset()
				scan.Reset()
			default:
				write := op&1 != 0
				if rh, rs := hash.Access(a, write), scan.Access(a, write); rh != rs {
					t.Fatalf("access %d (%#x, write=%v): hash %+v, scan %+v", i/9, a, write, rh, rs)
				}
			}
		}
		assertSameState(t, hash, scan)
	})
}

// BenchmarkFullyAssoc measures the 512-way fully-associative access path
// on both lookups: the O(1) hash index and the linear scan it replaced.
func BenchmarkFullyAssoc(b *testing.B) {
	src := rng.New(5)
	addrs := make([]addr.Addr, 8192)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 22))
	}
	for _, v := range []struct {
		name  string
		build func() (*SetAssoc, error)
	}{
		{"hash", func() (*SetAssoc, error) { return NewFullyAssoc(16*1024, 32, LRU, nil) }},
		{"scan", func() (*SetAssoc, error) { return NewSetAssocScan(16*1024, 32, 512, LRU, nil) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			c, err := v.build()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(addrs[i&8191], false)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}
