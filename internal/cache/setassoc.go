package cache

import (
	"fmt"
	"math/bits"

	"bcache/internal/addr"
	"bcache/internal/rng"
	"bcache/internal/stackdist"
)

// SetAssoc is an N-way set-associative cache with write-allocate,
// write-back semantics. Ways=1 gives a conventional direct-mapped cache
// (the paper's baseline); Sets=1 gives a fully-associative cache.
//
// Storage is structure-of-arrays: one flat tag array plus per-set valid
// and dirty bitmasks. The hit scan walks only the set's valid ways by
// iterating the presence bitmask, so sparse or wide sets (the 512-way
// fully-associative configurations in Table 4) never touch cold frames.
// Data contents are not simulated; only presence, identity, and
// dirtiness matter to the functional model.
//
// Wide sets additionally carry a hash index (stackdist.Index): a map
// from tag to the way's node on an intrusive recency list, making the
// tag match — and, for LRU, the victim search — O(1) instead of
// O(ways). FIFO and Random victims are already O(1) through the per-set
// policy, so for those kinds the index serves purely as the tag map. The
// index is a pure accelerator over the same tag/valid/dirty arrays — it
// is dropped (with a recency handoff to the per-set policy under LRU)
// the moment fault injection mutates those arrays underneath it, because
// a flipped tag bit can create aliases a one-entry-per-tag map cannot
// represent.
type SetAssoc struct {
	geom Geometry
	kind PolicyKind

	// Precomputed address-field shifts so Access never re-derives
	// geometry logarithms.
	offBits uint
	idxBits uint
	idxMask addr.Addr // Sets - 1

	// tags[set*Ways + way] is the way's tag; its bit in the set's valid
	// mask says whether the frame holds a line at all.
	tags []addr.Addr

	// valid and dirty are per-set bitmasks, maskWords words per set, way
	// w at bit (w%64) of word w/64. maskWords = ceil(Ways/64).
	valid     []uint64
	dirty     []uint64
	maskWords int
	tailMask  uint64 // in-range way bits of a set's last mask word

	policies []Policy // one per set
	stats    *Stats
	probe    Probe // nil unless observability is attached
	name     string

	// idx, when non-nil, holds one hash index per set (any policy at or
	// above faIndexMinWays ways). Under LRU, while active it is the
	// single source of recency truth; the per-set lruPolicy stamps stay
	// untouched until dropIndex hands the order back. Under FIFO/Random
	// the per-set policy keeps advancing normally and the index is only
	// the O(1) tag map.
	idx []*stackdist.Index
}

// faIndexMinWays is the associativity at which a set gains a hash index.
// Narrow sets (the paper's 2..32-way sweeps) stay on the bitmask scan,
// which beats a map at that width; the 512-way fully-associative extreme
// is ~30× faster indexed. TestIndexCrossover asserts this threshold for
// every policy kind.
const faIndexMinWays = 64

var _ Cache = (*SetAssoc)(nil)

// NewSetAssoc builds a set-associative cache. src seeds the random
// replacement policy and may be nil for LRU/FIFO.
func NewSetAssoc(size, lineBytes, ways int, kind PolicyKind, src *rng.Source) (*SetAssoc, error) {
	geom, err := NewGeometry(size, lineBytes, ways)
	if err != nil {
		return nil, err
	}
	mw := (ways + 63) / 64
	tail := ^uint64(0)
	if r := ways % 64; r != 0 {
		tail = 1<<r - 1
	}
	c := &SetAssoc{
		geom:      geom,
		kind:      kind,
		offBits:   geom.OffsetBits(),
		idxBits:   geom.IndexBits(),
		idxMask:   addr.Addr(geom.Sets - 1),
		tags:      make([]addr.Addr, geom.Frames),
		valid:     make([]uint64, geom.Sets*mw),
		dirty:     make([]uint64, geom.Sets*mw),
		maskWords: mw,
		tailMask:  tail,
		policies:  make([]Policy, geom.Sets),
		stats:     NewStats(geom.Frames),
		name:      fmt.Sprintf("%dkB-%dway-%s", size/1024, ways, kind),
	}
	for s := range c.policies {
		ps := src
		if kind == Random && src != nil {
			// Each set draws from its own stream split off the caller's
			// source, so per-set victim sequences are a function of the
			// set alone — replaying sets in any order (or in parallel)
			// yields bit-identical results.
			ps = src.Split(uint64(s))
		}
		c.policies[s] = NewPolicy(kind, ways, ps)
	}
	if ways >= faIndexMinWays {
		c.idx = make([]*stackdist.Index, geom.Sets)
		for s := range c.idx {
			c.idx[s] = stackdist.NewIndex(ways)
		}
	}
	return c, nil
}

// NewSetAssocScan builds the cache with the wide-set hash index disabled
// unconditionally: the linear-scan reference that differential tests and
// benchmarks compare the indexed fast path against.
func NewSetAssocScan(size, lineBytes, ways int, kind PolicyKind, src *rng.Source) (*SetAssoc, error) {
	c, err := NewSetAssoc(size, lineBytes, ways, kind, src)
	if err != nil {
		return nil, err
	}
	c.idx = nil
	return c, nil
}

// NewDirectMapped builds the paper's baseline: a direct-mapped cache.
func NewDirectMapped(size, lineBytes int) (*SetAssoc, error) {
	c, err := NewSetAssoc(size, lineBytes, 1, LRU, nil)
	if err != nil {
		return nil, err
	}
	c.name = fmt.Sprintf("%dkB-directmapped", size/1024)
	return c, nil
}

// NewFullyAssoc builds a fully-associative cache of the given size.
func NewFullyAssoc(size, lineBytes int, kind PolicyKind, src *rng.Source) (*SetAssoc, error) {
	c, err := NewSetAssoc(size, lineBytes, size/lineBytes, kind, src)
	if err != nil {
		return nil, err
	}
	c.name = fmt.Sprintf("%dkB-fullyassoc-%s", size/1024, kind)
	return c, nil
}

// wordMask returns the in-range way bits of the set's wi-th mask word.
func (c *SetAssoc) wordMask(wi int) uint64 {
	if wi == c.maskWords-1 {
		return c.tailMask
	}
	return ^uint64(0)
}

// findWay returns the way holding tag in set, or -1 — O(1) through the
// hash index when present, else scanning valid ways in ascending order.
func (c *SetAssoc) findWay(set int, tag addr.Addr) int {
	if c.idx != nil {
		if n := c.idx[set].Get(tag); n != nil {
			return int(n.Val)
		}
		return -1
	}
	if c.geom.Ways == 1 {
		// Direct-mapped: one way, one valid bit, one tag — the paper's
		// dominant configuration skips the bitmask scan machinery.
		if c.valid[set]&1 != 0 && c.tags[set] == tag {
			return 0
		}
		return -1
	}
	base := set * c.geom.Ways
	mbase := set * c.maskWords
	for wi := 0; wi < c.maskWords; wi++ {
		for m := c.valid[mbase+wi]; m != 0; m &= m - 1 {
			w := wi<<6 + bits.TrailingZeros64(m)
			if c.tags[base+w] == tag {
				return w
			}
		}
	}
	return -1
}

// Access implements Cache.
func (c *SetAssoc) Access(a addr.Addr, write bool) Result {
	set := int(a >> c.offBits & c.idxMask)
	tag := a >> (c.offBits + c.idxBits)
	if c.idx != nil {
		return c.accessIndexed(set, tag, write)
	}
	base := set * c.geom.Ways
	mbase := set * c.maskWords

	// Hit path. A 1-way set skips the recency update: Touch never draws
	// randomness and a single way is always its own victim, so the
	// policy state is unobservable there.
	if w := c.findWay(set, tag); w >= 0 {
		if c.geom.Ways > 1 {
			c.policies[set].Touch(w)
		}
		if write {
			c.dirty[mbase+w>>6] |= 1 << (w & 63)
		}
		c.stats.Record(base+w, true, write)
		if c.probe != nil {
			c.probe.ObserveAccess(base+w, true, write)
		}
		return Result{Hit: true, Frame: base + w}
	}

	// Miss: prefer an invalid way, else ask the policy for a victim.
	way := -1
	for wi := 0; wi < c.maskWords; wi++ {
		if free := ^c.valid[mbase+wi] & c.wordMask(wi); free != 0 {
			way = wi<<6 + bits.TrailingZeros64(free)
			break
		}
	}
	var res Result
	if way < 0 {
		// Victim is consulted even for 1-way sets: a Random policy
		// draws from the shared rng stream, and skipping the draw
		// would shift every later pick.
		way = c.policies[set].Victim()
		res.Evicted = true
		res.EvictedAddr = c.lineAddr(c.tags[base+way], set)
		res.EvictedDirty = c.dirty[mbase+way>>6]&(1<<(way&63)) != 0
		c.stats.RecordEviction(res.EvictedDirty)
		if c.probe != nil {
			c.probe.ObserveEvict(res.EvictedDirty)
		}
	}
	c.tags[base+way] = tag
	c.valid[mbase+way>>6] |= 1 << (way & 63)
	if write {
		c.dirty[mbase+way>>6] |= 1 << (way & 63)
	} else {
		c.dirty[mbase+way>>6] &^= 1 << (way & 63)
	}
	if c.geom.Ways > 1 {
		c.policies[set].Touch(way)
	}
	res.Frame = base + way
	c.stats.Record(base+way, false, write)
	if c.probe != nil {
		c.probe.ObserveAccess(base+way, false, write)
	}
	return res
}

// accessIndexed is the Access path for sets carrying a hash index. It
// maintains the same tag/valid/dirty arrays and statistics as the scan
// path — only the tag match, the free-way choice, and (for LRU) the
// victim search change, and each is provably the same decision the scan
// path makes: ways fill in ascending order (nothing invalidates a line
// while the index is active), so the next free way is the resident
// count, and the recency-list tail is the minimum-stamp way the LRU
// policy would pick. FIFO and Random victims come from the per-set
// policy exactly as on the scan path — their policies are O(1) already,
// and keeping them advancing means dropIndex needs no state handoff —
// with the index resolving the victim way's tag to its node.
func (c *SetAssoc) accessIndexed(set int, tag addr.Addr, write bool) Result {
	base := set * c.geom.Ways
	mbase := set * c.maskWords
	ix := c.idx[set]

	if n := ix.Get(tag); n != nil {
		w := int(n.Val)
		if c.kind == LRU {
			ix.Touch(n)
		}
		if write {
			c.dirty[mbase+w>>6] |= 1 << (w & 63)
		}
		c.stats.Record(base+w, true, write)
		if c.probe != nil {
			c.probe.ObserveAccess(base+w, true, write)
		}
		return Result{Hit: true, Frame: base + w}
	}

	var res Result
	var way int
	if ix.Len() < c.geom.Ways {
		way = ix.Len()
	} else {
		victim := ix.LRU()
		if c.kind != LRU {
			victim = ix.Get(c.tags[base+c.policies[set].Victim()])
		}
		way = int(victim.Val)
		ix.Remove(victim)
		res.Evicted = true
		res.EvictedAddr = c.lineAddr(c.tags[base+way], set)
		res.EvictedDirty = c.dirty[mbase+way>>6]&(1<<(way&63)) != 0
		c.stats.RecordEviction(res.EvictedDirty)
		if c.probe != nil {
			c.probe.ObserveEvict(res.EvictedDirty)
		}
	}
	c.tags[base+way] = tag
	c.valid[mbase+way>>6] |= 1 << (way & 63)
	if write {
		c.dirty[mbase+way>>6] |= 1 << (way & 63)
	} else {
		c.dirty[mbase+way>>6] &^= 1 << (way & 63)
	}
	ix.Insert(tag, uint64(way))
	res.Frame = base + way
	c.stats.Record(base+way, false, write)
	if c.probe != nil {
		c.probe.ObserveAccess(base+way, false, write)
	}
	return res
}

// dropIndex permanently disables the hash index, handing each set's
// recency order to its policy under LRU (tail-first Touch replay
// reproduces the exact stamp order), so the scan path continues
// bit-identically. FIFO and Random policies advanced normally while the
// index was active, so they need no handoff. Fault injection calls this
// before mutating state: a flipped tag bit can alias two ways onto one
// map key, which the index cannot represent.
func (c *SetAssoc) dropIndex() {
	if c.idx == nil {
		return
	}
	if c.kind == LRU {
		for set, ix := range c.idx {
			pol := c.policies[set]
			for n := ix.LRU(); n != nil; n = ix.Prev(n) {
				pol.Touch(int(n.Val))
			}
		}
	}
	c.idx = nil
}

// SetProbe implements Probed. Passing nil detaches.
func (c *SetAssoc) SetProbe(p Probe) { c.probe = p }

// Contains implements Cache.
func (c *SetAssoc) Contains(a addr.Addr) bool {
	return c.findWay(int(a>>c.offBits&c.idxMask), a>>(c.offBits+c.idxBits)) >= 0
}

// lineAddr reconstructs the line-aligned byte address of (tag, set).
func (c *SetAssoc) lineAddr(tag addr.Addr, set int) addr.Addr {
	return tag<<(c.offBits+c.idxBits) | addr.Addr(set)<<c.offBits
}

// Stats implements Cache.
func (c *SetAssoc) Stats() *Stats { return c.stats }

// Geometry implements Cache.
func (c *SetAssoc) Geometry() Geometry { return c.geom }

// Name implements Cache.
func (c *SetAssoc) Name() string { return c.name }

// Policy returns the replacement policy family in use.
func (c *SetAssoc) Policy() PolicyKind { return c.kind }

// Reset implements Cache.
func (c *SetAssoc) Reset() {
	clear(c.tags)
	clear(c.valid)
	clear(c.dirty)
	for _, p := range c.policies {
		p.Reset()
	}
	for _, ix := range c.idx {
		ix.Reset()
	}
	c.stats.Reset()
}
