package cache

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// line is one cache frame's state. Data contents are not simulated; only
// presence, identity, and dirtiness matter to the functional model.
type line struct {
	valid bool
	dirty bool
	tag   addr.Addr
}

// SetAssoc is an N-way set-associative cache with write-allocate,
// write-back semantics. Ways=1 gives a conventional direct-mapped cache
// (the paper's baseline); Sets=1 gives a fully-associative cache.
type SetAssoc struct {
	geom     Geometry
	kind     PolicyKind
	lines    []line   // Sets*Ways, set-major: frame = set*Ways + way
	policies []Policy // one per set
	stats    *Stats
	probe    Probe // nil unless observability is attached
	name     string
}

var _ Cache = (*SetAssoc)(nil)

// NewSetAssoc builds a set-associative cache. src seeds the random
// replacement policy and may be nil for LRU/FIFO.
func NewSetAssoc(size, lineBytes, ways int, kind PolicyKind, src *rng.Source) (*SetAssoc, error) {
	geom, err := NewGeometry(size, lineBytes, ways)
	if err != nil {
		return nil, err
	}
	c := &SetAssoc{
		geom:     geom,
		kind:     kind,
		lines:    make([]line, geom.Frames),
		policies: make([]Policy, geom.Sets),
		stats:    NewStats(geom.Frames),
		name:     fmt.Sprintf("%dkB-%dway-%s", size/1024, ways, kind),
	}
	for s := range c.policies {
		c.policies[s] = NewPolicy(kind, ways, src)
	}
	return c, nil
}

// NewDirectMapped builds the paper's baseline: a direct-mapped cache.
func NewDirectMapped(size, lineBytes int) (*SetAssoc, error) {
	c, err := NewSetAssoc(size, lineBytes, 1, LRU, nil)
	if err != nil {
		return nil, err
	}
	c.name = fmt.Sprintf("%dkB-directmapped", size/1024)
	return c, nil
}

// NewFullyAssoc builds a fully-associative cache of the given size.
func NewFullyAssoc(size, lineBytes int, kind PolicyKind, src *rng.Source) (*SetAssoc, error) {
	c, err := NewSetAssoc(size, lineBytes, size/lineBytes, kind, src)
	if err != nil {
		return nil, err
	}
	c.name = fmt.Sprintf("%dkB-fullyassoc-%s", size/1024, kind)
	return c, nil
}

// Access implements Cache.
func (c *SetAssoc) Access(a addr.Addr, write bool) Result {
	set := c.geom.Index(a)
	tag := c.geom.Tag(a)
	base := set * c.geom.Ways
	pol := c.policies[set]

	// Hit path.
	for w := 0; w < c.geom.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			pol.Touch(w)
			if write {
				ln.dirty = true
			}
			c.stats.Record(base+w, true, write)
			if c.probe != nil {
				c.probe.ObserveAccess(base+w, true, write)
			}
			return Result{Hit: true, Frame: base + w}
		}
	}

	// Miss: prefer an invalid way, else ask the policy for a victim.
	way := -1
	for w := 0; w < c.geom.Ways; w++ {
		if !c.lines[base+w].valid {
			way = w
			break
		}
	}
	var res Result
	if way < 0 {
		way = pol.Victim()
		old := &c.lines[base+way]
		res.Evicted = true
		res.EvictedAddr = c.lineAddr(old.tag, set)
		res.EvictedDirty = old.dirty
		c.stats.RecordEviction(old.dirty)
		if c.probe != nil {
			c.probe.ObserveEvict(old.dirty)
		}
	}
	c.lines[base+way] = line{valid: true, dirty: write, tag: tag}
	pol.Touch(way)
	res.Frame = base + way
	c.stats.Record(base+way, false, write)
	if c.probe != nil {
		c.probe.ObserveAccess(base+way, false, write)
	}
	return res
}

// SetProbe implements Probed. Passing nil detaches.
func (c *SetAssoc) SetProbe(p Probe) { c.probe = p }

// Contains implements Cache.
func (c *SetAssoc) Contains(a addr.Addr) bool {
	set := c.geom.Index(a)
	tag := c.geom.Tag(a)
	base := set * c.geom.Ways
	for w := 0; w < c.geom.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// lineAddr reconstructs the line-aligned byte address of (tag, set).
func (c *SetAssoc) lineAddr(tag addr.Addr, set int) addr.Addr {
	return tag<<(c.geom.OffsetBits()+c.geom.IndexBits()) |
		addr.Addr(set)<<c.geom.OffsetBits()
}

// Stats implements Cache.
func (c *SetAssoc) Stats() *Stats { return c.stats }

// Geometry implements Cache.
func (c *SetAssoc) Geometry() Geometry { return c.geom }

// Name implements Cache.
func (c *SetAssoc) Name() string { return c.name }

// Policy returns the replacement policy family in use.
func (c *SetAssoc) Policy() PolicyKind { return c.kind }

// Reset implements Cache.
func (c *SetAssoc) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for _, p := range c.policies {
		p.Reset()
	}
	c.stats.Reset()
}
