package cache

import (
	"encoding/binary"
	"fmt"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// TestIndexCrossover pins the faIndexMinWays threshold for every policy
// kind: below it the bitmask scan runs (idx nil), at or above it the
// hash index is active, and NewSetAssocScan strips it unconditionally.
// lruPolicy's linear victim scan is justified by exactly this split.
func TestIndexCrossover(t *testing.T) {
	for _, kind := range []PolicyKind{LRU, FIFO, Random} {
		src := rng.New(1)
		narrow, err := NewSetAssoc(16*1024, 32, 32, kind, src)
		if err != nil {
			t.Fatal(err)
		}
		if narrow.idx != nil {
			t.Errorf("%v: 32-way set unexpectedly indexed", kind)
		}
		wide, err := NewSetAssoc(16*1024, 32, faIndexMinWays, kind, src)
		if err != nil {
			t.Fatal(err)
		}
		if wide.idx == nil {
			t.Errorf("%v: %d-way set not indexed", kind, faIndexMinWays)
		}
		scan, err := NewSetAssocScan(16*1024, 32, 512, kind, src)
		if err != nil {
			t.Fatal(err)
		}
		if scan.idx != nil {
			t.Errorf("%v: scan constructor left the index active", kind)
		}
	}
}

// TestWidePolicyIndexVsScan proves the indexed FIFO/Random wide-set path
// bit-identical to the linear scan across geometries, including
// per-access Results. (The LRU twin is TestFAHashVsLinear.) Random
// sources are built from the same seed on both sides; per-set Split
// streams make the victim sequence a function of the set alone.
func TestWidePolicyIndexVsScan(t *testing.T) {
	for _, kind := range []PolicyKind{FIFO, Random} {
		for _, tc := range []struct{ size, ways int }{
			{16 * 1024, 64},
			{16 * 1024, 512}, // fully associative
			{8 * 1024, 256},  // fully associative at 8kB
			{32 * 1024, 128},
		} {
			t.Run(fmt.Sprintf("%v-%dkB-%dway", kind, tc.size/1024, tc.ways), func(t *testing.T) {
				hash, err := NewSetAssoc(tc.size, 32, tc.ways, kind, rng.New(42))
				if err != nil {
					t.Fatal(err)
				}
				if hash.idx == nil {
					t.Fatal("hash index not active")
				}
				scan, err := NewSetAssocScan(tc.size, 32, tc.ways, kind, rng.New(42))
				if err != nil {
					t.Fatal(err)
				}
				src := rng.New(7)
				for i, a := range conflictStream(200000, uint64(tc.size+tc.ways)) {
					write := src.Intn(4) == 0
					rh := hash.Access(a, write)
					rs := scan.Access(a, write)
					if rh != rs {
						t.Fatalf("access %d (%#x, write=%v): hash %+v, scan %+v", i, a, write, rh, rs)
					}
					if i%4096 == 0 && hash.Contains(a) != scan.Contains(a) {
						t.Fatalf("access %d: Contains diverged", i)
					}
				}
				assertSameState(t, hash, scan)
			})
		}
	}
}

// TestWidePolicyIndexDropsOnFault: a fault mutation must drop the index
// on FIFO/Random caches too, and the cache must continue bit-identically
// with a scan twin receiving the same mutation — no handoff is needed
// because those policies advanced normally while indexed.
func TestWidePolicyIndexDropsOnFault(t *testing.T) {
	for _, kind := range []PolicyKind{FIFO, Random} {
		t.Run(kind.String(), func(t *testing.T) {
			hash, err := NewFullyAssoc(16*1024, 32, kind, rng.New(3))
			if err != nil {
				t.Fatal(err)
			}
			scan, err := NewSetAssocScan(16*1024, 32, 512, kind, rng.New(3))
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range conflictStream(100000, 21) {
				hash.Access(a, a&64 != 0)
				scan.Access(a, a&64 != 0)
			}
			hash.FlipStateBit(FaultTag, 7)
			scan.FlipStateBit(FaultTag, 7)
			if hash.idx != nil {
				t.Fatal("fault mutation left the index active")
			}
			for i, a := range conflictStream(100000, 22) {
				if rh, rs := hash.Access(a, a&32 != 0), scan.Access(a, a&32 != 0); rh != rs {
					t.Fatalf("post-fault access %d diverged: %+v vs %+v", i, rh, rs)
				}
			}
			assertSameState(t, hash, scan)
		})
	}
}

// TestRandomPerSetStreamsOrderIndependent: with per-set Split streams,
// replaying only one set's accesses must reproduce exactly what that set
// saw in a full interleaved replay — the property set-sharded parallel
// replay depends on.
func TestRandomPerSetStreamsOrderIndependent(t *testing.T) {
	const size, line, ways = 8 * 1024, 32, 4
	full, err := NewSetAssoc(size, line, ways, Random, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	sets := full.Geometry().Sets
	stream := conflictStream(120000, 33)
	for _, a := range stream {
		full.Access(a, a&128 != 0)
	}
	// Replay each set's subsequence alone into a fresh cache and compare
	// that set's frames.
	for set := 0; set < sets; set += 7 {
		solo, err := NewSetAssoc(size, line, ways, Random, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range stream {
			if int(a>>solo.offBits&solo.idxMask) == set {
				solo.Access(a, a&128 != 0)
			}
		}
		base := set * ways
		for w := 0; w < ways; w++ {
			if full.tags[base+w] != solo.tags[base+w] {
				t.Fatalf("set %d way %d: tag %#x (full) != %#x (solo)", set, w, full.tags[base+w], solo.tags[base+w])
			}
		}
		mbase := set * full.maskWords
		if full.valid[mbase] != solo.valid[mbase] || full.dirty[mbase] != solo.dirty[mbase] {
			t.Fatalf("set %d: valid/dirty masks diverged", set)
		}
	}
}

// FuzzWidePolicyVsScan feeds arbitrary access streams (with interleaved
// write flags and resets) through indexed and scan FIFO/Random caches.
func FuzzWidePolicyVsScan(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, false)
	f.Add([]byte("\xff\xff\xff\xff\x00\x00\x00\x00repeat-me-repeat-me"), true)
	seed := make([]byte, 0, 9*64)
	src := rng.New(77)
	for i := 0; i < 64; i++ {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(src.Intn(1<<18)))
		seed = append(seed, byte(i), w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7])
	}
	f.Add(seed, true)
	f.Fuzz(func(t *testing.T, data []byte, random bool) {
		kind := FIFO
		if random {
			kind = Random
		}
		hash, err := NewSetAssoc(2048, 32, 64, kind, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		if hash.idx == nil {
			t.Fatal("hash index not active")
		}
		scan, err := NewSetAssocScan(2048, 32, 64, kind, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+9 <= len(data); i += 9 {
			op := data[i]
			a := addr.Addr(binary.LittleEndian.Uint64(data[i+1:i+9])) & addr.Max
			switch {
			case op == 0xff:
				hash.Reset()
				scan.Reset()
			default:
				write := op&1 != 0
				if rh, rs := hash.Access(a, write), scan.Access(a, write); rh != rs {
					t.Fatalf("access %d (%#x, write=%v): hash %+v, scan %+v", i/9, a, write, rh, rs)
				}
			}
		}
		assertSameState(t, hash, scan)
	})
}
