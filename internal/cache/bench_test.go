package cache

import (
	"fmt"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// BenchmarkSetAssocAccess measures the raw access path of the
// structure-of-arrays set-associative model across the associativities
// the paper sweeps: direct-mapped (1), the classic 8-way, and the
// 512-way fully-associative extreme of Table 4.
func BenchmarkSetAssocAccess(b *testing.B) {
	src := rng.New(5)
	addrs := make([]addr.Addr, 8192)
	for i := range addrs {
		addrs[i] = addr.Addr(src.Intn(1 << 22))
	}
	for _, ways := range []int{1, 8, 512} {
		b.Run(fmt.Sprintf("%dway", ways), func(b *testing.B) {
			c, err := NewSetAssoc(16*1024, 32, ways, LRU, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(addrs[i&8191], false)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}
