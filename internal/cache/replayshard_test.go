package cache

import (
	"fmt"
	"reflect"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// shardStream builds a data stream with write flags exercising every
// set, including hot conflict reuse.
func shardStream(n int, seed uint64) []MemAccess {
	src := rng.New(seed)
	out := make([]MemAccess, n)
	for i := range out {
		var a addr.Addr
		switch src.Intn(3) {
		case 0:
			a = addr.Addr(src.Intn(1 << 14))
		case 1:
			a = addr.Addr(src.Intn(64)) * (1 << 16)
		default:
			a = addr.Addr(src.Intn(1 << 24))
		}
		out[i] = NewMemAccess(a, src.Intn(4) == 0)
	}
	return out
}

// TestReplayShardsMatchesSequential proves the set-sharded replay
// bit-identical to a sequential one — full statistics and final
// tag/valid/dirty state — for every policy kind, for narrow (scan) and
// wide (indexed) sets, for data and fetch streams, across worker counts.
func TestReplayShardsMatchesSequential(t *testing.T) {
	data := shardStream(150000, 41)
	fetch := make([]addr.Addr, len(data))
	for i, m := range data {
		fetch[i] = m.Addr()
	}
	for _, kind := range []PolicyKind{LRU, FIFO, Random} {
		for _, ways := range []int{1, 8, 64} {
			for _, workers := range []int{2, 3, 16, 64} {
				t.Run(fmt.Sprintf("%v-%dway-w%d", kind, ways, workers), func(t *testing.T) {
					seq, err := NewSetAssoc(16*1024, 32, ways, kind, rng.New(5))
					if err != nil {
						t.Fatal(err)
					}
					par, err := NewSetAssoc(16*1024, 32, ways, kind, rng.New(5))
					if err != nil {
						t.Fatal(err)
					}
					for _, m := range data {
						seq.Access(m.Addr(), m.Write())
					}
					if !par.ReplayShards(data, nil, workers) {
						t.Fatal("sharded replay refused a shardable cache")
					}
					if !reflect.DeepEqual(seq.Stats(), par.Stats()) {
						t.Fatalf("data stats diverged:\nseq: %+v\npar: %+v", seq.Stats(), par.Stats())
					}
					assertSameState(t, par, seq)

					// Fetch (read-only) stream.
					seqF, _ := NewSetAssoc(16*1024, 32, ways, kind, rng.New(5))
					parF, _ := NewSetAssoc(16*1024, 32, ways, kind, rng.New(5))
					for _, a := range fetch {
						seqF.Access(a, false)
					}
					if !parF.ReplayShards(nil, fetch, workers) {
						t.Fatal("sharded replay refused a fetch stream")
					}
					if !reflect.DeepEqual(seqF.Stats(), parF.Stats()) {
						t.Fatalf("fetch stats diverged:\nseq: %+v\npar: %+v", seqF.Stats(), parF.Stats())
					}
					assertSameState(t, parF, seqF)
				})
			}
		}
	}
}

// TestReplayShardsRefusals: single-set caches, single workers, and
// probed caches must fall back to the caller's sequential path.
func TestReplayShardsRefusals(t *testing.T) {
	fa, err := NewFullyAssoc(4096, 32, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fa.ReplayShards(shardStream(10, 1), nil, 8) {
		t.Fatal("sharded a single-set cache")
	}
	c, err := NewSetAssoc(16*1024, 32, 2, LRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.ReplayShards(shardStream(10, 1), nil, 1) {
		t.Fatal("sharded with one worker")
	}
	c.SetProbe(countingProbe{})
	if c.ReplayShards(shardStream(10, 1), nil, 8) {
		t.Fatal("sharded a probed cache")
	}
	if c.Stats().Accesses != 0 {
		t.Fatal("a refused replay must not consume the stream")
	}
}

type countingProbe struct{}

func (countingProbe) ObserveAccess(int, bool, bool)        {}
func (countingProbe) ObservePD(bool)                       {}
func (countingProbe) ObserveReprogram()                    {}
func (countingProbe) ObserveEvict(bool)                    {}
func (countingProbe) ObserveWriteback()                    {}
func (countingProbe) ObserveFault(FaultDomain, FaultClass) {}
func (countingProbe) ObserveScrub(int, bool)               {}
