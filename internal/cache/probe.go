package cache

// Probe observes cache events as they happen, in access order. It is the
// attach point of the observability layer (internal/obs provides the
// implementations: counters, interval samplers, fan-out).
//
// Probes are optional: every emitting model stores a Probe field that is
// nil by default and guards each emission with a nil check, so the hot
// access path pays one predictable branch when no probe is attached. All
// methods take only scalar arguments so an attached probe costs no
// allocations per access (internal/obs/alloc_test.go enforces this).
//
// Event points and their emitters:
//
//	ObserveAccess    every cache model, once per completed Access
//	ObservePD        internal/core.BCache, once per cache miss (the
//	                 decoder lookup outcome; hits imply PD hits)
//	ObserveReprogram internal/core.BCache, once per PD entry rewrite
//	ObserveEvict     every cache model, when a valid line is displaced
//	ObserveWriteback internal/hier.Hierarchy, when a dirty L1 victim is
//	                 actually written into the L2
//	ObserveFault     internal/fault.Injector, once per injected soft
//	                 error, with the protection model's classification
//	ObserveScrub     internal/fault.Injector, once per PD scrub pass
//
// A probe attached to a single cache sees a consistent single-goroutine
// event stream; probes are not required to be safe for concurrent use.
type Probe interface {
	// ObserveAccess records one completed access: the frame that served
	// (or was refilled by) it, whether it hit, and whether it was a write.
	ObserveAccess(frame int, hit, write bool)

	// ObservePD records the programmable-decoder lookup outcome of a
	// cache MISS: hit=true is a forced-victim miss (the PD matched but
	// the tag did not — §2.3's second situation), hit=false a
	// predetermined miss. Cache hits are PD hits by definition and emit
	// only ObserveAccess, keeping the hot path at one probe call; total
	// PD hits are therefore hits + PD-hits-during-miss, and the
	// PD-hit-rate-during-miss of Table 6 is hits/(hits+misses) over this
	// event alone.
	ObservePD(hit bool)

	// ObserveReprogram records one on-the-fly decoder reprogramming (a PD
	// entry write, paper §3.3).
	ObserveReprogram()

	// ObserveEvict records the displacement of a valid line; dirty lines
	// need a writeback at the next level.
	ObserveEvict(dirty bool)

	// ObserveWriteback records a dirty victim actually written to the
	// next memory level (emitted by the hierarchy, not by the cache that
	// evicted the line — attach one probe to both to correlate).
	ObserveWriteback()

	// ObserveFault records one injected soft error: the state array it
	// landed in and the protection model's verdict on it.
	ObserveFault(d FaultDomain, c FaultClass)

	// ObserveScrub records one programmable-decoder scrub pass: how many
	// PD entries it had to repair and whether the cache gave up and
	// degraded to plain direct-mapped indexing.
	ObserveScrub(repaired int, degraded bool)
}

// FaultDomain classifies the state array a soft error landed in. The
// enum lives here (rather than in internal/fault) because cache.Probe
// speaks it and fault targets implement per-domain state accessors.
type FaultDomain uint8

const (
	// FaultTag is a bit of a stored tag.
	FaultTag FaultDomain = iota
	// FaultValid is a line presence bit.
	FaultValid
	// FaultDirty is a line writeback-owed bit.
	FaultDirty
	// FaultPD is a bit of a programmable-decoder CAM entry (B-Cache
	// only; includes the lane-invalid encoding bits on the SWAR path).
	FaultPD
	// NumFaultDomains bounds the enum for array-indexed counters.
	NumFaultDomains
)

// String names the domain for logs and tables.
func (d FaultDomain) String() string {
	switch d {
	case FaultTag:
		return "tag"
	case FaultValid:
		return "valid"
	case FaultDirty:
		return "dirty"
	case FaultPD:
		return "pd"
	}
	return "unknown"
}

// FaultClass is a protection model's verdict on one injected soft error.
type FaultClass uint8

const (
	// FaultSilent means the flip landed undetected: state is corrupted
	// and only a later scrub or a wrong lookup will reveal it.
	FaultSilent FaultClass = iota
	// FaultDetected means the code caught the error (e.g. parity); the
	// affected site is conservatively invalidated, costing a refill.
	FaultDetected
	// FaultCorrected means the code repaired the error in place (e.g.
	// SEC-DED); state is unchanged.
	FaultCorrected
)

// String names the classification for logs and tables.
func (c FaultClass) String() string {
	switch c {
	case FaultSilent:
		return "silent"
	case FaultDetected:
		return "detected"
	case FaultCorrected:
		return "corrected"
	}
	return "unknown"
}

// Probed is implemented by models that support attaching a Probe.
// Passing nil detaches.
type Probed interface {
	SetProbe(Probe)
}

// AttachProbe attaches p to c if c supports probing, reporting whether it
// did. It is the polymorphic front door for CLI/experiment code that
// holds caches behind the Cache interface.
func AttachProbe(c Cache, p Probe) bool {
	if pc, ok := c.(Probed); ok {
		pc.SetProbe(p)
		return true
	}
	return false
}
