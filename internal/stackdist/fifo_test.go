package stackdist

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// fifoScanSim replays blocks against per-set FIFO queues kept as plain
// slices — the scan-engine reference: eviction strictly in insertion
// order, hits leaving the queue untouched — and returns the miss count
// for a (sets, ways) FIFO cache. It is the in-test oracle NewFIFOProfile
// is differentially checked against.
func fifoScanSim(blocks []addr.Addr, sets, ways int) uint64 {
	queues := make([][]addr.Addr, sets)
	mask := addr.Addr(sets - 1)
	var misses uint64
	for _, b := range blocks {
		q := queues[b&mask]
		resident := false
		for _, x := range q {
			if x == b {
				resident = true
				break
			}
		}
		if resident {
			continue
		}
		misses++
		if len(q) == ways {
			q = q[1:]
		}
		queues[b&mask] = append(q, b)
	}
	return misses
}

func TestFIFOProfileMatchesScanSim(t *testing.T) {
	blocks := randomBlocks(20000, 13)
	var geoms []Geom
	setCounts := []int{1, 2, 16, 64}
	wayCounts := []int{1, 2, 3, 8, 64}
	for _, s := range setCounts {
		for _, w := range wayCounts {
			geoms = append(geoms, Geom{Sets: s, Ways: w})
		}
	}
	p, err := NewFIFOProfile(1, geoms)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		p.Access(b)
	}
	if got := p.Accesses(); got != uint64(len(blocks)) {
		t.Fatalf("accesses = %d, want %d", got, len(blocks))
	}
	for _, s := range setCounts {
		for _, w := range wayCounts {
			got, err := p.Misses(s, w)
			if err != nil {
				t.Fatal(err)
			}
			if want := fifoScanSim(blocks, s, w); got != want {
				t.Errorf("sets=%d ways=%d: misses = %d, want %d", s, w, got, want)
			}
		}
	}
}

// TestFIFOProfileLineShift: byte addresses must collapse to line granules
// before profiling, exactly as a real cache indexes.
func TestFIFOProfileLineShift(t *testing.T) {
	const lineBytes = 32
	src := rng.New(5)
	bytesAddrs := make([]addr.Addr, 10000)
	blocks := make([]addr.Addr, len(bytesAddrs))
	for i := range bytesAddrs {
		bytesAddrs[i] = addr.Addr(src.Intn(1 << 18))
		blocks[i] = bytesAddrs[i] / lineBytes
	}
	p, err := NewFIFOProfile(lineBytes, []Geom{{Sets: 8, Ways: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range bytesAddrs {
		p.Access(a)
	}
	got, err := p.Misses(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := fifoScanSim(blocks, 8, 4); got != want {
		t.Fatalf("misses = %d, want %d", got, want)
	}
}

// TestFIFONoInclusion pins the reason each geometry carries its own
// state: FIFO exhibits Belady's anomaly, so a larger queue is NOT
// guaranteed fewer misses. The canonical 12-reference string misses more
// at 4 frames than at 3.
func TestFIFONoInclusion(t *testing.T) {
	belady := []addr.Addr{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	p, err := NewFIFOProfile(1, []Geom{{Sets: 1, Ways: 3}, {Sets: 1, Ways: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range belady {
		p.Access(b)
	}
	m3, _ := p.Misses(1, 3)
	m4, _ := p.Misses(1, 4)
	if m3 != 9 || m4 != 10 {
		t.Fatalf("Belady sequence: misses(3)=%d misses(4)=%d, want 9 and 10", m3, m4)
	}
}

func TestFIFOProfileValidation(t *testing.T) {
	if _, err := NewFIFOProfile(3, []Geom{{Sets: 1, Ways: 1}}); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
	if _, err := NewFIFOProfile(32, nil); err == nil {
		t.Fatal("empty geometry list accepted")
	}
	if _, err := NewFIFOProfile(32, []Geom{{Sets: 3, Ways: 1}}); err == nil {
		t.Fatal("non-power-of-two set count accepted")
	}
	if _, err := NewFIFOProfile(32, []Geom{{Sets: 4, Ways: 0}}); err == nil {
		t.Fatal("zero ways accepted")
	}
	p, err := NewFIFOProfile(32, []Geom{{Sets: 4, Ways: 2}, {Sets: 4, Ways: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.geoms) != 1 {
		t.Fatalf("duplicate geometry not collapsed: %d states", len(p.geoms))
	}
	if _, err := p.Misses(4, 8); err == nil {
		t.Fatal("unprofiled geometry did not error")
	}
}

// FuzzFIFOProfileVsScanSim feeds arbitrary short streams through the
// one-pass profiler and the queue-scan oracle at several geometries.
func FuzzFIFOProfileVsScanSim(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}, uint8(1))
	f.Add([]byte{0, 0, 0}, uint8(2))
	f.Add([]byte{7, 7, 9, 200, 7, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, salt uint8) {
		if len(raw) == 0 || len(raw) > 4096 {
			return
		}
		blocks := make([]addr.Addr, len(raw))
		for i, b := range raw {
			blocks[i] = addr.Addr(b) ^ addr.Addr(salt)<<3
		}
		geoms := []Geom{
			{Sets: 1, Ways: 1}, {Sets: 1, Ways: 3}, {Sets: 1, Ways: 4},
			{Sets: 4, Ways: 2}, {Sets: 8, Ways: 3},
		}
		p, err := NewFIFOProfile(1, geoms)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			p.Access(b)
		}
		for _, g := range geoms {
			got, err := p.Misses(g.Sets, g.Ways)
			if err != nil {
				t.Fatal(err)
			}
			if want := fifoScanSim(blocks, g.Sets, g.Ways); got != want {
				t.Fatalf("sets=%d ways=%d: profiler %d != scan %d", g.Sets, g.Ways, got, want)
			}
		}
	})
}
