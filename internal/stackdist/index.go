// Package stackdist provides the one-pass LRU machinery shared by the
// fast cache models and the experiment scheduler: an O(1) hash-indexed
// LRU structure (Index) and a Mattson stack-distance profiler (Profiler,
// Profile) that derives hit/miss counts for every LRU (sets, ways)
// geometry from a single pass over an address stream.
//
// The two halves serve the same property from opposite directions. LRU's
// inclusion property says the content of a W-way LRU set is always a
// prefix of the set's recency stack, so (a) a fully-associative lookup
// needs only a hash map plus a recency list — no tag scan — and (b) an
// access hits in a W-way set if and only if fewer than W distinct lines
// of that set were touched since its last use (its stack distance).
package stackdist

import "bcache/internal/addr"

// Node is one resident line in an Index: a hash-table entry threaded on
// the recency list. Key identifies the line (tag or line address — the
// Index does not interpret it) and Val carries the caller's payload (a
// way number, a dirty flag).
type Node struct {
	Key addr.Addr
	Val uint64

	prev, next *Node // recency neighbours; head = MRU, tail = LRU
}

// Index is an O(1) fully-associative LRU directory: a map from key to an
// intrusive doubly-linked-list node whose list position is the recency
// order. Lookup, touch, insert, and LRU-victim selection are all O(1),
// replacing the O(ways) tag scan and victim search of a linear
// fully-associative model.
type Index struct {
	m          map[addr.Addr]*Node
	head, tail *Node
	free       *Node // pool of removed nodes, chained on next
}

// NewIndex returns an empty index sized for about capHint residents.
func NewIndex(capHint int) *Index {
	if capHint < 0 {
		capHint = 0
	}
	return &Index{m: make(map[addr.Addr]*Node, capHint)}
}

// Len returns the number of resident keys.
func (ix *Index) Len() int { return len(ix.m) }

// Get returns the node holding key without touching recency, or nil.
func (ix *Index) Get(key addr.Addr) *Node { return ix.m[key] }

// Touch moves n to the MRU position.
func (ix *Index) Touch(n *Node) {
	if ix.head == n {
		return
	}
	ix.unlink(n)
	ix.pushFront(n)
}

// Insert adds key as the MRU resident and returns its node. The key must
// not already be present.
func (ix *Index) Insert(key addr.Addr, val uint64) *Node {
	n := ix.free
	if n != nil {
		ix.free = n.next
		*n = Node{Key: key, Val: val}
	} else {
		n = &Node{Key: key, Val: val}
	}
	ix.m[key] = n
	ix.pushFront(n)
	return n
}

// Remove deletes n from the index and recycles its node. The caller must
// not use n afterwards.
func (ix *Index) Remove(n *Node) {
	ix.unlink(n)
	delete(ix.m, n.Key)
	*n = Node{next: ix.free}
	ix.free = n
}

// LRU returns the least-recently-used node, or nil when empty.
func (ix *Index) LRU() *Node { return ix.tail }

// MRU returns the most-recently-used node, or nil when empty.
func (ix *Index) MRU() *Node { return ix.head }

// Prev returns the next-more-recent neighbour of n (towards the MRU).
func (ix *Index) Prev(n *Node) *Node { return n.prev }

// Reset drops every resident.
func (ix *Index) Reset() {
	clear(ix.m)
	ix.head, ix.tail, ix.free = nil, nil, nil
}

func (ix *Index) pushFront(n *Node) {
	n.prev = nil
	n.next = ix.head
	if ix.head != nil {
		ix.head.prev = n
	}
	ix.head = n
	if ix.tail == nil {
		ix.tail = n
	}
}

func (ix *Index) unlink(n *Node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		ix.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		ix.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
