package stackdist_test

import (
	"fmt"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
	"bcache/internal/stackdist"
)

// TestFIFOProfileVsScanReplay replays real byte-address streams through
// linear-scan FIFO caches (cache.NewSetAssocScan, the scan-engine
// oracle) across a grid of cache sizes and associativities — covering
// the MF×BAS-shaped geometries the B-Cache sweeps use — and checks the
// one-pass queue-distance profiler produces the identical miss count for
// every geometry from a single pass.
func TestFIFOProfileVsScanReplay(t *testing.T) {
	const lineBytes = 32
	src := rng.New(123)
	stream := make([]addr.Addr, 150000)
	for i := range stream {
		switch src.Intn(3) {
		case 0:
			stream[i] = addr.Addr(src.Intn(1 << 14)) // resident working set
		case 1:
			stream[i] = addr.Addr(src.Intn(64)) * (1 << 16) // tag aliases
		default:
			stream[i] = addr.Addr(src.Intn(1 << 24)) // mostly cold
		}
	}

	type shape struct{ size, ways int }
	shapes := []shape{
		{8 * 1024, 2}, {8 * 1024, 8}, {8 * 1024, 256},
		{16 * 1024, 1}, {16 * 1024, 4}, {16 * 1024, 16}, {16 * 1024, 512},
		{32 * 1024, 8}, {32 * 1024, 64},
	}
	geoms := make([]stackdist.Geom, len(shapes))
	for i, sh := range shapes {
		geoms[i] = stackdist.Geom{Sets: sh.size / lineBytes / sh.ways, Ways: sh.ways}
	}
	prof, err := stackdist.NewFIFOProfile(lineBytes, geoms)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range stream {
		prof.Access(a)
	}

	for i, sh := range shapes {
		t.Run(fmt.Sprintf("%dkB-%dway", sh.size/1024, sh.ways), func(t *testing.T) {
			c, err := cache.NewSetAssocScan(sh.size, lineBytes, sh.ways, cache.FIFO, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range stream {
				c.Access(a, false)
			}
			got, err := prof.Misses(geoms[i].Sets, geoms[i].Ways)
			if err != nil {
				t.Fatal(err)
			}
			if want := c.Stats().Misses; got != want {
				t.Errorf("profiler misses %d != scan replay %d", got, want)
			}
			if prof.Accesses() != c.Stats().Accesses {
				t.Errorf("profiler accesses %d != replay %d", prof.Accesses(), c.Stats().Accesses)
			}
		})
	}
}
