package stackdist

import (
	"fmt"

	"bcache/internal/addr"
)

// shallowWays is the engine-selection threshold: profilers tracking at
// most this many ways use the move-to-front array engine (no hash map,
// no tree — a per-set scan bounded by maxWays, cheap because real
// streams have small stack distances); larger trackers fall back to the
// general map + Fenwick engine whose cost is O(log residency) per
// access regardless of depth.
const shallowWays = 64

// Profiler measures LRU stack distances at one set-index granularity:
// the address stream is partitioned into sets = 2^b classes by the low b
// bits of the block number, and every access records how many distinct
// same-set blocks were touched since its previous access (Mattson's
// stack distance). Under LRU's inclusion property an access hits a
// W-way set-associative cache with that set count if and only if its
// distance is below W, so one pass yields hit/miss counts for every
// associativity at once.
//
// Two engines compute the distances. The shallow engine (maxWays <=
// shallowWays) keeps each set's top maxWays of the LRU stack as a
// move-to-front array: the distance is the block's position in the
// array, found by the same scan that maintains it. The deep engine is
// an order-statistic structure — a Fenwick tree per set over a
// compacted time axis. Each set access claims the next time slot; a
// slot's tree bit is 1 while it is the *latest* access of its block, so
// the distance of a re-access is the count of live slots after the
// block's previous slot. When a set's axis fills, live slots are
// renumbered in order (compaction), keeping the axis at most twice the
// set's resident-block count — amortized O(1) slots per access and
// O(log live) tree work. The engines are differentially tested against
// each other and against the textbook stack-slice formulation.
type Profiler struct {
	sets    int
	setMask addr.Addr
	maxWays int

	// hist[d] counts accesses at stack distance d < maxWays; over counts
	// the rest — distances >= maxWays and, in the shallow engine, first
	// touches (both miss at every tracked associativity; the deep engine
	// keeps compulsory misses in cold, the shallow engine cannot tell a
	// first touch from a deep re-access and does not try).
	hist  []uint64
	over  uint64
	cold  uint64
	total uint64

	// Shallow engine: stk[set*maxWays:][:fill[set]] is the set's stack,
	// MRU first.
	stk  []addr.Addr
	fill []int32

	// Deep engine: last maps a block to its latest time slot in its
	// set's axis (sets partition blocks, so one map serves all sets).
	last  map[addr.Addr]int32
	state []setState
}

// setState is one set's compacted time axis (deep engine).
type setState struct {
	bit    []int32     // Fenwick tree (1-indexed) over slots
	blocks []addr.Addr // slot -> block that claimed it
	t      int32       // next free slot
	live   int32       // slots that are their block's latest access
}

// NewProfiler builds a profiler for the given power-of-two set count,
// recording exact distances up to maxWays (larger ones aggregate into a
// single always-miss bucket).
func NewProfiler(sets, maxWays int) (*Profiler, error) {
	return newProfiler(sets, maxWays, false)
}

// newProfiler is NewProfiler plus an engine override for differential
// tests: forceDeep builds the map + Fenwick engine even below the
// shallow threshold.
func newProfiler(sets, maxWays int, forceDeep bool) (*Profiler, error) {
	if sets <= 0 || !addr.IsPow2(uint64(sets)) {
		return nil, fmt.Errorf("stackdist: set count %d is not a positive power of two", sets)
	}
	if maxWays <= 0 {
		return nil, fmt.Errorf("stackdist: non-positive maxWays %d", maxWays)
	}
	p := &Profiler{
		sets:    sets,
		setMask: addr.Addr(sets - 1),
		maxWays: maxWays,
		hist:    make([]uint64, maxWays),
	}
	if maxWays <= shallowWays && !forceDeep {
		p.stk = make([]addr.Addr, sets*maxWays)
		p.fill = make([]int32, sets)
	} else {
		p.last = make(map[addr.Addr]int32)
		p.state = make([]setState, sets)
	}
	return p, nil
}

// Sets returns the profiler's set count.
func (p *Profiler) Sets() int { return p.sets }

// MaxWays returns the largest associativity with an exact histogram
// bucket.
func (p *Profiler) MaxWays() int { return p.maxWays }

// Access records one access to block (a line number, not a byte
// address).
func (p *Profiler) Access(block addr.Addr) {
	p.total++
	if p.stk != nil {
		p.accessShallow(block)
		return
	}
	p.accessDeep(block)
}

// accessShallow scans the set's move-to-front array: the hit position is
// the stack distance, and the scan's rotation restores MRU order. A
// block not in the top maxWays misses every tracked associativity
// whether it is cold or merely deep, so it lands in over either way.
func (p *Profiler) accessShallow(block addr.Addr) {
	base := int(block&p.setMask) * p.maxWays
	n := int(p.fill[block&p.setMask])
	stk := p.stk[base : base+n]
	for i, b := range stk {
		if b == block {
			p.hist[i]++
			copy(stk[1:i+1], stk[:i])
			stk[0] = block
			return
		}
	}
	p.over++
	if n < p.maxWays {
		p.fill[block&p.setMask]++
		n++
	}
	stk = p.stk[base : base+n]
	copy(stk[1:], stk[:n-1])
	stk[0] = block
}

func (p *Profiler) accessDeep(block addr.Addr) {
	s := &p.state[block&p.setMask]
	// Compact while the axis is self-consistent: every block's last slot
	// is live. Compaction leaves t = live < capacity, so the claim below
	// always finds a free slot.
	if int(s.t) == len(s.blocks) {
		p.compact(s)
	}
	if slot, ok := p.last[block]; ok {
		// Live slots strictly after the previous access = distinct
		// same-set blocks touched since. The block's own bit is still
		// set, so the inclusive prefix sum counts it and cancels.
		d := int(s.live) - s.prefix(int(slot)+1)
		if d < p.maxWays {
			p.hist[d]++
		} else {
			p.over++
		}
		s.add(int(slot), -1)
		s.live--
	} else {
		p.cold++
	}
	slot := s.t
	s.blocks[slot] = block
	s.add(int(slot), 1)
	s.live++
	s.t++
	p.last[block] = slot
}

// compact renumbers s's live slots consecutively and resizes the axis to
// twice the live count, so slot space stays proportional to residency.
func (p *Profiler) compact(s *setState) {
	newCap := int(s.live) * 2
	if newCap < 16 {
		newCap = 16
	}
	blocks := make([]addr.Addr, newCap)
	bit := make([]int32, newCap+1)
	n := int32(0)
	for slot := int32(0); slot < s.t; slot++ {
		b := s.blocks[slot]
		if p.last[b] != slot {
			continue // a newer access of b owns a later slot
		}
		blocks[n] = b
		p.last[b] = n
		n++
	}
	s.blocks, s.bit, s.t = blocks, bit, n
	for i := int32(0); i < n; i++ {
		s.add(int(i), 1)
	}
}

// add applies a Fenwick point update at 0-indexed slot i.
func (s *setState) add(i int, delta int32) {
	for j := i + 1; j <= len(s.blocks); j += j & -j {
		s.bit[j] += delta
	}
}

// prefix returns the number of live slots among the first k.
func (s *setState) prefix(k int) int {
	sum := int32(0)
	for j := k; j > 0; j -= j & -j {
		sum += s.bit[j]
	}
	return int(sum)
}

// Accesses returns the number of recorded accesses.
func (p *Profiler) Accesses() uint64 { return p.total }

// Misses returns the number of accesses that miss a ways-associative LRU
// cache with this profiler's set count: compulsory misses plus every
// access at stack distance >= ways. ways must not exceed MaxWays.
func (p *Profiler) Misses(ways int) (uint64, error) {
	if ways <= 0 || ways > p.maxWays {
		return 0, fmt.Errorf("stackdist: ways %d outside tracked range 1..%d", ways, p.maxWays)
	}
	m := p.cold + p.over
	for _, n := range p.hist[ways:] {
		m += n
	}
	return m, nil
}
