package stackdist

import (
	"fmt"

	"bcache/internal/addr"
)

// Geom names one LRU cache shape a Profile must answer: a power-of-two
// set count and an associativity. Capacity is Sets*Ways lines.
type Geom struct {
	Sets int
	Ways int
}

// Profile profiles one address stream at several set-index
// granularities simultaneously, deriving hit/miss counts for every
// requested LRU (sets, ways) geometry — and any smaller associativity at
// the same set counts — from a single pass. Geometries sharing a set
// count share one Profiler.
type Profile struct {
	lineShift uint
	profs     []*Profiler // ascending by set count
	bySets    map[int]*Profiler
	total     uint64
}

// NewProfile builds a profile for streams of byte addresses with the
// given line size, able to answer every geometry in geoms.
func NewProfile(lineBytes int, geoms []Geom) (*Profile, error) {
	if lineBytes <= 0 || !addr.IsPow2(uint64(lineBytes)) {
		return nil, fmt.Errorf("stackdist: line size %d is not a positive power of two", lineBytes)
	}
	if len(geoms) == 0 {
		return nil, fmt.Errorf("stackdist: no geometries")
	}
	maxWays := map[int]int{}
	for _, g := range geoms {
		if g.Ways <= 0 {
			return nil, fmt.Errorf("stackdist: non-positive ways %d", g.Ways)
		}
		if g.Ways > maxWays[g.Sets] {
			maxWays[g.Sets] = g.Ways
		}
	}
	p := &Profile{
		lineShift: addr.Log2(uint64(lineBytes)),
		bySets:    make(map[int]*Profiler, len(maxWays)),
	}
	for sets, ways := range maxWays {
		pr, err := NewProfiler(sets, ways)
		if err != nil {
			return nil, err
		}
		p.bySets[sets] = pr
	}
	for sets := 1; ; sets *= 2 {
		if pr, ok := p.bySets[sets]; ok {
			p.profs = append(p.profs, pr)
			if len(p.profs) == len(p.bySets) {
				break
			}
		}
	}
	return p, nil
}

// Access records one byte-address access with every profiler.
func (p *Profile) Access(a addr.Addr) {
	block := a >> p.lineShift
	p.total++
	for _, pr := range p.profs {
		pr.Access(block)
	}
}

// Accesses returns the number of recorded accesses.
func (p *Profile) Accesses() uint64 { return p.total }

// Misses returns the miss count a (sets, ways) LRU cache would record
// over the profiled stream. The set count must be one of the profiled
// granularities and ways within its tracked range.
func (p *Profile) Misses(sets, ways int) (uint64, error) {
	pr, ok := p.bySets[sets]
	if !ok {
		return 0, fmt.Errorf("stackdist: set count %d was not profiled", sets)
	}
	return pr.Misses(ways)
}
