package stackdist

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/rng"
)

// naiveMisses replays blocks against a per-set LRU stack kept as a plain
// slice — the textbook Mattson formulation — and returns the miss count
// for a (sets, ways) LRU cache.
func naiveMisses(blocks []addr.Addr, sets, ways int) uint64 {
	stacks := make([][]addr.Addr, sets)
	mask := addr.Addr(sets - 1)
	var misses uint64
	for _, b := range blocks {
		st := stacks[b&mask]
		depth := -1
		for i, x := range st {
			if x == b {
				depth = i
				break
			}
		}
		if depth < 0 {
			misses++ // cold
		} else {
			if depth >= ways {
				misses++
			}
			st = append(st[:depth], st[depth+1:]...)
		}
		stacks[b&mask] = append([]addr.Addr{b}, st...)
	}
	return misses
}

// randomBlocks mixes hot reuse with a cold sweep so every distance
// bucket — zero, small, large, and cold — is exercised.
func randomBlocks(n int, seed uint64) []addr.Addr {
	src := rng.New(seed)
	out := make([]addr.Addr, n)
	for i := range out {
		switch src.Intn(4) {
		case 0:
			out[i] = addr.Addr(src.Intn(32)) // hot set
		case 1:
			out[i] = addr.Addr(src.Intn(512))
		default:
			out[i] = addr.Addr(src.Intn(1 << 16)) // mostly cold
		}
	}
	return out
}

func TestProfilerMatchesNaive(t *testing.T) {
	blocks := randomBlocks(20000, 7)
	for _, deep := range []bool{false, true} {
		for _, sets := range []int{1, 2, 16, 64} {
			p, err := newProfiler(sets, 64, deep)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range blocks {
				p.Access(b)
			}
			if got := p.Accesses(); got != uint64(len(blocks)) {
				t.Fatalf("sets=%d: accesses = %d, want %d", sets, got, len(blocks))
			}
			for _, ways := range []int{1, 2, 3, 8, 64} {
				got, err := p.Misses(ways)
				if err != nil {
					t.Fatal(err)
				}
				if want := naiveMisses(blocks, sets, ways); got != want {
					t.Errorf("deep=%v sets=%d ways=%d: misses = %d, want %d", deep, sets, ways, got, want)
				}
			}
		}
	}
}

// TestShallowVsDeepEngines runs the move-to-front array engine against
// the map+Fenwick engine on identical streams: every miss count at every
// associativity must agree (the shallow engine merges cold into over,
// which Misses sums anyway).
func TestShallowVsDeepEngines(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		blocks := randomBlocks(30000, seed)
		for _, sets := range []int{1, 4, 32} {
			shallow, err := newProfiler(sets, 64, false)
			if err != nil {
				t.Fatal(err)
			}
			deep, err := newProfiler(sets, 64, true)
			if err != nil {
				t.Fatal(err)
			}
			if shallow.stk == nil || deep.stk != nil {
				t.Fatal("engine selection broken")
			}
			for _, b := range blocks {
				shallow.Access(b)
				deep.Access(b)
			}
			for ways := 1; ways <= 64; ways *= 2 {
				s, err1 := shallow.Misses(ways)
				d, err2 := deep.Misses(ways)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if s != d {
					t.Errorf("seed=%d sets=%d ways=%d: shallow %d != deep %d", seed, sets, ways, s, d)
				}
			}
		}
	}
}

// TestProfilerCompaction drives one set far past any initial axis
// capacity with heavy re-access (live count stays small while time slots
// burn fast), forcing many compactions, and checks exactness survives.
// The deep engine is forced: 32 tracked ways would otherwise select the
// shallow engine, which has no axis to compact.
func TestProfilerCompaction(t *testing.T) {
	src := rng.New(11)
	blocks := make([]addr.Addr, 50000)
	for i := range blocks {
		blocks[i] = addr.Addr(src.Intn(24)) // ≤24 live blocks, one set
	}
	p, err := newProfiler(1, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		p.Access(b)
	}
	for _, ways := range []int{1, 4, 16, 24, 32} {
		got, err := p.Misses(ways)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveMisses(blocks, 1, ways); got != want {
			t.Errorf("ways=%d: misses = %d, want %d", ways, got, want)
		}
	}
}

// TestProfileInclusionMonotone: at a fixed set count, misses must be
// non-increasing in associativity (LRU inclusion property).
func TestProfileInclusionMonotone(t *testing.T) {
	p, err := NewProfile(32, []Geom{{Sets: 16, Ways: 128}})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	for i := 0; i < 30000; i++ {
		p.Access(addr.Addr(src.Intn(1 << 20)))
	}
	prev := p.Accesses() + 1
	for ways := 1; ways <= 128; ways *= 2 {
		m, err := p.Misses(16, ways)
		if err != nil {
			t.Fatal(err)
		}
		if m > prev {
			t.Fatalf("ways=%d: misses %d > %d at lower associativity", ways, m, prev)
		}
		prev = m
	}
}

func TestProfileSharedGranularity(t *testing.T) {
	p, err := NewProfile(32, []Geom{{Sets: 8, Ways: 2}, {Sets: 8, Ways: 16}, {Sets: 1, Ways: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.profs) != 2 {
		t.Fatalf("profilers = %d, want 2 (sets 8 shared)", len(p.profs))
	}
	if _, err := p.Misses(8, 16); err != nil {
		t.Fatalf("shared granularity lost the larger ways bound: %v", err)
	}
	if _, err := p.Misses(4, 1); err == nil {
		t.Fatal("unprofiled set count did not error")
	}
}

func TestIndexOrder(t *testing.T) {
	ix := NewIndex(4)
	a := ix.Insert(1, 10)
	b := ix.Insert(2, 20)
	c := ix.Insert(3, 30)
	if ix.Len() != 3 || ix.LRU() != a || ix.MRU() != c {
		t.Fatalf("after inserts: len=%d lru=%v mru=%v", ix.Len(), ix.LRU(), ix.MRU())
	}
	ix.Touch(a) // order now (MRU) a c b (LRU)
	if ix.LRU() != b || ix.MRU() != a {
		t.Fatalf("after touch: lru=%v mru=%v", ix.LRU(), ix.MRU())
	}
	if got := ix.Get(2); got != b || got.Val != 20 {
		t.Fatalf("Get(2) = %v", got)
	}
	ix.Remove(b)
	if ix.Len() != 2 || ix.Get(2) != nil || ix.LRU() != c {
		t.Fatalf("after remove: len=%d get2=%v lru=%v", ix.Len(), ix.Get(2), ix.LRU())
	}
	// Recycled node must not alias the removed one's identity.
	d := ix.Insert(4, 40)
	if d.Key != 4 || d.Val != 40 || ix.MRU() != d {
		t.Fatalf("recycled insert = %+v", d)
	}
	ix.Reset()
	if ix.Len() != 0 || ix.LRU() != nil || ix.MRU() != nil {
		t.Fatal("reset left residents")
	}
}

// TestIndexVsMap drives random lookups/inserts/evictions against a
// recency-stamped map model and checks contents plus victim choice.
func TestIndexVsMap(t *testing.T) {
	const capLines = 64
	ix := NewIndex(capLines)
	type ref struct {
		val   uint64
		stamp int
	}
	model := map[addr.Addr]ref{}
	src := rng.New(9)
	clock := 0
	for i := 0; i < 20000; i++ {
		key := addr.Addr(src.Intn(256))
		clock++
		if n := ix.Get(key); n != nil {
			if _, ok := model[key]; !ok {
				t.Fatalf("step %d: index has %d, model does not", i, key)
			}
			ix.Touch(n)
			model[key] = ref{val: n.Val, stamp: clock}
			continue
		}
		if _, ok := model[key]; ok {
			t.Fatalf("step %d: model has %d, index does not", i, key)
		}
		if ix.Len() == capLines {
			victim := ix.LRU()
			var wantKey addr.Addr
			best := clock + 1
			for k, r := range model {
				if r.stamp < best {
					wantKey, best = k, r.stamp
				}
			}
			if victim.Key != wantKey {
				t.Fatalf("step %d: victim %d, want %d", i, victim.Key, wantKey)
			}
			ix.Remove(victim)
			delete(model, wantKey)
		}
		ix.Insert(key, uint64(key)*3)
		model[key] = ref{val: uint64(key) * 3, stamp: clock}
	}
	if ix.Len() != len(model) {
		t.Fatalf("len = %d, want %d", ix.Len(), len(model))
	}
}
