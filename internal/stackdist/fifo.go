package stackdist

import (
	"fmt"

	"bcache/internal/addr"
)

// FIFO queue-distance profiling.
//
// A W-way FIFO set evicts strictly in insertion order: hits do not touch
// replacement state (Touch is a no-op), free ways fill in ascending
// order, and the round-robin victim counter then cycles through the ways
// in that same order. A block inserted as the set's q-th insertion is
// therefore resident exactly while the set has seen fewer than W further
// insertions — its "queue distance" cnt-q is below W. That answers
// hit/miss for any associativity from two integers per (block, geometry):
// the set's running insertion count and the block's last insertion
// number.
//
// Unlike LRU, FIFO is not a stack algorithm: it lacks the inclusion
// property (Belady's anomaly — a larger FIFO can miss more), so one
// profiled geometry cannot answer smaller associativities the way the
// Mattson profiler (Profile) can. Each requested (sets, ways) geometry
// carries its own insertion counters and positions. What the single pass
// amortizes instead is everything per-access: one shared block→positions
// hash lookup serves every geometry, so profiling G geometries costs one
// map probe plus G subtractions per access — not G cache replays.

// fifoGeom is the per-geometry queue state of a FIFOProfile.
type fifoGeom struct {
	sets    int
	ways    int
	setMask addr.Addr // sets - 1
	// cnt[set] counts insertions (misses) into the set, 1-based positions.
	cnt    []uint64
	misses uint64
}

// FIFOProfile profiles one address stream against several FIFO
// (sets, ways) geometries simultaneously, in a single pass. It mirrors
// Profile's API for LRU.
type FIFOProfile struct {
	lineShift uint
	geoms     []fifoGeom
	// blocks maps a line address to its slot in pos: slot*len(geoms) is
	// the block's last 1-based insertion position per geometry (0 = never
	// inserted there).
	blocks map[addr.Addr]uint32
	pos    []uint64
	total  uint64
}

// NewFIFOProfile builds a profile for streams of byte addresses with the
// given line size, able to answer every FIFO geometry in geoms.
// Duplicate geometries collapse to one.
func NewFIFOProfile(lineBytes int, geoms []Geom) (*FIFOProfile, error) {
	if lineBytes <= 0 || !addr.IsPow2(uint64(lineBytes)) {
		return nil, fmt.Errorf("stackdist: line size %d is not a positive power of two", lineBytes)
	}
	if len(geoms) == 0 {
		return nil, fmt.Errorf("stackdist: no geometries")
	}
	p := &FIFOProfile{
		lineShift: addr.Log2(uint64(lineBytes)),
		blocks:    make(map[addr.Addr]uint32),
	}
	seen := map[Geom]bool{}
	for _, g := range geoms {
		if g.Ways <= 0 {
			return nil, fmt.Errorf("stackdist: non-positive ways %d", g.Ways)
		}
		if g.Sets <= 0 || !addr.IsPow2(uint64(g.Sets)) {
			return nil, fmt.Errorf("stackdist: set count %d is not a positive power of two", g.Sets)
		}
		if seen[g] {
			continue
		}
		seen[g] = true
		p.geoms = append(p.geoms, fifoGeom{
			sets:    g.Sets,
			ways:    g.Ways,
			setMask: addr.Addr(g.Sets - 1),
			cnt:     make([]uint64, g.Sets),
		})
	}
	return p, nil
}

// Access records one byte-address access against every geometry.
func (p *FIFOProfile) Access(a addr.Addr) {
	block := a >> p.lineShift
	p.total++
	k := len(p.geoms)
	slot, ok := p.blocks[block]
	if !ok {
		slot = uint32(len(p.pos) / k)
		p.blocks[block] = slot
		for i := 0; i < k; i++ {
			p.pos = append(p.pos, 0)
		}
	}
	pos := p.pos[int(slot)*k : int(slot)*k+k : int(slot)*k+k]
	for gi := range p.geoms {
		g := &p.geoms[gi]
		set := block & g.setMask
		c := g.cnt[set]
		if q := pos[gi]; q != 0 && c-q < uint64(g.ways) {
			continue // resident: a FIFO hit changes no replacement state
		}
		g.misses++
		g.cnt[set] = c + 1
		pos[gi] = c + 1
	}
}

// Accesses returns the number of recorded accesses.
func (p *FIFOProfile) Accesses() uint64 { return p.total }

// Misses returns the miss count a (sets, ways) FIFO cache would record
// over the profiled stream. The exact geometry must have been requested
// at construction — FIFO's missing inclusion property means no geometry
// can be derived from another.
func (p *FIFOProfile) Misses(sets, ways int) (uint64, error) {
	for i := range p.geoms {
		if g := &p.geoms[i]; g.sets == sets && g.ways == ways {
			return g.misses, nil
		}
	}
	return 0, fmt.Errorf("stackdist: FIFO geometry %dx%d was not profiled", sets, ways)
}
