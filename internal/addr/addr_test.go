package addr

import (
	"testing"
	"testing/quick"
)

func TestField(t *testing.T) {
	tests := []struct {
		a         Addr
		lo, width uint
		want      Addr
	}{
		{0xDEADBEEF, 0, 4, 0xF},
		{0xDEADBEEF, 4, 4, 0xE},
		{0xDEADBEEF, 0, 32, 0xDEADBEEF},
		{0xDEADBEEF, 16, 16, 0xDEAD},
		{0xFF, 0, 0, 0},
		{0b101100, 2, 3, 0b011},
	}
	for _, tt := range tests {
		if got := Field(tt.a, tt.lo, tt.width); got != tt.want {
			t.Errorf("Field(%#x, %d, %d) = %#x, want %#x", tt.a, tt.lo, tt.width, got, tt.want)
		}
	}
}

func TestFieldReassembly(t *testing.T) {
	// Splitting an address into offset/index/tag and reassembling must be
	// the identity — the decomposition every cache model relies on.
	f := func(a uint32) bool {
		const off, idx = 5, 9
		x := Addr(a)
		o := Field(x, 0, off)
		i := Field(x, off, idx)
		tag := Field(x, off+idx, Bits-off-idx)
		return o|i<<off|tag<<(off+idx) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 8, 1 << 20, 1 << 63} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []uint64{0, 3, 5, 6, 7, 9, 1<<20 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 64; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(1<<%d) = %d", i, got)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(12) did not panic")
		}
	}()
	Log2(12)
}

func TestAlign(t *testing.T) {
	if got := Align(0x12345, 32); got != 0x12340 {
		t.Errorf("Align(0x12345, 32) = %#x", got)
	}
	if got := Align(0x12340, 32); got != 0x12340 {
		t.Errorf("Align(0x12340, 32) = %#x (not idempotent)", got)
	}
}
