// Package addr provides the address type and bit-field helpers shared by
// every cache model in the simulator.
//
// The paper assumes 32-bit physical addresses; Addr is a uint64 so the
// arithmetic never overflows, but workload generators only emit values
// that fit in 32 bits.
package addr

import (
	"fmt"
	"math/bits"
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Bits is the width of the simulated physical address space in bits.
// The paper's organization (Figure 2) assumes 32-bit addresses.
const Bits = 32

// Max is the largest representable address.
const Max Addr = 1<<Bits - 1

// Field extracts width bits of a starting at bit position lo
// (lo = 0 is the least significant bit).
func Field(a Addr, lo, width uint) Addr {
	if width == 0 {
		return 0
	}
	return (a >> lo) & (1<<width - 1)
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool {
	return v != 0 && v&(v-1) == 0
}

// Log2 returns log2(v) for a positive power of two v.
// It panics otherwise: cache geometry is validated at construction time,
// so a non-power-of-two here is a programming error.
func Log2(v uint64) uint {
	if !IsPow2(v) {
		panic(fmt.Sprintf("addr: Log2 of non-power-of-two %d", v))
	}
	return uint(bits.TrailingZeros64(v))
}

// Align returns a rounded down to a multiple of size (a power of two).
func Align(a Addr, size uint64) Addr {
	if !IsPow2(size) {
		panic(fmt.Sprintf("addr: Align to non-power-of-two %d", size))
	}
	return a &^ Addr(size-1)
}
