package vm

import (
	"fmt"

	"bcache/internal/addr"
)

// This file implements the paper's §7.1 operating-system alternative to
// the B-Cache: a Cache Miss Lookaside (CML) buffer records which pages
// accumulate cache misses, and a software policy dynamically remaps
// (recolors) hot-missing pages into page frames whose cache color is
// underutilized — removing conflict misses without touching the cache
// hardware (Bershad et al.). The paper notes this "enables a
// direct-mapped cache to perform nearly as well as a two-way set
// associative cache"; the B-Cache reaches 4-way entirely in hardware.

// Remap moves vpn onto a free frame whose low colorBits equal color,
// freeing the old frame, and returns the new frame number. The page must
// already be mapped.
func (as *AddressSpace) Remap(vpn, color addr.Addr, colorBits uint) (addr.Addr, error) {
	old, ok := as.table[vpn]
	if !ok {
		return 0, fmt.Errorf("vm: remap of unmapped page %#x", vpn)
	}
	if colorBits > addr.Bits-as.pageBits {
		return 0, fmt.Errorf("vm: %d color bits exceed frame width", colorBits)
	}
	mask := addr.Addr(1)<<colorBits - 1
	frameSpace := addr.Addr(1) << (addr.Bits - as.pageBits)
	for tries := 0; tries < 1<<16; tries++ {
		pfn := addr.Addr(as.src.Uint32())%frameSpace&^mask | color&mask
		if pfn == old || as.used[pfn] {
			continue
		}
		delete(as.used, old)
		as.used[pfn] = true
		as.table[vpn] = pfn
		return pfn, nil
	}
	return 0, fmt.Errorf("vm: no free frame of color %#x", color)
}

// FrameOf returns the frame currently mapped for vpn, if any.
func (as *AddressSpace) FrameOf(vpn addr.Addr) (addr.Addr, bool) {
	pfn, ok := as.table[vpn]
	return pfn, ok
}

// Recolorer is the CML buffer plus remapping policy.
type Recolorer struct {
	AS *AddressSpace
	// colorBits is log2(cache size / page size): the page-number bits
	// that select the cache sets a page occupies.
	colorBits uint
	// Threshold is the CML miss count that triggers a remap.
	Threshold int
	// DecayEvery halves all CML counters after this many recorded
	// misses, so stale history does not trigger remaps. Zero disables.
	DecayEvery uint64

	cml      map[addr.Addr]int // vpn → recent miss count
	rev      map[addr.Addr]addr.Addr
	pressure []uint64 // misses per color
	ticks    uint64

	// Remaps counts pages moved.
	Remaps uint64
}

// NewRecolorer builds the policy for a physically-indexed cache of
// cacheBytes bytes over as.
func NewRecolorer(as *AddressSpace, cacheBytes, threshold int) (*Recolorer, error) {
	if as == nil {
		return nil, fmt.Errorf("vm: nil address space")
	}
	if cacheBytes <= 0 || !addr.IsPow2(uint64(cacheBytes)) {
		return nil, fmt.Errorf("vm: cache size %d not a positive power of two", cacheBytes)
	}
	pageBytes := 1 << as.pageBits
	if cacheBytes < pageBytes {
		return nil, fmt.Errorf("vm: cache (%d) smaller than a page (%d): nothing to color", cacheBytes, pageBytes)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("vm: non-positive remap threshold")
	}
	colorBits := addr.Log2(uint64(cacheBytes / pageBytes))
	return &Recolorer{
		AS:         as,
		colorBits:  colorBits,
		Threshold:  threshold,
		DecayEvery: 4096,
		cml:        make(map[addr.Addr]int),
		rev:        make(map[addr.Addr]addr.Addr),
		pressure:   make([]uint64, 1<<colorBits),
	}, nil
}

// Colors returns the number of page colors the cache has.
func (r *Recolorer) Colors() int { return len(r.pressure) }

// colorOf extracts a physical address's page color.
func (r *Recolorer) colorOf(pa addr.Addr) addr.Addr {
	return addr.Field(pa, r.AS.pageBits, r.colorBits)
}

// Note records that va is in use (so the reverse map stays fresh).
// Callers typically invoke it on every translation.
func (r *Recolorer) Note(va, pa addr.Addr) {
	r.rev[pa>>r.AS.pageBits] = va >> r.AS.pageBits
}

// OnMiss records a cache miss on physical address pa and remaps the
// page when it crosses the threshold. It reports whether a remap
// happened; after a remap the caller must re-translate the page's
// addresses (a real OS would also flush the page's cache lines).
func (r *Recolorer) OnMiss(pa addr.Addr) bool {
	r.ticks++
	if r.DecayEvery > 0 && r.ticks%r.DecayEvery == 0 {
		for k := range r.cml {
			r.cml[k] /= 2
		}
		for c := range r.pressure {
			r.pressure[c] /= 2
		}
	}
	color := r.colorOf(pa)
	r.pressure[color]++
	vpn, ok := r.rev[pa>>r.AS.pageBits]
	if !ok {
		return false
	}
	r.cml[vpn]++
	if r.cml[vpn] < r.Threshold {
		return false
	}
	// Remap to the least-pressured color — but only with hysteresis
	// (the target must carry under half the source's misses), otherwise
	// hot pages ping-pong between colors and every move costs a page of
	// cold refills.
	best := addr.Addr(0)
	for c := 1; c < len(r.pressure); c++ {
		if r.pressure[c] < r.pressure[best] {
			best = addr.Addr(c)
		}
	}
	if best == color || r.pressure[best] >= r.pressure[color]/2 {
		r.cml[vpn] = 0
		return false
	}
	newPfn, err := r.AS.Remap(vpn, best, r.colorBits)
	if err != nil {
		return false
	}
	delete(r.rev, pa>>r.AS.pageBits)
	r.rev[newPfn] = vpn
	r.cml[vpn] = 0
	r.Remaps++
	return true
}
