package vm

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

func TestRemapChangesColorAndFreesFrame(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	va := addr.Addr(0x100000)
	pa := as.Translate(va)
	vpn := va >> as.PageBits()
	oldPfn := pa >> as.PageBits()

	newPfn, err := as.Remap(vpn, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if newPfn&3 != 3 {
		t.Fatalf("remapped frame %#x does not have color 3", newPfn)
	}
	if as.Translate(va)>>as.PageBits() != newPfn {
		t.Fatal("translation does not reflect the remap")
	}
	if as.used[oldPfn] {
		t.Fatal("old frame not freed")
	}
}

func TestRemapUnmappedFails(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	if _, err := as.Remap(42, 0, 2); err == nil {
		t.Fatal("remap of unmapped page accepted")
	}
}

func TestRecolorerValidation(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	if _, err := NewRecolorer(nil, 16384, 8); err == nil {
		t.Fatal("nil address space accepted")
	}
	if _, err := NewRecolorer(as, 1000, 8); err == nil {
		t.Fatal("non-power-of-two cache accepted")
	}
	if _, err := NewRecolorer(as, 4096, 8); err == nil {
		t.Fatal("cache smaller than a page accepted")
	}
	if _, err := NewRecolorer(as, 16384, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
	r, err := NewRecolorer(as, 16384, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Colors() != 2 { // 16kB cache / 8kB pages
		t.Fatalf("colors = %d, want 2", r.Colors())
	}
}

// TestRecoloringRemovesConflicts is the §7.1 claim end to end: pages
// thrashing one cache color get remapped and a direct-mapped cache
// approaches 2-way behaviour.
func TestRecoloringRemovesConflicts(t *testing.T) {
	const (
		cacheBytes = 16 * 1024
		pageBytes  = 4096
	)
	// Four colors; three hot pages that all start on color 0 (their
	// virtual page numbers share vpn&3 == 0 and the Colored policy
	// preserves those bits). Recoloring can settle them on distinct
	// colors.
	mkAS := func() *AddressSpace {
		as, err := NewAddressSpace(Config{PageBytes: pageBytes, ColorBits: 2, Policy: Colored, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return as
	}
	hotVAs := []addr.Addr{0, 4 * pageBytes, 8 * pageBytes}

	run := func(recolor bool) (misses uint64, remaps uint64) {
		as := mkAS()
		dm, err := cache.NewDirectMapped(cacheBytes, 32)
		if err != nil {
			t.Fatal(err)
		}
		var rc *Recolorer
		if recolor {
			rc, err = NewRecolorer(as, cacheBytes, 16)
			if err != nil {
				t.Fatal(err)
			}
		}
		src := rng.New(5)
		for i := 0; i < 120000; i++ {
			va := hotVAs[src.Intn(len(hotVAs))] + addr.Addr(src.Intn(pageBytes))
			pa := as.Translate(va)
			if rc != nil {
				rc.Note(va, pa)
			}
			if !dm.Access(pa, false).Hit && rc != nil {
				rc.OnMiss(pa)
			}
		}
		if rc != nil {
			remaps = rc.Remaps
		}
		return dm.Stats().Misses, remaps
	}

	mBase, _ := run(false)
	mRC, remaps := run(true)
	if remaps == 0 {
		t.Fatal("recolorer never remapped a page")
	}
	if mRC*2 > mBase {
		t.Fatalf("recoloring removed under half the conflict misses: %d vs %d", mRC, mBase)
	}
}

func TestRecolorerPressureDrivenChoice(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	rc, err := NewRecolorer(as, 16384, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Build pressure on color 0; a hot page there must move to color 1.
	va := addr.Addr(0)
	pa := as.Translate(va)
	// Force the page onto color 0 for a deterministic start.
	if pa>>as.PageBits()&1 == 1 {
		if _, err := as.Remap(va>>as.PageBits(), 0, 1); err != nil {
			t.Fatal(err)
		}
		pa = as.Translate(va)
	}
	rc.Note(va, pa)
	for i := 0; i < 4; i++ {
		rc.OnMiss(pa)
	}
	if rc.Remaps != 1 {
		t.Fatalf("remaps = %d, want 1", rc.Remaps)
	}
	if newPa := as.Translate(va); rc.colorOf(newPa) != 1 {
		t.Fatalf("page moved to color %d, want the idle color 1", rc.colorOf(newPa))
	}
}
