package vm

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/rng"
)

func newAS(t testing.TB, policy AllocPolicy, colorBits uint) *AddressSpace {
	t.Helper()
	as, err := NewAddressSpace(Config{PageBytes: 8192, ColorBits: colorBits, Policy: policy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestTranslateStable(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	va := addr.Addr(0x12345678)
	p1 := as.Translate(va)
	p2 := as.Translate(va)
	if p1 != p2 {
		t.Fatalf("translation not stable: %#x vs %#x", p1, p2)
	}
	// Page offset preserved.
	if addr.Field(p1, 0, 13) != addr.Field(va, 0, 13) {
		t.Fatalf("page offset changed: %#x -> %#x", va, p1)
	}
	// Same page, different offset → same frame.
	if as.Translate(va+1)>>13 != p1>>13 {
		t.Fatal("same-page addresses got different frames")
	}
	if as.Pages() != 1 {
		t.Fatalf("pages = %d, want 1", as.Pages())
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	seen := map[addr.Addr]bool{}
	for i := 0; i < 500; i++ {
		pfn := as.Translate(addr.Addr(i)*8192) >> 13
		if seen[pfn] {
			t.Fatalf("frame %#x assigned twice", pfn)
		}
		seen[pfn] = true
	}
}

func TestColoringPreservesLowBits(t *testing.T) {
	// With 3 color bits, the low 3 frame-number bits equal the low 3
	// virtual-page-number bits: the PD's borrowed tag bits match.
	as := newAS(t, Colored, 3)
	for i := 0; i < 1000; i++ {
		va := addr.Addr(i) * 8192
		pa := as.Translate(va)
		if (pa>>13)&7 != (va>>13)&7 {
			t.Fatalf("coloring violated for page %d: pa %#x", i, pa)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewAddressSpace(Config{PageBytes: 1000}); err == nil {
		t.Fatal("non-power-of-two page accepted")
	}
	if _, err := NewAddressSpace(Config{PageBytes: 8192, ColorBits: 40}); err == nil {
		t.Fatal("oversized color bits accepted")
	}
	if _, err := NewTLB(0); err == nil {
		t.Fatal("zero-entry TLB accepted")
	}
}

func TestTLBHitsAndLRU(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	tlb, err := NewTLB(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := addr.Addr(0), addr.Addr(8192), addr.Addr(16384)
	tlb.Lookup(as, a) // miss
	tlb.Lookup(as, b) // miss
	if _, hit := tlb.Lookup(as, a); !hit {
		t.Fatal("resident translation missed")
	}
	tlb.Lookup(as, c) // miss: evicts b (LRU)
	if _, hit := tlb.Lookup(as, a); !hit {
		t.Fatal("MRU translation evicted")
	}
	if _, hit := tlb.Lookup(as, b); hit {
		t.Fatal("LRU translation survived eviction")
	}
	if tlb.Hits != 2 || tlb.Misses != 4 {
		t.Fatalf("TLB counters hits=%d misses=%d, want 2/4", tlb.Hits, tlb.Misses)
	}
}

func TestTLBMatchesDirectTranslation(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	tlb, _ := NewTLB(16)
	src := rng.New(5)
	for i := 0; i < 5000; i++ {
		va := addr.Addr(src.Intn(1 << 26))
		pa, _ := tlb.Lookup(as, va)
		if pa != as.Translate(va) {
			t.Fatalf("TLB translation diverged at %#x", va)
		}
	}
}

// TestVIPTBCacheWithColoring is the §6.8 result: with page coloring that
// preserves the PD's three borrowed bits, a virtually-indexed,
// physically-tagged B-Cache behaves access-for-access like a physically-
// indexed one.
func TestVIPTBCacheWithColoring(t *testing.T) {
	const size, line = 16384, 32
	mkBC := func() *core.BCache {
		bc, err := core.New(core.Config{SizeBytes: size, LineBytes: line, MF: 8, BAS: 8, Policy: cache.LRU})
		if err != nil {
			t.Fatal(err)
		}
		return bc
	}
	as := newAS(t, Colored, 4)
	tlb, _ := NewTLB(64)
	vipt, err := NewVIPT(mkBC(), as, tlb, 17) // offset(5)+index(9)+log2(MF)(3)
	if err != nil {
		t.Fatal(err)
	}
	pipt := mkBC()

	src := rng.New(9)
	for i := 0; i < 100000; i++ {
		va := addr.Addr(src.Intn(1 << 22))
		write := src.Intn(4) == 0
		rv := vipt.Access(va, write)
		rp := pipt.Access(as.Translate(va), write)
		if rv.Hit != rp.Hit {
			t.Fatalf("access %d (%#x): VIPT hit=%v, PIPT hit=%v", i, va, rv.Hit, rp.Hit)
		}
	}
	if err := vipt.L1.(*core.BCache).CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVIPTArbitraryStillSound: without coloring the virtual-index
// B-Cache may map pages differently, but it must stay internally
// consistent (invariants, hit-after-fill).
func TestVIPTArbitraryStillSound(t *testing.T) {
	bc, err := core.New(core.Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	as := newAS(t, Arbitrary, 0)
	tlb, _ := NewTLB(64)
	vipt, err := NewVIPT(bc, as, tlb, 17)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	for i := 0; i < 50000; i++ {
		va := addr.Addr(src.Intn(1 << 22))
		vipt.Access(va, false)
		if !vipt.Access(va, false).Hit {
			t.Fatalf("address %#x missed immediately after fill", va)
		}
	}
	if err := bc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVIPTValidation(t *testing.T) {
	as := newAS(t, Arbitrary, 0)
	tlb, _ := NewTLB(4)
	if _, err := NewVIPT(nil, as, tlb, 14); err == nil {
		t.Fatal("nil cache accepted")
	}
	dm, _ := cache.NewDirectMapped(1024, 32)
	if _, err := NewVIPT(dm, as, tlb, 64); err == nil {
		t.Fatal("oversized index bits accepted")
	}
}
