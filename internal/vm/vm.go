// Package vm models the virtual-memory machinery behind the paper's
// §6.8 discussion of virtually- vs physically-addressed caches.
//
// The B-Cache needs three tag bits *no later than* the set index, because
// they feed the programmable decoder. In a virtually-indexed,
// physically-tagged (V/P) cache those bits would normally come out of the
// TLB too late. The paper's answer is to treat them as part of the
// virtual index — which is exact when the OS page allocator preserves the
// low bits of the frame number (page coloring), and a benign virtual
// index otherwise.
//
// This package provides the pieces to demonstrate that: an address space
// with pluggable page-allocation policies (coloring vs. arbitrary), a
// small fully-associative TLB, and a VIPT wrapper that indexes an
// underlying cache with virtual bits while tagging with physical ones.
package vm

import (
	"fmt"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/rng"
)

// AllocPolicy selects how physical frames are assigned to virtual pages.
type AllocPolicy int

// Allocation policies.
const (
	// Colored preserves the low ColorBits of the virtual page number in
	// the physical frame number (page coloring): the bits the B-Cache's
	// PD borrows are then identical in virtual and physical addresses.
	Colored AllocPolicy = iota
	// Arbitrary assigns frames pseudo-randomly, the worst case for a
	// virtually-indexed cache.
	Arbitrary
)

// Config shapes an AddressSpace.
type Config struct {
	PageBytes int // page size (power of two)
	// ColorBits is the number of low frame-number bits preserved under
	// the Colored policy.
	ColorBits uint
	Policy    AllocPolicy
	Seed      uint64
}

// AddressSpace lazily maps virtual pages to physical frames.
type AddressSpace struct {
	cfg      Config
	pageBits uint
	table    map[addr.Addr]addr.Addr // vpn → pfn
	used     map[addr.Addr]bool      // pfn
	src      *rng.Source
}

// NewAddressSpace validates cfg and returns an empty address space.
func NewAddressSpace(cfg Config) (*AddressSpace, error) {
	if cfg.PageBytes <= 0 || !addr.IsPow2(uint64(cfg.PageBytes)) {
		return nil, fmt.Errorf("vm: page size %d is not a positive power of two", cfg.PageBytes)
	}
	pageBits := addr.Log2(uint64(cfg.PageBytes))
	if cfg.ColorBits > addr.Bits-pageBits {
		return nil, fmt.Errorf("vm: %d color bits exceed frame number width", cfg.ColorBits)
	}
	return &AddressSpace{
		cfg:      cfg,
		pageBits: pageBits,
		table:    make(map[addr.Addr]addr.Addr),
		used:     make(map[addr.Addr]bool),
		src:      rng.New(cfg.Seed ^ 0xA11C),
	}, nil
}

// PageBits returns log2(page size).
func (as *AddressSpace) PageBits() uint { return as.pageBits }

// Pages returns the number of mapped pages.
func (as *AddressSpace) Pages() int { return len(as.table) }

// Translate maps a virtual address to its physical address, allocating a
// frame on first touch.
func (as *AddressSpace) Translate(va addr.Addr) addr.Addr {
	vpn := va >> as.pageBits
	pfn, ok := as.table[vpn]
	if !ok {
		pfn = as.allocate(vpn)
		as.table[vpn] = pfn
	}
	return pfn<<as.pageBits | addr.Field(va, 0, as.pageBits)
}

// allocate picks a free frame for vpn under the configured policy.
func (as *AddressSpace) allocate(vpn addr.Addr) addr.Addr {
	frameSpace := addr.Addr(1) << (addr.Bits - as.pageBits)
	for tries := 0; tries < 1<<16; tries++ {
		pfn := addr.Addr(as.src.Uint32()) % frameSpace
		if as.cfg.Policy == Colored {
			mask := addr.Addr(1)<<as.cfg.ColorBits - 1
			pfn = pfn&^mask | vpn&mask
		}
		if !as.used[pfn] {
			as.used[pfn] = true
			return pfn
		}
	}
	panic("vm: physical frame space exhausted")
}

// TLB is a small fully-associative translation buffer with LRU
// replacement.
type TLB struct {
	entries []tlbEntry
	clock   uint64
	// Hits and Misses count lookups.
	Hits   uint64
	Misses uint64
}

type tlbEntry struct {
	valid bool
	vpn   addr.Addr
	pfn   addr.Addr
	stamp uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(entries int) (*TLB, error) {
	if entries <= 0 {
		return nil, fmt.Errorf("vm: TLB needs at least one entry")
	}
	return &TLB{entries: make([]tlbEntry, entries)}, nil
}

// Lookup translates va through the TLB, filling from as on a miss,
// and reports whether it hit.
func (t *TLB) Lookup(as *AddressSpace, va addr.Addr) (pa addr.Addr, hit bool) {
	vpn := va >> as.pageBits
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			t.clock++
			e.stamp = t.clock
			t.Hits++
			return e.pfn<<as.pageBits | addr.Field(va, 0, as.pageBits), true
		}
	}
	t.Misses++
	pa = as.Translate(va)
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].stamp < t.entries[victim].stamp {
			victim = i
		}
	}
	t.clock++
	t.entries[victim] = tlbEntry{valid: true, vpn: vpn, pfn: pa >> as.pageBits, stamp: t.clock}
	return pa, false
}

// VIPT wraps an underlying physically-tagged cache so that its low
// indexBits of addressing come from the virtual address while everything
// above comes from the physical address — the §6.8 configuration. For a
// B-Cache, indexBits should cover offset+index+log2(MF) bits: the bits
// the decoders (including the PD's borrowed tag bits) consume.
type VIPT struct {
	L1        cache.Cache
	AS        *AddressSpace
	TLB       *TLB
	indexBits uint
}

// NewVIPT builds the wrapper. indexBits is the number of low address
// bits taken from the virtual address.
func NewVIPT(l1 cache.Cache, as *AddressSpace, tlb *TLB, indexBits uint) (*VIPT, error) {
	if l1 == nil || as == nil || tlb == nil {
		return nil, fmt.Errorf("vm: nil component")
	}
	if indexBits >= addr.Bits {
		return nil, fmt.Errorf("vm: %d index bits exceed the address width", indexBits)
	}
	return &VIPT{L1: l1, AS: as, TLB: tlb, indexBits: indexBits}, nil
}

// Access translates va and accesses the cache with the hybrid
// virtual-index/physical-tag address.
func (v *VIPT) Access(va addr.Addr, write bool) cache.Result {
	pa, _ := v.TLB.Lookup(v.AS, va)
	mask := addr.Addr(1)<<v.indexBits - 1
	hybrid := pa&^mask | va&mask
	return v.L1.Access(hybrid, write)
}
