package stats

import (
	"math"
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/rng"
)

func TestAnalyzeUniform(t *testing.T) {
	// Perfectly uniform usage: no frequent or less-accessed sets.
	s := cache.NewStats(8)
	for f := 0; f < 8; f++ {
		for i := 0; i < 10; i++ {
			s.Record(f, i > 0, false)
		}
	}
	b, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreqHitSets != 0 || b.FreqMissSets != 0 || b.LessAccessedSets != 0 {
		t.Fatalf("uniform usage classified as skewed: %+v", b)
	}
}

func TestAnalyzeSkewed(t *testing.T) {
	// One set carries nearly all hits and misses; others idle.
	s := cache.NewStats(10)
	for i := 0; i < 100; i++ {
		s.Record(0, i%2 == 0, false)
	}
	for f := 1; f < 10; f++ {
		s.Record(f, true, false)
	}
	b, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreqHitSets != 0.1 {
		t.Errorf("FreqHitSets = %v, want 0.1", b.FreqHitSets)
	}
	if b.HitsInFreqSets < 0.8 {
		t.Errorf("HitsInFreqSets = %v, want most hits", b.HitsInFreqSets)
	}
	if b.FreqMissSets != 0.1 || b.MissesInFreqSets != 1.0 {
		t.Errorf("miss classification = %+v", b)
	}
	if b.LessAccessedSets != 0.9 {
		t.Errorf("LessAccessedSets = %v, want 0.9", b.LessAccessedSets)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&cache.Stats{}); err == nil {
		t.Fatal("accepted empty stats")
	}
	if _, err := Analyze(cache.NewStats(4)); err == nil {
		t.Fatal("accepted zero-access stats")
	}
}

// TestBCacheBalancesAccesses is the §6.4 claim end-to-end: on a
// conflict-heavy stream the B-Cache reduces the share of misses carried
// by frequent-miss sets and reduces the number of less-accessed sets
// compared with the direct-mapped baseline.
func TestBCacheBalancesAccesses(t *testing.T) {
	const size, line = 16384, 32
	stream := func(c cache.Cache) {
		src := rng.New(19)
		for i := 0; i < 400000; i++ {
			var a addr.Addr
			switch src.Intn(10) {
			case 0, 1, 2:
				a = addr.Addr(src.Intn(7) * 9 * 32768) // conflicting far blocks
			default:
				a = addr.Addr(src.Intn(128) * 32) // hot lines in few sets
			}
			c.Access(a, false)
		}
	}
	dm, _ := cache.NewDirectMapped(size, line)
	bc, err := core.New(core.Config{SizeBytes: size, LineBytes: line, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	stream(dm)
	stream(bc)
	bdm, err := Analyze(dm.Stats())
	if err != nil {
		t.Fatal(err)
	}
	bbc, err := Analyze(bc.Stats())
	if err != nil {
		t.Fatal(err)
	}
	if bbc.MissesInFreqSets >= bdm.MissesInFreqSets && bdm.MissesInFreqSets > 0 {
		t.Errorf("B-Cache did not shrink frequent-miss concentration: %.3f vs %.3f",
			bbc.MissesInFreqSets, bdm.MissesInFreqSets)
	}
	if bbc.LessAccessedSets > bdm.LessAccessedSets {
		t.Errorf("B-Cache increased idle sets: %.3f vs %.3f",
			bbc.LessAccessedSets, bdm.LessAccessedSets)
	}
}

// TestAnalyzeSingleFrame: with one frame the per-set average IS that
// frame's count, so nothing can exceed 2× it or fall below half of it —
// a fully-associative (single-set) cache is never "skewed".
func TestAnalyzeSingleFrame(t *testing.T) {
	s := cache.NewStats(1)
	for i := 0; i < 50; i++ {
		s.Record(0, i%3 != 0, i%2 == 0)
	}
	b, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if b != (Balance{}) {
		t.Fatalf("single-frame cache classified as skewed: %+v", b)
	}
}

// TestAnalyzeAllMisses: a run with zero hits must classify misses
// normally and report zero (not NaN) for the hit-side fractions.
func TestAnalyzeAllMisses(t *testing.T) {
	s := cache.NewStats(8)
	for i := 0; i < 90; i++ {
		s.Record(0, false, false) // every access misses in one set
	}
	for f := 1; f < 8; f++ {
		s.Record(f, false, false)
	}
	b, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreqHitSets != 0 || b.HitsInFreqSets != 0 {
		t.Fatalf("hit-side fractions nonzero with zero hits: %+v", b)
	}
	if math.IsNaN(b.HitsInFreqSets) || math.IsNaN(b.MissesInFreqSets) {
		t.Fatalf("NaN in all-miss classification: %+v", b)
	}
	if b.FreqMissSets != 1.0/8 {
		t.Errorf("FreqMissSets = %v, want 0.125", b.FreqMissSets)
	}
	if b.MissesInFreqSets != 90.0/97 {
		t.Errorf("MissesInFreqSets = %v, want 90/97", b.MissesInFreqSets)
	}
}

// TestAnalyzeTwoXBoundary pins the paper's strict inequality: a set
// whose hits are EXACTLY 2× the per-set average is not a frequent-hit
// set; one hit more and it is.
func TestAnalyzeTwoXBoundary(t *testing.T) {
	// Hits per frame [6,2,2,2]: total 12 over 4 frames, average 3, so
	// frame 0 sits exactly at the 2× boundary.
	at := cache.NewStats(4)
	for f, hits := range []int{6, 2, 2, 2} {
		for i := 0; i < hits; i++ {
			at.Record(f, true, false)
		}
	}
	b, err := Analyze(at)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreqHitSets != 0 {
		t.Fatalf("exactly-2x set counted as frequent-hit: %+v", b)
	}

	// [7,2,2,1] keeps the same total, pushing frame 0 past the boundary.
	over := cache.NewStats(4)
	for f, hits := range []int{7, 2, 2, 1} {
		for i := 0; i < hits; i++ {
			over.Record(f, true, false)
		}
	}
	b, err = Analyze(over)
	if err != nil {
		t.Fatal(err)
	}
	if b.FreqHitSets != 0.25 {
		t.Fatalf("FreqHitSets = %v, want 0.25 once past the boundary", b.FreqHitSets)
	}
	if b.HitsInFreqSets != 7.0/12 {
		t.Fatalf("HitsInFreqSets = %v, want 7/12", b.HitsInFreqSets)
	}
}

func TestFractionsInRange(t *testing.T) {
	src := rng.New(5)
	s := cache.NewStats(64)
	for i := 0; i < 100000; i++ {
		s.Record(src.Intn(64), src.Intn(3) > 0, src.Intn(4) == 0)
	}
	b, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{b.FreqHitSets, b.HitsInFreqSets, b.FreqMissSets,
		b.MissesInFreqSets, b.LessAccessedSets, b.AccessesInLessSets} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("fraction out of range: %+v", b)
		}
	}
}
