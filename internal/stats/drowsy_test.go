package stats

import (
	"testing"

	"bcache/internal/rng"
)

func TestDrowsyTrackerValidation(t *testing.T) {
	if _, err := NewDrowsyTracker(0, 10); err == nil {
		t.Fatal("zero frames accepted")
	}
	if _, err := NewDrowsyTracker(8, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestDrowsyAllHotNeverDrowsy(t *testing.T) {
	// A single frame touched continuously is never idle.
	d, err := NewDrowsyTracker(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d.Touch(0)
	}
	if f := d.DrowsyFraction(); f != 0 {
		t.Fatalf("hot frame drowsy fraction = %v, want 0", f)
	}
}

func TestDrowsyColdFramesCounted(t *testing.T) {
	// Frame 0 hot, frames 1..9 never touched: ~90% drowsy.
	d, err := NewDrowsyTracker(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1600; i++ {
		d.Touch(0)
	}
	if f := d.DrowsyFraction(); f < 0.89 || f > 0.91 {
		t.Fatalf("drowsy fraction = %v, want ≈0.9", f)
	}
	if d.Samples() != 100 {
		t.Fatalf("samples = %d, want 100", d.Samples())
	}
}

func TestDrowsyUniformTraffic(t *testing.T) {
	// Uniform traffic over many frames with a window shorter than the
	// revisit interval: most frames are idle at any sample.
	d, err := NewDrowsyTracker(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	for i := 0; i < 100000; i++ {
		d.Touch(src.Intn(256))
	}
	f := d.DrowsyFraction()
	// P(idle over 64 accesses) ≈ (1-1/256)^64 ≈ 0.78.
	if f < 0.7 || f > 0.85 {
		t.Fatalf("uniform drowsy fraction = %v, want ≈0.78", f)
	}
}
