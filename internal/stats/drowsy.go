package stats

import "fmt"

// DrowsyTracker measures how much of a cache could sit in a drowsy
// (low-leakage) state: §6.4 argues that even after the B-Cache balances
// accesses, plenty of sets stay cold enough for techniques like Drowsy
// Cache and Cache Decay to apply on top.
//
// The model is the standard windowed policy: every window accesses the
// tracker samples all frames, and a frame idle for at least a full
// window counts as drowsy-eligible at that sample.
type DrowsyTracker struct {
	window uint64
	last   []uint64 // tick of each frame's most recent access
	tick   uint64

	samples       uint64 // frames examined across all sampling points
	drowsySamples uint64 // of those, how many were idle ≥ window
}

// NewDrowsyTracker builds a tracker for a cache with frames line frames,
// sampling every window accesses.
func NewDrowsyTracker(frames int, window uint64) (*DrowsyTracker, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("stats: drowsy tracker needs frames")
	}
	if window == 0 {
		return nil, fmt.Errorf("stats: drowsy tracker needs a positive window")
	}
	return &DrowsyTracker{window: window, last: make([]uint64, frames)}, nil
}

// Touch records an access to frame and advances time by one access.
func (d *DrowsyTracker) Touch(frame int) {
	d.tick++
	d.last[frame] = d.tick
	if d.tick%d.window == 0 {
		for _, l := range d.last {
			d.samples++
			if d.tick-l >= d.window {
				d.drowsySamples++
			}
		}
	}
}

// DrowsyFraction returns the average fraction of frames that were
// drowsy-eligible at the sampling points (0 if never sampled).
func (d *DrowsyTracker) DrowsyFraction() float64 {
	if d.samples == 0 {
		return 0
	}
	return float64(d.drowsySamples) / float64(d.samples)
}

// Samples returns the number of sampling points taken so far.
func (d *DrowsyTracker) Samples() uint64 {
	if len(d.last) == 0 {
		return 0
	}
	return d.samples / uint64(len(d.last))
}
