// Package stats computes the set-balance classification of §6.4
// (Table 7): which cache sets are frequently hit, frequently missed, or
// barely accessed, and what share of the traffic they carry.
//
// The paper's definitions: a set is a frequent-hit (resp. frequent-miss)
// set when its hits (misses) are more than 2× the per-set average; a set
// is less-accessed when its total accesses are below half the per-set
// average. The B-Cache's goal is visible directly in these numbers:
// hits spread over more sets, frequent-miss sets shrink, and fewer sets
// sit idle.
package stats

import (
	"fmt"

	"bcache/internal/cache"
)

// Balance summarizes the set-usage distribution of one cache run.
// All fields are fractions in [0, 1].
type Balance struct {
	// FreqHitSets is the fraction of sets whose hits exceed 2× average.
	FreqHitSets float64
	// HitsInFreqSets is the fraction of all hits occurring in those sets.
	HitsInFreqSets float64
	// FreqMissSets is the fraction of sets whose misses exceed 2× average.
	FreqMissSets float64
	// MissesInFreqSets is the fraction of all misses occurring there.
	MissesInFreqSets float64
	// LessAccessedSets is the fraction of sets accessed less than half
	// the average.
	LessAccessedSets float64
	// AccessesInLessSets is the fraction of all accesses they carry.
	AccessesInLessSets float64
}

// Analyze classifies the per-frame counters of s.
func Analyze(s *cache.Stats) (Balance, error) {
	n := s.Frames()
	if n == 0 {
		return Balance{}, fmt.Errorf("stats: cache has no per-frame counters")
	}
	if s.Accesses == 0 {
		return Balance{}, fmt.Errorf("stats: cache was never accessed")
	}
	avgHits := float64(s.Hits) / float64(n)
	avgMisses := float64(s.Misses) / float64(n)
	avgAccesses := float64(s.Accesses) / float64(n)

	var b Balance
	var fhSets, fmSets, laSets int
	var fhHits, fmMisses, laAccesses uint64
	for i := 0; i < n; i++ {
		if s.Hits > 0 && float64(s.FrameHits[i]) > 2*avgHits {
			fhSets++
			fhHits += s.FrameHits[i]
		}
		if s.Misses > 0 && float64(s.FrameMisses[i]) > 2*avgMisses {
			fmSets++
			fmMisses += s.FrameMisses[i]
		}
		if fa := s.FrameAccess(i); float64(fa) < avgAccesses/2 {
			laSets++
			laAccesses += fa
		}
	}
	b.FreqHitSets = float64(fhSets) / float64(n)
	b.FreqMissSets = float64(fmSets) / float64(n)
	b.LessAccessedSets = float64(laSets) / float64(n)
	if s.Hits > 0 {
		b.HitsInFreqSets = float64(fhHits) / float64(s.Hits)
	}
	if s.Misses > 0 {
		b.MissesInFreqSets = float64(fmMisses) / float64(s.Misses)
	}
	b.AccessesInLessSets = float64(laAccesses) / float64(s.Accesses)
	return b, nil
}
