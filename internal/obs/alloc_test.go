package obs

import (
	"testing"

	addrpkg "bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/trace"
	"bcache/internal/workload"
)

// The observability layer's hot-path contract: neither an unattached
// cache nor one with a live IntervalSampler may allocate per access.
// (The sampler allocates only at construction; interval closes reuse the
// preallocated sample and heat buffers, and a full buffer compacts in
// place.)

func newBench(tb testing.TB) *core.BCache {
	tb.Helper()
	bc, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		tb.Fatal(err)
	}
	return bc
}

func TestAccessZeroAllocNilProbe(t *testing.T) {
	bc := newBench(t)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		bc.Access(addrAt(i), i%5 == 0)
		i++
	})
	if allocs != 0 {
		t.Fatalf("nil probe: %v allocs per access, want 0", allocs)
	}
}

func TestAccessZeroAllocWithSampler(t *testing.T) {
	bc := newBench(t)
	s := NewIntervalSampler(64, bc.Geometry().Frames) // small interval: closes often
	bc.SetProbe(s)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		bc.Access(addrAt(i), i%5 == 0)
		i++
	})
	if allocs != 0 {
		t.Fatalf("sampler attached: %v allocs per access, want 0", allocs)
	}
	if len(s.Samples()) == 0 {
		t.Fatal("sampler closed no intervals during the alloc run")
	}
}

func TestAccessZeroAllocWithCounters(t *testing.T) {
	bc := newBench(t)
	var p Counters
	bc.SetProbe(&p)
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		bc.Access(addrAt(i), false)
		i++
	})
	if allocs != 0 {
		t.Fatalf("counters attached: %v allocs per access, want 0", allocs)
	}
}

func TestAccessZeroAllocThroughCompaction(t *testing.T) {
	bc := newBench(t)
	s := NewIntervalSampler(8, bc.Geometry().Frames)
	bc.SetProbe(s)
	// 8 * maxSamples accesses fill the buffer; keep going so compaction
	// happens inside the measured region.
	i := 0
	allocs := testing.AllocsPerRun(8*maxSamples*3, func() {
		bc.Access(addrAt(i), false)
		i++
	})
	if allocs != 0 {
		t.Fatalf("compacting sampler: %v allocs per access, want 0", allocs)
	}
	if s.Interval() == 8 {
		t.Fatal("compaction never triggered during the alloc run")
	}
}

// Overhead comparison, two levels. BenchmarkSimOverhead is the number
// that matters: a full simulation loop (workload generation + cache) as
// cmd/bcachesim runs it, where an attached sampler must stay within 5%
// of the nil-probe baseline — measured ~1% (one indirect call per access
// amortized over generator work). BenchmarkProbeOverhead isolates the
// raw per-Access cost, where the indirect probe call itself is visible
// (~10% on a 74 ns mostly-hit access); it exists to keep that floor
// honest, not as the 5% gate. Run:
//
//	go test -bench 'Overhead' -count 5 ./internal/obs
func BenchmarkProbeOverhead(b *testing.B) {
	addrs := make([]addrpkg.Addr, 8192)
	for i := range addrs {
		addrs[i] = addrAt(i * 3)
	}
	b.Run("nil-probe", func(b *testing.B) {
		bc := newBench(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc.Access(addrs[i&8191], false)
		}
	})
	b.Run("counters", func(b *testing.B) {
		bc := newBench(b)
		var p Counters
		bc.SetProbe(&p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc.Access(addrs[i&8191], false)
		}
	})
	b.Run("interval-sampler", func(b *testing.B) {
		bc := newBench(b)
		s := NewIntervalSampler(8192, bc.Geometry().Frames)
		bc.SetProbe(s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc.Access(addrs[i&8191], false)
		}
	})
}

// BenchmarkSimOverhead measures what `bcachesim -report` users actually
// pay: the full generate-and-access loop with and without a sampler.
func BenchmarkSimOverhead(b *testing.B) {
	run := func(b *testing.B, attach bool) {
		p, err := workload.ByName("equake")
		if err != nil {
			b.Fatal(err)
		}
		g, err := workload.New(p)
		if err != nil {
			b.Fatal(err)
		}
		bc := newBench(b)
		if attach {
			bc.SetProbe(NewIntervalSampler(8192, bc.Geometry().Frames))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec, _ := g.Next()
			if rec.Kind.IsMem() {
				bc.Access(rec.Mem, rec.Kind == trace.Store)
			}
		}
	}
	b.Run("nil-probe", func(b *testing.B) { run(b, false) })
	b.Run("interval-sampler", func(b *testing.B) { run(b, true) })
}
