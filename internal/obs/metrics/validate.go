package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition checks text against the subset of the OpenMetrics
// grammar this package emits: `# TYPE`/`# HELP` metadata lines, sample
// lines whose names belong to the most recently declared family (with
// the _total/_bucket/_sum/_count suffixes their type allows), parseable
// values, and a final `# EOF` line. It is the contract test behind
// `make telemetry-smoke` — strict enough to catch a malformed render,
// small enough to need no dependency.
func ValidateExposition(text string) error {
	if text == "" {
		return fmt.Errorf("openmetrics: empty exposition")
	}
	if !strings.HasSuffix(text, "\n") {
		return fmt.Errorf("openmetrics: exposition must end with a newline")
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		return fmt.Errorf("openmetrics: last line is %q, want %q", lines[len(lines)-1], "# EOF")
	}

	var family, familyType string
	types := make(map[string]string)
	for i, line := range lines[:len(lines)-1] {
		n := i + 1
		switch {
		case line == "":
			return fmt.Errorf("openmetrics: line %d: empty line", n)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("openmetrics: line %d: malformed TYPE line %q", n, line)
			}
			name, typ := fields[2], fields[3]
			if !validName(name) {
				return fmt.Errorf("openmetrics: line %d: invalid metric name %q", n, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "info", "unknown":
			default:
				return fmt.Errorf("openmetrics: line %d: unknown metric type %q", n, typ)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("openmetrics: line %d: duplicate TYPE for %q", n, name)
			}
			types[name] = typ
			family, familyType = name, typ
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validName(name) {
				return fmt.Errorf("openmetrics: line %d: invalid HELP metric name %q", n, name)
			}
			if name != family {
				return fmt.Errorf("openmetrics: line %d: HELP for %q outside its family (current %q)", n, name, family)
			}
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("openmetrics: line %d: unexpected comment %q", n, line)
		default:
			if err := validateSample(line, family, familyType); err != nil {
				return fmt.Errorf("openmetrics: line %d: %w", n, err)
			}
		}
	}
	return nil
}

// validateSample checks one sample line against the current family.
func validateSample(line, family, familyType string) error {
	if family == "" {
		return fmt.Errorf("sample %q before any TYPE line", line)
	}
	// Split off the value: everything after the last space (we emit no
	// timestamps or exemplars).
	idx := strings.LastIndexByte(line, ' ')
	if idx < 0 {
		return fmt.Errorf("malformed sample %q", line)
	}
	nameAndLabels, value := line[:idx], line[idx+1:]
	if value != "+Inf" && value != "-Inf" && value != "NaN" {
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("unparseable value %q in %q", value, line)
		}
	}

	name := nameAndLabels
	if b := strings.IndexByte(name, '{'); b >= 0 {
		if !strings.HasSuffix(name, "}") {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		labels := name[b+1 : len(name)-1]
		name = name[:b]
		if labels == "" {
			return fmt.Errorf("empty label set in %q", line)
		}
		for _, pair := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return fmt.Errorf("malformed label %q in %q", pair, line)
			}
		}
	}

	var allowed []string
	switch familyType {
	case "counter":
		allowed = []string{family + "_total", family + "_created"}
	case "gauge":
		allowed = []string{family}
	case "histogram":
		allowed = []string{family + "_bucket", family + "_sum", family + "_count", family + "_created"}
	default:
		allowed = []string{family}
	}
	for _, a := range allowed {
		if name == a {
			return nil
		}
	}
	return fmt.Errorf("sample name %q does not belong to %s family %q", name, familyType, family)
}
