package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in telemetry HTTP listener: /metrics serves the
// registry as OpenMetrics text, /progress serves a live JSON snapshot
// from a caller-supplied function, and /debug/pprof exposes the
// standard profiling handlers. It binds eagerly (so ":0" reports its
// real port) and shuts down gracefully so interrupted CLI runs never
// leak the accept goroutine past their partial-artifact writes.
type Server struct {
	reg      *Registry
	progress func() any
	ln       net.Listener
	srv      *http.Server
	done     chan struct{}
	serveErr error
}

// ContentType is the OpenMetrics exposition media type served by
// /metrics.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// NewServer listens on addr (host:port; port 0 picks a free port) and
// starts serving reg immediately. progress may be nil, disabling the
// /progress verb; otherwise it is called per request and must be safe
// for concurrent use.
func NewServer(addr string, reg *Registry, progress func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, progress: progress, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	//bcachelint:allow goroutinelife(joined via the done channel: Close shuts the http.Server down and then receives on s.done before returning)
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.serveErr = err
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port for ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains in-flight requests and stops the server, waiting at most
// timeout before forcing connections closed. Safe to call once; returns
// any terminal serve error.
func (s *Server) Close(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Past the drain deadline: force-close whatever is left.
		s.srv.Close()
	}
	<-s.done
	if s.serveErr != nil {
		return s.serveErr
	}
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	s.reg.WriteOpenMetrics(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.progress == nil {
		http.Error(w, "progress not wired", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.progress())
}
