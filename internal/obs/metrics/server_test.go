package metrics

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerServesMetricsAndProgress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bcache_accesses", "accesses simulated")
	c.Add(42)

	type progress struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	s, err := NewServer("127.0.0.1:0", r, func() any { return progress{Done: 3, Total: 9} })
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Close(time.Second)

	base := "http://" + s.Addr()

	code, body, ct := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct != ContentType {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics body invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, "bcache_accesses_total 42") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body, ct = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status = %d", code)
	}
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/progress content-type = %q", ct)
	}
	if !strings.Contains(body, `"done": 3`) || !strings.Contains(body, `"total": 9`) {
		t.Fatalf("/progress body = %s", body)
	}

	code, body, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline status = %d body %q", code, body)
	}
}

func TestServerNilProgress(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Close(time.Second)
	code, _, _ := get(t, "http://"+s.Addr()+"/progress")
	if code != http.StatusNotFound {
		t.Fatalf("/progress with nil callback status = %d, want 404", code)
	}
}

func TestServerRejectsNonGet(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer s.Close(time.Second)
	resp, err := http.Post("http://"+s.Addr()+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}

// TestServerCloseNoGoroutineLeak is the graceful-shutdown contract for
// the CLI signal path: after Close returns, the accept loop and every
// handler goroutine are gone, so an interrupted run's partial-JSON
// write is not racing a live listener.
func TestServerCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		s, err := NewServer("127.0.0.1:0", NewRegistry(), func() any { return struct{}{} })
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		if code, _, _ := get(t, "http://"+s.Addr()+"/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d failed: %d", i, code)
		}
		if err := s.Close(time.Second); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Addr must keep working after Close (CLIs log it post-shutdown).
		if s.Addr() == "" {
			t.Fatal("Addr empty after Close")
		}
	}

	// The HTTP client may keep idle-connection goroutines briefly; poll
	// with a bounded retry loop instead of asserting an instant count.
	now := runtime.NumGoroutine()
	for i := 0; i < 500; i++ { // ~5s worst case
		runtime.GC()
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after Close (leak)", before, now)
}

func TestServerCloseDrainsInflight(t *testing.T) {
	r := NewRegistry()
	slow := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", r, func() any {
		<-slow
		return struct{}{}
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/progress")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
		errc <- err
	}()

	// Give the request time to reach the handler, then shut down while
	// it is blocked; Close must wait for the drain.
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(slow)
	}()
	if err := s.Close(5 * time.Second); err != nil {
		t.Fatalf("Close during in-flight request: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
}
