// Package metrics is a stdlib-only OpenMetrics instrument registry: the
// live counterpart to the post-hoc probes in internal/obs. Counters,
// gauges, and fixed-bucket histograms register under validated names and
// render as OpenMetrics text exposition (the format Prometheus scrapes),
// served by Server alongside a /progress JSON verb and /debug/pprof.
//
// The design goals mirror the probe layer: instruments are safe from
// every worker goroutine, cheap enough for scheduler hot paths (counters
// and gauges are single atomics; histograms take one short mutex), and
// the exposition is deterministic — families render sorted by name so
// two scrapes of identical state are byte-identical.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bounds are the
// upper bounds of the finite buckets; an implicit +Inf bucket catches
// the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. It panics on unsorted or empty bounds — instrument
// construction is programmer error territory, like a bad metric name.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot returns copies of the counts plus sum and count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.count
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1)
// from the bucket counts: the upper bound of the bucket containing the
// q-th sample. Returns 0 with no observations; the top bucket reports
// the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind drives exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments and renders them as OpenMetrics text.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// validName reports whether name matches the OpenMetrics metric-name
// grammar we allow: [a-zA-Z_][a-zA-Z0-9_]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, m *metric) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	m.name, m.help = name, help
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.metrics[name] = m
}

// Counter registers and returns a counter. The name must not include
// the _total suffix; exposition adds it.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, &metric{kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, &metric{kind: kindGauge, g: g})
	return g
}

// Histogram registers and returns a histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, &metric{kind: kindHistogram, h: h})
	return h
}

// fmtFloat renders a float the OpenMetrics way: shortest round-trip
// representation, +Inf spelled "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics renders every registered instrument as OpenMetrics
// text exposition, families sorted by name, ending with "# EOF".
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	byName := make(map[string]*metric, len(r.metrics))
	for name, m := range r.metrics {
		byName[name] = m
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		m := byName[name]
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n# HELP %s %s\n%s_total %d\n",
				name, name, m.help, name, m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n# HELP %s %s\n%s %s\n",
				name, name, m.help, name, fmtFloat(m.g.Value())); err != nil {
				return err
			}
		case kindHistogram:
			counts, sum, count := m.h.snapshot()
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n# HELP %s %s\n", name, name, m.help); err != nil {
				return err
			}
			var cum uint64
			for i, c := range counts {
				cum += c
				le := "+Inf"
				if i < len(m.h.bounds) {
					le = fmtFloat(m.h.bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(sum), name, count); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprint(w, "# EOF\n")
	return err
}
