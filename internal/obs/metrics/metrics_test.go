package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bcache_units_completed", "units that finished")
	g := r.Gauge("bcache_queue_depth", "unclaimed units")

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g.Set(10)
	g.Add(-3.5)
	if g.Value() != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1, 10})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // falls in le=0.01
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // falls in le=10
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	emptyH := NewHistogram([]float64{1})
	if got := emptyH.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	counts, sum, count := h.snapshot()
	if counts[2] != 1 || count != 1 || sum != 100 {
		t.Fatalf("overflow: counts=%v sum=%v count=%d", counts, sum, count)
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, "invalid name", func() { r.Counter("9bad", "x") })
	mustPanic(t, "invalid char", func() { r.Counter("bad-name", "x") })
	r.Counter("ok_name", "x")
	mustPanic(t, "duplicate", func() { r.Gauge("ok_name", "x") })
	mustPanic(t, "empty bounds", func() { NewHistogram(nil) })
	mustPanic(t, "unsorted bounds", func() { NewHistogram([]float64{2, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestWriteOpenMetricsRendersAndValidates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bcache_units_completed", "units that finished")
	g := r.Gauge("bcache_queue_depth", "unclaimed units")
	h := r.Histogram("bcache_unit_wall_seconds", "per-unit wall time", []float64{0.01, 0.1, 1})
	c.Add(7)
	g.Set(3)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	text := buf.String()

	if err := ValidateExposition(text); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE bcache_units_completed counter",
		"bcache_units_completed_total 7",
		"# TYPE bcache_queue_depth gauge",
		"bcache_queue_depth 3",
		"# TYPE bcache_unit_wall_seconds histogram",
		`bcache_unit_wall_seconds_bucket{le="0.1"} 1`,
		`bcache_unit_wall_seconds_bucket{le="+Inf"} 2`,
		"bcache_unit_wall_seconds_sum 2.05",
		"bcache_unit_wall_seconds_count 2",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("exposition does not end with EOF line:\n%s", text)
	}
}

func TestWriteOpenMetricsDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_last", "z")
	r.Counter("aaa_first", "a")
	var a, b bytes.Buffer
	r.WriteOpenMetrics(&a)
	r.WriteOpenMetrics(&b)
	if a.String() != b.String() {
		t.Fatal("two renders of identical state differ")
	}
	if strings.Index(a.String(), "aaa_first") > strings.Index(a.String(), "zzz_last") {
		t.Fatalf("families not sorted by name:\n%s", a.String())
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"no EOF":             "# TYPE x counter\nx_total 1\n",
		"no final newline":   "# EOF",
		"sample before TYPE": "x_total 1\n# EOF\n",
		"bad value":          "# TYPE x counter\nx_total banana\n# EOF\n",
		"wrong family":       "# TYPE x counter\ny_total 1\n# EOF\n",
		"gauge with total":   "# TYPE x gauge\nx_total 1\n# EOF\n",
		"bad label":          "# TYPE x histogram\nx_bucket{le=+Inf} 1\n# EOF\n",
		"unknown type":       "# TYPE x wibble\n# EOF\n",
		"duplicate TYPE":     "# TYPE x counter\n# TYPE x counter\n# EOF\n",
		"empty line":         "# TYPE x counter\n\n# EOF\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestValidateExpositionAcceptsSpecials(t *testing.T) {
	text := "# TYPE x gauge\n# HELP x a gauge\nx +Inf\n# EOF\n"
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("rejected +Inf gauge: %v", err)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge = %v after balanced adds, want 0", v)
	}
}

func TestFmtFloat(t *testing.T) {
	if got := fmtFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("fmtFloat(+Inf) = %q", got)
	}
	if got := fmtFloat(0.25); got != "0.25" {
		t.Fatalf("fmtFloat(0.25) = %q", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.05)
	}
}
