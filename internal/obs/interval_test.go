package obs

import (
	"testing"

	addrpkg "bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
)

func TestIntervalSamplerClosesEveryN(t *testing.T) {
	s := NewIntervalSampler(100, 0)
	for i := 0; i < 1000; i++ {
		s.ObserveAccess(0, i%2 == 0, false)
	}
	samples := s.Samples()
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10", len(samples))
	}
	for i, smp := range samples {
		if smp.Accesses != 100 {
			t.Fatalf("sample %d covers %d accesses, want 100", i, smp.Accesses)
		}
		if smp.EndAccess != uint64((i+1)*100) {
			t.Fatalf("sample %d ends at %d, want %d", i, smp.EndAccess, (i+1)*100)
		}
		if smp.MissRate() != 0.5 {
			t.Fatalf("sample %d miss rate %v, want 0.5", i, smp.MissRate())
		}
	}
}

func TestIntervalSamplerFlushTail(t *testing.T) {
	s := NewIntervalSampler(100, 0)
	for i := 0; i < 250; i++ {
		s.ObserveAccess(0, false, false)
	}
	if n := len(s.Samples()); n != 2 {
		t.Fatalf("before flush: %d samples, want 2", n)
	}
	s.Flush()
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("after flush: %d samples, want 3", len(samples))
	}
	if tail := samples[2]; tail.Accesses != 50 || tail.EndAccess != 250 {
		t.Fatalf("tail sample = %+v, want 50 accesses ending at 250", tail)
	}
	s.Flush() // idempotent: empty open interval must not close again
	if n := len(s.Samples()); n != 3 {
		t.Fatalf("double flush added a sample: %d", n)
	}
}

func TestIntervalSamplerNonAccessEvents(t *testing.T) {
	s := NewIntervalSampler(10, 0)
	for i := 0; i < 10; i++ {
		s.ObservePD(i%2 == 0)
		s.ObserveReprogram()
		s.ObserveEvict(i%5 == 0)
		s.ObserveWriteback()
		s.ObserveAccess(0, false, true)
	}
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	smp := samples[0]
	if smp.PDHits != 5 || smp.PDMisses != 5 || smp.Reprograms != 10 ||
		smp.Evictions != 10 || smp.DirtyEvictions != 2 || smp.Writebacks != 10 ||
		smp.Writes != 10 {
		t.Fatalf("sample counters wrong: %+v", smp)
	}
	if smp.PDMissRate() != 0.5 {
		t.Fatalf("PD miss rate %v, want 0.5", smp.PDMissRate())
	}
	if smp.ReprogramsPerKiloAccess() != 1000 {
		t.Fatalf("reprograms/kaccess %v, want 1000", smp.ReprogramsPerKiloAccess())
	}
}

func TestIntervalSamplerCompaction(t *testing.T) {
	s := NewIntervalSampler(10, 8)
	// maxSamples*10 accesses fill the buffer; 4x that forces two
	// compactions.
	total := maxSamples * 10 * 4
	for i := 0; i < total; i++ {
		s.ObserveAccess(i%8, i%4 != 0, false)
	}
	if s.Interval() < 40 {
		t.Fatalf("interval after two compactions = %d, want >= 40", s.Interval())
	}
	s.Flush()
	samples := s.Samples()
	if len(samples) > maxSamples {
		t.Fatalf("%d samples exceed the %d bound", len(samples), maxSamples)
	}
	// Compaction must preserve totals exactly.
	var acc, misses uint64
	for _, smp := range samples {
		acc += smp.Accesses
		misses += smp.Misses
	}
	if acc != uint64(total) {
		t.Fatalf("samples cover %d accesses, want %d", acc, total)
	}
	if want := uint64(total / 4); misses != want {
		t.Fatalf("samples hold %d misses, want %d", misses, want)
	}
	// EndAccess stays strictly increasing and ends at the run length.
	prev := uint64(0)
	for i, smp := range samples {
		if smp.EndAccess <= prev {
			t.Fatalf("sample %d EndAccess %d not increasing (prev %d)", i, smp.EndAccess, prev)
		}
		prev = smp.EndAccess
	}
	if prev != uint64(total) {
		t.Fatalf("last sample ends at %d, want %d", prev, total)
	}
	// Heat rows merge alongside: every access hit one bucket.
	var heatTotal uint64
	for _, row := range s.Heat() {
		for _, v := range row {
			heatTotal += v
		}
	}
	if heatTotal != uint64(total) {
		t.Fatalf("heat rows cover %d accesses, want %d", heatTotal, total)
	}
}

func TestIntervalSamplerHeatBucketsDownsample(t *testing.T) {
	s := NewIntervalSampler(512, 512) // 512 frames -> 64 buckets of 8
	if s.HeatBuckets() != maxHeatBuckets {
		t.Fatalf("buckets = %d, want %d", s.HeatBuckets(), maxHeatBuckets)
	}
	for f := 0; f < 512; f++ {
		s.ObserveAccess(f, true, false)
	}
	heat := s.Heat()
	if len(heat) != 1 {
		t.Fatalf("%d heat rows, want 1", len(heat))
	}
	for b, v := range heat[0] {
		if v != 8 {
			t.Fatalf("bucket %d holds %d accesses, want 8", b, v)
		}
	}
}

func TestIntervalSamplerSmallCacheHeat(t *testing.T) {
	s := NewIntervalSampler(4, 2) // fewer frames than maxHeatBuckets
	if s.HeatBuckets() != 2 {
		t.Fatalf("buckets = %d, want 2", s.HeatBuckets())
	}
	s.ObserveAccess(0, true, false)
	s.ObserveAccess(1, true, false)
	s.ObserveAccess(1, true, false)
	s.Flush()
	heat := s.Heat()
	if heat[0][0] != 1 || heat[0][1] != 2 {
		t.Fatalf("heat row = %v, want [1 2]", heat[0])
	}
}

// TestSamplerAgainstRealRun cross-checks the sampler's accumulated
// series against the cache's own statistics over a realistic PD-churn
// workload.
func TestSamplerAgainstRealRun(t *testing.T) {
	bc, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	s := NewIntervalSampler(1000, bc.Geometry().Frames)
	bc.SetProbe(s)
	for i := 0; i < 50000; i++ {
		bc.Access(addrAt(i), i%7 == 0)
	}
	s.Flush()
	var acc, misses, reprog uint64
	for _, smp := range s.Samples() {
		acc += smp.Accesses
		misses += smp.Misses
		reprog += smp.Reprograms
	}
	st := bc.Stats()
	if acc != st.Accesses || misses != st.Misses {
		t.Fatalf("series totals %d/%d != stats %d/%d", acc, misses, st.Accesses, st.Misses)
	}
	if reprog != bc.PDStats().Programmed {
		t.Fatalf("series reprograms %d != stats %d", reprog, bc.PDStats().Programmed)
	}
}

// addrAt generates a drifting hot-set access pattern: enough reuse to
// hit, enough churn to keep reprogramming decoders.
func addrAt(i int) addrpkg.Addr {
	base := (i / 10000) * 131072 // phase shift every 10k accesses
	return addrpkg.Addr(base + (i%97)*32)
}
