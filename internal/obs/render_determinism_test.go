package obs

import (
	"bytes"
	"testing"
)

// TestReportByteIdentical pins the report rendering path: two identical
// runs must encode to byte-identical JSON. The report carries
// map-backed aggregates (series, heatmap rows, balance classification),
// so any iteration-order leak in their assembly would show up here as a
// nondeterministic artifact diff.
func TestReportByteIdentical(t *testing.T) {
	encode := func() []byte {
		r := runReport(t, 30000)
		var b bytes.Buffer
		if err := r.Write(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first, second := encode(), encode()
	if !bytes.Equal(first, second) {
		t.Fatal("report JSON differs between two identical runs")
	}
}
