package obs

import "bcache/internal/cache"

// Counters is the cheapest probe: run-total event counts. The fields
// mirror the cache.Probe event points one-to-one.
type Counters struct {
	Accesses uint64 `json:"accesses"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Writes   uint64 `json:"writes"`
	// PDHits/PDMisses classify cache MISSES by decoder outcome (forced
	// victim vs predetermined); cache hits are PD hits by definition and
	// are not re-counted here.
	PDHits     uint64 `json:"pdHits"`
	PDMisses   uint64 `json:"pdMisses"`
	Reprograms uint64 `json:"reprograms"`
	Evictions  uint64 `json:"evictions"`
	// DirtyEvictions counts evictions the emitting cache marked dirty
	// (writebacks owed); Writebacks counts those the hierarchy actually
	// performed against the L2.
	DirtyEvictions uint64 `json:"dirtyEvictions"`
	Writebacks     uint64 `json:"writebacks"`
	// Faults classify injected soft errors by the protection model's
	// verdict; FaultsByDomain splits them by the state array hit
	// (indexed by cache.FaultDomain).
	Faults          uint64                        `json:"faults"`
	FaultsSilent    uint64                        `json:"faultsSilent"`
	FaultsDetected  uint64                        `json:"faultsDetected"`
	FaultsCorrected uint64                        `json:"faultsCorrected"`
	FaultsByDomain  [cache.NumFaultDomains]uint64 `json:"faultsByDomain"`
	// ScrubPasses/ScrubRepairs/ScrubDegrades count PD scrubber activity.
	ScrubPasses   uint64 `json:"scrubPasses"`
	ScrubRepairs  uint64 `json:"scrubRepairs"`
	ScrubDegrades uint64 `json:"scrubDegrades"`
}

var _ cache.Probe = (*Counters)(nil)

// ObserveAccess implements cache.Probe.
func (c *Counters) ObserveAccess(frame int, hit, write bool) {
	c.Accesses++
	if hit {
		c.Hits++
	} else {
		c.Misses++
	}
	if write {
		c.Writes++
	}
}

// ObservePD implements cache.Probe.
func (c *Counters) ObservePD(hit bool) {
	if hit {
		c.PDHits++
	} else {
		c.PDMisses++
	}
}

// ObserveReprogram implements cache.Probe.
func (c *Counters) ObserveReprogram() { c.Reprograms++ }

// ObserveEvict implements cache.Probe.
func (c *Counters) ObserveEvict(dirty bool) {
	c.Evictions++
	if dirty {
		c.DirtyEvictions++
	}
}

// ObserveWriteback implements cache.Probe.
func (c *Counters) ObserveWriteback() { c.Writebacks++ }

// ObserveFault implements cache.Probe.
func (c *Counters) ObserveFault(d cache.FaultDomain, cl cache.FaultClass) {
	c.Faults++
	if d < cache.NumFaultDomains {
		c.FaultsByDomain[d]++
	}
	switch cl {
	case cache.FaultSilent:
		c.FaultsSilent++
	case cache.FaultDetected:
		c.FaultsDetected++
	case cache.FaultCorrected:
		c.FaultsCorrected++
	}
}

// ObserveScrub implements cache.Probe.
func (c *Counters) ObserveScrub(repaired int, degraded bool) {
	c.ScrubPasses++
	c.ScrubRepairs += uint64(repaired)
	if degraded {
		c.ScrubDegrades++
	}
}

// MissRate returns Misses/Accesses, or 0 for an idle probe.
func (c *Counters) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }
