package tracespan

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome trace-event export: the JSON array-of-events format consumed by
// chrome://tracing and Perfetto (legacy JSON importer). Each scheduler
// worker gets its own track (thread), so the timeline shows exactly how
// the unit pipeline filled each worker: spans with a duration render as
// "X" complete events, everything else as "i" instants pinned to their
// owning track.

// chromeEvent is one entry of the traceEvents array. Timestamps and
// durations are microseconds; pid/tid pick the track.
type chromeEvent struct {
	Name string `json:"name"`
	// Ph is the event phase: "X" complete, "i" instant, "M" metadata.
	Ph  string  `json:"ph"`
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// S scopes instants to their thread ("t"); empty otherwise.
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
	Cat  string            `json:"cat,omitempty"`
}

// chromeTrace is the top-level JSON object form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePid = 1

// chromeTid maps a span's Worker to a stable track id. Worker 0 becomes
// tid 2 so that the shared track (Worker -1 → tid 1) sorts first.
func chromeTid(worker int) int { return worker + 2 }

// WriteChromeTrace renders the journal's spans as a Chrome trace-event
// JSON document with one track per worker plus a "shared" track for
// checkpoint and trace-cache events. Timestamps are normalized so the
// earliest span starts at t=0.
func (j *Journal) WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, j.Snapshot())
}

// WriteChromeTraceFile writes the Chrome trace to path (0644, truncating).
func (j *Journal) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("tracespan: writing %s: %w", path, err)
	}
	return f.Close()
}

func writeChromeTrace(w io.Writer, spans []Span) error {
	var base int64
	for i := range spans {
		if i == 0 || spans[i].StartUnixNano < base {
			base = spans[i].StartUnixNano
		}
	}

	// Collect worker ids into a sorted slice so metadata order (and the
	// whole document) is deterministic regardless of map iteration.
	seen := make(map[int]bool, 8)
	for i := range spans {
		seen[spans[i].Worker] = true
	}
	workers := make([]int, 0, len(seen))
	for wk := range seen {
		workers = append(workers, wk)
	}
	sort.Ints(workers)

	events := make([]chromeEvent, 0, len(spans)+len(workers)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]string{"name": "bcache scheduler"},
	})
	for _, wk := range workers {
		name := fmt.Sprintf("worker %d", wk)
		if wk == SharedWorker {
			name = "shared"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: chromeTid(wk),
			Args: map[string]string{"name": name},
		})
	}

	for i := range spans {
		s := &spans[i]
		ev := chromeEvent{
			Name: s.Name,
			Ts:   float64(s.StartUnixNano-base) / 1e3,
			Pid:  chromePid,
			Tid:  chromeTid(s.Worker),
			Cat:  s.Kind,
		}
		if ev.Name == "" {
			ev.Name = s.Kind
		}
		if s.DurNanos > 0 {
			ev.Ph = "X"
			ev.Dur = float64(s.DurNanos) / 1e3
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		args := make(map[string]string, 4)
		if s.Unit >= 0 {
			args["unit"] = fmt.Sprintf("%d", s.Unit)
		}
		if s.Attempt > 0 {
			args["attempt"] = fmt.Sprintf("%d", s.Attempt)
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
