package tracespan

import (
	"sync"
	"time"
)

// The determinism analyzer (internal/lint) bans direct wall-clock reads
// inside internal/ packages: simulation results must be bit-identical
// across runs. Telemetry, however, exists to measure wall time. Clock is
// the audited seam between the two worlds: every real-time read in the
// telemetry layer goes through a Clock value, the single time.Now inside
// wallClock carries the one //bcachelint:allow for it, and tests inject
// FakeClock to make timing-dependent behaviour (retry backoff, span
// durations) exactly reproducible.

// Clock supplies telemetry timestamps and backoff sleeps. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d (FakeClock advances instead of blocking).
	Sleep(d time.Duration)
}

// Wall is the production clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time {
	return time.Now() //bcachelint:allow determinism(clock seam: the sanctioned wall-clock read; telemetry timestamps never reach simulation results)
}

func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a deterministic Clock for tests: Now returns a settable
// instant and Sleep advances it instead of blocking, recording every
// requested duration so tests can assert exact backoff schedules.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking and records d.
func (c *FakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
}

// Advance moves the clock forward without recording a sleep.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sleeps returns a copy of every duration passed to Sleep, in order.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}
