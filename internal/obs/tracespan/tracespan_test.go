package tracespan

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func testClock() *FakeClock {
	return NewFakeClock(time.Unix(1_700_000_000, 0))
}

func TestJournalRecordSnapshot(t *testing.T) {
	clk := testClock()
	j := NewJournal(8, clk)
	j.Record(Span{Kind: KindUnit, Name: "a", Worker: 0, Unit: 0, DurNanos: 100})
	clk.Advance(time.Millisecond)
	j.Record(Span{Kind: KindRetry, Name: "a", Worker: 0, Unit: 0, Attempt: 1})

	got := j.Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(got))
	}
	if got[0].Kind != KindUnit || got[1].Kind != KindRetry {
		t.Fatalf("kinds = %q, %q", got[0].Kind, got[1].Kind)
	}
	if got[0].StartUnixNano == 0 || got[1].StartUnixNano == 0 {
		t.Fatalf("Record did not stamp StartUnixNano: %+v", got)
	}
	if got[1].StartUnixNano-got[0].StartUnixNano != int64(time.Millisecond) {
		t.Fatalf("timestamps not from fake clock: %d vs %d", got[0].StartUnixNano, got[1].StartUnixNano)
	}
	if j.Recorded() != 2 || j.Dropped() != 0 {
		t.Fatalf("Recorded=%d Dropped=%d, want 2, 0", j.Recorded(), j.Dropped())
	}
}

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(4, testClock())
	for i := 0; i < 10; i++ {
		j.Record(Span{Kind: KindUnit, Unit: i, Worker: 0})
	}
	got := j.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(got))
	}
	for i, s := range got {
		if s.Unit != 6+i {
			t.Fatalf("span %d Unit = %d, want %d (oldest dropped first)", i, s.Unit, 6+i)
		}
	}
	if j.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", j.Recorded())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Span{Kind: KindUnit})
	if j.Len() != 0 || j.Recorded() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal should report zeros")
	}
	if got := j.Snapshot(); got != nil {
		t.Fatalf("nil journal Snapshot = %v, want nil", got)
	}
	if j.Clock() != Wall {
		t.Fatal("nil journal Clock should fall back to Wall")
	}
}

func TestJournalConcurrentRecord(t *testing.T) {
	j := NewJournal(1024, testClock())
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(Span{Kind: KindUnit, Worker: w, Unit: i})
			}
		}(w)
	}
	wg.Wait()
	if j.Recorded() != workers*per {
		t.Fatalf("Recorded = %d, want %d", j.Recorded(), workers*per)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	clk := testClock()
	j := NewJournal(8, clk)
	j.Record(Span{Kind: KindUnit, Name: "fig3/dm/seed0", Worker: 1, Unit: 3, DurNanos: 2500, Err: "boom"})
	j.Record(Span{Kind: KindCheckpoint, Worker: SharedWorker, Unit: -1, Detail: "units=4 bytes=812"})

	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3 (meta + 2 spans):\n%s", len(lines), buf.String())
	}

	meta, spans, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if meta.SchemaVersion != SchemaVersion || meta.Spans != 2 || meta.Recorded != 2 || meta.Dropped != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "fig3/dm/seed0" || spans[0].Err != "boom" || spans[0].DurNanos != 2500 {
		t.Fatalf("span 0 round-trip mismatch: %+v", spans[0])
	}
	if spans[1].Unit != -1 || spans[1].Worker != SharedWorker {
		t.Fatalf("span 1 round-trip mismatch: %+v", spans[1])
	}
}

func TestReadJSONLRejectsSchemaMismatch(t *testing.T) {
	in := `{"schemaVersion":99,"spans":0,"recorded":0,"dropped":0}` + "\n"
	if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("ReadJSONL accepted schema v99")
	}
}

func TestChromeTraceOneTrackPerWorker(t *testing.T) {
	clk := testClock()
	j := NewJournal(32, clk)
	base := clk.Now().UnixNano()
	j.Record(Span{Kind: KindUnit, Name: "u0", Worker: 0, Unit: 0, StartUnixNano: base, DurNanos: 4000})
	j.Record(Span{Kind: KindUnit, Name: "u1", Worker: 1, Unit: 1, StartUnixNano: base + 1000, DurNanos: 3000})
	j.Record(Span{Kind: KindRetry, Name: "u1", Worker: 1, Unit: 1, Attempt: 1, StartUnixNano: base + 2000})
	j.Record(Span{Kind: KindCheckpoint, Worker: SharedWorker, Unit: -1, StartUnixNano: base + 5000})

	var buf bytes.Buffer
	if err := j.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
			Cat  string            `json:"cat"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}

	threadNames := map[int]string{}
	var complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.Tid] = ev.Args["name"]
			}
		case "X":
			complete++
			if ev.Dur <= 0 {
				t.Fatalf("complete event %q has dur %v", ev.Name, ev.Dur)
			}
		case "i":
			instant++
			if ev.S != "t" {
				t.Fatalf("instant %q scope = %q, want t", ev.Name, ev.S)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts < 0 {
			t.Fatalf("event %q has negative ts %v", ev.Name, ev.Ts)
		}
	}
	if complete != 2 || instant != 2 {
		t.Fatalf("complete=%d instant=%d, want 2, 2", complete, instant)
	}
	// One track per worker: shared (tid 1), worker 0 (tid 2), worker 1 (tid 3).
	want := map[int]string{1: "shared", 2: "worker 0", 3: "worker 1"}
	for tid, name := range want {
		if threadNames[tid] != name {
			t.Fatalf("thread_name[%d] = %q, want %q (all: %v)", tid, threadNames[tid], name, threadNames)
		}
	}
	// Timestamps normalized: earliest span at ts 0.
	var minTs = -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if minTs < 0 || ev.Ts < minTs {
			minTs = ev.Ts
		}
	}
	if minTs != 0 {
		t.Fatalf("min ts = %v, want 0 (normalized)", minTs)
	}
}

func TestFakeClockSleepAdvancesAndRecords(t *testing.T) {
	clk := testClock()
	t0 := clk.Now()
	clk.Sleep(50 * time.Millisecond)
	clk.Sleep(100 * time.Millisecond)
	if got := clk.Now().Sub(t0); got != 150*time.Millisecond {
		t.Fatalf("Now advanced by %v, want 150ms", got)
	}
	sleeps := clk.Sleeps()
	if len(sleeps) != 2 || sleeps[0] != 50*time.Millisecond || sleeps[1] != 100*time.Millisecond {
		t.Fatalf("Sleeps = %v", sleeps)
	}
}

func BenchmarkJournalRecord(b *testing.B) {
	j := NewJournal(1<<16, testClock())
	s := Span{Kind: KindUnit, Name: "bench", Worker: 0, Unit: 1, StartUnixNano: 1, DurNanos: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Record(s)
	}
}
