// Package tracespan is the scheduler's flight recorder: a lock-cheap,
// bounded, in-memory journal of lifecycle spans — unit start/finish,
// retry and backoff, deadline abandons, panics, checkpoint autosaves,
// trace-cache hits and rebuilds — exportable as schema-versioned JSONL
// and as a Chrome trace-event timeline (chrome://tracing / Perfetto, one
// track per worker).
//
// The journal is deliberately simple: a preallocated ring under one
// mutex. Recording is O(1), allocation-free past the label strings the
// caller already holds, and safe from every worker goroutine. When the
// ring is full the oldest spans are overwritten (and counted), so a
// multi-hour campaign keeps its most recent window rather than growing
// without bound. Spans never feed back into simulation results; their
// timestamps come from the Clock seam (clock.go), which is the audited
// wall-clock boundary for the determinism analyzer.
package tracespan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// SchemaVersion identifies the span JSONL layout (the meta line and the
// Span fields). Bump on any breaking change.
const SchemaVersion = 1

// Span kinds. KindUnit and KindExperiment are duration spans; the rest
// are instants on the timeline.
const (
	// KindUnit is one scheduled work unit from claim to completion.
	KindUnit = "unit"
	// KindRetry marks a retry being scheduled (Detail carries the
	// backoff delay; Attempt the attempt that just failed, 0-based).
	KindRetry = "retry"
	// KindAbandon marks a unit abandoned past its deadline.
	KindAbandon = "abandon"
	// KindPanic marks a unit that panicked (recovered by the scheduler).
	KindPanic = "panic"
	// KindCheckpoint marks a checkpoint save (Detail carries units/bytes).
	KindCheckpoint = "checkpoint"
	// KindTraceHit marks a trace-cache hit.
	KindTraceHit = "trace_hit"
	// KindTraceBuild is a trace-cache miss plus the build that filled it.
	KindTraceBuild = "trace_build"
	// KindTraceRebuild marks a checksum-failed entry being discarded.
	KindTraceRebuild = "trace_rebuild"
	// KindTraceSpill marks an evicted trace being written to disk.
	KindTraceSpill = "trace_spill"
	// KindTraceReload marks a spilled trace being read back from disk
	// (dur carries the decode time, like trace_build).
	KindTraceReload = "trace_reload"
	// KindExperiment is one whole experiment from the CLI's perspective.
	KindExperiment = "experiment"
	// KindLease marks a distributed lease being granted (Detail carries
	// the unit range; Worker the subprocess slot).
	KindLease = "lease"
	// KindLeaseExpire marks a lease missing its deadline and its units
	// returning to the pool.
	KindLeaseExpire = "lease_expire"
	// KindWorkerRestart marks a dead worker subprocess being respawned
	// (Attempt carries the incarnation number).
	KindWorkerRestart = "worker_restart"
	// KindShardMerge marks a worker's checkpoint shard being merged
	// (Detail carries records/recovered counts).
	KindShardMerge = "shard_merge"
)

// SharedWorker is the Worker value for spans not owned by one scheduler
// worker (checkpoint saves, trace-cache events observed on whichever
// goroutine got there first).
const SharedWorker = -1

// Span is one recorded event. StartUnixNano is wall time from the
// journal's Clock; DurNanos is zero for instants.
type Span struct {
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Worker int    `json:"worker"`
	// Unit is the scheduler unit index, -1 when not unit-scoped.
	Unit          int    `json:"unit"`
	Attempt       int    `json:"attempt,omitempty"`
	StartUnixNano int64  `json:"startUnixNano"`
	DurNanos      int64  `json:"durNanos,omitempty"`
	Err           string `json:"err,omitempty"`
	Detail        string `json:"detail,omitempty"`
}

// DefaultCapacity bounds a journal when the caller does not say
// otherwise: 64k spans is hours of scheduling at experiment grain, a few
// MB of memory at most.
const DefaultCapacity = 64 << 10

// Journal is a bounded concurrent span ring. A nil *Journal is valid and
// inert so emission sites need no guards beyond their own nil check.
type Journal struct {
	mu       sync.Mutex
	clock    Clock
	ring     []Span // guarded by mu
	start, n int    // guarded by mu
	recorded uint64 // guarded by mu
	dropped  uint64 // guarded by mu
}

// NewJournal returns a journal holding at most capacity spans
// (capacity <= 0 uses DefaultCapacity); clock nil uses Wall.
func NewJournal(capacity int, clock Clock) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if clock == nil {
		clock = Wall
	}
	return &Journal{clock: clock, ring: make([]Span, capacity)}
}

// Clock returns the journal's time source.
func (j *Journal) Clock() Clock {
	if j == nil {
		return Wall
	}
	return j.clock
}

// Record appends s, stamping StartUnixNano from the journal clock when
// the caller left it zero. When full, the oldest span is overwritten and
// counted in Dropped.
func (j *Journal) Record(s Span) {
	if j == nil {
		return
	}
	if s.StartUnixNano == 0 {
		s.StartUnixNano = j.clock.Now().UnixNano()
	}
	j.mu.Lock()
	if j.n == len(j.ring) {
		j.ring[j.start] = s
		j.start = (j.start + 1) % len(j.ring)
		j.dropped++
	} else {
		j.ring[(j.start+j.n)%len(j.ring)] = s
		j.n++
	}
	j.recorded++
	j.mu.Unlock()
}

// Len returns the number of spans currently held.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Recorded returns the total spans ever recorded (including overwritten).
func (j *Journal) Recorded() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recorded
}

// Dropped returns how many spans were overwritten by ring wrap.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Snapshot copies the held spans in record order.
func (j *Journal) Snapshot() []Span {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Span, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.ring[(j.start+i)%len(j.ring)]
	}
	return out
}

// Meta is the first line of a JSONL export: schema version plus journal
// accounting, so a consumer knows whether the span list is complete.
type Meta struct {
	SchemaVersion int    `json:"schemaVersion"`
	Spans         int    `json:"spans"`
	Recorded      uint64 `json:"recorded"`
	Dropped       uint64 `json:"dropped"`
}

// WriteJSONL writes the journal as JSON Lines: one Meta line, then one
// Span per line, in record order.
func (j *Journal) WriteJSONL(w io.Writer) error {
	spans := j.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := Meta{SchemaVersion: SchemaVersion, Spans: len(spans), Recorded: j.Recorded(), Dropped: j.Dropped()}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the JSONL export to path (0644, truncating).
func (j *Journal) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("tracespan: writing %s: %w", path, err)
	}
	return f.Close()
}

// ReadJSONL parses a JSONL export, rejecting unknown schema versions.
func ReadJSONL(r io.Reader) (Meta, []Span, error) {
	dec := json.NewDecoder(r)
	var meta Meta
	if err := dec.Decode(&meta); err != nil {
		return Meta{}, nil, fmt.Errorf("tracespan: parse meta line: %w", err)
	}
	if meta.SchemaVersion != SchemaVersion {
		return Meta{}, nil, fmt.Errorf("tracespan: journal schema v%d, this build reads v%d",
			meta.SchemaVersion, SchemaVersion)
	}
	var spans []Span
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return Meta{}, nil, fmt.Errorf("tracespan: parse span %d: %w", len(spans), err)
		}
		spans = append(spans, s)
	}
	return meta, spans, nil
}
