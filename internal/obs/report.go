package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/stats"
	"bcache/internal/victim"
)

// SchemaVersion identifies the run-report JSON layout. Bump it on any
// breaking change to the Report structure so downstream diff tooling can
// refuse mixed-version comparisons.
const SchemaVersion = 1

// Report is one simulation run as a machine-readable artifact: what ran,
// what the totals were, how balanced the sets ended up, how fast the
// simulator went, and how the run evolved over time. It is the payload
// of `bcachesim -report` and the per-run entries of BENCH_obs.json.
type Report struct {
	SchemaVersion int          `json:"schemaVersion"`
	Config        RunConfig    `json:"config"`
	Totals        Totals       `json:"totals"`
	PD            *PDTotals    `json:"pd,omitempty"`
	Fault         *FaultTotals `json:"fault,omitempty"`
	Balance       *Balance     `json:"balance,omitempty"`
	Throughput    *Throughput  `json:"throughput,omitempty"`
	Series        []Series     `json:"series,omitempty"`
	Samples       []Sample     `json:"samples,omitempty"`
	Heatmap       *Heatmap     `json:"heatmap,omitempty"`
}

// RunConfig identifies the simulated configuration.
type RunConfig struct {
	Cache     string `json:"cache"`
	Benchmark string `json:"benchmark,omitempty"`
	Side      string `json:"side,omitempty"`
	SizeBytes int    `json:"sizeBytes"`
	LineBytes int    `json:"lineBytes"`
	Ways      int    `json:"ways"`
	Sets      int    `json:"sets"`
	Frames    int    `json:"frames"`
	// Instructions is the simulated instruction count (0 when the run was
	// driven by raw accesses rather than an instruction stream).
	Instructions uint64 `json:"instructions,omitempty"`
	// Interval is the sampler's final interval length in accesses.
	Interval uint64 `json:"interval,omitempty"`
	// Interrupted marks a run cut short by SIGINT/SIGTERM: totals and
	// series cover only the accesses simulated before the signal.
	Interrupted bool `json:"interrupted,omitempty"`
}

// FaultTotals summarizes a fault-injection run (bcachesim -fault-rate).
// The CLI fills it from the injector so obs stays independent of the
// fault package.
type FaultTotals struct {
	Rate       float64 `json:"rate"`
	Protection string  `json:"protection"`
	Seed       uint64  `json:"seed"`
	Injected   uint64  `json:"injected"`
	Silent     uint64  `json:"silent"`
	Detected   uint64  `json:"detected"`
	Corrected  uint64  `json:"corrected"`
	// ScrubPasses/ScrubRepairs count PD scrubber activity; Degraded
	// reports the cache ended the run in direct-mapped fallback.
	ScrubPasses  uint64 `json:"scrubPasses"`
	ScrubRepairs uint64 `json:"scrubRepairs"`
	Degraded     bool   `json:"degraded"`
	// Invariant is the final CheckInvariants result ("" = clean).
	Invariant string `json:"invariant,omitempty"`
}

// Totals are the run-end aggregate counters.
type Totals struct {
	Accesses   uint64  `json:"accesses"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	Evictions  uint64  `json:"evictions"`
	Writebacks uint64  `json:"writebacks"`
	MissRate   float64 `json:"missRate"`
	// BufferHits counts hits served by the victim buffer (victim-cache
	// runs only; they are included in Hits).
	BufferHits uint64 `json:"bufferHits,omitempty"`
}

// PDTotals are the programmable-decoder aggregates (B-Cache runs only).
type PDTotals struct {
	HitPD             uint64  `json:"hitPD"`
	MissPDHit         uint64  `json:"missPDHit"`
	MissPDMiss        uint64  `json:"missPDMiss"`
	Programmed        uint64  `json:"programmed"`
	HitRateDuringMiss float64 `json:"hitRateDuringMiss"`
}

// Balance is the §6.4 set-usage classification (stats.Analyze) with a
// stable JSON shape.
type Balance struct {
	FreqHitSets        float64 `json:"freqHitSets"`
	HitsInFreqSets     float64 `json:"hitsInFreqSets"`
	FreqMissSets       float64 `json:"freqMissSets"`
	MissesInFreqSets   float64 `json:"missesInFreqSets"`
	LessAccessedSets   float64 `json:"lessAccessedSets"`
	AccessesInLessSets float64 `json:"accessesInLessSets"`
}

// Throughput reports simulator speed (an engineering metric: how fast
// the model runs, not how fast the modelled hardware would).
type Throughput struct {
	WallSeconds           float64 `json:"wallSeconds"`
	AccessesPerSecond     float64 `json:"accessesPerSecond"`
	InstructionsPerSecond float64 `json:"instructionsPerSecond,omitempty"`
}

// Series is one named time-series over the run's access axis.
type Series struct {
	// Name identifies the quantity: "miss_rate", "pd_miss_rate",
	// "reprograms_per_kaccess", "evictions_per_kaccess".
	Name string `json:"name"`
	// Unit is "ratio" or "per_kaccess".
	Unit   string  `json:"unit"`
	Points []Point `json:"points"`
}

// Point is one sample of a series: the value over the interval ending at
// access EndAccess.
type Point struct {
	EndAccess uint64  `json:"endAccess"`
	Value     float64 `json:"value"`
}

// Heatmap is the per-set occupancy time-series: Rows[i][b] counts the
// accesses served by frame bucket b during the interval ending at
// Ends[i]. Buckets cover contiguous equal ranges of physical frames.
type Heatmap struct {
	Buckets int        `json:"buckets"`
	Ends    []uint64   `json:"ends"`
	Rows    [][]uint64 `json:"rows"`
}

// NewReport snapshots c into a report: configuration, totals, PD stats
// when c is a B-Cache, and the set-balance classification when the run
// produced one.
func NewReport(c cache.Cache) *Report {
	g := c.Geometry()
	st := c.Stats()
	r := &Report{
		SchemaVersion: SchemaVersion,
		Config: RunConfig{
			Cache:     c.Name(),
			SizeBytes: g.SizeBytes,
			LineBytes: g.LineBytes,
			Ways:      g.Ways,
			Sets:      g.Sets,
			Frames:    g.Frames,
		},
		Totals: Totals{
			Accesses:   st.Accesses,
			Hits:       st.Hits,
			Misses:     st.Misses,
			Reads:      st.Reads,
			Writes:     st.Writes,
			Evictions:  st.Evictions,
			Writebacks: st.Writebacks,
			MissRate:   st.MissRate(),
		},
	}
	if bc, ok := c.(*core.BCache); ok {
		pd := bc.PDStats()
		r.PD = &PDTotals{
			HitPD:             pd.HitPD,
			MissPDHit:         pd.MissPDHit,
			MissPDMiss:        pd.MissPDMiss,
			Programmed:        pd.Programmed,
			HitRateDuringMiss: pd.HitRateDuringMiss(),
		}
	}
	if vc, ok := c.(*victim.Cache); ok {
		r.Totals.BufferHits = vc.BufferHits
	}
	if b, err := stats.Analyze(st); err == nil {
		r.Balance = &Balance{
			FreqHitSets:        b.FreqHitSets,
			HitsInFreqSets:     b.HitsInFreqSets,
			FreqMissSets:       b.FreqMissSets,
			MissesInFreqSets:   b.MissesInFreqSets,
			LessAccessedSets:   b.LessAccessedSets,
			AccessesInLessSets: b.AccessesInLessSets,
		}
	}
	return r
}

// AttachSampler flushes s and folds its time-series into the report:
// always miss_rate and evictions_per_kaccess, plus pd_miss_rate and
// reprograms_per_kaccess when the run emitted PD events, plus the
// occupancy heatmap when enabled.
func (r *Report) AttachSampler(s *IntervalSampler) {
	s.Flush()
	samples := s.Samples()
	r.Samples = samples
	r.Config.Interval = s.Interval()

	missRate := Series{Name: "miss_rate", Unit: "ratio", Points: make([]Point, 0, len(samples))}
	evict := Series{Name: "evictions_per_kaccess", Unit: "per_kaccess", Points: make([]Point, 0, len(samples))}
	pdMiss := Series{Name: "pd_miss_rate", Unit: "ratio", Points: make([]Point, 0, len(samples))}
	reprog := Series{Name: "reprograms_per_kaccess", Unit: "per_kaccess", Points: make([]Point, 0, len(samples))}
	var pdSeen bool
	for _, smp := range samples {
		missRate.Points = append(missRate.Points, Point{smp.EndAccess, smp.MissRate()})
		ev := 0.0
		if smp.Accesses > 0 {
			ev = 1000 * float64(smp.Evictions) / float64(smp.Accesses)
		}
		evict.Points = append(evict.Points, Point{smp.EndAccess, ev})
		pdMiss.Points = append(pdMiss.Points, Point{smp.EndAccess, smp.PDMissRate()})
		reprog.Points = append(reprog.Points, Point{smp.EndAccess, smp.ReprogramsPerKiloAccess()})
		if smp.PDHits+smp.PDMisses > 0 {
			pdSeen = true
		}
	}
	r.Series = []Series{missRate, evict}
	if pdSeen {
		r.Series = append(r.Series, pdMiss, reprog)
	}

	if heat := s.Heat(); heat != nil && len(samples) > 0 {
		ends := make([]uint64, len(samples))
		for i, smp := range samples {
			ends[i] = smp.EndAccess
		}
		r.Heatmap = &Heatmap{Buckets: s.HeatBuckets(), Ends: ends, Rows: heat}
	}
}

// SetThroughput records simulator speed over the wall-clock duration of
// the run. instructions may be 0 for access-driven runs.
func (r *Report) SetThroughput(wall time.Duration, instructions uint64) {
	sec := wall.Seconds()
	t := &Throughput{WallSeconds: sec}
	if sec > 0 {
		t.AccessesPerSecond = float64(r.Totals.Accesses) / sec
		t.InstructionsPerSecond = float64(instructions) / sec
	}
	r.Config.Instructions = instructions
	r.Throughput = t
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (0644, truncating).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing report %s: %w", path, err)
	}
	return f.Close()
}

// Load parses and validates a report, rejecting schema mismatches so
// diff tooling never silently compares incompatible layouts.
func Load(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: parsing report: %w", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("obs: report schema v%d, this build reads v%d", r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// LoadFile reads a report from path.
func LoadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
