package obs

import (
	"testing"

	"bcache/internal/addr"
	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/hier"
	"bcache/internal/victim"
)

// stride produces addresses that conflict in a 16 kB direct-mapped cache
// (same index, different tags) to force evictions and PD churn.
func conflictAddrs(n int) []addr.Addr {
	out := make([]addr.Addr, n)
	for i := range out {
		out[i] = addr.Addr(i%7) * 16384 // 7 tags rotating through one set region
	}
	return out
}

func TestCountersMatchStats(t *testing.T) {
	c, err := cache.NewDirectMapped(16*1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	var p Counters
	if !cache.AttachProbe(c, &p) {
		t.Fatal("SetAssoc does not accept probes")
	}
	for i, a := range conflictAddrs(10000) {
		c.Access(a, i%3 == 0)
	}
	st := c.Stats()
	if p.Accesses != st.Accesses || p.Hits != st.Hits || p.Misses != st.Misses {
		t.Fatalf("probe %+v disagrees with stats %+v", p, st)
	}
	if p.Writes != st.Writes {
		t.Fatalf("probe writes %d != stats writes %d", p.Writes, st.Writes)
	}
	if p.Evictions != st.Evictions || p.DirtyEvictions != st.Writebacks {
		t.Fatalf("probe evictions %d/%d != stats %d/%d",
			p.Evictions, p.DirtyEvictions, st.Evictions, st.Writebacks)
	}
	if p.MissRate() != st.MissRate() {
		t.Fatalf("miss rate %v != %v", p.MissRate(), st.MissRate())
	}
}

func TestCountersPDEventsOnBCache(t *testing.T) {
	bc, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	var p Counters
	bc.SetProbe(&p)
	for _, a := range conflictAddrs(10000) {
		bc.Access(a, false)
	}
	pd := bc.PDStats()
	// ObservePD fires only on misses: PDHits counts forced-victim misses.
	if p.PDHits != pd.MissPDHit {
		t.Fatalf("probe PD hits-during-miss %d, stats say %d", p.PDHits, pd.MissPDHit)
	}
	if p.PDMisses != pd.MissPDMiss {
		t.Fatalf("probe PD misses %d, stats say %d", p.PDMisses, pd.MissPDMiss)
	}
	if p.Reprograms != pd.Programmed {
		t.Fatalf("probe reprograms %d, stats say %d", p.Reprograms, pd.Programmed)
	}
	if p.Reprograms == 0 {
		t.Fatal("conflict stream produced no reprogramming events")
	}
}

func TestCountersOnVictimCache(t *testing.T) {
	vc, err := victim.New(16*1024, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	var p Counters
	if !cache.AttachProbe(vc, &p) {
		t.Fatal("victim cache does not accept probes")
	}
	for _, a := range conflictAddrs(5000) {
		vc.Access(a, true)
	}
	st := vc.Stats()
	if p.Accesses != st.Accesses || p.Hits != st.Hits || p.Misses != st.Misses {
		t.Fatalf("probe %+v disagrees with stats %+v", p, st)
	}
	if p.Evictions != st.Evictions {
		t.Fatalf("probe evictions %d != stats %d", p.Evictions, st.Evictions)
	}
}

func TestHierarchyWritebackEvents(t *testing.T) {
	ic, _ := cache.NewDirectMapped(16*1024, 32)
	dc, _ := cache.NewDirectMapped(16*1024, 32)
	h, err := hier.New(ic, dc, hier.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var p Counters
	h.SetProbe(&p)
	// Dirty a line, then conflict it out: one writeback must be observed.
	for _, a := range conflictAddrs(5000) {
		h.Data(a, true)
	}
	if p.Writebacks == 0 {
		t.Fatal("no writeback events observed")
	}
	if p.Writebacks != h.L1Writebacks {
		t.Fatalf("probe writebacks %d != hierarchy %d", p.Writebacks, h.L1Writebacks)
	}
}

func TestMultiFanOutAndNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	var a Counters
	if Multi(nil, &a) != cache.Probe(&a) {
		t.Fatal("Multi with one live probe should return it directly")
	}
	var b Counters
	m := Multi(&a, &b)
	m.ObserveAccess(0, true, false)
	m.ObservePD(false)
	m.ObserveReprogram()
	m.ObserveEvict(true)
	m.ObserveWriteback()
	for i, p := range []*Counters{&a, &b} {
		if p.Accesses != 1 || p.Hits != 1 || p.PDMisses != 1 || p.Reprograms != 1 ||
			p.Evictions != 1 || p.DirtyEvictions != 1 || p.Writebacks != 1 {
			t.Fatalf("probe %d missed events: %+v", i, *p)
		}
	}
}

func TestNopImplementsProbe(t *testing.T) {
	var p cache.Probe = Nop{}
	p.ObserveAccess(0, false, false)
	p.ObservePD(true)
	p.ObserveReprogram()
	p.ObserveEvict(false)
	p.ObserveWriteback()
}

func TestAttachProbeDetach(t *testing.T) {
	c, _ := cache.NewDirectMapped(1024, 32)
	var p Counters
	cache.AttachProbe(c, &p)
	c.Access(0, false)
	cache.AttachProbe(c, nil)
	c.Access(0, false)
	if p.Accesses != 1 {
		t.Fatalf("probe saw %d accesses after detach, want 1", p.Accesses)
	}
}
