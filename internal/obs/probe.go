// Package obs is the simulator's observability layer: implementations of
// the cache.Probe event interface plus the schema-versioned JSON run
// report the CLIs emit.
//
// The paper's claims are dynamic — PD misses reprogram decoder entries on
// the fly (§3.3) and traffic rebalances across sets over a run (§6.4) —
// so run-end aggregate counters cannot show them. This package turns the
// per-event stream into evidence:
//
//   - Counters: run-total event counts, the cheapest possible probe.
//   - IntervalSampler: fixed-memory time-series (miss rate, PD miss rate,
//     reprograms per kilo-access, per-set occupancy heat) snapshotted
//     every N accesses, with adaptive compaction so arbitrarily long runs
//     fit a bounded sample buffer.
//   - Multi: fan-out to several probes.
//   - Report: a versioned, diffable JSON document combining configuration,
//     totals, set-balance classification, throughput, and the sampler's
//     series.
//
// All probes are zero-allocation per observed event (enforced by
// alloc_test.go) and nil-safe at the emission sites, so an unattached
// simulator pays only a nil check per access.
package obs

import "bcache/internal/cache"

// Nop is a cache.Probe that ignores every event. Embed it to implement
// only the events a custom probe cares about.
type Nop struct{}

var _ cache.Probe = Nop{}

// ObserveAccess implements cache.Probe.
func (Nop) ObserveAccess(frame int, hit, write bool) {}

// ObservePD implements cache.Probe.
func (Nop) ObservePD(hit bool) {}

// ObserveReprogram implements cache.Probe.
func (Nop) ObserveReprogram() {}

// ObserveEvict implements cache.Probe.
func (Nop) ObserveEvict(dirty bool) {}

// ObserveWriteback implements cache.Probe.
func (Nop) ObserveWriteback() {}

// ObserveFault implements cache.Probe.
func (Nop) ObserveFault(d cache.FaultDomain, c cache.FaultClass) {}

// ObserveScrub implements cache.Probe.
func (Nop) ObserveScrub(repaired int, degraded bool) {}

// multi fans every event out to each attached probe, in order.
type multi []cache.Probe

var _ cache.Probe = multi(nil)

// Multi combines probes into one. Nil entries are dropped; with zero or
// one live probe the result is nil or that probe itself, so emission
// sites never pay fan-out overhead they don't need.
func Multi(probes ...cache.Probe) cache.Probe {
	live := make(multi, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multi) ObserveAccess(frame int, hit, write bool) {
	for _, p := range m {
		p.ObserveAccess(frame, hit, write) //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}

func (m multi) ObservePD(hit bool) {
	for _, p := range m {
		p.ObservePD(hit) //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}

func (m multi) ObserveReprogram() {
	for _, p := range m {
		p.ObserveReprogram() //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}

func (m multi) ObserveEvict(dirty bool) {
	for _, p := range m {
		p.ObserveEvict(dirty) //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}

func (m multi) ObserveWriteback() {
	for _, p := range m {
		p.ObserveWriteback() //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}

func (m multi) ObserveFault(d cache.FaultDomain, c cache.FaultClass) {
	for _, p := range m {
		p.ObserveFault(d, c) //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}

func (m multi) ObserveScrub(repaired int, degraded bool) {
	for _, p := range m {
		p.ObserveScrub(repaired, degraded) //bcachelint:allow probesafe(Multi drops nil probes at construction)
	}
}
