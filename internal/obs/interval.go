package obs

import "bcache/internal/cache"

const (
	// maxSamples bounds the sample buffer. When a run outgrows it the
	// sampler compacts: adjacent samples merge pairwise and the interval
	// doubles, so memory stays fixed while the whole run remains covered
	// at a coarser resolution (compaction preserves every counter total).
	maxSamples = 256
	// maxHeatBuckets bounds the per-set occupancy resolution: caches with
	// more frames are downsampled into contiguous equal-size bucket
	// ranges.
	maxHeatBuckets = 64
)

// Sample is one closed observation interval. Counter fields are deltas
// within the interval; EndAccess locates it on the run's access axis.
type Sample struct {
	// EndAccess is the cumulative access count when the interval closed;
	// the interval covers accesses (EndAccess-Accesses, EndAccess].
	EndAccess uint64 `json:"endAccess"`

	Accesses uint64 `json:"accesses"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Writes   uint64 `json:"writes"`
	// PDHits/PDMisses classify the interval's cache misses by decoder
	// outcome (see cache.Probe.ObservePD).
	PDHits         uint64 `json:"pdHits"`
	PDMisses       uint64 `json:"pdMisses"`
	Reprograms     uint64 `json:"reprograms"`
	Evictions      uint64 `json:"evictions"`
	DirtyEvictions uint64 `json:"dirtyEvictions"`
	Writebacks     uint64 `json:"writebacks"`
	// Faults counts injected soft errors of any classification in the
	// interval; ScrubRepairs counts PD entries the scrubber repaired.
	Faults       uint64 `json:"faults,omitempty"`
	ScrubRepairs uint64 `json:"scrubRepairs,omitempty"`
}

// MissRate returns the interval's miss rate, 0 if it saw no accesses.
func (s Sample) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// PDMissRate returns the fraction of the interval's cache misses whose
// PD lookup also missed (the predetermined misses of §2.3) — the
// complement of the paper's Table 6 "PD hit rate during miss". 0 without
// PD events.
func (s Sample) PDMissRate() float64 {
	n := s.PDHits + s.PDMisses
	if n == 0 {
		return 0
	}
	return float64(s.PDMisses) / float64(n)
}

// ReprogramsPerKiloAccess returns decoder reprogrammings normalized to
// 1000 accesses — the paper-style churn metric for §3.3's on-the-fly
// reprogramming.
func (s Sample) ReprogramsPerKiloAccess() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1000 * float64(s.Reprograms) / float64(s.Accesses)
}

// IntervalSampler is a probe that closes a Sample every interval
// accesses, producing the time-series and per-set occupancy heat rows a
// run report plots. All memory is allocated at construction; observing
// an event never allocates, and a full buffer compacts in place.
type IntervalSampler struct {
	every     uint64 // current interval length (doubles on compaction)
	total     uint64 // accesses observed so far
	nextClose uint64 // total at which the open interval closes

	cur     Sample
	samples []Sample // len grows to maxSamples, backing array fixed

	// Heat rows: row i is heatBuf[i*buckets:(i+1)*buckets] and pairs with
	// samples[i]; curHeat is the open interval's row. Frames map to
	// buckets by frame>>bucketShift (frames per bucket is rounded up to a
	// power of two so the hot path shifts instead of dividing).
	buckets     int
	bucketShift uint
	curHeat     []uint64
	heatBuf     []uint64
}

var _ cache.Probe = (*IntervalSampler)(nil)

// NewIntervalSampler builds a sampler closing a sample every `every`
// accesses over a cache with `frames` line frames (frames ≤ 0 disables
// the occupancy heatmap). every ≤ 0 defaults to 8192.
func NewIntervalSampler(every uint64, frames int) *IntervalSampler {
	if every == 0 {
		every = 8192
	}
	s := &IntervalSampler{
		every:     every,
		nextClose: every,
		samples:   make([]Sample, 0, maxSamples),
	}
	if frames > 0 {
		// Frames per bucket, rounded up to a power of two.
		fpb := 1
		for frames/fpb > maxHeatBuckets {
			fpb *= 2
		}
		s.buckets = (frames + fpb - 1) / fpb
		for 1<<s.bucketShift < fpb {
			s.bucketShift++
		}
		s.curHeat = make([]uint64, s.buckets)
		s.heatBuf = make([]uint64, maxSamples*s.buckets)
	}
	return s
}

// Interval returns the current interval length in accesses (it doubles
// every time the sample buffer compacts).
func (s *IntervalSampler) Interval() uint64 { return s.every }

// Total returns the number of accesses observed so far.
func (s *IntervalSampler) Total() uint64 { return s.total }

// ObserveAccess implements cache.Probe.
func (s *IntervalSampler) ObserveAccess(frame int, hit, write bool) {
	s.cur.Accesses++
	if hit {
		s.cur.Hits++
	} else {
		s.cur.Misses++
	}
	if write {
		s.cur.Writes++
	}
	if s.curHeat != nil {
		b := frame >> s.bucketShift
		if uint(b) >= uint(len(s.curHeat)) {
			b = len(s.curHeat) - 1
		}
		s.curHeat[b]++
	}
	s.total++
	if s.total >= s.nextClose {
		s.close()
	}
}

// ObservePD implements cache.Probe.
func (s *IntervalSampler) ObservePD(hit bool) {
	if hit {
		s.cur.PDHits++
	} else {
		s.cur.PDMisses++
	}
}

// ObserveReprogram implements cache.Probe.
func (s *IntervalSampler) ObserveReprogram() { s.cur.Reprograms++ }

// ObserveEvict implements cache.Probe.
func (s *IntervalSampler) ObserveEvict(dirty bool) {
	s.cur.Evictions++
	if dirty {
		s.cur.DirtyEvictions++
	}
}

// ObserveWriteback implements cache.Probe.
func (s *IntervalSampler) ObserveWriteback() { s.cur.Writebacks++ }

// ObserveFault implements cache.Probe.
func (s *IntervalSampler) ObserveFault(d cache.FaultDomain, c cache.FaultClass) {
	s.cur.Faults++
}

// ObserveScrub implements cache.Probe.
func (s *IntervalSampler) ObserveScrub(repaired int, degraded bool) {
	s.cur.ScrubRepairs += uint64(repaired)
}

// Flush closes the open interval if it observed anything. Call once at
// end of run so the tail shorter than one interval is not dropped.
func (s *IntervalSampler) Flush() {
	if s.cur != (Sample{}) {
		s.close()
	}
}

// close seals the open interval into the sample buffer.
func (s *IntervalSampler) close() {
	if len(s.samples) == maxSamples {
		s.compact()
	}
	s.cur.EndAccess = s.total
	i := len(s.samples)
	s.samples = append(s.samples, s.cur)
	s.cur = Sample{}
	if s.curHeat != nil {
		copy(s.heatBuf[i*s.buckets:(i+1)*s.buckets], s.curHeat)
		clear(s.curHeat)
	}
	s.nextClose = s.total + s.every
}

// compact merges samples pairwise in place and doubles the interval.
func (s *IntervalSampler) compact() {
	half := len(s.samples) / 2
	for i := 0; i < half; i++ {
		a, b := s.samples[2*i], s.samples[2*i+1]
		s.samples[i] = Sample{
			EndAccess:      b.EndAccess,
			Accesses:       a.Accesses + b.Accesses,
			Hits:           a.Hits + b.Hits,
			Misses:         a.Misses + b.Misses,
			Writes:         a.Writes + b.Writes,
			PDHits:         a.PDHits + b.PDHits,
			PDMisses:       a.PDMisses + b.PDMisses,
			Reprograms:     a.Reprograms + b.Reprograms,
			Evictions:      a.Evictions + b.Evictions,
			DirtyEvictions: a.DirtyEvictions + b.DirtyEvictions,
			Writebacks:     a.Writebacks + b.Writebacks,
			Faults:         a.Faults + b.Faults,
			ScrubRepairs:   a.ScrubRepairs + b.ScrubRepairs,
		}
		if s.curHeat != nil {
			dst := s.heatBuf[i*s.buckets : (i+1)*s.buckets]
			ra := s.heatBuf[(2*i)*s.buckets : (2*i+1)*s.buckets]
			rb := s.heatBuf[(2*i+1)*s.buckets : (2*i+2)*s.buckets]
			for j := range dst {
				dst[j] = ra[j] + rb[j]
			}
		}
	}
	s.samples = s.samples[:half]
	s.every *= 2
}

// Samples returns a copy of the closed samples in run order.
func (s *IntervalSampler) Samples() []Sample {
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// HeatBuckets returns the occupancy resolution (0 if disabled).
func (s *IntervalSampler) HeatBuckets() int {
	if s.curHeat == nil {
		return 0
	}
	return s.buckets
}

// Heat returns per-sample occupancy rows: Heat()[i][b] is the number of
// interval-i accesses served by frames in bucket b (each bucket covers
// 2^bucketShift consecutive frames). Nil if the heatmap is disabled.
func (s *IntervalSampler) Heat() [][]uint64 {
	if s.curHeat == nil {
		return nil
	}
	out := make([][]uint64, len(s.samples))
	for i := range out {
		row := make([]uint64, s.buckets)
		copy(row, s.heatBuf[i*s.buckets:(i+1)*s.buckets])
		out[i] = row
	}
	return out
}
