package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"bcache/internal/cache"
	"bcache/internal/core"
	"bcache/internal/victim"
)

// runReport simulates a PD-churn workload on a B-Cache with a sampler
// attached and builds the full report.
func runReport(t *testing.T, n int) *Report {
	t.Helper()
	bc, err := core.New(core.Config{SizeBytes: 16 * 1024, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	s := NewIntervalSampler(1000, bc.Geometry().Frames)
	bc.SetProbe(s)
	for i := 0; i < n; i++ {
		bc.Access(addrAt(i), i%5 == 0)
	}
	r := NewReport(bc)
	r.AttachSampler(s)
	r.SetThroughput(125*time.Millisecond, uint64(n)*3)
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := runReport(t, 30000)
	if r.SchemaVersion != SchemaVersion {
		t.Fatalf("schema %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if r.PD == nil || r.PD.Programmed == 0 {
		t.Fatal("B-Cache report missing PD totals")
	}
	if r.Balance == nil {
		t.Fatal("report missing balance classification")
	}
	if len(r.Series) < 2 {
		t.Fatalf("report has %d series, want >= 2", len(r.Series))
	}
	names := map[string]bool{}
	for _, s := range r.Series {
		names[s.Name] = true
		if len(s.Points) < 10 {
			t.Fatalf("series %s has %d points, want >= 10", s.Name, len(s.Points))
		}
	}
	for _, want := range []string{"miss_rate", "pd_miss_rate", "reprograms_per_kaccess", "evictions_per_kaccess"} {
		if !names[want] {
			t.Fatalf("missing series %q (have %v)", want, names)
		}
	}
	if r.Heatmap == nil || r.Heatmap.Buckets == 0 || len(r.Heatmap.Rows) != len(r.Samples) {
		t.Fatalf("bad heatmap: %+v", r.Heatmap)
	}
	if r.Throughput == nil || r.Throughput.AccessesPerSecond <= 0 || r.Throughput.InstructionsPerSecond <= 0 {
		t.Fatalf("bad throughput: %+v", r.Throughput)
	}

	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Totals != r.Totals || *back.PD != *r.PD || len(back.Series) != len(r.Series) {
		t.Fatal("report did not survive the round trip")
	}
}

func TestReportSchemaVersionRejected(t *testing.T) {
	r := runReport(t, 5000)
	r.SchemaVersion = SchemaVersion + 1
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("future schema version accepted")
	}
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestReportStableFieldNames(t *testing.T) {
	r := runReport(t, 5000)
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	// The schema contract: these top-level keys are what jq queries and
	// diff tooling key on. Renaming any of them is a schema bump.
	for _, key := range []string{"schemaVersion", "config", "totals", "pd", "balance", "throughput", "series", "samples", "heatmap"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("marshalled report lost key %q", key)
		}
	}
	cfg := m["config"].(map[string]any)
	if cfg["cache"] == "" || cfg["frames"] == nil || cfg["interval"] == nil {
		t.Fatalf("config keys missing: %v", cfg)
	}
}

func TestReportOnPlainCacheHasNoPD(t *testing.T) {
	c, err := cache.NewDirectMapped(16*1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := NewIntervalSampler(100, c.Geometry().Frames)
	cache.AttachProbe(c, s)
	for i := 0; i < 5000; i++ {
		c.Access(addrAt(i), false)
	}
	r := NewReport(c)
	r.AttachSampler(s)
	if r.PD != nil {
		t.Fatal("direct-mapped report grew PD totals")
	}
	if len(r.Series) != 2 {
		t.Fatalf("direct-mapped report has %d series, want exactly 2 (no PD series)", len(r.Series))
	}
}

func TestReportVictimBufferHits(t *testing.T) {
	vc, err := victim.New(16*1024, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		vc.Access(addrAt(i), false)
	}
	r := NewReport(vc)
	if r.Totals.BufferHits != vc.BufferHits {
		t.Fatalf("report bufferHits %d != cache %d", r.Totals.BufferHits, vc.BufferHits)
	}
}

func TestReportEmptyRun(t *testing.T) {
	c, err := cache.NewDirectMapped(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReport(c) // never accessed: no balance, zero totals, no panic
	if r.Balance != nil {
		t.Fatal("idle run produced a balance block")
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}
}
