package energy

import (
	"math"
	"testing"

	"bcache/internal/cache"
	"bcache/internal/core"
)

func paperCfg() core.Config {
	return core.Config{SizeBytes: 16384, LineBytes: 32, MF: 8, BAS: 8, Policy: cache.LRU}
}

func TestAnchorsHold(t *testing.T) {
	p := Defaults()
	// §5.4: B-Cache per access = +10.5% over baseline.
	ratio := p.PerAccess(BCache) / p.PerAccess(DirectMapped)
	if math.Abs(ratio-1.105) > 1e-9 {
		t.Fatalf("B-Cache factor = %v, want 1.105", ratio)
	}
	// §5.4: B-Cache 17.4%, 44.4%, 65.5% lower than 2/4/8-way.
	for _, tt := range []struct {
		kind Kind
		low  float64
	}{{Way2, 0.174}, {Way4, 0.444}, {Way8, 0.655}} {
		got := 1 - p.PerAccess(BCache)/p.PerAccess(tt.kind)
		if math.Abs(got-tt.low) > 0.001 {
			t.Errorf("B-Cache vs %v: %.4f lower, want %.3f", tt.kind, got, tt.low)
		}
	}
	// §1: a direct-mapped cache consumes ~68.8% less than 8-way at 16kB.
	dmVs8 := 1 - p.PerAccess(DirectMapped)/p.PerAccess(Way8)
	if math.Abs(dmVs8-0.688) > 0.02 {
		t.Errorf("DM vs 8-way: %.4f lower, want ≈0.688", dmVs8)
	}
	// §6.2: off-chip access = 100× baseline.
	if p.OffChipPJ != 100*p.L1BaselinePJ {
		t.Error("off-chip anchor broken")
	}
}

func TestOrdering(t *testing.T) {
	p := Defaults()
	prev := 0.0
	for _, k := range []Kind{DirectMapped, BCache, Way2, Way4, Way8, Way32} {
		e := p.PerAccess(k)
		if e <= prev {
			t.Fatalf("per-access energy not increasing at %v: %v <= %v", k, e, prev)
		}
		prev = e
	}
}

func TestDynamicComposition(t *testing.T) {
	p := Defaults()
	c := Counts{L1Accesses: 1000, L1Misses: 100, L2Accesses: 100, L2Misses: 10}
	e := p.Dynamic(DirectMapped, c)
	want := 1000*p.L1BaselinePJ + 100*p.L2AccessPJ + 100*p.RefillPJ + 10*p.OffChipPJ
	if math.Abs(e-want) > 1e-6 {
		t.Fatalf("dynamic = %v, want %v", e, want)
	}
}

func TestPDPredictionSavesEnergy(t *testing.T) {
	p := Defaults()
	base := Counts{L1Accesses: 1000, L1Misses: 200, L2Accesses: 200}
	withPD := base
	withPD.PDPredictedMisses = 160 // ~80% of misses predicted (§6.2)
	if p.Dynamic(BCache, withPD) >= p.Dynamic(BCache, base) {
		t.Fatal("PD miss prediction did not reduce energy")
	}
}

func TestStaticShare(t *testing.T) {
	p := Defaults()
	// At the baseline, static must equal dynamic (k_static = 50%).
	dyn := 1e6
	spc := p.StaticPerCycle(dyn, 2000)
	b := p.Total(DirectMapped, Counts{Cycles: 2000}, spc)
	if math.Abs(b.Static-dyn) > 1e-6 {
		t.Fatalf("baseline static = %v, want %v (50%% of total)", b.Static, dyn)
	}
	// Fewer cycles → less static energy.
	faster := p.Total(DirectMapped, Counts{Cycles: 1000}, spc)
	if faster.Static >= b.Static {
		t.Fatal("shorter run did not save static energy")
	}
}

func TestTable3(t *testing.T) {
	p := Defaults()
	base, bc, err := p.Table3(paperCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The baseline breakdown must sum to the baseline per-access energy.
	if math.Abs(base.Total()-p.L1BaselinePJ) > 1e-9 {
		t.Fatalf("baseline breakdown sums to %v, want %v", base.Total(), p.L1BaselinePJ)
	}
	// The B-Cache total must land on the +10.5% anchor (within 1%).
	ratio := bc.Total() / base.Total()
	if math.Abs(ratio-1.105) > 0.011 {
		t.Fatalf("Table 3 B-Cache/baseline = %.4f, want ≈1.105", ratio)
	}
	// Tag-side components shrink (3 fewer bits); decoders grow (CAM).
	if bc.TSA >= base.TSA || bc.TBLWL >= base.TBLWL {
		t.Error("tag-side components did not shrink")
	}
	if bc.TDec <= base.TDec || bc.DDec <= base.DDec {
		t.Error("decoder components did not grow")
	}
}

func TestTable3BadConfig(t *testing.T) {
	p := Defaults()
	if _, _, err := p.Table3(core.Config{SizeBytes: 100, LineBytes: 32, MF: 8, BAS: 8}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{DirectMapped, Way2, Way4, Way8, Way32, BCache, VictimDM, HAC} {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
}

func TestVictimProbeCharged(t *testing.T) {
	p := Defaults()
	base := Counts{L1Accesses: 1000}
	probed := base
	probed.VictimProbes = 500
	if p.Dynamic(VictimDM, probed) <= p.Dynamic(VictimDM, base) {
		t.Fatal("victim probes not charged")
	}
}

func TestDrowsyStaticFactor(t *testing.T) {
	if got := DrowsyStaticFactor(0); got != 1 {
		t.Fatalf("factor(0) = %v", got)
	}
	if got := DrowsyStaticFactor(1); got != 1-DrowsyLeakageSave {
		t.Fatalf("factor(1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fraction accepted")
		}
	}()
	DrowsyStaticFactor(1.5)
}
