// Package energy models per-access and whole-run memory energy,
// regenerating the paper's Table 3 and Figure 9 analyses.
//
// The paper measured energy with HSPICE and Cacti 3.2 at 0.18 µm; the
// numeric cells of Table 3 did not survive text extraction, but the prose
// quotes every anchor the analysis depends on, and this model is built
// from exactly those anchors:
//
//   - a 6×8 CAM decoder consumes 0.78 pJ and a 6×16 CAM 1.62 pJ per
//     search (§5.4), and one subarray's eight PDs fire per access on each
//     of the tag and data sides;
//   - the B-Cache consumes 10.5% more power per access than the baseline
//     (§5.4) — the baseline absolute energy is *derived* from this anchor
//     and the CAM numbers;
//   - the B-Cache is 17.4%, 44.4% and 65.5% lower than same-sized 2-,
//     4- and 8-way caches (§5.4), fixing the set-associative multipliers;
//   - off-chip access costs 100× a baseline L1 access and static energy
//     is k_static = 50% of baseline total energy (§6.2).
//
// Whole-run energy follows Figure 10:
//
//	E_mem    = E_dyn + E_static
//	E_dyn    = cache_access·E_cache_access + cache_miss·E_misses
//	E_misses = E_next_level_mem + E_cache_block_refill
//	E_static = cycles · E_static_per_cycle
package energy

import (
	"fmt"

	"bcache/internal/core"
)

// CAM search energies from §5.4 (pJ per search).
const (
	CAM6x8PJ  = 0.78
	CAM6x16PJ = 1.62
)

// Params holds the model constants. Use Defaults().
type Params struct {
	// L1BaselinePJ is the per-access energy of the 16 kB direct-mapped
	// baseline. Derived from the paper's anchors; see Defaults.
	L1BaselinePJ float64

	// Per-access multipliers relative to the baseline, fixed by §5.4:
	// B-Cache +10.5%; 2/4/8-way from "17.4%, 44.4%, 65.5% lower".
	BCacheFactor float64
	Way2Factor   float64
	Way4Factor   float64
	Way8Factor   float64
	Way32Factor  float64

	// VictimProbePJ is the extra energy of probing the 16-entry victim
	// buffer (full-tag CAM search plus a possible swap), charged on main
	// cache misses.
	VictimProbePJ float64

	// L2AccessPJ and RefillPJ price one unified-L2 access and one L1
	// block refill.
	L2AccessPJ float64
	RefillPJ   float64

	// OffChipPJ is one main-memory access: 100× the baseline L1 access
	// (§6.2).
	OffChipPJ float64

	// KStatic is the static share of baseline total energy (§6.2: 50%).
	KStatic float64

	// PDMissSaveFrac is the fraction of a B-Cache access saved when the
	// PD predicts the miss so neither tag nor data arrays are read
	// (§2.3, §6.2); the decoder itself still fires.
	PDMissSaveFrac float64
}

// Defaults returns the calibrated parameter set.
func Defaults() Params {
	// The B-Cache adds one subarray's PD searches per access on each
	// side: 8 × 0.78 pJ (tag) + 8 × 1.62 pJ (data).
	camAdd := 8*CAM6x8PJ + 8*CAM6x16PJ
	// It also removes 3 of 18 tag bits, shrinking the tag bitline/sense
	// energy (tagFrac of a baseline access) proportionally, and replaces
	// 3-input NAND decode gates with 2-input ones, saving decSaved of the
	// conventional decoder energy (decFrac of an access). The same
	// fractions drive Table3, keeping both views consistent.
	const (
		tagFrac, tagSaved = 0.20, 3.0 / 18.0
		decFrac, decSaved = 0.12, 0.20
	)
	// Solve (camAdd − base·(tag+dec savings)) / base = 0.105 for base.
	base := camAdd / (0.105 + tagFrac*tagSaved + decFrac*decSaved)
	return Params{
		L1BaselinePJ:   base,
		BCacheFactor:   1.105,
		Way2Factor:     1 / (1 - 0.174) * 1.105, // B-Cache is 17.4% lower than 2-way
		Way4Factor:     1 / (1 - 0.444) * 1.105,
		Way8Factor:     1 / (1 - 0.655) * 1.105,
		Way32Factor:    5.6, // extrapolated beyond the paper's range
		VictimProbePJ:  0.12 * base,
		L2AccessPJ:     3.0 * base, // 256 kB 4-way: larger arrays, 4 ways
		RefillPJ:       1.2 * base, // writing a 32 B line into the L1
		OffChipPJ:      100 * base,
		KStatic:        0.5,
		PDMissSaveFrac: 0.80,
	}
}

// Kind names an L1 configuration for per-access pricing.
type Kind int

// L1 configurations the experiments compare.
const (
	DirectMapped Kind = iota
	Way2
	Way4
	Way8
	Way32
	BCache
	VictimDM // direct-mapped + victim buffer (probe priced separately)
	HAC
)

func (k Kind) String() string {
	switch k {
	case DirectMapped:
		return "direct-mapped"
	case Way2:
		return "2-way"
	case Way4:
		return "4-way"
	case Way8:
		return "8-way"
	case Way32:
		return "32-way"
	case BCache:
		return "b-cache"
	case VictimDM:
		return "victim"
	case HAC:
		return "hac"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PerAccess returns the L1 per-access energy in pJ for kind.
func (p Params) PerAccess(kind Kind) float64 {
	switch kind {
	case DirectMapped, VictimDM:
		return p.L1BaselinePJ
	case Way2:
		return p.L1BaselinePJ * p.Way2Factor
	case Way4:
		return p.L1BaselinePJ * p.Way4Factor
	case Way8:
		return p.L1BaselinePJ * p.Way8Factor
	case Way32, HAC:
		return p.L1BaselinePJ * p.Way32Factor
	case BCache:
		return p.L1BaselinePJ * p.BCacheFactor
	default:
		panic(fmt.Sprintf("energy: unknown kind %d", int(kind)))
	}
}

// Counts are the traffic figures of one simulated run.
type Counts struct {
	L1Accesses uint64 // I$ + D$ accesses
	L1Misses   uint64 // I$ + D$ misses
	// PDPredictedMisses counts B-Cache misses the PD predicted (no
	// tag/data array read); zero for other configurations.
	PDPredictedMisses uint64
	// VictimProbes counts victim-buffer probes (main-cache misses);
	// zero for other configurations.
	VictimProbes uint64
	L2Accesses   uint64
	L2Misses     uint64
	Cycles       uint64
}

// Breakdown is a run's energy split (pJ).
type Breakdown struct {
	Dynamic float64
	Static  float64
}

// Total returns dynamic + static energy.
func (b Breakdown) Total() float64 { return b.Dynamic + b.Static }

// Dynamic computes the Figure 10 dynamic energy for a run of kind.
func (p Params) Dynamic(kind Kind, c Counts) float64 {
	e := float64(c.L1Accesses) * p.PerAccess(kind)
	// PD-predicted misses skipped the tag and data arrays.
	e -= float64(c.PDPredictedMisses) * p.PerAccess(kind) * p.PDMissSaveFrac
	e += float64(c.VictimProbes) * p.VictimProbePJ
	e += float64(c.L2Accesses) * p.L2AccessPJ
	e += float64(c.L1Misses) * p.RefillPJ
	e += float64(c.L2Misses) * p.OffChipPJ
	return e
}

// StaticPerCycle derives E_static_per_cycle from the *baseline* run so
// that static energy is KStatic of the baseline's total (§6.2). The same
// per-cycle figure is then charged to every configuration: a
// configuration that finishes sooner pays less static energy — the effect
// Figure 9 relies on.
func (p Params) StaticPerCycle(baselineDynamic float64, baselineCycles uint64) float64 {
	if baselineCycles == 0 {
		return 0
	}
	// static = KStatic/(1-KStatic) × dynamic at the baseline.
	return p.KStatic / (1 - p.KStatic) * baselineDynamic / float64(baselineCycles)
}

// Total computes the full Figure 10 energy for a run.
func (p Params) Total(kind Kind, c Counts, staticPerCycle float64) Breakdown {
	return Breakdown{
		Dynamic: p.Dynamic(kind, c),
		Static:  staticPerCycle * float64(c.Cycles),
	}
}

// AccessBreakdown is the Table 3 per-access component split (pJ).
// Component naming follows the paper: T=tag side, D=data side,
// SA=sense amplifiers, Dec=decoder, BL/WL=bit lines and word lines.
type AccessBreakdown struct {
	TSA, TDec, TBLWL float64
	DSA, DDec, DBLWL float64
	DOthers          float64
}

// Total sums the components.
func (a AccessBreakdown) Total() float64 {
	return a.TSA + a.TDec + a.TBLWL + a.DSA + a.DDec + a.DBLWL + a.DOthers
}

// Table3 returns the per-access component breakdown for the baseline and
// the B-Cache. Component fractions of the baseline follow the usual
// Cacti split (tag side ≈25%, data side ≈75%, sense amps and bitlines
// dominating); the B-Cache rows apply the §5 modifications: 3 fewer tag
// bits, CAM PDs added to both decoders, and the simplified NPD gates.
func (p Params) Table3(bcCfg core.Config) (baseline, bcache AccessBreakdown, err error) {
	bc, err := core.New(bcCfg)
	if err != nil {
		return baseline, bcache, err
	}
	b := p.L1BaselinePJ
	baseline = AccessBreakdown{
		TSA: 0.07 * b, TDec: 0.05 * b, TBLWL: 0.13 * b,
		DSA: 0.22 * b, DDec: 0.07 * b, DBLWL: 0.33 * b,
		DOthers: 0.13 * b,
	}
	// Tag side shrinks with the PD-borrowed bits (log2(MF) of them).
	g := bc.Geometry()
	nm := float64(log2i(bcCfg.MF))
	scale := (float64(g.TagBits()) - nm) / float64(g.TagBits())
	bcache = baseline
	bcache.TSA *= scale
	bcache.TBLWL *= scale
	// Decoders: NAND3→NAND2 simplification saves ~20% of decode energy;
	// the CAM PDs add the §5.4 search energies (one subarray's eight PDs
	// per side per access).
	bcache.TDec = baseline.TDec*0.8 + 8*CAM6x8PJ
	bcache.DDec = baseline.DDec*0.8 + 8*CAM6x16PJ
	return baseline, bcache, nil
}

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// DrowsyLeakageSave is the fraction of a drowsy line's leakage removed by
// the reduced-voltage state (Flautner et al. report ~75-85%; the §6.4
// discussion assumes drowsy techniques remain applicable on the B-Cache).
const DrowsyLeakageSave = 0.75

// DrowsyStaticFactor scales static energy for a cache that keeps
// drowsyFrac of its frames in the drowsy state: factor = 1 −
// DrowsyLeakageSave × drowsyFrac. It panics on fractions outside [0,1].
func DrowsyStaticFactor(drowsyFrac float64) float64 {
	if drowsyFrac < 0 || drowsyFrac > 1 {
		panic(fmt.Sprintf("energy: drowsy fraction %g out of [0,1]", drowsyFrac))
	}
	return 1 - DrowsyLeakageSave*drowsyFrac
}
