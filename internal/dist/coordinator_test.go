package dist

import (
	"fmt"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// memCommit collects committed records, guarding against double-commits.
type memCommit struct {
	mu      sync.Mutex
	got     map[int][]Record
	doubled []int
}

func newMemCommit() *memCommit { return &memCommit{got: map[int][]Record{}} }

func (m *memCommit) commit(unit int, recs []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.got[unit]; dup {
		m.doubled = append(m.doubled, unit)
	}
	m.got[unit] = recs
	return nil
}

func (m *memCommit) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

func localExecFor(plan fakePlan) func(int) ([]Record, error) {
	return func(unit int) ([]Record, error) { return plan.Exec(unit) }
}

// TestCoordinateZeroWorkersRunsLocally: Workers 0 is the degenerate
// campaign — every unit executes in-process through LocalExec.
func TestCoordinateZeroWorkersRunsLocally(t *testing.T) {
	plan := fakePlan{n: 12}
	mc := newMemCommit()
	stats, err := Coordinate(Config{
		Units:       plan.n,
		Fingerprint: plan.Fingerprint(),
		Workers:     0,
		Commit:      mc.commit,
		LocalExec:   localExecFor(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 12 || stats.LocalUnits != 12 || mc.len() != 12 {
		t.Fatalf("stats = %+v, committed map %d", stats, mc.len())
	}
	if len(mc.doubled) != 0 {
		t.Fatalf("units committed twice: %v", mc.doubled)
	}
}

// TestCoordinateZeroWorkersNoFallbackFails: with no workers and no
// LocalExec there is nothing that can run the campaign.
func TestCoordinateZeroWorkersNoFallbackFails(t *testing.T) {
	_, err := Coordinate(Config{Units: 3, Workers: 0, Commit: func(int, []Record) error { return nil }})
	if err == nil {
		t.Fatal("campaign with no executor succeeded")
	}
}

// TestCoordinateDegradesWhenAllWorkersDie: every subprocess exits
// immediately without speaking the protocol; once restart budgets are
// spent the coordinator falls back to local execution and still
// completes every unit exactly once.
func TestCoordinateDegradesWhenAllWorkersDie(t *testing.T) {
	plan := fakePlan{n: 9}
	mc := newMemCommit()
	degraded := 0
	stats, err := Coordinate(Config{
		Units:       plan.n,
		Fingerprint: plan.Fingerprint(),
		Workers:     2,
		ShardDir:    t.TempDir(),
		Command: func(slot, attempt int) *exec.Cmd {
			return exec.Command("false")
		},
		RestartBudget: 1,
		LeaseTTL:      5 * time.Second,
		Commit:        mc.commit,
		LocalExec:     localExecFor(plan),
		Events:        Events{Degraded: func(remaining int) { degraded = remaining }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 9 || stats.LocalUnits != 9 || mc.len() != 9 {
		t.Fatalf("stats = %+v, committed map %d", stats, mc.len())
	}
	if degraded != 9 {
		t.Fatalf("Degraded hook saw %d remaining, want 9", degraded)
	}
	if stats.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2 (one per slot)", stats.Restarts)
	}
	if len(mc.doubled) != 0 {
		t.Fatalf("units committed twice: %v", mc.doubled)
	}
}

// TestCoordinateAlreadyDoneSkipsUnits: checkpoint-resumed units are
// neither executed nor committed again.
func TestCoordinateAlreadyDoneSkipsUnits(t *testing.T) {
	plan := fakePlan{n: 10}
	mc := newMemCommit()
	stats, err := Coordinate(Config{
		Units:       plan.n,
		Fingerprint: plan.Fingerprint(),
		Workers:     0,
		AlreadyDone: func(u int) bool { return u%2 == 0 },
		Commit:      mc.commit,
		LocalExec:   localExecFor(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 5 || mc.len() != 5 {
		t.Fatalf("committed %d (map %d), want 5", stats.Committed, mc.len())
	}
	for u := range mc.got {
		if u%2 == 0 {
			t.Fatalf("resumed unit %d re-committed", u)
		}
	}
}

// TestCoordinateLocalFallbackRetriesAndReportsFailures: units that keep
// failing locally exhaust their attempt budget and surface in
// FailedUnits instead of hanging the campaign.
func TestCoordinateLocalFallbackRetriesAndReportsFailures(t *testing.T) {
	plan := fakePlan{n: 6, fail: map[int]bool{2: true, 4: true}}
	mc := newMemCommit()
	stats, err := Coordinate(Config{
		Units:        plan.n,
		Fingerprint:  plan.Fingerprint(),
		Workers:      0,
		UnitAttempts: 2,
		Commit:       mc.commit,
		LocalExec:    localExecFor(plan),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 4 || mc.len() != 4 {
		t.Fatalf("committed %d, want 4", stats.Committed)
	}
	if fmt.Sprint(stats.FailedUnits) != "[2 4]" {
		t.Fatalf("FailedUnits = %v, want [2 4]", stats.FailedUnits)
	}
}

// TestCoordinateRejectsBadConfig: a campaign needs a commit sink.
func TestCoordinateRejectsBadConfig(t *testing.T) {
	if _, err := Coordinate(Config{Units: 1}); err == nil {
		t.Fatal("Coordinate accepted a config without Commit")
	}
	if _, err := Coordinate(Config{Units: -1, Commit: func(int, []Record) error { return nil }}); err == nil {
		t.Fatal("Coordinate accepted negative Units")
	}
}

// TestCoordinateEmptyCampaign: zero units is a clean no-op even with
// workers configured.
func TestCoordinateEmptyCampaign(t *testing.T) {
	stats, err := Coordinate(Config{
		Units:   0,
		Commit:  func(int, []Record) error { return nil },
		Workers: 4,
		Command: func(slot, attempt int) *exec.Cmd { return exec.Command("false") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 0 || stats.Leases != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}
