// Package dist runs a unit campaign across worker subprocesses without
// giving up the repo's core guarantee: the merged result is bit-identical
// to a single-process run.
//
// The division of labour is strict. This package knows about *units* —
// opaque integers 0..n-1 that execute into key/value records — and about
// the machinery of distributing them: a lease table granting contiguous
// unit ranges with deadlines and heartbeats, a JSONL wire protocol over
// each worker's stdin/stdout, append-only checksummed shard files that
// survive kill -9 mid-write, and a coordinator that re-leases the units
// of crashed, hung, or corrupt workers to survivors (restart budgets,
// degrade-to-local fallback). What a unit *means* — which cache replay it
// is, what keys it commits — lives with the caller (internal/dist/distrun
// binds it to experiment plans). The two sides agree on the unit space by
// fingerprint, never by trust.
package dist

import "encoding/json"

// ProtoVersion identifies the coordinator↔worker wire protocol. A worker
// built from a different protocol refuses the init message, because a
// silent mismatch could commit records under the wrong units.
const ProtoVersion = 1

// Record is one key/value pair committed by a unit. The value is opaque
// to this package; the caller defines (and versions) its layout.
type Record struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// Message types. The coordinator sends init, lease, and shutdown; the
// worker sends hello, result, unitErr, leaseDone, heartbeat, and bye.
const (
	// MsgInit opens the session: protocol version, the opaque campaign
	// spec the worker rebuilds its plan from, the shard path to append
	// to, the plan fingerprint to verify, and the heartbeat interval.
	MsgInit = "init"
	// MsgHello is the worker's acceptance: its plan length and
	// fingerprint (the coordinator double-checks both).
	MsgHello = "hello"
	// MsgLease grants units [Start, End) under a lease ID.
	MsgLease = "lease"
	// MsgResult commits one executed unit's records. The worker has
	// already appended the same records to its shard — persist, then
	// report — so a result lost to a crash is recovered from the shard.
	MsgResult = "result"
	// MsgUnitErr reports a unit whose execution failed; the coordinator
	// decides whether to retry it elsewhere.
	MsgUnitErr = "unitErr"
	// MsgLeaseDone reports every unit of a lease handled (result or
	// unitErr); the worker is ready for its next lease.
	MsgLeaseDone = "leaseDone"
	// MsgHeartbeat keeps a lease alive while a long unit executes.
	MsgHeartbeat = "heartbeat"
	// MsgShutdown asks the worker to finish its current unit, send bye,
	// and exit.
	MsgShutdown = "shutdown"
	// MsgBye is the worker's last message before a clean exit.
	MsgBye = "bye"
)

// Msg is the single wire envelope; Type selects which fields matter.
// Lease bounds deliberately lack omitempty: unit 0 must survive encoding.
type Msg struct {
	Type string `json:"type"`

	// init
	Proto           int             `json:"proto,omitempty"`
	Spec            json.RawMessage `json:"spec,omitempty"`
	ShardPath       string          `json:"shardPath,omitempty"`
	HeartbeatMillis int64           `json:"heartbeatMillis,omitempty"`

	// init, hello: plan agreement
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	Units       int    `json:"units,omitempty"`

	// lease, result, unitErr, leaseDone, bye
	Lease int `json:"lease"`
	Start int `json:"start"`
	End   int `json:"end"`
	Unit  int `json:"unit"`

	// result
	Records []Record `json:"records,omitempty"`

	// unitErr, hello (refusal), bye
	Err string `json:"err,omitempty"`

	// shutdown, bye: the drain was a user interrupt, not end-of-work
	Interrupted bool `json:"interrupted,omitempty"`
}
