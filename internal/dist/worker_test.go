package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fakePlan is a deterministic in-process plan for protocol tests.
type fakePlan struct {
	n    int
	fail map[int]bool // units whose Exec errors
}

func (p fakePlan) Len() int            { return p.n }
func (p fakePlan) Fingerprint() uint64 { return uint64(0xABC0 + p.n) }
func (p fakePlan) Exec(unit int) ([]Record, error) {
	if p.fail[unit] {
		return nil, fmt.Errorf("unit %d refuses", unit)
	}
	return []Record{{
		Key: fmt.Sprintf("key-%d", unit),
		Val: json.RawMessage(fmt.Sprintf(`{"misses":%d,"accesses":%d}`, unit*10, unit*100)),
	}}, nil
}

// protoHarness runs ServeWorker over in-memory pipes and lets the test
// play coordinator by hand.
type protoHarness struct {
	t      *testing.T
	enc    *json.Encoder
	dec    *json.Decoder
	inW    io.WriteCloser
	doneC  chan struct{}
	mu     sync.Mutex
	retInt bool
	retErr error
}

func startWorker(t *testing.T, plan fakePlan, stop <-chan struct{}) *protoHarness {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	h := &protoHarness{
		t: t, enc: json.NewEncoder(inW), dec: json.NewDecoder(outR),
		inW: inW, doneC: make(chan struct{}),
	}
	go func() {
		defer close(h.doneC)
		defer outW.Close()
		interrupted, err := ServeWorker(inR, outW, WorkerConfig{
			Stop: stop,
			Build: func(spec json.RawMessage) (Plan, error) {
				var n int
				if err := json.Unmarshal(spec, &n); err != nil {
					return nil, err
				}
				if n != plan.n {
					return nil, errors.New("spec mismatch")
				}
				return plan, nil
			},
		})
		h.mu.Lock()
		h.retInt, h.retErr = interrupted, err
		h.mu.Unlock()
	}()
	return h
}

func (h *protoHarness) send(m Msg) {
	h.t.Helper()
	if err := h.enc.Encode(m); err != nil {
		h.t.Fatalf("send %s: %v", m.Type, err)
	}
}

func (h *protoHarness) recv() Msg {
	h.t.Helper()
	var m Msg
	if err := h.dec.Decode(&m); err != nil {
		h.t.Fatalf("recv: %v", err)
	}
	return m
}

// recvSkippingHeartbeats returns the next non-heartbeat message.
func (h *protoHarness) recvSkippingHeartbeats() Msg {
	for {
		m := h.recv()
		if m.Type != MsgHeartbeat {
			return m
		}
	}
}

func TestWorkerProtocolHappyPath(t *testing.T) {
	plan := fakePlan{n: 5, fail: map[int]bool{3: true}}
	shardPath := filepath.Join(t.TempDir(), "shard-000-000.bin")
	h := startWorker(t, plan, nil)

	h.send(Msg{Type: MsgInit, Proto: ProtoVersion, Spec: json.RawMessage("5"),
		ShardPath: shardPath, Fingerprint: plan.Fingerprint(), Units: plan.n})
	hello := h.recv()
	if hello.Type != MsgHello || hello.Err != "" || hello.Units != 5 || hello.Fingerprint != plan.Fingerprint() {
		t.Fatalf("hello = %+v", hello)
	}

	h.send(Msg{Type: MsgLease, Lease: 1, Start: 0, End: 5})
	var results, unitErrs []Msg
	for {
		m := h.recvSkippingHeartbeats()
		if m.Type == MsgLeaseDone {
			if m.Lease != 1 {
				t.Fatalf("leaseDone for lease %d", m.Lease)
			}
			break
		}
		switch m.Type {
		case MsgResult:
			results = append(results, m)
		case MsgUnitErr:
			unitErrs = append(unitErrs, m)
		default:
			t.Fatalf("unexpected %q mid-lease", m.Type)
		}
	}
	if len(results) != 4 || len(unitErrs) != 1 || unitErrs[0].Unit != 3 {
		t.Fatalf("got %d results, %d unitErrs (%+v)", len(results), len(unitErrs), unitErrs)
	}
	for _, m := range results {
		if len(m.Records) != 1 || m.Records[0].Key != fmt.Sprintf("key-%d", m.Unit) {
			t.Fatalf("result %d records = %+v", m.Unit, m.Records)
		}
	}

	// The shard holds exactly the successful units, in execution order —
	// written before each result went on the wire.
	payloads, err := ReadShard(shardPath, plan.Fingerprint())
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	if len(payloads) != 4 {
		t.Fatalf("shard holds %d payloads, want 4", len(payloads))
	}
	wantUnits := []int{0, 1, 2, 4}
	for i, pl := range payloads {
		if pl.Unit != wantUnits[i] {
			t.Fatalf("shard payload %d unit = %d, want %d", i, pl.Unit, wantUnits[i])
		}
	}

	h.send(Msg{Type: MsgShutdown})
	bye := h.recvSkippingHeartbeats()
	if bye.Type != MsgBye || bye.Interrupted {
		t.Fatalf("bye = %+v", bye)
	}
	<-h.doneC
	if h.retInt || h.retErr != nil {
		t.Fatalf("ServeWorker returned interrupted=%v err=%v", h.retInt, h.retErr)
	}
}

func TestWorkerRefusesFingerprintMismatch(t *testing.T) {
	plan := fakePlan{n: 3}
	h := startWorker(t, plan, nil)
	h.send(Msg{Type: MsgInit, Proto: ProtoVersion, Spec: json.RawMessage("3"),
		ShardPath: filepath.Join(t.TempDir(), "s.bin"), Fingerprint: 0xDEAD, Units: 3})
	hello := h.recv()
	if hello.Type != MsgHello || hello.Err == "" || !strings.Contains(hello.Err, "plan mismatch") {
		t.Fatalf("hello = %+v, want a refusal", hello)
	}
	<-h.doneC
	if h.retErr == nil {
		t.Fatal("ServeWorker returned nil error on fingerprint mismatch")
	}
}

func TestWorkerRefusesWrongProto(t *testing.T) {
	h := startWorker(t, fakePlan{n: 1}, nil)
	h.send(Msg{Type: MsgInit, Proto: ProtoVersion + 1, Spec: json.RawMessage("1")})
	hello := h.recv()
	if hello.Err == "" {
		t.Fatalf("hello = %+v, want a proto refusal", hello)
	}
	<-h.doneC
}

// TestWorkerDirectStopDrains: closing Stop (the SIGINT seam) makes the
// worker send an interrupted bye and report interrupted=true — the
// caller turns that into exit 130.
func TestWorkerDirectStopDrains(t *testing.T) {
	plan := fakePlan{n: 4}
	stop := make(chan struct{})
	h := startWorker(t, plan, stop)
	h.send(Msg{Type: MsgInit, Proto: ProtoVersion, Spec: json.RawMessage("4"),
		ShardPath: filepath.Join(t.TempDir(), "s.bin"), Fingerprint: plan.Fingerprint(), Units: 4})
	if hello := h.recv(); hello.Err != "" {
		t.Fatalf("hello refused: %s", hello.Err)
	}
	close(stop)
	for {
		m := h.recvSkippingHeartbeats()
		if m.Type == MsgBye {
			if !m.Interrupted {
				t.Fatal("bye not marked interrupted")
			}
			break
		}
	}
	<-h.doneC
	if !h.retInt {
		t.Fatal("ServeWorker did not report interrupted")
	}
}
