package dist

import (
	"encoding/json"
	"errors"
	"io"
	"testing"
	"time"

	"bcache/internal/obs/tracespan"
)

// White-box coverage for the doomed-flag window: when a lease expires,
// handleExpiries SIGKILLs the worker but its exit event has not arrived
// yet — the process is still marked alive. The regrant sweep that runs
// in the same breath must skip that slot (slot order would otherwise
// hand the expired units straight back to the hung worker) and offer
// the units to the idle survivor instead. The scripted-subprocess chaos
// tests exercise this only probabilistically; here the coordinator is
// driven event by event so the window is pinned exactly.

// nopWriteCloser satisfies workerProc.stdin without a real pipe.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// fakeProc builds a workerProc that looks live to the coordinator but
// has no subprocess behind it. The pid is large and nonexistent so the
// SIGKILL handleExpiries sends to its process group hits nothing (pid 0
// or a real pid would signal this test's own group).
func fakeProc() *workerProc {
	return &workerProc{
		stdin:   nopWriteCloser{io.Discard},
		enc:     json.NewEncoder(io.Discard),
		pid:     999999,
		alive:   true,
		greeted: true,
	}
}

// leaseOf returns the single lease held by worker, or nil.
func leaseOf(t *testing.T, table *leaseTable, worker int) *Lease {
	t.Helper()
	var found *Lease
	for _, l := range table.leases {
		if l.Worker == worker {
			if found != nil {
				t.Fatalf("worker %d holds more than one lease", worker)
			}
			found = l
		}
	}
	return found
}

func TestDoomedWorkerNotRegrantedInExpiryWindow(t *testing.T) {
	clk := tracespan.NewFakeClock(time.Unix(1000, 0))
	committed := map[int]bool{}
	c := &coordinator{
		cfg: Config{
			Units:    4,
			ChunkMax: 2,
			LeaseTTL: time.Second,
			Commit: func(unit int, recs []Record) error {
				committed[unit] = true
				return nil
			},
			// RestartBudget 0: the doomed worker's exit must not
			// respawn it; its units belong to the survivor.
		},
		clk:   clk,
		table: newLeaseTable(4, 0),
		procs: []*workerProc{fakeProc(), fakeProc()},
		evc:   make(chan event, 4),
		donec: make(chan struct{}),
	}
	c.stats.Units = 4

	// Both workers lease a chunk: worker 0 gets [0,2), worker 1 [2,4).
	c.grantTo(0)
	c.grantTo(1)
	l0 := leaseOf(t, c.table, 0)
	l1 := leaseOf(t, c.table, 1)
	if l0 == nil || l1 == nil {
		t.Fatalf("expected both workers leased; got %v / %v", l0, l1)
	}
	if l0.Start != 0 || l0.End != 2 || l1.Start != 2 || l1.End != 4 {
		t.Fatalf("unexpected lease ranges: [%d,%d) and [%d,%d)",
			l0.Start, l0.End, l1.Start, l1.End)
	}

	// Worker 1 finishes its chunk and reports its lease done; with
	// units 0 and 1 still leased to worker 0 there is nothing left to
	// grant, so worker 1 goes idle — the pre-condition for the race.
	for unit := 2; unit < 4; unit++ {
		if err := c.handleMsg(1, Msg{Type: MsgResult, Lease: l1.ID, Unit: unit}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.handleMsg(1, Msg{Type: MsgLeaseDone, Lease: l1.ID}); err != nil {
		t.Fatal(err)
	}
	if got := leaseOf(t, c.table, 1); got != nil {
		t.Fatalf("worker 1 should be idle, holds lease [%d,%d)", got.Start, got.End)
	}

	// Worker 0 goes silent. Advancing past the TTL and running the
	// expiry sweep must (a) doom slot 0 while its exit event is still
	// pending, (b) keep its own returned units away from it, and (c)
	// hand them to the idle survivor in the same sweep.
	clk.Advance(2 * time.Second)
	c.handleExpiries()
	if !c.procs[0].doomed {
		t.Fatal("worker 0 not doomed after its lease expired")
	}
	if !c.procs[0].alive {
		t.Fatal("worker 0 should still read as alive until its exit event")
	}
	if c.stats.Expiries != 1 {
		t.Fatalf("Expiries = %d, want 1", c.stats.Expiries)
	}
	if got := leaseOf(t, c.table, 0); got != nil {
		t.Fatalf("doomed worker 0 re-granted units [%d,%d) in the expiry window", got.Start, got.End)
	}
	rl := leaseOf(t, c.table, 1)
	if rl == nil || rl.Start != 0 || rl.End != 2 {
		t.Fatalf("survivor should hold re-granted [0,2); got %v", rl)
	}

	// Extra regrant sweeps inside the window (any event can trigger
	// one) must keep skipping the doomed slot.
	c.regrantIdle()
	if got := leaseOf(t, c.table, 0); got != nil {
		t.Fatal("doomed worker 0 picked up a lease from a later sweep")
	}

	// The SIGKILL's exit event lands. With a zero restart budget the
	// slot stays down, nothing new returns to pending (its lease was
	// already reclaimed by the expiry), and the survivor keeps its
	// lease untouched.
	c.handleExit(0, errors.New("signal: killed"), false)
	if c.procs[0].alive {
		t.Fatal("worker 0 still alive after its exit event")
	}
	if c.stats.Restarts != 0 {
		t.Fatalf("Restarts = %d, want 0", c.stats.Restarts)
	}
	if got := leaseOf(t, c.table, 0); got != nil {
		t.Fatal("dead worker 0 holds a lease after exit")
	}
	rl2 := leaseOf(t, c.table, 1)
	if rl2 == nil || rl2.ID != rl.ID {
		t.Fatalf("survivor's lease changed across the exit event: %v -> %v", rl, rl2)
	}

	// The survivor finishes the recovered chunk; the campaign settles
	// with every unit committed exactly once.
	for unit := 0; unit < 2; unit++ {
		if err := c.handleMsg(1, Msg{Type: MsgResult, Lease: rl2.ID, Unit: unit}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.handleMsg(1, Msg{Type: MsgLeaseDone, Lease: rl2.ID}); err != nil {
		t.Fatal(err)
	}
	if !c.table.settled() {
		t.Fatal("table not settled after survivor finished the recovered units")
	}
	for unit := 0; unit < 4; unit++ {
		if !committed[unit] {
			t.Fatalf("unit %d never committed", unit)
		}
	}
	if c.table.dups != 0 {
		t.Fatalf("dups = %d, want 0", c.table.dups)
	}
}

// TestExitDuringExpiryWindowThenLateResult covers the overlap the other
// direction: the doomed worker's exit event arrives while a straggler
// result from its expired lease is still in the pipe. The late result
// for a unit the survivor already committed must drop as a duplicate
// (first-commit-wins), never re-commit.
func TestExitDuringExpiryWindowThenLateResult(t *testing.T) {
	clk := tracespan.NewFakeClock(time.Unix(2000, 0))
	commits := map[int]int{}
	c := &coordinator{
		cfg: Config{
			Units:    2,
			ChunkMax: 2,
			LeaseTTL: time.Second,
			Commit: func(unit int, recs []Record) error {
				commits[unit]++
				return nil
			},
		},
		clk:   clk,
		table: newLeaseTable(2, 0),
		procs: []*workerProc{fakeProc(), fakeProc()},
		evc:   make(chan event, 4),
		donec: make(chan struct{}),
	}
	c.stats.Units = 2

	c.grantTo(0)
	l0 := leaseOf(t, c.table, 0)
	if l0 == nil {
		t.Fatal("worker 0 got no lease")
	}

	// Expire it; the idle worker 1 inherits both units and commits one.
	clk.Advance(2 * time.Second)
	c.handleExpiries()
	rl := leaseOf(t, c.table, 1)
	if rl == nil {
		t.Fatal("survivor got no re-grant")
	}
	if err := c.handleMsg(1, Msg{Type: MsgResult, Lease: rl.ID, Unit: 0}); err != nil {
		t.Fatal(err)
	}

	// The doomed worker's buffered result for the same unit arrives
	// just before its exit event: duplicate, dropped, counted.
	if err := c.handleMsg(0, Msg{Type: MsgResult, Lease: l0.ID, Unit: 0}); err != nil {
		t.Fatal(err)
	}
	c.handleExit(0, errors.New("signal: killed"), false)

	if commits[0] != 1 {
		t.Fatalf("unit 0 committed %d times, want exactly 1", commits[0])
	}
	if c.table.dups != 1 {
		t.Fatalf("dups = %d, want 1", c.table.dups)
	}
	if got := leaseOf(t, c.table, 1); got == nil || got.ID != rl.ID {
		t.Fatal("survivor's lease disturbed by the late result + exit")
	}
}
