package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeTestShard(t *testing.T, dir string, fp uint64, n int) (string, []ShardPayload) {
	t.Helper()
	path := filepath.Join(dir, "shard-000-000.bin")
	w, err := CreateShard(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	var want []ShardPayload
	for i := 0; i < n; i++ {
		p := ShardPayload{Unit: i, Records: []Record{
			{Key: fmt.Sprintf("unit-%d", i), Val: json.RawMessage(fmt.Sprintf(`{"misses":%d}`, 100+i))},
		}}
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, want
}

func TestShardRoundTrip(t *testing.T) {
	const fp = 0xfeedface
	path, want := writeTestShard(t, t.TempDir(), fp, 5)
	got, err := ReadShard(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Unit != want[i].Unit || len(got[i].Records) != 1 ||
			got[i].Records[0].Key != want[i].Records[0].Key ||
			string(got[i].Records[0].Val) != string(want[i].Records[0].Val) {
			t.Fatalf("payload %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestShardWrongFingerprintRejected(t *testing.T) {
	path, _ := writeTestShard(t, t.TempDir(), 1, 2)
	if _, err := ReadShard(path, 2); err == nil || errors.Is(err, ErrShardTorn) {
		t.Fatalf("foreign-plan shard read gave %v, want a hard error", err)
	}
}

func TestShardNotAShard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus.bin")
	if err := os.WriteFile(path, []byte("definitely not a shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShard(path, 0); err == nil || errors.Is(err, ErrShardTorn) {
		t.Fatalf("bogus file read gave %v, want a hard error", err)
	}
}

// TestShardTruncationSweep cuts the file at every byte: the reader must
// return exactly the records whose bytes fully survive, flagging the
// torn tail, and never error hard on a valid header.
func TestShardTruncationSweep(t *testing.T) {
	const fp = 77
	path, want := writeTestShard(t, t.TempDir(), fp, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	prev := -1
	for cut := len(shardMagic) + 8; cut <= len(data); cut++ {
		p := filepath.Join(dir, "cut.bin")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadShard(p, fp)
		if cut == len(data) {
			if err != nil {
				t.Fatalf("full file read: %v", err)
			}
		} else if err == nil {
			// A cut at an exact record boundary is indistinguishable
			// from a shorter log and reads clean; the prefix checks
			// below still apply to it.
		} else if !errors.Is(err, ErrShardTorn) {
			t.Fatalf("cut %d: err = %v, want ErrShardTorn", cut, err)
		}
		if len(got) < prev {
			t.Fatalf("cut %d: record count went backwards (%d after %d)", cut, len(got), prev)
		}
		prev = len(got)
		for i, pl := range got {
			if pl.Unit != want[i].Unit {
				t.Fatalf("cut %d: payload %d unit = %d, want %d", cut, i, pl.Unit, want[i].Unit)
			}
		}
	}
	if prev != len(want) {
		t.Fatalf("full read kept %d records, want %d", prev, len(want))
	}
}

// TestShardBitFlipDropsTail: corruption inside record k keeps records
// 0..k-1 and reports the tail torn — checksums, not luck.
func TestShardBitFlipDropsTail(t *testing.T) {
	const fp = 9
	path, _ := writeTestShard(t, t.TempDir(), fp, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for flip := len(shardMagic) + 8; flip < len(data); flip += 3 {
		mut := append([]byte(nil), data...)
		mut[flip] ^= 0x20
		p := filepath.Join(dir, "flip.bin")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadShard(p, fp)
		if err != nil && !errors.Is(err, ErrShardTorn) {
			t.Fatalf("flip %d: hard error %v", flip, err)
		}
		if len(got) > 4 {
			t.Fatalf("flip %d: invented %d records", flip, len(got))
		}
	}
}

// FuzzReadShard: arbitrary bytes after a valid header must never panic
// or allocate absurdly; any parsed prefix is bounded by the input size.
func FuzzReadShard(f *testing.F) {
	dir, err := os.MkdirTemp("", "shardfuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })
	seedPath := filepath.Join(dir, "seed.bin")
	w, err := CreateShard(seedPath, 5)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(ShardPayload{Unit: i, Records: []Record{{Key: fmt.Sprintf("k%d", i), Val: json.RawMessage(`{}`)}}}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add([]byte("BCSHARD1xxxxxxxx\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fz.bin")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadShard(p, 5)
		if err == nil || errors.Is(err, ErrShardTorn) {
			if len(got) > len(data) {
				t.Fatalf("parsed %d records from %d bytes", len(got), len(data))
			}
		}
	})
}
