package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// A shard is a worker's append-only crash log: every executed unit's
// records are appended here *before* the result goes on the wire, so a
// worker that dies between persist and report loses nothing — the
// coordinator replays the shard. The format is built for torn tails:
//
//	header:  "BCSHARD1" | uint64 LE plan fingerprint
//	record:  uint32 LE payload length | payload | uint64 LE FNV-1a(payload)
//
// Each record is appended with a single write(2), so a kill -9 tears at
// most the final record; the reader keeps the checksummed prefix and
// reports the torn tail rather than failing. The fingerprint in the
// header pins the shard to one plan — a shard from a different campaign
// is rejected, not merged.

// shardMagic opens every shard file; the trailing 1 is the format version.
const shardMagic = "BCSHARD1"

// maxShardPayload bounds a single record, so a corrupt length prefix
// cannot demand a gigantic allocation.
const maxShardPayload = 64 << 20

// fnv1a folds data through 64-bit FNV-1a — the same checksum the trace
// cache and plan fingerprints use.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

// ShardPayload is the JSON payload of one shard record: the unit index
// plus the records it committed.
type ShardPayload struct {
	Unit    int      `json:"unit"`
	Records []Record `json:"records"`
}

// ShardWriter appends checksummed records to a shard file.
type ShardWriter struct {
	f *os.File
}

// CreateShard creates (truncating) a shard file whose header pins the
// given plan fingerprint.
func CreateShard(path string, fingerprint uint64) (*ShardWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, len(shardMagic)+8)
	copy(hdr, shardMagic)
	binary.LittleEndian.PutUint64(hdr[len(shardMagic):], fingerprint)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &ShardWriter{f: f}, nil
}

// Append persists one executed unit. The length prefix, payload, and
// checksum go down in one write(2): either the whole record lands or the
// reader sees a torn tail it can cleanly drop.
func (w *ShardWriter) Append(p ShardPayload) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return err
	}
	buf := make([]byte, 4+len(payload)+8)
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	binary.LittleEndian.PutUint64(buf[4+len(payload):], fnv1a(payload))
	_, err = w.f.Write(buf)
	return err
}

// Close closes the underlying file.
func (w *ShardWriter) Close() error { return w.f.Close() }

// ErrShardTorn reports a shard whose tail was lost to a crash or
// corruption; the records returned alongside it are the valid prefix.
var ErrShardTorn = errors.New("dist: shard tail torn")

// ReadShard returns every intact record of a shard, in append order. A
// torn or corrupt tail returns the valid prefix plus ErrShardTorn — the
// expected outcome of kill -9, not a failure. A missing file, a bad
// header, or a fingerprint from another plan is a hard error: merging it
// could poison the checkpoint.
func ReadShard(path string, fingerprint uint64) ([]ShardPayload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(shardMagic)+8 || string(data[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("dist: %s is not a shard file", path)
	}
	got := binary.LittleEndian.Uint64(data[len(shardMagic):])
	if got != fingerprint {
		return nil, fmt.Errorf("dist: shard %s belongs to plan %016x, want %016x", path, got, fingerprint)
	}
	rest := data[len(shardMagic)+8:]
	var out []ShardPayload
	for len(rest) > 0 {
		if len(rest) < 4 {
			return out, ErrShardTorn
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n > maxShardPayload || len(rest) < 4+n+8 {
			return out, ErrShardTorn
		}
		payload := rest[4 : 4+n]
		sum := binary.LittleEndian.Uint64(rest[4+n:])
		if fnv1a(payload) != sum {
			return out, ErrShardTorn
		}
		var p ShardPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return out, ErrShardTorn
		}
		out = append(out, p)
		rest = rest[4+n+8:]
	}
	return out, nil
}
