package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestMain doubles as a scripted worker subprocess: with the env hook
// set, the test binary speaks the worker protocol against a plan built
// from the coordinator's spec (same trick as the distrun chaos suite).
// That gives coordinator tests real subprocess deaths with scripted,
// deterministic behavior.
func TestMain(m *testing.M) {
	if os.Getenv("BCACHE_DIST_TEST_WORKER") == "1" {
		_, err := ServeWorker(os.Stdin, os.Stdout, WorkerConfig{
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
			Build: func(raw json.RawMessage) (Plan, error) {
				var spec scriptedSpec
				if err := json.Unmarshal(raw, &spec); err != nil {
					return nil, err
				}
				return scriptedPlan{spec: spec}, nil
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scripted worker: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// scriptedSpec is the wire spec of the scripted test worker.
type scriptedSpec struct {
	Units int `json:"units"`
	// DieUnit, when >= 0, makes the first worker to execute that unit
	// create Sentinel, linger DieDelayMillis (so survivors go idle
	// first), and die without reporting; later executions of the unit —
	// Sentinel exists — succeed normally.
	DieUnit        int    `json:"dieUnit"`
	DieDelayMillis int    `json:"dieDelayMillis"`
	Sentinel       string `json:"sentinel"`
}

func (s scriptedSpec) fingerprint() uint64 { return uint64(0xD1E0 + s.Units) }

type scriptedPlan struct{ spec scriptedSpec }

func (p scriptedPlan) Len() int            { return p.spec.Units }
func (p scriptedPlan) Fingerprint() uint64 { return p.spec.fingerprint() }

func (p scriptedPlan) Exec(unit int) ([]Record, error) {
	if unit == p.spec.DieUnit && p.spec.Sentinel != "" {
		if _, err := os.Stat(p.spec.Sentinel); os.IsNotExist(err) {
			_ = os.WriteFile(p.spec.Sentinel, []byte("died here"), 0o644)
			time.Sleep(time.Duration(p.spec.DieDelayMillis) * time.Millisecond)
			os.Exit(3)
		}
	}
	return []Record{{
		Key: fmt.Sprintf("unit-%03d", unit),
		Val: json.RawMessage(fmt.Sprintf(`{"unit":%d}`, unit)),
	}}, nil
}

func scriptedCommand(t *testing.T) func(slot, attempt int) *exec.Cmd {
	t.Helper()
	return func(slot, attempt int) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "BCACHE_DIST_TEST_WORKER=1")
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// TestWorkerDeathRegrantsToIdleSurvivor: a worker dies past its restart
// budget while the other worker is already idle (it was granted nothing
// at its last LeaseDone because everything was leased out). The dead
// worker's returned units must be re-granted to the idle survivor —
// before the regrant sweep existed, no event ever offered them and the
// campaign hung with work pending and a live worker parked.
func TestWorkerDeathRegrantsToIdleSurvivor(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	spec := scriptedSpec{
		Units:   4,
		DieUnit: 0,
		// Long enough that the survivor finishes its two trivial units
		// and idles before the death; short enough for CI.
		DieDelayMillis: 1500,
		Sentinel:       filepath.Join(dir, "died-once"),
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	// ChunkMax 2 splits 4 units into exactly two leases: whichever
	// worker gets [0,2) dies on unit 0; the other finishes [2,4) and
	// idles. RestartBudget 0 (explicit zero = never respawn) strands the
	// dead worker's units unless they are re-granted. No LocalExec: the
	// degrade fallback must not be what completes the campaign.
	mc := newMemCommit()
	type outcome struct {
		stats Stats
		err   error
	}
	donec := make(chan outcome, 1)
	go func() {
		stats, err := Coordinate(Config{
			Units:         spec.Units,
			Fingerprint:   spec.fingerprint(),
			Spec:          specJSON,
			ShardDir:      dir,
			Workers:       2,
			ChunkMax:      2,
			RestartBudget: 0,
			Command:       scriptedCommand(t),
			Commit:        mc.commit,
		})
		donec <- outcome{stats, err}
	}()

	watchdog := time.NewTimer(60 * time.Second)
	defer watchdog.Stop()
	select {
	case <-watchdog.C:
		t.Fatal("campaign hung: dead worker's units were never re-granted to the idle survivor")
	case out := <-donec:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.stats.Committed != spec.Units || mc.len() != spec.Units {
			t.Fatalf("committed %d units (map %d), want %d; stats %+v",
				out.stats.Committed, mc.len(), spec.Units, out.stats)
		}
		if out.stats.Restarts != 0 {
			t.Fatalf("restarts = %d, want 0 (budget was explicitly zero)", out.stats.Restarts)
		}
		if out.stats.LocalUnits != 0 {
			t.Fatalf("local fallback ran %d units; the survivor should have", out.stats.LocalUnits)
		}
	}
}
